//! Empirical flow-size distributions.
//!
//! Sizes are drawn by inverse-transform sampling from piecewise-linear
//! CDFs. The three shipped distributions are the ones the paper evaluates
//! on (Table 2 and §6.3.2):
//!
//! * **Web Search** (the DCTCP production trace): heavy-tailed, 62 % of
//!   flows ≤ 100 KB, ~1.6 MB average size.
//! * **Data Mining** (the VL2 trace): polarized, 83 % ≤ 100 KB (half of all
//!   flows are a single packet) with a multi-hundred-MB tail, ~7.4 MB
//!   average size.
//! * **Memcached W1** (Facebook's ETC pool, Homa's W1): >70 % of flows
//!   under 1 000 B and *every* flow ≤ 100 KB.

use netsim::Pcg32;

/// A piecewise-linear CDF over flow sizes in bytes.
///
/// Invariants (checked at construction): x strictly increasing, F
/// nondecreasing, final F = 1. A first point with F > 0 puts an atom of
/// probability at the minimum size (common in these traces: e.g. half of
/// all Data Mining flows are exactly one packet).
#[derive(Clone, Debug)]
pub struct SizeDistribution {
    name: &'static str,
    points: Vec<(u64, f64)>,
}

impl SizeDistribution {
    /// Build from CDF points. Panics on malformed input.
    pub fn from_cdf(name: &'static str, points: &[(u64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "{name}: x must be strictly increasing");
            assert!(w[0].1 <= w[1].1, "{name}: F must be nondecreasing");
        }
        let last = points.last().unwrap(); // simlint: allow(panic_hygiene)
        assert!((last.1 - 1.0).abs() < 1e-9, "{name}: final F must be 1.0");
        assert!(points[0].1 >= 0.0);
        SizeDistribution { name, points: points.to_vec() }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The Web Search workload (from the DCTCP paper's trace), calibrated to Table 2
    /// (62 % ≤ 100 KB, mean ≈ 1.6 MB).
    pub fn web_search() -> Self {
        Self::from_cdf(
            "WebSearch",
            &[
                (500, 0.0),
                (1_000, 0.10),
                (2_000, 0.18),
                (5_000, 0.30),
                (10_000, 0.40),
                (30_000, 0.50),
                (60_000, 0.56),
                (100_000, 0.62),
                (300_000, 0.70),
                (1_000_000, 0.80),
                (3_000_000, 0.90),
                (10_000_000, 0.96),
                (36_000_000, 1.0),
            ],
        )
    }

    /// The Data Mining workload (from the VL2 paper's trace), the standard pFabric CDF in bytes
    /// (83 % ≤ 100 KB, mean ≈ 7.4 MB, 1-packet atom of 50 %).
    pub fn data_mining() -> Self {
        Self::from_cdf(
            "DataMining",
            &[
                (1_460, 0.50),
                (2_920, 0.60),
                (4_380, 0.70),
                (10_220, 0.80),
                (389_820, 0.90),
                (3_076_220, 0.95),
                (97_333_820, 0.99),
                (973_333_820, 1.0),
            ],
        )
    }

    /// Facebook's Memcached workload (Homa's W1): >70 % of flows under
    /// 1 000 B, all flows ≤ 100 KB.
    pub fn memcached_w1() -> Self {
        Self::from_cdf(
            "MemcachedW1",
            &[
                (50, 0.0),
                (100, 0.30),
                (200, 0.50),
                (512, 0.65),
                (1_000, 0.78),
                (5_000, 0.90),
                (20_000, 0.97),
                (100_000, 1.0),
            ],
        )
    }

    /// Draw one flow size.
    pub fn sample(&self, rng: &mut Pcg32) -> u64 {
        let u: f64 = rng.next_f64();
        self.inverse(u)
    }

    /// Inverse CDF with linear interpolation (exposed for exact tests).
    pub fn inverse(&self, u: f64) -> u64 {
        let first = self.points[0];
        if u <= first.1 {
            return first.0;
        }
        for w in self.points.windows(2) {
            let (x0, f0) = w[0];
            let (x1, f1) = w[1];
            if u <= f1 {
                if f1 == f0 {
                    return x1;
                }
                let t = (u - f0) / (f1 - f0);
                return (x0 as f64 + t * (x1 - x0) as f64).round() as u64;
            }
        }
        self.points.last().unwrap().0 // simlint: allow(panic_hygiene)
    }

    /// CDF value at `x` (linear interpolation).
    pub fn cdf(&self, x: u64) -> f64 {
        let first = self.points[0];
        if x <= first.0 {
            return if x == first.0 { first.1 } else { 0.0 };
        }
        for w in self.points.windows(2) {
            let (x0, f0) = w[0];
            let (x1, f1) = w[1];
            if x <= x1 {
                let t = (x - x0) as f64 / (x1 - x0) as f64;
                return f0 + t * (f1 - f0);
            }
        }
        1.0
    }

    /// Analytic mean of the piecewise-linear distribution, bytes.
    pub fn mean_bytes(&self) -> f64 {
        let first = self.points[0];
        let mut mean = first.1 * first.0 as f64; // atom at the minimum
        for w in self.points.windows(2) {
            let (x0, f0) = w[0];
            let (x1, f1) = w[1];
            mean += (f1 - f0) * (x0 + x1) as f64 / 2.0;
        }
        mean
    }

    /// Largest size with nonzero probability.
    pub fn max_bytes(&self) -> u64 {
        self.points.last().unwrap().0 // simlint: allow(panic_hygiene)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_search_matches_table2() {
        let d = SizeDistribution::web_search();
        // Table 2: 62% short (0-100KB), mean 1.6MB.
        assert!((d.cdf(100_000) - 0.62).abs() < 1e-9);
        let mean = d.mean_bytes();
        assert!((1.5e6..1.7e6).contains(&mean), "mean={mean}");
    }

    #[test]
    fn data_mining_matches_table2() {
        let d = SizeDistribution::data_mining();
        // Table 2: 83% short, mean 7.41MB.
        let short = d.cdf(100_000);
        assert!((0.80..0.86).contains(&short), "short frac={short}");
        let mean = d.mean_bytes();
        assert!((7.0e6..7.8e6).contains(&mean), "mean={mean}");
    }

    #[test]
    fn memcached_is_all_small() {
        let d = SizeDistribution::memcached_w1();
        assert!(d.cdf(1_000) > 0.70, "paper: >70% of flows under 1000B");
        assert_eq!(d.max_bytes(), 100_000);
        assert_eq!(d.cdf(100_000), 1.0);
    }

    #[test]
    fn inverse_is_monotone_and_bounded() {
        for d in [
            SizeDistribution::web_search(),
            SizeDistribution::data_mining(),
            SizeDistribution::memcached_w1(),
        ] {
            let mut prev = 0;
            for i in 0..=1000 {
                let u = i as f64 / 1000.0;
                let x = d.inverse(u);
                assert!(x >= prev, "{}: inverse not monotone at u={u}", d.name());
                assert!(x <= d.max_bytes());
                prev = x;
            }
            assert_eq!(d.inverse(1.0), d.max_bytes());
        }
    }

    #[test]
    fn atom_at_minimum_is_respected() {
        let d = SizeDistribution::data_mining();
        // 50% of draws must be exactly one packet (1460B).
        let mut rng = Pcg32::seed_from_u64(7);
        let n = 20_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1_460).count();
        let frac = ones as f64 / n as f64;
        assert!((0.48..0.52).contains(&frac), "atom frac={frac}");
    }

    #[test]
    fn empirical_mean_tracks_analytic_mean() {
        let d = SizeDistribution::web_search();
        let mut rng = Pcg32::seed_from_u64(42);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp = sum as f64 / n as f64;
        let ana = d.mean_bytes();
        assert!((emp - ana).abs() / ana < 0.05, "empirical {emp} vs analytic {ana}");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn malformed_cdf_rejected() {
        SizeDistribution::from_cdf("bad", &[(10, 0.0), (10, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "final F must be 1.0")]
    fn incomplete_cdf_rejected() {
        SizeDistribution::from_cdf("bad", &[(10, 0.0), (20, 0.9)]);
    }
}
