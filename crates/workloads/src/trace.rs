//! Flow-trace import/export.
//!
//! Lets users replay their own traces through any scheme (the paper's
//! experiments replay Memcached/YouTube traces the same way). The format
//! is a plain CSV with a header:
//!
//! ```csv
//! src,dst,size_bytes,start_ns,first_write_bytes
//! 0,5,204800,1250000,204800
//! ```

use std::io::{BufRead, Write};

use netsim::SimTime;

use crate::pattern::FlowSpec;

/// Serialize flows as CSV (with header) into any writer.
pub fn write_csv<W: Write>(mut w: W, flows: &[FlowSpec]) -> std::io::Result<()> {
    writeln!(w, "src,dst,size_bytes,start_ns,first_write_bytes")?;
    for f in flows {
        writeln!(
            w,
            "{},{},{},{},{}",
            f.src,
            f.dst,
            f.size_bytes,
            f.start.as_nanos(),
            f.first_write_bytes
        )?;
    }
    Ok(())
}

/// Parse a CSV trace (header required). Returns a descriptive error with
/// the offending line number on malformed input.
pub fn read_csv<R: BufRead>(r: R) -> Result<Vec<FlowSpec>, String> {
    let mut flows = Vec::new();
    let mut lines = r.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err("empty trace".into());
    };
    let header = header.map_err(|e| e.to_string())?;
    if header.trim() != "src,dst,size_bytes,start_ns,first_write_bytes" {
        return Err(format!("unexpected header: '{header}'"));
    }
    for (ln, line) in lines {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(format!("line {}: expected 5 fields, got {}", ln + 1, fields.len()));
        }
        let parse = |i: usize, name: &str| -> Result<u64, String> {
            fields[i]
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad {name} '{}'", ln + 1, fields[i]))
        };
        let spec = FlowSpec {
            src: parse(0, "src")? as usize,
            dst: parse(1, "dst")? as usize,
            size_bytes: parse(2, "size_bytes")?,
            start: SimTime(parse(3, "start_ns")?),
            first_write_bytes: parse(4, "first_write_bytes")?,
        };
        if spec.size_bytes == 0 {
            return Err(format!("line {}: zero-size flow", ln + 1));
        }
        if spec.src == spec.dst {
            return Err(format!("line {}: src == dst", ln + 1));
        }
        flows.push(spec);
    }
    Ok(flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{all_to_all, SizeDistribution, WorkloadSpec};
    use netsim::Rate;

    #[test]
    fn roundtrip_preserves_every_field() {
        let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, Rate::gbps(10), 50, 3);
        let flows = all_to_all(6, &spec);
        let mut buf = Vec::new();
        write_csv(&mut buf, &flows).unwrap();
        let parsed = read_csv(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.len(), flows.len());
        for (a, b) in flows.iter().zip(&parsed) {
            assert_eq!(
                (a.src, a.dst, a.size_bytes, a.start, a.first_write_bytes),
                (b.src, b.dst, b.size_bytes, b.start, b.first_write_bytes)
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let csv = "src,dst,size_bytes,start_ns,first_write_bytes\n\n# a comment\n1,2,100,0,100\n";
        let flows = read_csv(std::io::BufReader::new(csv.as_bytes())).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].size_bytes, 100);
    }

    #[test]
    fn malformed_input_reports_line_numbers() {
        let bad_header = "a,b,c\n";
        assert!(read_csv(std::io::BufReader::new(bad_header.as_bytes())).is_err());

        let bad_fields = "src,dst,size_bytes,start_ns,first_write_bytes\n1,2,3\n";
        let err = read_csv(std::io::BufReader::new(bad_fields.as_bytes())).unwrap_err();
        assert!(err.contains("line 2"), "{err}");

        let self_send = "src,dst,size_bytes,start_ns,first_write_bytes\n1,1,100,0,100\n";
        let err = read_csv(std::io::BufReader::new(self_send.as_bytes())).unwrap_err();
        assert!(err.contains("src == dst"), "{err}");

        let zero = "src,dst,size_bytes,start_ns,first_write_bytes\n1,2,0,0,0\n";
        assert!(read_csv(std::io::BufReader::new(zero.as_bytes())).is_err());
    }
}
