#![forbid(unsafe_code)]
//! # workloads — datacenter traffic generation
//!
//! Deterministic (seeded) workload generators reproducing the traffic the
//! PPT paper evaluates on: the Web Search, Data Mining and Memcached W1
//! flow-size distributions, Poisson arrivals tuned to a target network
//! load, and the paper's traffic patterns (all-to-all, N-to-1 incast,
//! permutation).
//!
//! ```
//! use workloads::{SizeDistribution, WorkloadSpec, all_to_all};
//! use netsim::Rate;
//!
//! let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, Rate::gbps(40), 1000, 42);
//! let flows = all_to_all(144, &spec);
//! assert_eq!(flows.len(), 1000);
//! ```

pub mod dist;
pub mod pattern;
pub mod trace;
pub mod write_model;

pub use dist::SizeDistribution;
pub use netsim::Pcg32;
pub use pattern::{all_to_all, incast, incast_burst, permutation, FlowSpec, WorkloadSpec};
pub use trace::{read_csv, write_csv};
pub use write_model::{AppWriteModel, DEFAULT_CHUNK_BYTES, DEFAULT_FULL_WRITE_PROB};

use netsim::{FlowId, Payload, Simulator};

/// Register a list of generated flows on a simulator, mapping pattern host
/// indices through `hosts`. Returns the assigned flow ids in order.
pub fn install_flows<P: Payload>(
    sim: &mut Simulator<P>,
    hosts: &[netsim::HostId],
    flows: &[FlowSpec],
) -> Vec<FlowId> {
    flows
        .iter()
        .map(|f| {
            sim.add_flow(hosts[f.src], hosts[f.dst], f.size_bytes, f.start, f.first_write_bytes)
        })
        .collect()
}
