//! Traffic pattern generators.
//!
//! Each generator produces a deterministic (seeded) list of [`FlowSpec`]s:
//! Poisson arrivals whose rate is derived from the target network load,
//! sizes drawn from a [`SizeDistribution`], and endpoints per the pattern.

use netsim::{Pcg32, Rate, SimTime};

use crate::dist::SizeDistribution;
use crate::write_model::AppWriteModel;

/// One flow to inject into a simulation.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Index of the sending host in the experiment's host list.
    pub src: usize,
    /// Index of the receiving host.
    pub dst: usize,
    /// Flow size, bytes.
    pub size_bytes: u64,
    /// Arrival time.
    pub start: SimTime,
    /// Bytes copied by the application's first send() syscall.
    pub first_write_bytes: u64,
}

/// Workload generation parameters shared by all patterns.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Flow-size distribution.
    pub dist: SizeDistribution,
    /// Target load ρ in (0, 1], defined against the aggregate receive
    /// capacity the pattern stresses (per-host edge rate for all-to-all,
    /// the single downlink for incast).
    pub load: f64,
    /// Edge (host NIC) rate used to convert load into an arrival rate.
    pub edge_rate: Rate,
    /// Number of flows to generate.
    pub n_flows: usize,
    /// RNG seed; same seed ⇒ identical workload.
    pub seed: u64,
    /// Application write model (determines `first_write_bytes`).
    pub write_model: AppWriteModel,
}

impl WorkloadSpec {
    /// A ready-to-edit spec with the common defaults.
    pub fn new(
        dist: SizeDistribution,
        load: f64,
        edge_rate: Rate,
        n_flows: usize,
        seed: u64,
    ) -> Self {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0,1]");
        WorkloadSpec { dist, load, edge_rate, n_flows, seed, write_model: AppWriteModel::default() }
    }

    /// Mean inter-arrival time (ns) that makes `n_active_sinks` receive
    /// links carry `load` on average.
    fn mean_interarrival_ns(&self, n_active_sinks: usize) -> f64 {
        let per_sink_bytes_per_sec = self.edge_rate.bytes_per_sec() as f64 * self.load;
        let total_bytes_per_sec = per_sink_bytes_per_sec * n_active_sinks as f64;
        let flows_per_sec = total_bytes_per_sec / self.dist.mean_bytes();
        1e9 / flows_per_sec
    }
}

fn exp_sample(rng: &mut Pcg32, mean_ns: f64) -> u64 {
    let u: f64 = rng.next_f64();
    // Inverse transform; clamp u away from 1.0 to avoid ln(0).
    let u = u.min(1.0 - 1e-12);
    (-(1.0 - u).ln() * mean_ns).round() as u64
}

/// All-to-all: every flow picks a uniform random (src, dst) pair with
/// src ≠ dst. The aggregate arrival rate loads every host's receive link
/// at ρ in expectation. This is the paper's 15-to-15 testbed pattern and
/// its large-scale all-to-all pattern.
pub fn all_to_all(hosts: usize, spec: &WorkloadSpec) -> Vec<FlowSpec> {
    assert!(hosts >= 2);
    let mut rng = Pcg32::seed_from_u64(spec.seed);
    let mean_gap = spec.mean_interarrival_ns(hosts);
    let mut t = 0u64;
    let mut flows = Vec::with_capacity(spec.n_flows);
    for _ in 0..spec.n_flows {
        t += exp_sample(&mut rng, mean_gap);
        let src = rng.gen_index(hosts);
        let dst = loop {
            let d = rng.gen_index(hosts);
            if d != src {
                break d;
            }
        };
        let size = spec.dist.sample(&mut rng);
        let first_write = spec.write_model.first_write(size, &mut rng);
        flows.push(FlowSpec {
            src,
            dst,
            size_bytes: size,
            start: SimTime(t),
            first_write_bytes: first_write,
        });
    }
    flows
}

/// N-to-1 incast: `senders` hosts (indices `0..senders`) send to one sink
/// (index `senders`). Load is defined against the sink's downlink. This is
/// the paper's 14-to-1 testbed pattern and the §6.3.2 N-to-1 sweep.
pub fn incast(senders: usize, spec: &WorkloadSpec) -> Vec<FlowSpec> {
    assert!(senders >= 1);
    let mut rng = Pcg32::seed_from_u64(spec.seed);
    let mean_gap = spec.mean_interarrival_ns(1);
    let mut t = 0u64;
    let mut flows = Vec::with_capacity(spec.n_flows);
    for _ in 0..spec.n_flows {
        t += exp_sample(&mut rng, mean_gap);
        let src = rng.gen_index(senders);
        let size = spec.dist.sample(&mut rng);
        let first_write = spec.write_model.first_write(size, &mut rng);
        flows.push(FlowSpec {
            src,
            dst: senders,
            size_bytes: size,
            start: SimTime(t),
            first_write_bytes: first_write,
        });
    }
    flows
}

/// Synchronized incast burst: every sender starts one `size_bytes` flow to
/// the sink at t = 0 (plus a tiny stagger to keep the event order honest).
/// Used for the heavy-incast robustness sweep (Fig 23 uses Poisson traffic;
/// this gives the worst case).
pub fn incast_burst(senders: usize, size_bytes: u64, stagger_ns: u64) -> Vec<FlowSpec> {
    (0..senders)
        .map(|s| FlowSpec {
            src: s,
            dst: senders,
            size_bytes,
            start: SimTime(s as u64 * stagger_ns),
            first_write_bytes: size_bytes,
        })
        .collect()
}

/// Permutation: host i sends to host (i + 1) mod n, one flow each, all at
/// t = 0. A clean fabric-stress pattern for tests.
pub fn permutation(hosts: usize, size_bytes: u64) -> Vec<FlowSpec> {
    (0..hosts)
        .map(|s| FlowSpec {
            src: s,
            dst: (s + 1) % hosts,
            size_bytes,
            start: SimTime::ZERO,
            first_write_bytes: size_bytes,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec::new(SizeDistribution::web_search(), 0.5, Rate::gbps(10), n, seed)
    }

    #[test]
    fn all_to_all_is_deterministic_per_seed() {
        let a = all_to_all(16, &spec(500, 1));
        let b = all_to_all(16, &spec(500, 1));
        let c = all_to_all(16, &spec(500, 2));
        assert_eq!(a.len(), 500);
        assert!(a.iter().zip(&b).all(|(x, y)| x.start == y.start && x.size_bytes == y.size_bytes));
        assert!(a.iter().zip(&c).any(|(x, y)| x.start != y.start || x.size_bytes != y.size_bytes));
    }

    #[test]
    fn all_to_all_never_self_sends_and_arrivals_are_sorted() {
        let flows = all_to_all(4, &spec(2000, 3));
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert!(f.src < 4 && f.dst < 4);
        }
        for w in flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn offered_load_close_to_target() {
        // With n hosts and load 0.5, total bytes / duration should be about
        // 0.5 * n * edge capacity.
        let hosts = 8;
        let s = spec(20_000, 9);
        let flows = all_to_all(hosts, &s);
        let total_bytes: u64 = flows.iter().map(|f| f.size_bytes).sum();
        let duration_s = flows.last().unwrap().start.as_nanos() as f64 / 1e9;
        let offered = total_bytes as f64 / duration_s;
        let target = 0.5 * hosts as f64 * Rate::gbps(10).bytes_per_sec() as f64;
        let ratio = offered / target;
        assert!((0.85..1.15).contains(&ratio), "offered/target = {ratio}");
    }

    #[test]
    fn incast_targets_single_sink() {
        let flows = incast(14, &spec(1000, 5));
        assert!(flows.iter().all(|f| f.dst == 14 && f.src < 14));
    }

    #[test]
    fn incast_burst_synchronized() {
        let flows = incast_burst(32, 64_000, 10);
        assert_eq!(flows.len(), 32);
        assert_eq!(flows[0].start, SimTime::ZERO);
        assert_eq!(flows[31].start, SimTime(310));
        assert!(flows.iter().all(|f| f.size_bytes == 64_000 && f.dst == 32));
    }

    #[test]
    fn permutation_covers_all_hosts() {
        let flows = permutation(5, 1000);
        let mut dsts: Vec<usize> = flows.iter().map(|f| f.dst).collect();
        dsts.sort();
        assert_eq!(dsts, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "load must be in (0,1]")]
    fn zero_load_rejected() {
        WorkloadSpec::new(SizeDistribution::web_search(), 0.0, Rate::gbps(10), 1, 0);
    }
}
