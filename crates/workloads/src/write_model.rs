//! Application write behaviour: how much data the first send() syscall
//! copies into the TCP send buffer.
//!
//! PPT's buffer-aware identifier (§4.1) flags a flow as large when its
//! *first* syscall injects more than a threshold. The paper measures that
//! this catches 86.7 % of >1 KB Memcached flows and 84.3 % of >10 KB web
//! flows — i.e. real applications usually, but not always, hand the whole
//! message to the kernel at once. This model reproduces that behaviour:
//! with probability `full_write_prob` the application writes the entire
//! message in the first syscall; otherwise it writes in small chunks, so
//! the flow starts with a sub-threshold first write and must be caught by
//! PIAS-style aging instead.

use netsim::Pcg32;

/// Default probability that an application writes the whole message in the
/// first syscall (calibrated to the paper's 86.7 % identification rate).
pub const DEFAULT_FULL_WRITE_PROB: f64 = 0.867;

/// Default chunk size of incremental writers (a typical buffered-IO chunk).
pub const DEFAULT_CHUNK_BYTES: u64 = 512;

/// The application write model.
#[derive(Clone, Copy, Debug)]
pub struct AppWriteModel {
    /// Probability the first syscall carries the whole message.
    pub full_write_prob: f64,
    /// First-syscall size of incremental writers, bytes.
    pub chunk_bytes: u64,
}

impl Default for AppWriteModel {
    fn default() -> Self {
        AppWriteModel { full_write_prob: DEFAULT_FULL_WRITE_PROB, chunk_bytes: DEFAULT_CHUNK_BYTES }
    }
}

impl AppWriteModel {
    /// Every application writes its whole message at once (identification
    /// oracle — useful for ablations).
    pub fn always_full() -> Self {
        AppWriteModel { full_write_prob: 1.0, chunk_bytes: DEFAULT_CHUNK_BYTES }
    }

    /// Draw the first-syscall size for a flow of `size_bytes`.
    pub fn first_write(&self, size_bytes: u64, rng: &mut Pcg32) -> u64 {
        if size_bytes <= self.chunk_bytes || rng.next_f64() < self.full_write_prob {
            size_bytes
        } else {
            self.chunk_bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_write_fraction_matches_probability() {
        let m = AppWriteModel::default();
        let mut rng = Pcg32::seed_from_u64(11);
        let n = 50_000;
        let full = (0..n).filter(|_| m.first_write(1_000_000, &mut rng) == 1_000_000).count();
        let frac = full as f64 / n as f64;
        assert!((frac - DEFAULT_FULL_WRITE_PROB).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn tiny_flows_always_written_fully() {
        let m = AppWriteModel { full_write_prob: 0.0, chunk_bytes: 512 };
        let mut rng = Pcg32::seed_from_u64(1);
        assert_eq!(m.first_write(100, &mut rng), 100);
        assert_eq!(m.first_write(512, &mut rng), 512);
        assert_eq!(m.first_write(513, &mut rng), 512);
    }

    #[test]
    fn oracle_model_always_full() {
        let m = AppWriteModel::always_full();
        let mut rng = Pcg32::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.first_write(10_000_000, &mut rng), 10_000_000);
        }
    }
}
