//! The rule set. Per-file rules are token-level checks over masked
//! source (comments and literal bodies blanked — see [`crate::source`]),
//! sharpened by the brace-matched item tree ([`crate::items`]) so a rule
//! knows *where* a token sits: inside which fn, behind which
//! `#[cfg(test)]`, in which signature.

use std::collections::BTreeSet;
use std::path::Path;

use crate::source::{Directive, MaskedSource};
use crate::{FileClass, Violation};

/// Identifier of a lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock / entropy / unordered containers in engine-path crates.
    Determinism,
    /// `unwrap()` / `expect(` / `panic!` in library code.
    PanicHygiene,
    /// `==` / `!=` against a float literal.
    FloatCmp,
    /// Crate roots must carry `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// No allocation constructors inside `// simlint: hot-path` fences
    /// in `netsim` (the per-event engine path).
    HotPathAlloc,
    /// No shared-mutability primitives in DETERMINISM_CRATES: the
    /// planned sharded engine may only communicate via messages.
    SharedMut,
    /// Only the engine's own enqueue helpers may push to the event heap;
    /// everything else goes through the public `Ctx` API so the
    /// `(time, seq)` tie-break survives.
    EventOrder,
    /// Public fn signatures must use the time/rate newtypes instead of
    /// raw `u64`/`f64` where the parameter name says it is one.
    UnitSafety,
    /// No hand-rolled `TIMER_RTO` arm/service blocks outside
    /// `transports::common` (locks in the PR 4 dedupe).
    RtoCommon,
    /// `assert!` / `debug_assert!` in determinism crates must carry a
    /// message string: a bare boolean tells a crash report nothing.
    AssertMsg,
    /// An `allow(...)` pragma that suppresses nothing is itself a
    /// violation, so the pragma count ratchets down.
    PragmaHygiene,
    /// Paper constants must match DESIGN.md (checked workspace-wide).
    PaperConstants,
    /// Every `TraceEvent` variant must have a JSONL encoder arm
    /// (checked workspace-wide).
    TraceSchema,
}

/// Every per-file rule, in execution order. `pragma_hygiene` must run
/// last: it audits the suppressions the other rules recorded.
pub const ALL_RULES: &[Rule] = &[
    Rule::Determinism,
    Rule::PanicHygiene,
    Rule::FloatCmp,
    Rule::ForbidUnsafe,
    Rule::HotPathAlloc,
    Rule::SharedMut,
    Rule::EventOrder,
    Rule::UnitSafety,
    Rule::RtoCommon,
    Rule::AssertMsg,
    Rule::PragmaHygiene,
];

/// The complete rule table (per-file + workspace-level), for
/// `--list-rules` and the DESIGN.md §12 sync check.
pub const RULE_TABLE: &[Rule] = &[
    Rule::Determinism,
    Rule::PanicHygiene,
    Rule::FloatCmp,
    Rule::ForbidUnsafe,
    Rule::HotPathAlloc,
    Rule::SharedMut,
    Rule::EventOrder,
    Rule::UnitSafety,
    Rule::RtoCommon,
    Rule::AssertMsg,
    Rule::PragmaHygiene,
    Rule::PaperConstants,
    Rule::TraceSchema,
];

impl Rule {
    /// Stable rule id used in output and `allow(...)` pragmas.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicHygiene => "panic_hygiene",
            Rule::FloatCmp => "float_cmp",
            Rule::ForbidUnsafe => "forbid_unsafe",
            Rule::HotPathAlloc => "hot_path_alloc",
            Rule::SharedMut => "shared_mut",
            Rule::EventOrder => "event_order",
            Rule::UnitSafety => "unit_safety",
            Rule::RtoCommon => "rto_common",
            Rule::AssertMsg => "assert_msg",
            Rule::PragmaHygiene => "pragma_hygiene",
            Rule::PaperConstants => "paper_constants",
            Rule::TraceSchema => "trace_schema",
        }
    }

    /// Resolve a rule id (as written in an `allow(...)` pragma).
    pub fn from_id(id: &str) -> Option<Rule> {
        RULE_TABLE.iter().copied().find(|r| r.id() == id)
    }

    /// One-line description for `--list-rules` and SARIF metadata.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::Determinism => {
                "no wall-clock/entropy sources or unordered containers in engine-path crates"
            }
            Rule::PanicHygiene => "no unwrap()/expect()/panic! in library code",
            Rule::FloatCmp => "no ==/!= against a floating-point literal",
            Rule::ForbidUnsafe => "every crate root carries #![forbid(unsafe_code)]",
            Rule::HotPathAlloc => {
                "no allocation constructors inside hot-path fences in netsim"
            }
            Rule::SharedMut => {
                "no shared-mutability primitives in determinism crates; shards talk via messages"
            }
            Rule::EventOrder => {
                "only engine enqueue helpers push the event heap; the (time, seq) tie-break is sacred"
            }
            Rule::UnitSafety => {
                "public fns take SimTime/SimDuration/Rate newtypes, not raw u64/f64 time or rate"
            }
            Rule::RtoCommon => {
                "no hand-rolled TIMER_RTO handling outside transports::common"
            }
            Rule::AssertMsg => {
                "assert!/debug_assert! in determinism crates carry a message naming the invariant"
            }
            Rule::PragmaHygiene => "an allow(...) pragma that suppresses nothing is a violation",
            Rule::PaperConstants => "paper constants match DESIGN.md (lambda pair, EWD ACK ratio)",
            Rule::TraceSchema => "every TraceEvent variant has a kind() arm and a JSONL encoder arm",
        }
    }

    /// Run this rule over one masked file.
    pub fn check(self, rel_path: &str, class: FileClass, src: &MaskedSource, f: &mut Findings) {
        match self {
            Rule::Determinism => check_determinism(rel_path, class, src, f),
            Rule::PanicHygiene => check_panic_hygiene(rel_path, class, src, f),
            Rule::FloatCmp => check_float_cmp(rel_path, class, src, f),
            Rule::ForbidUnsafe => check_forbid_unsafe(rel_path, class, src, f),
            Rule::HotPathAlloc => check_hot_path_alloc(rel_path, class, src, f),
            Rule::SharedMut => check_shared_mut(rel_path, class, src, f),
            Rule::EventOrder => check_event_order(rel_path, class, src, f),
            Rule::UnitSafety => check_unit_safety(rel_path, class, src, f),
            Rule::RtoCommon => check_rto_common(rel_path, class, src, f),
            Rule::AssertMsg => check_assert_msg(rel_path, class, src, f),
            Rule::PragmaHygiene => check_pragma_hygiene(rel_path, class, src, f),
            Rule::PaperConstants | Rule::TraceSchema => {}
        }
    }
}

/// Violations accumulated over one file, plus which `allow(...)` pragma
/// entries actually suppressed something — `pragma_hygiene` audits the
/// rest.
#[derive(Default)]
pub struct Findings {
    pub violations: Vec<Violation>,
    used_allows: BTreeSet<(usize, String)>,
}

impl Findings {
    pub fn new() -> Self {
        Self::default()
    }

    fn push(
        &mut self,
        src: &MaskedSource,
        rel_path: &str,
        line_no: usize,
        rule: Rule,
        message: String,
    ) {
        if let Some(pragma_line) = src.allow_pragma_line(line_no, rule.id()) {
            self.used_allows.insert((pragma_line, rule.id().to_owned()));
            return;
        }
        self.violations.push(Violation { file: rel_path.to_owned(), line: line_no, rule, message });
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Find `needle` in `line` at identifier boundaries (the char before the
/// match and the char after must not be identifier characters).
fn token_positions(line: &str, needle: &str) -> Vec<usize> {
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let before_ok = line[..at].chars().next_back().is_none_or(|c| !is_ident_char(c));
        let after_ok = line[at + needle.len()..].chars().next().is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            found.push(at);
        }
        from = at + needle.len();
    }
    found
}

/// Is there an identifier `name` immediately followed (modulo spaces) by
/// `next_ch` on this line? Used for `unwrap(` / `expect(` / `panic!`.
fn ident_followed_by(line: &str, name: &str, next_ch: char) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let at = from + pos;
        let before_ok = line[..at].chars().next_back().is_none_or(|c| !is_ident_char(c));
        let rest = &line[at + name.len()..];
        let follows = rest.trim_start().starts_with(next_ch);
        let boundary = rest.chars().next().is_none_or(|c| !is_ident_char(c));
        if before_ok && boundary && follows {
            return true;
        }
        from = at + name.len();
    }
    false
}

/// Tokens that leak wall-clock time or process entropy into results,
/// plus the unordered containers whose iteration order is per-process.
const NONDETERMINISM_TOKENS: &[(&str, &str)] = &[
    ("Instant", "std::time::Instant reads the wall clock"),
    ("SystemTime", "std::time::SystemTime reads the wall clock"),
    ("thread_rng", "thread_rng draws process entropy"),
    ("from_entropy", "from_entropy draws process entropy"),
    ("HashMap", "HashMap iteration order is per-process; use BTreeMap"),
    ("HashSet", "HashSet iteration order is per-process; use BTreeSet"),
];

fn check_determinism(rel_path: &str, class: FileClass, src: &MaskedSource, f: &mut Findings) {
    if !class.in_determinism_scope {
        return;
    }
    for (idx, line) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        if src.is_test(line_no) {
            continue;
        }
        for &(tok, why) in NONDETERMINISM_TOKENS {
            if !token_positions(line, tok).is_empty() {
                f.push(src, rel_path, line_no, Rule::Determinism, format!("`{tok}`: {why}"));
            }
        }
    }
}

fn check_panic_hygiene(rel_path: &str, class: FileClass, src: &MaskedSource, f: &mut Findings) {
    if !class.is_library {
        return;
    }
    for (idx, line) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        if src.is_test(line_no) {
            continue;
        }
        if ident_followed_by(line, "unwrap", '(') {
            f.push(
                src,
                rel_path,
                line_no,
                Rule::PanicHygiene,
                "unwrap() in library code; handle the None/Err or annotate why it cannot occur"
                    .into(),
            );
        }
        if ident_followed_by(line, "expect", '(') {
            f.push(
                src,
                rel_path,
                line_no,
                Rule::PanicHygiene,
                "expect() in library code; handle the None/Err or annotate why it cannot occur"
                    .into(),
            );
        }
        if ident_followed_by(line, "panic", '!') {
            f.push(
                src,
                rel_path,
                line_no,
                Rule::PanicHygiene,
                "panic! in library code; return an error or annotate the invariant".into(),
            );
        }
    }
}

/// A float literal token: starts with a digit, contains a `.` between
/// digits (`1.0`, `0.17`, `1_000.5`) or carries an f32/f64 suffix.
fn is_float_literal(tok: &str) -> bool {
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let has_dot = tok.contains('.');
    let has_suffix = tok.ends_with("f32") || tok.ends_with("f64");
    let body: String =
        tok.trim_end_matches("f32").trim_end_matches("f64").chars().filter(|&c| c != '_').collect();
    if !(has_dot || has_suffix) {
        return false;
    }
    body.chars().all(|c| c.is_ascii_digit() || c == '.' || c == 'e' || c == '-')
}

/// The token just right of byte position `at` in `line`.
fn token_right(line: &str, at: usize) -> String {
    line[at..].trim_start().chars().take_while(|&c| is_ident_char(c) || c == '.').collect()
}

/// The token just left of byte position `at` in `line`.
fn token_left(line: &str, at: usize) -> String {
    let left = line[..at].trim_end();
    let rev: String = left.chars().rev().take_while(|&c| is_ident_char(c) || c == '.').collect();
    rev.chars().rev().collect()
}

fn check_float_cmp(rel_path: &str, class: FileClass, src: &MaskedSource, f: &mut Findings) {
    if !class.is_library {
        return;
    }
    for (idx, line) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        if src.is_test(line_no) {
            continue;
        }
        let bytes = line.as_bytes();
        for i in 0..bytes.len().saturating_sub(1) {
            let two = &line[i..(i + 2).min(line.len())];
            let is_eq = two == "==" || two == "!=";
            if !is_eq {
                continue;
            }
            // Exclude <=, >=, ===, =>, pattern arms and compound ops.
            let prev = line[..i].chars().next_back();
            let next = line[i + 2..].chars().next();
            if matches!(
                prev,
                Some('<' | '>' | '=' | '!' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^')
            ) || matches!(next, Some('='))
            {
                continue;
            }
            let lhs = token_left(line, i);
            let rhs = token_right(line, i + 2);
            if is_float_literal(&lhs) || is_float_literal(&rhs) {
                f.push(
                    src,
                    rel_path,
                    line_no,
                    Rule::FloatCmp,
                    format!(
                        "float compared with `{two}` (`{}` {two} `{}`); use an epsilon or integer representation",
                        if lhs.is_empty() { "…" } else { &lhs },
                        if rhs.is_empty() { "…" } else { &rhs },
                    ),
                );
            }
        }
    }
}

fn check_forbid_unsafe(rel_path: &str, class: FileClass, src: &MaskedSource, f: &mut Findings) {
    if !class.is_crate_root {
        return;
    }
    let compact: String = src.masked.chars().filter(|c| !c.is_whitespace()).collect();
    if !compact.contains("#![forbid(unsafe_code)]") {
        f.push(
            src,
            rel_path,
            1,
            Rule::ForbidUnsafe,
            "crate root is missing `#![forbid(unsafe_code)]`".into(),
        );
    }
}

/// Allocation constructors that must not appear on the per-event engine
/// path: each would hit the global allocator once per simulated event.
/// The pool / scratch-buffer reuse in `engine.rs` exists precisely to
/// avoid these; this rule keeps later edits from quietly regressing it.
fn hot_path_alloc_hit(line: &str) -> Option<&'static str> {
    if !token_positions(line, "Box::new").is_empty() {
        return Some("Box::new");
    }
    if !token_positions(line, "Vec::new").is_empty() {
        return Some("Vec::new");
    }
    if ident_followed_by(line, "vec", '!') {
        return Some("vec!");
    }
    if ident_followed_by(line, "to_vec", '(') {
        return Some("to_vec()");
    }
    None
}

fn check_hot_path_alloc(rel_path: &str, class: FileClass, src: &MaskedSource, f: &mut Findings) {
    if !rel_path.starts_with("crates/netsim/") || !class.is_library {
        return;
    }
    // Fence markers are pragmas (parsed from real comments only — a
    // string literal containing the marker text cannot open a fence).
    let mut fences = src
        .pragmas
        .iter()
        .filter(|p| matches!(p.directive, Directive::HotPathOpen | Directive::HotPathClose));
    let mut next_fence = fences.next();
    let mut fence_open_at: Option<usize> = None;
    for (idx, _) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        if let Some(p) = next_fence {
            if p.line == line_no {
                fence_open_at = match p.directive {
                    Directive::HotPathOpen => Some(line_no),
                    _ => None,
                };
                next_fence = fences.next();
                continue;
            }
        }
        if fence_open_at.is_none() || src.is_test(line_no) {
            continue;
        }
        if let Some(tok) = hot_path_alloc_hit(&src.lines[idx]) {
            f.push(
                src,
                rel_path,
                line_no,
                Rule::HotPathAlloc,
                format!(
                    "`{tok}` allocates inside a hot-path fence; reuse a pooled or scratch buffer"
                ),
            );
        }
    }
    // An unclosed fence is almost certainly a typo'd end marker — and it
    // would silently extend the banned region to end-of-file.
    if let Some(open_line) = fence_open_at {
        f.push(
            src,
            rel_path,
            open_line,
            Rule::HotPathAlloc,
            "hot-path fence is never closed by a hot-path-end marker".into(),
        );
    }
}

/// Shared-mutability primitives: each one lets two shards observe the
/// same memory, which the planned sharded PDES engine forbids (shards
/// exchange messages; merge order is deterministic).
const SHARED_MUT_TOKENS: &[&str] = &[
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "LazyCell",
    "Mutex",
    "RwLock",
    "Condvar",
    "OnceLock",
    "LazyLock",
];

/// Any identifier on the line starting with `Atomic` (AtomicU64, …).
fn atomic_ident(line: &str) -> Option<String> {
    let mut chars = line.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if !is_ident_char(c) || c.is_ascii_digit() {
            continue;
        }
        if i > 0 && line[..i].chars().next_back().is_some_and(is_ident_char) {
            continue;
        }
        let ident: String = line[i..].chars().take_while(|&c| is_ident_char(c)).collect();
        if ident.starts_with("Atomic") && ident.len() > "Atomic".len() {
            return Some(ident);
        }
        for _ in 1..ident.chars().count() {
            chars.next();
        }
    }
    None
}

fn check_shared_mut(rel_path: &str, class: FileClass, src: &MaskedSource, f: &mut Findings) {
    if !class.in_determinism_scope {
        return;
    }
    for (idx, line) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        if src.is_test(line_no) {
            continue;
        }
        for &tok in SHARED_MUT_TOKENS {
            if !token_positions(line, tok).is_empty() {
                f.push(
                    src,
                    rel_path,
                    line_no,
                    Rule::SharedMut,
                    format!(
                        "`{tok}` is shared mutable state; shards may only communicate via messages"
                    ),
                );
            }
        }
        if let Some(atomic) = atomic_ident(line) {
            f.push(
                src,
                rel_path,
                line_no,
                Rule::SharedMut,
                format!(
                    "`{atomic}` is shared mutable state; shards may only communicate via messages"
                ),
            );
        }
        for at in token_positions(line, "static") {
            if token_right(line, at + "static".len()) == "mut" {
                f.push(
                    src,
                    rel_path,
                    line_no,
                    Rule::SharedMut,
                    "`static mut` is shared mutable state; shards may only communicate via messages"
                        .into(),
                );
            }
        }
    }
}

/// The file that drives the event loop (and may requeue entries).
const ENGINE_FILE: &str = "crates/netsim/src/engine.rs";
/// The file that owns the queue implementations (heap oracle + calendar).
const SCHED_FILE: &str = "crates/netsim/src/sched.rs";
/// Fns inside `engine.rs` allowed to push the queue: the enqueue helper
/// and the run loop's requeue (both preserve the `(time, seq)` seq
/// assignment that makes same-timestamp delivery FIFO).
const ENGINE_PUSH_FNS: &[&str] = &["schedule", "run"];
/// Fns inside `sched.rs` allowed to push: the `EventQueue::push`
/// implementations plus the internal redistribution helpers that move
/// entries between tiers without minting new `(time, seq)` keys.
const SCHED_PUSH_FNS: &[&str] = &["push", "promote", "rewind"];

fn check_event_order(rel_path: &str, class: FileClass, src: &MaskedSource, f: &mut Findings) {
    if !class.in_determinism_scope {
        return;
    }
    // Which fns (if any) in this file are sanctioned event-queue pushers.
    let sanctioned: Option<&[&str]> = if rel_path == ENGINE_FILE {
        Some(ENGINE_PUSH_FNS)
    } else if rel_path == SCHED_FILE {
        Some(SCHED_PUSH_FNS)
    } else {
        None
    };
    for (idx, line) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        if src.is_test(line_no) {
            continue;
        }
        if sanctioned.is_none() {
            for tok in ["BinaryHeap", "QEntry"] {
                if !token_positions(line, tok).is_empty() {
                    f.push(
                        src,
                        rel_path,
                        line_no,
                        Rule::EventOrder,
                        format!(
                            "`{tok}` outside the scheduler core: the event queue and its (time, seq) tie-break live in netsim's sched/engine; schedule via the Ctx API"
                        ),
                    );
                }
            }
        }
        for tok in ["heap.push", "queue.push"] {
            if token_positions(line, tok).is_empty() {
                continue;
            }
            let fn_name = src.items.enclosing_fn(line_no).map(|i| i.name.as_str());
            let allowed = sanctioned.is_some_and(|fns| fn_name.is_some_and(|n| fns.contains(&n)));
            if !allowed {
                f.push(
                    src,
                    rel_path,
                    line_no,
                    Rule::EventOrder,
                    format!(
                        "direct event-queue push in `{}`: only the scheduler core's sanctioned fns (engine: {}; sched: {}) may push, so every event gets its (time, seq) tie-break",
                        fn_name.unwrap_or("<file scope>"),
                        ENGINE_PUSH_FNS.join("/"),
                        SCHED_PUSH_FNS.join("/"),
                    ),
                );
            }
        }
    }
}

/// Files that *define* the unit newtypes are exempt from `unit_safety`
/// (their constructors necessarily take the raw representation).
const UNIT_SAFETY_EXEMPT: &[&str] = &["crates/netsim/src/time.rs", "crates/netsim/src/units.rs"];

/// Map a raw-typed parameter name to the newtype it should be using.
fn unit_suggestion(name: &str) -> Option<&'static str> {
    const TIME_SUFFIXES: &[&str] = &["_ns", "_us", "_ms", "_nanos", "_micros", "_millis", "_secs"];
    const TIME_EXACT: &[&str] =
        &["at", "now", "rtt", "deadline", "timeout", "interval", "delay", "elapsed"];
    const RATE_SUFFIXES: &[&str] = &["_bps", "_mbps", "_gbps"];
    if TIME_SUFFIXES.iter().any(|s| name.ends_with(s)) || TIME_EXACT.contains(&name) {
        return Some("netsim::time::SimTime / SimDuration");
    }
    if RATE_SUFFIXES.iter().any(|s| name.ends_with(s)) || name == "rate" {
        return Some("netsim::units::Rate");
    }
    None
}

fn check_unit_safety(rel_path: &str, class: FileClass, src: &MaskedSource, f: &mut Findings) {
    if !class.is_library || UNIT_SAFETY_EXEMPT.contains(&rel_path) {
        return;
    }
    let in_scope = ["crates/netsim/", "crates/core/", "crates/transports/"]
        .iter()
        .any(|p| rel_path.starts_with(p));
    if !in_scope {
        return;
    }
    for item in src.items.fns() {
        if !item.is_pub || item.cfg_test || src.is_test(item.decl_line) {
            continue;
        }
        for p in &item.params {
            if p.ty != "u64" && p.ty != "f64" {
                continue;
            }
            if let Some(suggest) = unit_suggestion(&p.name) {
                f.push(
                    src,
                    rel_path,
                    item.decl_line,
                    Rule::UnitSafety,
                    format!(
                        "pub fn `{}` takes `{}: {}`; use `{suggest}` so the unit is type-checked",
                        item.name, p.name, p.ty
                    ),
                );
            }
        }
    }
}

/// Files allowed to arm/service RTO timers directly: `common.rs` owns
/// the shared machinery; `tcp_base.rs` owns the per-flow state machine
/// it drives.
const RTO_OWNER_FILES: &[&str] =
    &["crates/transports/src/common.rs", "crates/transports/src/tcp_base.rs"];

fn check_rto_common(rel_path: &str, class: FileClass, src: &MaskedSource, f: &mut Findings) {
    if !rel_path.starts_with("crates/transports/src/")
        || !class.is_library
        || RTO_OWNER_FILES.contains(&rel_path)
    {
        return;
    }
    for (idx, line) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        if src.is_test(line_no) {
            continue;
        }
        if ident_followed_by(line, "rto_token", '(') {
            f.push(
                src,
                rel_path,
                line_no,
                Rule::RtoCommon,
                "hand-rolled RTO token; arm the timer via transports::common::arm_rto".into(),
            );
        }
        if line.contains(".on_rto(") {
            f.push(
                src,
                rel_path,
                line_no,
                Rule::RtoCommon,
                "direct on_rto call skips the stale-generation check; use transports::common::service_rto"
                    .into(),
            );
        }
        let trimmed = line.trim_start();
        let is_use_line = trimmed.starts_with("use ") || trimmed.starts_with("pub use ");
        for at in token_positions(line, "TIMER_RTO") {
            if is_use_line {
                continue;
            }
            let right = line[at + "TIMER_RTO".len()..].trim_start();
            let left = line[..at].trim_end();
            let in_match_arm = right.starts_with("=>");
            let in_comparison = right.starts_with("==")
                || right.starts_with("!=")
                || left.ends_with("==")
                || left.ends_with("!=");
            if !(in_match_arm || in_comparison) {
                f.push(
                    src,
                    rel_path,
                    line_no,
                    Rule::RtoCommon,
                    "hand-rolled TIMER_RTO handling; route through transports::common::{arm_rto, service_rto}"
                        .into(),
                );
            }
        }
    }
}

/// Does the `assert!`-family invocation opening right of `(line_idx,
/// from)` carry a message string? Scans the masked lines from the
/// macro's own delimiter, tracking bracket depth; a message is present
/// iff a `"` appears after a depth-1 comma (masking keeps the quote
/// delimiters, so a string literal anywhere in the trailing arguments —
/// plain or format — is visible as its quotes). `assert_eq!`-style
/// two-argument macros never reach here: the caller token-matches only
/// `assert` / `debug_assert` at identifier boundaries.
fn assert_has_message(lines: &[String], line_idx: usize, from: usize) -> bool {
    let mut depth = 0i32;
    let mut opened = false;
    let mut past_first_comma = false;
    for (li, line) in lines.iter().enumerate().skip(line_idx) {
        let text = if li == line_idx { &line[from..] } else { line.as_str() };
        for c in text.chars() {
            match c {
                '(' | '[' | '{' => {
                    depth += 1;
                    opened = true;
                }
                ')' | ']' | '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return false;
                    }
                }
                ',' if depth == 1 => past_first_comma = true,
                '"' if past_first_comma => return true,
                _ => {}
            }
        }
        // The macro bang was never followed by a delimiter on this or
        // the starting line: nothing to scan.
        if !opened && li > line_idx {
            return false;
        }
    }
    false
}

fn check_assert_msg(rel_path: &str, class: FileClass, src: &MaskedSource, f: &mut Findings) {
    if !class.in_determinism_scope {
        return;
    }
    for (idx, line) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        if src.is_test(line_no) {
            continue;
        }
        for name in ["assert", "debug_assert"] {
            for at in token_positions(line, name) {
                let after = at + name.len();
                if !line[after..].trim_start().starts_with('!') {
                    continue;
                }
                if !assert_has_message(&src.lines, idx, after) {
                    f.push(
                        src,
                        rel_path,
                        line_no,
                        Rule::AssertMsg,
                        format!(
                            "`{name}!` without a message; say which invariant broke (and with what values)"
                        ),
                    );
                }
            }
        }
    }
}

fn check_pragma_hygiene(rel_path: &str, _class: FileClass, src: &MaskedSource, f: &mut Findings) {
    for p in &src.pragmas {
        if src.is_test(p.line) {
            continue;
        }
        match &p.directive {
            Directive::Allow(rules) => {
                for r in rules {
                    // `allow(pragma_hygiene)` is the documented escape
                    // hatch for keeping a currently-unused pragma.
                    if r == Rule::PragmaHygiene.id() {
                        continue;
                    }
                    if Rule::from_id(r).is_none() {
                        f.push(
                            src,
                            rel_path,
                            p.line,
                            Rule::PragmaHygiene,
                            format!("`allow({r})`: unknown rule id"),
                        );
                    } else if !f.used_allows.contains(&(p.line, r.clone())) {
                        f.push(
                            src,
                            rel_path,
                            p.line,
                            Rule::PragmaHygiene,
                            format!("`allow({r})` suppresses nothing; remove the stale pragma"),
                        );
                    }
                }
            }
            Directive::Unknown(text) => {
                f.push(
                    src,
                    rel_path,
                    p.line,
                    Rule::PragmaHygiene,
                    format!("unknown simlint directive `{text}`"),
                );
            }
            Directive::HotPathOpen | Directive::HotPathClose => {}
        }
    }
}

/// Parse `pub const NAME: ty = value;` out of masked-free raw text.
fn const_value(text: &str, name: &str) -> Option<f64> {
    let pos = text.find(&format!("const {name}:"))?;
    let rest = &text[pos..];
    let eq = rest.find('=')?;
    let semi = rest.find(';')?;
    if semi <= eq {
        return None;
    }
    let value_text: String =
        rest[eq + 1..semi].chars().filter(|&c| c.is_ascii_digit() || c == '.').collect();
    value_text.parse().ok()
}

/// Rule `paper_constants`: λ_LCP = 0.1 < λ_HCP = 0.17 (Eq. 3 of the
/// paper, encoded in `crates/core/src/ecn.rs`) and the EWD receiver's
/// 1-low-priority-ACK-per-2-LCP-packets constant
/// (`LCP_PACKETS_PER_ACK = 2` in `crates/core/src/lcp.rs`), both of
/// which DESIGN.md documents as normative.
pub fn check_paper_constants(root: &Path, out: &mut Vec<Violation>) {
    let ecn_path = "crates/core/src/ecn.rs";
    let lcp_path = "crates/core/src/lcp.rs";
    let mut fail = |file: &str, message: String| {
        out.push(Violation { file: file.to_owned(), line: 1, rule: Rule::PaperConstants, message });
    };

    match std::fs::read_to_string(root.join(ecn_path)) {
        Ok(text) => {
            let hi = const_value(&text, "LAMBDA_HIGH");
            let lo = const_value(&text, "LAMBDA_LOW");
            match (hi, lo) {
                (Some(hi), Some(lo)) => {
                    // Integer-scaled comparison: the float_cmp rule applies
                    // to us too.
                    let (hi_m, lo_m) = ((hi * 1000.0) as i64, (lo * 1000.0) as i64);
                    if hi_m != 170 {
                        fail(ecn_path, format!("LAMBDA_HIGH = {hi}, paper Eq. 3 requires 0.17"));
                    }
                    if lo_m != 100 {
                        fail(ecn_path, format!("LAMBDA_LOW = {lo}, paper Eq. 3 requires 0.1"));
                    }
                    if lo_m >= hi_m {
                        fail(
                            ecn_path,
                            format!("LAMBDA_LOW ({lo}) must stay below LAMBDA_HIGH ({hi})"),
                        );
                    }
                }
                _ => fail(ecn_path, "LAMBDA_HIGH / LAMBDA_LOW constants not found".into()),
            }
        }
        Err(e) => fail(ecn_path, format!("unreadable: {e}")),
    }

    match std::fs::read_to_string(root.join(lcp_path)) {
        Ok(text) => match const_value(&text, "LCP_PACKETS_PER_ACK") {
            Some(v) => {
                if v as i64 != 2 {
                    fail(
                        lcp_path,
                        format!("LCP_PACKETS_PER_ACK = {v}, EWD requires 1 ACK per 2 LCP packets"),
                    );
                }
            }
            None => fail(lcp_path, "LCP_PACKETS_PER_ACK constant not found".into()),
        },
        Err(e) => fail(lcp_path, format!("unreadable: {e}")),
    }

    // PptConfig's defaults must be wired to the named ecn constants, not
    // re-encoded as literals that could drift independently.
    let cfg_path = "crates/core/src/config.rs";
    match std::fs::read_to_string(root.join(cfg_path)) {
        Ok(text) => {
            let masked = MaskedSource::new(&text);
            for name in ["LAMBDA_HIGH", "LAMBDA_LOW"] {
                let referenced =
                    masked.lines.iter().enumerate().any(|(i, l)| {
                        !masked.is_test(i + 1) && !token_positions(l, name).is_empty()
                    });
                if !referenced {
                    fail(
                        cfg_path,
                        format!("PptConfig must derive its lambda defaults from ecn::{name}"),
                    );
                }
            }
        }
        Err(e) => fail(cfg_path, format!("unreadable: {e}")),
    }
}

/// Rule `trace_schema`: every variant of the `TraceEvent` enum must have
/// a matching `TraceEvent::<Variant>` encoder arm inside `encode_line`
/// (`crates/trace/src/event.rs`). A variant without an arm would compile
/// fine — `encode_line`'s match is total only because the rustc
/// exhaustiveness check covers the *enum*, not the JSONL schema — but
/// its events would be missing from every events.jsonl on disk.
pub fn check_trace_schema(root: &Path, out: &mut Vec<Violation>) {
    let path = "crates/trace/src/event.rs";
    let mut fail = |line: usize, message: String| {
        out.push(Violation { file: path.to_owned(), line, rule: Rule::TraceSchema, message });
    };
    let text = match std::fs::read_to_string(root.join(path)) {
        Ok(t) => t,
        Err(e) => {
            fail(1, format!("unreadable: {e}"));
            return;
        }
    };
    let masked = MaskedSource::new(&text);

    // Variants: lines at brace depth 1 inside `pub enum TraceEvent`
    // starting with an uppercase identifier.
    let mut variants: Vec<(usize, String)> = Vec::new();
    let mut in_enum = false;
    let mut depth = 0i32;
    for (idx, line) in masked.lines.iter().enumerate() {
        if !in_enum {
            if line.contains("enum") && !token_positions(line, "TraceEvent").is_empty() {
                in_enum = true;
                depth = 0;
            } else {
                continue;
            }
        } else if depth == 1 {
            let trimmed = line.trim_start();
            if trimmed.starts_with(|c: char| c.is_ascii_uppercase()) {
                let name: String = trimmed.chars().take_while(|&c| is_ident_char(c)).collect();
                variants.push((idx + 1, name));
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if depth == 0 && line.contains('}') {
            break;
        }
    }
    if variants.is_empty() {
        fail(1, "no `pub enum TraceEvent` variants found".into());
        return;
    }

    // Brace-counted body of a named fn: from the first line containing
    // `needle` until depth returns to zero. Works for free fns and for
    // methods nested inside an impl block.
    let fn_body = |needle: &str| -> Option<&[String]> {
        let start = masked.lines.iter().position(|l| l.contains(needle))?;
        let mut depth = 0i32;
        let mut opened = false;
        for (off, line) in masked.lines[start..].iter().enumerate() {
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth == 0 {
                return Some(&masked.lines[start..start + off + 1]);
            }
        }
        Some(&masked.lines[start..])
    };

    // Every variant needs an arm in both halves of the schema: `kind()`
    // (the stable event-kind string, used for filtering and the SAMPLES
    // gallery) and `encode_line` (the JSONL encoder). `Sample`/`Profile`
    // style additions that only patch one of the two are exactly the
    // drift this rule exists to catch.
    for (fn_name, missing_what) in [
        ("fn kind", "kind() arm; its event-kind string would be unnameable"),
        ("fn encode_line", "encoder arm in encode_line; events.jsonl would drop it"),
    ] {
        let Some(body) = fn_body(fn_name) else {
            fail(1, format!("`{fn_name}` not found"));
            continue;
        };
        for (line_no, v) in &variants {
            let needle = format!("TraceEvent::{v}");
            let covered = body.iter().any(|l| !token_positions(l, &needle).is_empty());
            if !covered {
                fail(*line_no, format!("`{needle}` has no {missing_what}"));
            }
        }
    }
}
