//! Brace-matched item tree over masked source.
//!
//! The lexer below turns a [`crate::MaskedSource`]'s masked text into a
//! token stream (identifiers + significant punctuation, literals already
//! blanked), and the parser folds that stream into a flat vector of
//! [`Item`]s with parent links: modules, functions, impl blocks, type
//! definitions and `use` declarations, each with its attribute span,
//! declaration line and matched closing-brace line. Rules use the tree to
//! reason about *where* a token appears — inside which fn, behind which
//! `#[cfg(test)]`, with which visibility — instead of per-line guesses.
//!
//! The parser is deliberately not a full Rust grammar: it recognizes item
//! keywords only at item anchors (start of file, `{`, `}`, `;`, or the
//! close of an attribute), skipping modifier tokens (`pub`, `pub(crate)`,
//! `const fn`, `async`, `extern "C"`, …), and consumes fn signatures
//! token-by-token so keywords inside parameter lists (`impl Trait`) never
//! reach the item detector. Everything it does not understand is treated
//! as an opaque brace-balanced blob, which keeps spans correct even when
//! classification is imperfect.

use std::fmt;

/// What kind of item a tree node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`
    Module,
    /// `fn name(…) { … }` or a bodyless trait method `fn name(…);`
    Fn,
    /// `impl … { … }`
    Impl,
    /// `struct` / `enum` / `trait` definition.
    TypeDef,
    /// `use path::to::Thing;`
    Use,
    /// `const` / `static` / `type` item.
    Decl,
}

/// One parsed parameter of a fn signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Binding name (`mut` stripped); empty for pattern params.
    pub name: String,
    /// Canonical type text (tokens joined, e.g. `u64`, `&mut Ctx<'_,P>`).
    pub ty: String,
}

/// One node of the item tree.
#[derive(Clone, Debug)]
pub struct Item {
    pub kind: ItemKind,
    /// Fn/mod/type name; `use` path text; impl header text.
    pub name: String,
    /// Declared `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Behind `#[cfg(test)]` / `#[test]`, directly or via a parent.
    pub cfg_test: bool,
    /// First attribute line, or the declaration line when unattributed.
    pub attr_line: usize,
    /// Line of the item keyword.
    pub decl_line: usize,
    /// Line of the matching `}` (or the `;` for bodyless items).
    pub end_line: usize,
    /// Index of the enclosing item, if any.
    pub parent: Option<usize>,
    /// Fns only: parsed parameter list.
    pub params: Vec<Param>,
}

impl Item {
    /// Does the (1-based) line fall in this item's span (attributes
    /// included)?
    pub fn contains(&self, line: usize) -> bool {
        self.attr_line <= line && line <= self.end_line
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} `{}` @{}..{}", self.kind, self.name, self.decl_line, self.end_line)
    }
}

/// The parsed item tree of one file.
#[derive(Clone, Debug, Default)]
pub struct ItemTree {
    /// Items in source order. Parents always precede children.
    pub items: Vec<Item>,
}

impl ItemTree {
    /// Innermost item containing `line` (1-based), if any.
    pub fn enclosing(&self, line: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|it| it.contains(line))
            .min_by_key(|it| it.end_line.saturating_sub(it.attr_line))
    }

    /// Innermost *fn* containing `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|it| it.kind == ItemKind::Fn && it.contains(line))
            .min_by_key(|it| it.end_line.saturating_sub(it.attr_line))
    }

    /// All fn items.
    pub fn fns(&self) -> impl Iterator<Item = &Item> {
        self.items.iter().filter(|it| it.kind == ItemKind::Fn)
    }

    /// All `use` declarations — the file's import graph. `name` holds the
    /// canonical path text (`std::cell::RefCell`, `crate::common::{a, b}`).
    pub fn uses(&self) -> impl Iterator<Item = &Item> {
        self.items.iter().filter(|it| it.kind == ItemKind::Use)
    }

    /// Is `line` inside a `#[cfg(test)]`/`#[test]` item (attribute line
    /// through closing brace)?
    pub fn is_test_line(&self, line: usize) -> bool {
        self.items.iter().any(|it| it.cfg_test && it.contains(line))
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

#[derive(Clone, Debug)]
struct SpannedTok {
    line: usize,
    tok: Tok,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize masked text: identifiers/numbers and single-char punctuation.
fn lex(lines: &[String]) -> Vec<SpannedTok> {
    let mut toks = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if is_ident_start(c) || c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                toks.push(SpannedTok {
                    line: line_no,
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                });
            } else {
                toks.push(SpannedTok { line: line_no, tok: Tok::Punct(c) });
                i += 1;
            }
        }
    }
    toks
}

/// Token positions at which an item keyword genuinely starts an item:
/// start of file, after `{` / `}` / `;`, or after a `#[…]` attribute.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Anchor {
    ItemPosition,
    Expression,
}

/// Tokens transparent to anchoring: visibility and fn qualifiers. The
/// masked `"C"` of `extern "C"` survives as two quote puncts.
fn is_modifier(t: &Tok) -> bool {
    match t {
        Tok::Ident(s) => {
            matches!(
                s.as_str(),
                "pub"
                    | "crate"
                    | "super"
                    | "self"
                    | "in"
                    | "unsafe"
                    | "async"
                    | "const"
                    | "default"
                    | "extern"
            )
        }
        Tok::Punct(c) => matches!(c, '(' | ')' | '"'),
    }
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    items: Vec<Item>,
    /// One entry per open `{`: the item it belongs to, if any.
    brace_stack: Vec<Option<usize>>,
    anchor: Anchor,
    /// Attributes collected since the last item/statement boundary:
    /// (line, compact text without `#[…]` wrapper).
    pending_attrs: Vec<(usize, String)>,
}

impl Parser {
    fn peek(&self) -> Option<&SpannedTok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<SpannedTok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn enclosing_item(&self) -> Option<usize> {
        self.brace_stack.iter().rev().find_map(|e| *e)
    }

    fn inherited_cfg_test(&self) -> bool {
        self.enclosing_item().is_some_and(|i| self.items[i].cfg_test)
    }

    /// Capture a `#[…]` attribute starting at the current `[`.
    fn capture_attr(&mut self, attr_line: usize, inner: bool) {
        // Consume the `[`.
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            let Some(st) = self.bump() else { break };
            match st.tok {
                Tok::Punct('[') => {
                    depth += 1;
                    text.push('[');
                }
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth > 0 {
                        text.push(']');
                    }
                }
                Tok::Punct(c) => text.push(c),
                Tok::Ident(s) => {
                    if text.chars().next_back().is_some_and(is_ident_char) {
                        text.push(' ');
                    }
                    text.push_str(&s);
                }
            }
        }
        // Inner attributes (`#![…]`) configure the enclosing scope, not a
        // following item; they never gate a later item's span.
        if !inner {
            self.pending_attrs.push((attr_line, text));
        }
        self.anchor = Anchor::ItemPosition;
    }

    /// Do the pending attributes put the next item behind cfg(test)?
    fn attrs_mark_test(&self) -> bool {
        self.pending_attrs.iter().any(|(_, a)| {
            if a == "test" {
                return true;
            }
            if !a.starts_with("cfg") {
                return false;
            }
            // `test` at identifier boundaries anywhere inside the cfg
            // predicate: cfg(test), cfg(all(test, …)), cfg(any(…, test)).
            let chars: Vec<char> = a.chars().collect();
            let needle: Vec<char> = "test".chars().collect();
            (0..chars.len().saturating_sub(needle.len() - 1)).any(|i| {
                chars[i..i + needle.len()] == needle[..]
                    && (i == 0 || !is_ident_char(chars[i - 1]))
                    && chars.get(i + needle.len()).is_none_or(|&c| !is_ident_char(c))
            })
        })
    }

    /// Was the token run immediately before `kw_pos` (skipping modifiers)
    /// an item anchor?
    fn anchored(&self, kw_pos: usize) -> bool {
        let mut i = kw_pos;
        while i > 0 {
            let t = &self.toks[i - 1].tok;
            if is_modifier(t) {
                i -= 1;
                continue;
            }
            return matches!(
                t,
                Tok::Punct('{') | Tok::Punct('}') | Tok::Punct(';') | Tok::Punct(']')
            );
        }
        true // start of file
    }

    fn start_item(&mut self, kind: ItemKind, decl_line: usize, is_pub: bool) -> usize {
        let attr_line = self.pending_attrs.first().map_or(decl_line, |&(l, _)| l);
        let cfg_test = self.attrs_mark_test() || self.inherited_cfg_test();
        self.pending_attrs.clear();
        let idx = self.items.len();
        self.items.push(Item {
            kind,
            name: String::new(),
            is_pub,
            cfg_test,
            attr_line,
            decl_line,
            end_line: decl_line,
            parent: self.enclosing_item(),
            params: Vec::new(),
        });
        idx
    }

    /// Append one token to a canonical text rendering.
    fn render(text: &mut String, tok: &Tok) {
        match tok {
            Tok::Ident(s) => {
                if text.chars().next_back().is_some_and(is_ident_char) {
                    text.push(' ');
                }
                text.push_str(s);
            }
            Tok::Punct(c) => text.push(*c),
        }
    }

    /// Consume tokens until the item's body `{` (push onto the brace
    /// stack) or a terminating `;`, tracking paren/bracket/angle nesting.
    /// `body_allowed` is false for `use`/`const`/`static`/`type` items,
    /// whose `{ … }` groups (glob imports, initializer struct literals)
    /// are part of the header, never a body scope.
    fn consume_header(&mut self, idx: usize, capture_params: bool, body_allowed: bool) {
        let mut header = String::new();
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut angle = 0i32;
        let mut brace = 0i32; // initializer expressions: `= Foo { … };`
        let mut prev_was_dash = false;
        let mut param_toks: Vec<Tok> = Vec::new();
        let mut params_done = false;
        let mut last_line = self.items[idx].decl_line;
        while let Some(st) = self.peek().cloned() {
            last_line = st.line;
            match &st.tok {
                Tok::Punct('{')
                    if body_allowed && paren == 0 && bracket == 0 && brace == 0 && angle <= 0 =>
                {
                    // Body open: the item owns this brace.
                    self.bump();
                    self.brace_stack.push(Some(idx));
                    self.anchor = Anchor::ItemPosition;
                    self.finish_header(idx, header, param_toks, capture_params);
                    return;
                }
                Tok::Punct(';') if paren == 0 && bracket == 0 && brace == 0 => {
                    self.bump();
                    self.items[idx].end_line = st.line;
                    self.anchor = Anchor::ItemPosition;
                    self.finish_header(idx, header, param_toks, capture_params);
                    return;
                }
                Tok::Punct(c) => {
                    match c {
                        '(' => paren += 1,
                        ')' => paren -= 1,
                        '[' => bracket += 1,
                        ']' => bracket -= 1,
                        '{' => brace += 1,
                        '}' => brace -= 1,
                        '<' => angle += 1,
                        // `->` is not an angle close.
                        '>' if !prev_was_dash => angle -= 1,
                        _ => {}
                    }
                    prev_was_dash = *c == '-';
                    Self::render(&mut header, &st.tok);
                    if capture_params && !params_done {
                        param_toks.push(st.tok.clone());
                        if *c == ')' && paren == 0 && !param_toks.is_empty() {
                            params_done = true;
                        }
                    }
                    self.bump();
                }
                Tok::Ident(_) => {
                    prev_was_dash = false;
                    Self::render(&mut header, &st.tok);
                    if capture_params && !params_done {
                        param_toks.push(st.tok.clone());
                    }
                    self.bump();
                }
            }
        }
        // EOF mid-header: close the item where the tokens ran out.
        self.items[idx].end_line = last_line;
        self.finish_header(idx, header, param_toks, capture_params);
    }

    fn finish_header(
        &mut self,
        idx: usize,
        header: String,
        param_toks: Vec<Tok>,
        capture_params: bool,
    ) {
        if self.items[idx].name.is_empty() {
            self.items[idx].name = header.trim().to_owned();
        }
        if capture_params {
            self.items[idx].params = parse_params(&param_toks);
        }
    }

    /// Close brace: pop the stack; if it belonged to an item, record the
    /// end line.
    fn close_brace(&mut self, line: usize) {
        if let Some(Some(idx)) = self.brace_stack.pop() {
            self.items[idx].end_line = line;
        }
        self.anchor = Anchor::ItemPosition;
    }
}

/// Parse the `( … )` parameter-list tokens of a fn signature.
fn parse_params(toks: &[Tok]) -> Vec<Param> {
    // Locate the first top-level paren group.
    let Some(open) = toks.iter().position(|t| *t == Tok::Punct('(')) else {
        return Vec::new();
    };
    let mut depth = 0i32;
    let mut close = toks.len();
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let inner = &toks[open + 1..close.min(toks.len())];
    // Split on commas at zero nesting.
    let mut segments: Vec<Vec<Tok>> = vec![Vec::new()];
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    let mut prev_was_dash = false;
    for t in inner {
        match t {
            Tok::Punct(',') if paren == 0 && bracket == 0 && angle <= 0 => {
                segments.push(Vec::new());
                continue;
            }
            Tok::Punct(c) => {
                match c {
                    '(' => paren += 1,
                    ')' => paren -= 1,
                    '[' => bracket += 1,
                    ']' => bracket -= 1,
                    '<' => angle += 1,
                    '>' if !prev_was_dash => angle -= 1,
                    _ => {}
                }
                prev_was_dash = *c == '-';
            }
            Tok::Ident(_) => prev_was_dash = false,
        }
        if let Some(seg) = segments.last_mut() {
            seg.push(t.clone());
        }
    }
    let mut out = Vec::new();
    for seg in segments {
        if seg.is_empty() {
            continue;
        }
        // Receivers (`self`, `&mut self`) and pattern params are skipped.
        let Some(colon) = seg.iter().position(|t| *t == Tok::Punct(':')) else {
            continue;
        };
        let name: String = seg[..colon]
            .iter()
            .rev()
            .find_map(|t| match t {
                Tok::Ident(s) if s != "mut" => Some(s.clone()),
                _ => None,
            })
            .unwrap_or_default();
        if name == "self" || seg[..colon].contains(&Tok::Punct('(')) {
            continue;
        }
        let mut ty = String::new();
        for t in &seg[colon + 1..] {
            Parser::render(&mut ty, t);
        }
        out.push(Param { name, ty: ty.trim().to_owned() });
    }
    out
}

/// Keywords that can begin an item we classify.
fn item_kind_of(kw: &str) -> Option<ItemKind> {
    match kw {
        "mod" => Some(ItemKind::Module),
        "fn" => Some(ItemKind::Fn),
        "impl" => Some(ItemKind::Impl),
        "struct" | "enum" | "trait" | "union" => Some(ItemKind::TypeDef),
        "use" => Some(ItemKind::Use),
        "const" | "static" | "type" => Some(ItemKind::Decl),
        _ => None,
    }
}

/// Build the item tree from masked lines (literals already blanked).
pub fn build(masked_lines: &[String]) -> ItemTree {
    let toks = lex(masked_lines);
    let mut p = Parser {
        toks,
        pos: 0,
        items: Vec::new(),
        brace_stack: Vec::new(),
        anchor: Anchor::ItemPosition,
        pending_attrs: Vec::new(),
    };
    while let Some(st) = p.peek().cloned() {
        match &st.tok {
            Tok::Punct('#') => {
                let next = p.toks.get(p.pos + 1).cloned();
                match next.as_ref().map(|s| &s.tok) {
                    Some(Tok::Punct('[')) => {
                        p.bump();
                        p.capture_attr(st.line, false);
                    }
                    Some(Tok::Punct('!'))
                        if matches!(
                            p.toks.get(p.pos + 2).map(|s| &s.tok),
                            Some(Tok::Punct('['))
                        ) =>
                    {
                        p.bump();
                        p.bump();
                        p.capture_attr(st.line, true);
                    }
                    _ => {
                        p.bump();
                        p.anchor = Anchor::Expression;
                    }
                }
            }
            Tok::Punct('{') => {
                p.bump();
                p.brace_stack.push(None);
                p.anchor = Anchor::ItemPosition;
            }
            Tok::Punct('}') => {
                p.bump();
                p.close_brace(st.line);
            }
            Tok::Punct(';') => {
                p.bump();
                p.pending_attrs.clear();
                p.anchor = Anchor::ItemPosition;
            }
            Tok::Ident(kw) => {
                let kind = item_kind_of(kw);
                // `const fn` / `const` in an expression must not open a
                // Decl item; only treat `const`/`static`/`type` as items
                // when followed by an identifier (the name).
                let decl_ok = match (kind, kw.as_str()) {
                    (Some(ItemKind::Decl), _) => matches!(
                        p.toks.get(p.pos + 1).map(|s| &s.tok),
                        Some(Tok::Ident(n)) if item_kind_of(n).is_none()
                    ),
                    _ => true,
                };
                if let (Some(kind), true, true) = (kind, decl_ok, p.anchored(p.pos)) {
                    let is_pub = {
                        // Look back over modifiers for a `pub`.
                        let mut i = p.pos;
                        let mut found = false;
                        while i > 0 && is_modifier(&p.toks[i - 1].tok) {
                            if p.toks[i - 1].tok == Tok::Ident("pub".to_owned()) {
                                found = true;
                            }
                            i -= 1;
                        }
                        found
                    };
                    p.bump();
                    let idx = p.start_item(kind, st.line, is_pub);
                    // Named items: grab the identifier after the keyword.
                    if matches!(
                        kind,
                        ItemKind::Module | ItemKind::Fn | ItemKind::TypeDef | ItemKind::Decl
                    ) {
                        if let Some(SpannedTok { tok: Tok::Ident(n), .. }) = p.peek().cloned() {
                            p.items[idx].name = n;
                            p.bump();
                        }
                    }
                    let body_allowed = !matches!(kind, ItemKind::Use | ItemKind::Decl);
                    p.consume_header(idx, kind == ItemKind::Fn, body_allowed);
                } else {
                    p.bump();
                    p.anchor = Anchor::Expression;
                }
            }
            Tok::Punct(_) => {
                p.bump();
                p.anchor = Anchor::Expression;
            }
        }
    }
    // Unterminated items (EOF before the matching `}`) close at the last
    // line so spans stay well-formed.
    let last = masked_lines.len();
    while let Some(top) = p.brace_stack.pop() {
        if let Some(idx) = top {
            p.items[idx].end_line = last;
        }
    }
    ItemTree { items: p.items }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_of(src: &str) -> ItemTree {
        let lines: Vec<String> = src.lines().map(str::to_owned).collect();
        build(&lines)
    }

    #[test]
    fn finds_nested_items_with_spans() {
        let t = tree_of(
            "mod outer {\n    pub fn f(x: u64) -> u64 {\n        x\n    }\n}\nfn top() {}\n",
        );
        let outer = t.items.iter().find(|i| i.name == "outer").expect("mod outer");
        assert_eq!(outer.kind, ItemKind::Module);
        assert_eq!((outer.decl_line, outer.end_line), (1, 5));
        let f = t.items.iter().find(|i| i.name == "f").expect("fn f");
        assert_eq!(f.kind, ItemKind::Fn);
        assert!(f.is_pub);
        assert_eq!(f.parent, Some(0));
        assert_eq!((f.decl_line, f.end_line), (2, 4));
        assert_eq!(f.params, vec![Param { name: "x".into(), ty: "u64".into() }]);
        let top = t.items.iter().find(|i| i.name == "top").expect("fn top");
        assert_eq!(top.parent, None);
    }

    #[test]
    fn cfg_test_marks_item_and_children() {
        let t = tree_of("#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn lib() {}\n");
        assert!(t.is_test_line(1));
        assert!(t.is_test_line(3));
        assert!(!t.is_test_line(5));
        let helper = t.items.iter().find(|i| i.name == "helper").expect("helper");
        assert!(helper.cfg_test, "children inherit cfg(test)");
    }

    #[test]
    fn cfg_all_test_and_test_attr_count() {
        let t = tree_of("#[cfg(all(test, feature = \"x\"))]\nmod a {}\n#[test]\nfn b() {}\n");
        assert!(t.items[0].cfg_test);
        assert!(t.items[1].cfg_test);
        // `testing` must not match the `test` token.
        let t2 = tree_of("#[cfg(feature = \"x\")]\nmod c {}\n");
        assert!(!t2.items[0].cfg_test);
    }

    #[test]
    fn impl_and_use_and_decl() {
        let t = tree_of(
            "use std::cell::RefCell;\nimpl Foo for Bar {\n    fn m(&self) {}\n}\nconst X: u64 = 1;\n",
        );
        let u = t.uses().next().expect("use item");
        assert_eq!(u.name, "std::cell::RefCell");
        let im = t.items.iter().find(|i| i.kind == ItemKind::Impl).expect("impl");
        assert!(im.name.contains("Foo for Bar"));
        let m = t.items.iter().find(|i| i.name == "m").expect("method");
        assert_eq!(m.kind, ItemKind::Fn);
        let c = t.items.iter().find(|i| i.name == "X").expect("const");
        assert_eq!(c.kind, ItemKind::Decl);
        assert_eq!(c.end_line, 5);
    }

    #[test]
    fn impl_trait_in_signature_is_not_an_item() {
        let t = tree_of("pub fn seg(total: u64) -> impl Iterator<Item = (u64, u32)> {\n}\n");
        assert_eq!(t.items.iter().filter(|i| i.kind == ItemKind::Impl).count(), 0);
        let f = t.fns().next().expect("fn");
        assert_eq!(f.params, vec![Param { name: "total".into(), ty: "u64".into() }]);
        assert_eq!(f.end_line, 2);
    }

    #[test]
    fn signature_params_parse_generics_and_receivers() {
        let t = tree_of(
            "pub fn f(&mut self, at: SimTime, map: BTreeMap<u64, u64>, delay_ns: u64) {}\n",
        );
        let f = t.fns().next().expect("fn");
        let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["at", "map", "delay_ns"]);
        assert_eq!(f.params[2].ty, "u64");
        assert_eq!(f.params[1].ty, "BTreeMap<u64,u64>");
    }

    #[test]
    fn const_fn_is_a_fn_not_a_decl() {
        let t = tree_of("pub const fn from_nanos(ns: u64) -> Self {\n    Self(ns)\n}\n");
        assert_eq!(t.items.len(), 1);
        assert_eq!(t.items[0].kind, ItemKind::Fn);
        assert_eq!(t.items[0].name, "from_nanos");
        assert!(t.items[0].is_pub);
    }

    #[test]
    fn initializer_braces_do_not_open_scopes() {
        let t = tree_of("const T: Token = Token { kind: 1, flow: 0 };\nfn after() {}\n");
        let after = t.items.iter().find(|i| i.name == "after").expect("fn after");
        assert_eq!(after.parent, None, "const initializer brace must be consumed");
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let t = tree_of("fn outer() {\n    mod m {\n        fn inner() {\n            x();\n        }\n    }\n}\n");
        assert_eq!(t.enclosing_fn(4).map(|i| i.name.as_str()), Some("inner"));
        assert_eq!(t.enclosing_fn(2).map(|i| i.name.as_str()), Some("outer"));
    }
}
