//! Report renderers: human text, machine JSON, and minimal SARIF 2.1.0.
//!
//! All three are deterministic — violations are sorted before
//! rendering, nothing host- or time-dependent is emitted — so two runs
//! over the same tree produce byte-identical output (CI diffs the two).

use crate::baseline::Outcome;
use crate::rules::RULE_TABLE;
use crate::Violation;

/// Sort for stable output: file, then line, then rule id, then message.
pub fn sort_violations(violations: &mut [Violation]) {
    violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule.id(), &a.message).cmp(&(&b.file, b.line, b.rule.id(), &b.message))
    });
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Human-readable report: one line per finding, then the gate notes.
pub fn render_text(outcome: &Outcome) -> String {
    let mut out = String::new();
    for v in &outcome.fresh {
        out.push_str(&format!("{v}\n"));
    }
    for r in &outcome.regressions {
        out.push_str(&format!("baseline regression: {r}\n"));
    }
    for s in &outcome.stale {
        out.push_str(&format!("stale baseline: {s}\n"));
    }
    if outcome.is_clean() {
        out.push_str("simlint: workspace clean\n");
    } else {
        out.push_str(&format!(
            "simlint: {} violation(s), {} regression(s), {} stale baseline entr(ies)\n",
            outcome.fresh.len(),
            outcome.regressions.len(),
            outcome.stale.len()
        ));
    }
    out
}

/// Machine-readable JSON: `{"version":1,"clean":…,"violations":[…],…}`.
pub fn render_json(outcome: &Outcome) -> String {
    let mut out = String::new();
    out.push_str("{\"version\":1");
    out.push_str(&format!(",\"clean\":{}", outcome.is_clean()));
    out.push_str(",\"violations\":[");
    for (i, v) in outcome.fresh.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&v.file),
            v.line,
            v.rule.id(),
            json_escape(&v.message)
        ));
    }
    out.push(']');
    for (key, notes) in [("regressions", &outcome.regressions), ("stale", &outcome.stale)] {
        out.push_str(&format!(",\"{key}\":["));
        for (i, n) in notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(n)));
        }
        out.push(']');
    }
    out.push_str("}\n");
    out
}

/// A violation's file path as a SARIF artifact URI: repo-relative,
/// forward slashes only, no leading `./` or `/`. Violations already
/// carry workspace-relative paths, but anything that slipped through a
/// host-specific join (backslashes on Windows, a `./` prefix from a
/// CLI argument) is normalized here so SARIF consumers resolve every
/// URI against the repo root.
fn artifact_uri(file: &str) -> String {
    let unixy = file.replace('\\', "/");
    let mut s = unixy.as_str();
    loop {
        if let Some(rest) = s.strip_prefix("./") {
            s = rest;
        } else if let Some(rest) = s.strip_prefix('/') {
            s = rest;
        } else {
            break;
        }
    }
    s.to_owned()
}

/// Minimal SARIF 2.1.0 log: one run, the full rule table as driver
/// metadata, one result per fresh violation (baseline notes become
/// tool-level notifications).
pub fn render_sarif(outcome: &Outcome) -> String {
    let mut out = String::new();
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\"");
    out.push_str(",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"simlint\",\"informationUri\":\"DESIGN.md\",\"rules\":[");
    for (i, rule) in RULE_TABLE.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            rule.id(),
            json_escape(rule.describe())
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, v) in outcome.fresh.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            v.rule.id(),
            json_escape(&v.message),
            json_escape(&artifact_uri(&v.file)),
            v.line
        ));
    }
    out.push_str(
        "],\"invocations\":[{\"executionSuccessful\":true,\"toolExecutionNotifications\":[",
    );
    let notes = outcome.regressions.iter().chain(outcome.stale.iter());
    for (i, n) in notes.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"level\":\"error\",\"message\":{{\"text\":\"{}\"}}}}",
            json_escape(n)
        ));
    }
    out.push_str("]}]}]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn outcome() -> Outcome {
        Outcome {
            fresh: vec![Violation {
                file: "crates/a.rs".into(),
                line: 3,
                rule: Rule::SharedMut,
                message: "a \"quoted\" message".into(),
            }],
            regressions: vec!["shared_mut crates/a.rs: 2 violation(s), baseline tolerates 1".into()],
            stale: vec![],
        }
    }

    #[test]
    fn sort_is_total_and_stable() {
        let mk = |file: &str, line, rule| Violation {
            file: file.into(),
            line,
            rule,
            message: "m".into(),
        };
        let mut vs = vec![
            mk("b.rs", 1, Rule::Determinism),
            mk("a.rs", 9, Rule::UnitSafety),
            mk("a.rs", 9, Rule::SharedMut),
            mk("a.rs", 2, Rule::UnitSafety),
        ];
        sort_violations(&mut vs);
        let key: Vec<(&str, usize, &str)> =
            vs.iter().map(|v| (v.file.as_str(), v.line, v.rule.id())).collect();
        assert_eq!(
            key,
            vec![
                ("a.rs", 2, "unit_safety"),
                ("a.rs", 9, "shared_mut"),
                ("a.rs", 9, "unit_safety"),
                ("b.rs", 1, "determinism"),
            ]
        );
    }

    #[test]
    fn json_escapes_and_is_deterministic() {
        let o = outcome();
        let a = render_json(&o);
        let b = render_json(&o);
        assert_eq!(a, b);
        assert!(a.contains("\\\"quoted\\\""));
        assert!(a.contains("\"clean\":false"));
    }

    #[test]
    fn sarif_lists_every_rule_and_each_result() {
        let s = render_sarif(&outcome());
        for rule in RULE_TABLE {
            assert!(s.contains(&format!("\"id\":\"{}\"", rule.id())), "missing {}", rule.id());
        }
        assert!(s.contains("\"ruleId\":\"shared_mut\""));
        assert!(s.contains("\"startLine\":3"));
    }

    #[test]
    fn sarif_artifact_uris_are_repo_relative() {
        assert_eq!(artifact_uri("crates/a.rs"), "crates/a.rs");
        assert_eq!(artifact_uri("./crates/a.rs"), "crates/a.rs");
        assert_eq!(artifact_uri("crates\\netsim\\src\\engine.rs"), "crates/netsim/src/engine.rs");
        assert_eq!(artifact_uri("/crates/a.rs"), "crates/a.rs");
        let mut o = outcome();
        o.fresh[0].file = ".\\crates\\a.rs".into();
        let s = render_sarif(&o);
        assert!(s.contains("\"uri\":\"crates/a.rs\""), "normalized URI missing: {s}");
    }

    #[test]
    fn clean_outcome_renders_clean() {
        let o = Outcome::default();
        assert!(render_text(&o).contains("workspace clean"));
        assert!(render_json(&o).contains("\"clean\":true"));
    }
}
