//! Comment/literal stripping and `#[cfg(test)]` span detection.
//!
//! The masker replaces the *bodies* of comments, string literals and
//! char literals with spaces while preserving line structure, so rule
//! checks can do plain substring/token scans without being fooled by
//! text inside literals or docs. Raw strings (`r"…"`, `r#"…"#`, byte
//! and raw-byte forms) and nested block comments are handled; lifetimes
//! are distinguished from char literals.

/// A source file after masking, with pre-computed line offsets, raw
/// lines (for pragma lookup) and `#[cfg(test)]` line spans.
pub struct MaskedSource {
    /// Masked text, same length/line structure as the original.
    pub masked: String,
    /// Raw lines of the original source (for pragma scanning).
    pub raw_lines: Vec<String>,
    /// Masked lines.
    pub lines: Vec<String>,
    /// `is_test_line[i]` == line i+1 sits inside a `#[cfg(test)]` module.
    pub is_test_line: Vec<bool>,
}

impl MaskedSource {
    /// Mask `src` and compute spans.
    pub fn new(src: &str) -> Self {
        let masked = mask(src);
        let raw_lines: Vec<String> = src.lines().map(str::to_owned).collect();
        let lines: Vec<String> = masked.lines().map(str::to_owned).collect();
        let is_test_line = test_spans(&lines);
        MaskedSource { masked, raw_lines, lines, is_test_line }
    }

    /// Does `line` (1-based) carry a `// simlint: allow(<rule>)` pragma
    /// for `rule_id`?
    pub fn has_allow(&self, line: usize, rule_id: &str) -> bool {
        let Some(raw) = self.raw_lines.get(line.wrapping_sub(1)) else {
            return false;
        };
        let Some(pos) = raw.find("simlint: allow(") else {
            return false;
        };
        let rest = &raw[pos + "simlint: allow(".len()..];
        rest.split(')').next().is_some_and(|inner| inner.split(',').any(|r| r.trim() == rule_id))
    }

    /// Is the (1-based) line inside a `#[cfg(test)]` module?
    pub fn is_test(&self, line: usize) -> bool {
        self.is_test_line.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Replace comment and literal bodies with spaces (newlines preserved).
fn mask(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;

    let keep = |c: char| if c == '\n' { '\n' } else { ' ' };

    while i < n {
        let c = chars[i];
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            // Keep the comment text: pragmas are read from raw lines, and
            // masking it would not change rule behaviour — but masking is
            // still required so `// x == 1.0` in prose can't fire rules.
            while i < n && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(keep(chars[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
        if (c == 'r' || c == 'b') && (i == 0 || !is_ident_char(chars[i - 1])) {
            let mut j = i + 1;
            if c == 'b' && j < n && chars[j] == 'r' {
                j += 1;
            }
            let raw = c == 'r' || (j > i + 1);
            let mut hashes = 0;
            while raw && j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && chars[j] == '"' && (raw || c == 'b') {
                // Emit the prefix verbatim, then mask to the terminator.
                for &p in &chars[i..=j] {
                    out.push(p);
                }
                i = j + 1;
                'scan: while i < n {
                    if !raw && chars[i] == '\\' && i + 1 < n {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                    if chars[i] == '"' {
                        let mut k = 0;
                        while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            i += 1 + hashes;
                            break 'scan;
                        }
                    }
                    out.push(keep(chars[i]));
                    i += 1;
                }
                continue;
            }
            // Not a literal prefix: plain identifier character.
            out.push(c);
            i += 1;
            continue;
        }
        // Plain string.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                }
                out.push(keep(chars[i]));
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_char_lit = match next {
                Some('\\') => true,
                Some(x) if x != '\'' => chars.get(i + 2) == Some(&'\''),
                _ => false,
            };
            if is_char_lit {
                out.push('\'');
                i += 1;
                while i < n {
                    if chars[i] == '\\' && i + 1 < n {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                    if chars[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    }
                    out.push(keep(chars[i]));
                    i += 1;
                }
                continue;
            }
            // Lifetime: emit as-is.
            out.push('\'');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Mark every line that falls inside a `#[cfg(test)] mod … { … }` span
/// (attribute line through the matching closing brace).
fn test_spans(masked_lines: &[String]) -> Vec<bool> {
    let mut flags = vec![false; masked_lines.len()];
    let mut li = 0;
    while li < masked_lines.len() {
        let compact: String = masked_lines[li].chars().filter(|c| !c.is_whitespace()).collect();
        if !compact.contains("#[cfg(test)]") {
            li += 1;
            continue;
        }
        // Find the opening brace of the annotated item (skipping further
        // attribute lines), then brace-match to the close.
        let start = li;
        let mut depth = 0usize;
        let mut opened = false;
        let mut lj = li;
        'outer: while lj < masked_lines.len() {
            for ch in masked_lines[lj].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
            if opened && depth == 0 {
                break;
            }
            lj += 1;
        }
        let end = lj.min(masked_lines.len().saturating_sub(1));
        for flag in flags.iter_mut().take(end + 1).skip(start) {
            *flag = true;
        }
        li = end + 1;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let m = MaskedSource::new("let x = \"HashMap\"; // HashMap\nlet y = 1;\n");
        assert!(!m.lines[0].contains("HashMap"));
        assert!(m.lines[1].contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = MaskedSource::new("let x = r#\"panic! unwrap()\"#;\n");
        assert!(!m.masked.contains("panic"));
        assert!(!m.masked.contains("unwrap"));
    }

    #[test]
    fn lifetimes_survive_char_literals_dont_confuse() {
        let m = MaskedSource::new("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(m.masked.contains("fn f<'a>(x: &'a str)"));
        assert!(!m.masked.contains("'x'") || m.masked.contains("' '"));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let m = MaskedSource::new("let q = '\\''; let h = HashMap::new();\n");
        assert!(m.masked.contains("HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let m = MaskedSource::new("/* outer /* inner */ still comment */ let z = 1;\n");
        assert!(!m.masked.contains("outer"));
        assert!(m.masked.contains("let z = 1;"));
    }

    #[test]
    fn newlines_inside_literals_keep_line_numbers() {
        let src = "let s = \"a\nb\nc\";\nlet t = 9;\n";
        let m = MaskedSource::new(src);
        assert_eq!(m.lines.len(), 4);
        assert!(m.lines[3].contains("let t = 9;"));
    }

    #[test]
    fn cfg_test_span_detection() {
        let src = "\
fn lib_code() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
fn more_lib() {}
";
        let m = MaskedSource::new(src);
        assert!(!m.is_test(1));
        assert!(m.is_test(2));
        assert!(m.is_test(3));
        assert!(m.is_test(4));
        assert!(m.is_test(5));
        assert!(!m.is_test(6));
    }

    #[test]
    fn allow_pragma_parsing() {
        let src = "let a = x.unwrap(); // simlint: allow(panic_hygiene)\n";
        let m = MaskedSource::new(src);
        assert!(m.has_allow(1, "panic_hygiene"));
        assert!(!m.has_allow(1, "determinism"));
        let multi = "bad(); // simlint: allow(determinism, float_cmp)\n";
        let m2 = MaskedSource::new(multi);
        assert!(m2.has_allow(1, "determinism"));
        assert!(m2.has_allow(1, "float_cmp"));
        assert!(!m2.has_allow(1, "panic_hygiene"));
    }
}
