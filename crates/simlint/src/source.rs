//! Comment/literal stripping, comment-anchored pragmas, and the parsed
//! item tree.
//!
//! The masker replaces the *bodies* of comments, string literals and
//! char literals with spaces while preserving line structure, so rule
//! checks can do plain substring/token scans without being fooled by
//! text inside literals or docs. Raw strings (`r"…"`, `r#"…"#`, byte
//! and raw-byte forms) and nested block comments are handled; lifetimes
//! are distinguished from char literals; escaped newlines inside string
//! literals keep their line breaks so line numbers never drift.
//!
//! While masking, every `//` comment's text is captured. Pragmas
//! (`simlint: …` directives) are recognized *only* when a comment's text
//! starts with `simlint:` — a string literal containing the pragma text,
//! or a doc sentence merely mentioning it, can neither suppress a
//! violation nor open a hot-path fence.

use crate::items::{self, ItemTree};

/// One `//` comment captured during masking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Text after the `//` marker (doc markers `/`/`!` stripped), trimmed.
    pub text: String,
    /// The comment is the only thing on its line.
    pub own_line: bool,
}

/// A parsed `// simlint: …` directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Directive {
    /// `allow(rule_a, rule_b)`
    Allow(Vec<String>),
    /// `hot-path`
    HotPathOpen,
    /// `hot-path-end`
    HotPathClose,
    /// Anything else after `simlint:` — flagged by `pragma_hygiene`.
    Unknown(String),
}

/// One pragma comment: where it sits and what it says.
#[derive(Clone, Debug)]
pub struct Pragma {
    pub line: usize,
    pub own_line: bool,
    pub directive: Directive,
}

/// A source file after masking, with pre-computed lines, captured
/// comments/pragmas, the parsed [`ItemTree`], and `#[cfg(test)]` spans.
pub struct MaskedSource {
    /// Masked text, same length/line structure as the original.
    pub masked: String,
    /// Raw lines of the original source.
    pub raw_lines: Vec<String>,
    /// Masked lines.
    pub lines: Vec<String>,
    /// Every `//` comment, in source order.
    pub comments: Vec<Comment>,
    /// Every `simlint:` directive, in source order.
    pub pragmas: Vec<Pragma>,
    /// Brace-matched item tree (modules, fns, impls, uses).
    pub items: ItemTree,
    /// `is_test_line[i]` == line i+1 sits inside a `#[cfg(test)]` item.
    is_test_line: Vec<bool>,
}

impl MaskedSource {
    /// Mask `src`, capture comments, parse pragmas and the item tree.
    pub fn new(src: &str) -> Self {
        let (masked, comments) = mask(src);
        let raw_lines: Vec<String> = src.lines().map(str::to_owned).collect();
        let lines: Vec<String> = masked.lines().map(str::to_owned).collect();
        let items = items::build(&lines);
        let is_test_line = (1..=lines.len()).map(|l| items.is_test_line(l)).collect();
        let pragmas = comments
            .iter()
            .filter_map(|c| {
                let rest = c.text.strip_prefix("simlint:")?.trim();
                let directive = if let Some(inner) = rest.strip_prefix("allow(") {
                    match inner.split_once(')') {
                        Some((names, _)) => Directive::Allow(
                            names.split(',').map(|r| r.trim().to_owned()).collect(),
                        ),
                        None => Directive::Unknown(rest.to_owned()),
                    }
                } else if rest == "hot-path" {
                    Directive::HotPathOpen
                } else if rest == "hot-path-end" {
                    Directive::HotPathClose
                } else {
                    Directive::Unknown(rest.to_owned())
                };
                Some(Pragma { line: c.line, own_line: c.own_line, directive })
            })
            .collect();
        MaskedSource { masked, raw_lines, lines, comments, pragmas, items, is_test_line }
    }

    /// The line of the `allow(<rule_id>)` pragma covering a violation on
    /// `line`, if any: either a trailing pragma on the line itself, or an
    /// own-line pragma on the line(s) directly above (rustfmt splits long
    /// flagged lines; the pragma then rides on its own line).
    pub fn allow_pragma_line(&self, line: usize, rule_id: &str) -> Option<usize> {
        let allows = |p: &Pragma| match &p.directive {
            Directive::Allow(rules) => rules.iter().any(|r| r == rule_id),
            _ => false,
        };
        if let Some(p) = self.pragmas.iter().find(|p| p.line == line && allows(p)) {
            return Some(p.line);
        }
        // Walk up through a stack of own-line pragma comments.
        let mut l = line.checked_sub(1)?;
        while l >= 1 {
            let here: Vec<&Pragma> =
                self.pragmas.iter().filter(|p| p.line == l && p.own_line).collect();
            if here.is_empty() {
                return None;
            }
            if let Some(p) = here.into_iter().find(|p| allows(p)) {
                return Some(p.line);
            }
            l = l.checked_sub(1)?;
        }
        None
    }

    /// Does a pragma suppress `rule_id` violations on `line`?
    pub fn has_allow(&self, line: usize, rule_id: &str) -> bool {
        self.allow_pragma_line(line, rule_id).is_some()
    }

    /// Is the (1-based) line inside a `#[cfg(test)]` item?
    pub fn is_test(&self, line: usize) -> bool {
        self.is_test_line.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Replace comment and literal bodies with spaces (newlines preserved)
/// and capture `//` comment text.
fn mask(src: &str) -> (String, Vec<Comment>) {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(src.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    // Only whitespace seen since the last newline (for own-line comments).
    let mut line_blank = true;
    let mut i = 0;

    let keep = |c: char| if c == '\n' { '\n' } else { ' ' };

    macro_rules! emit_masked {
        ($c:expr) => {{
            let c = $c;
            if c == '\n' {
                line += 1;
                line_blank = true;
            }
            out.push(keep(c));
        }};
    }

    while i < n {
        let c = chars[i];
        // Line comment: capture the text, mask the characters.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start_line = line;
            let own_line = line_blank;
            let mut text = String::new();
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                out.push(' ');
                i += 1;
            }
            // Strip `//`, doc markers and surrounding whitespace.
            let body =
                text.trim_start_matches('/').trim_start_matches(['!', '/']).trim().to_owned();
            comments.push(Comment { line: start_line, text: body, own_line });
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    emit_masked!(chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
        if (c == 'r' || c == 'b') && (i == 0 || !is_ident_char(chars[i - 1])) {
            let mut j = i + 1;
            if c == 'b' && j < n && chars[j] == 'r' {
                j += 1;
            }
            let raw = c == 'r' || (j > i + 1);
            let mut hashes = 0;
            while raw && j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && chars[j] == '"' && (raw || c == 'b') {
                // Emit the prefix verbatim, then mask to the terminator.
                for &p in &chars[i..=j] {
                    out.push(p);
                }
                i = j + 1;
                'scan: while i < n {
                    if !raw && chars[i] == '\\' && i + 1 < n {
                        // Mask the escape but keep an escaped newline's
                        // line break (string continuation).
                        out.push(' ');
                        emit_masked!(chars[i + 1]);
                        i += 2;
                        continue;
                    }
                    if chars[i] == '"' {
                        let mut k = 0;
                        while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            i += 1 + hashes;
                            break 'scan;
                        }
                    }
                    emit_masked!(chars[i]);
                    i += 1;
                }
                continue;
            }
            // Not a literal prefix: plain identifier character.
            out.push(c);
            line_blank = false;
            i += 1;
            continue;
        }
        // Plain string.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    emit_masked!(chars[i + 1]);
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                }
                emit_masked!(chars[i]);
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_char_lit = match next {
                Some('\\') => true,
                Some(x) if x != '\'' => chars.get(i + 2) == Some(&'\''),
                _ => false,
            };
            if is_char_lit {
                out.push('\'');
                i += 1;
                while i < n {
                    if chars[i] == '\\' && i + 1 < n {
                        out.push(' ');
                        emit_masked!(chars[i + 1]);
                        i += 2;
                        continue;
                    }
                    if chars[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    }
                    emit_masked!(chars[i]);
                    i += 1;
                }
                continue;
            }
            // Lifetime: emit as-is.
            out.push('\'');
            line_blank = false;
            i += 1;
            continue;
        }
        if c == '\n' {
            line += 1;
            line_blank = true;
        } else if !c.is_whitespace() {
            line_blank = false;
        }
        out.push(c);
        i += 1;
    }
    (out, comments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let m = MaskedSource::new("let x = \"HashMap\"; // HashMap\nlet y = 1;\n");
        assert!(!m.lines[0].contains("HashMap"));
        assert!(m.lines[1].contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = MaskedSource::new("let x = r#\"panic! unwrap()\"#;\n");
        assert!(!m.masked.contains("panic"));
        assert!(!m.masked.contains("unwrap"));
    }

    #[test]
    fn multi_hash_raw_strings_mask_inner_terminators() {
        let m = MaskedSource::new("let x = r##\"a \"# HashMap \"##; let y = Instant::now();\n");
        assert!(!m.masked.contains("HashMap"), "body must be blanked: {}", m.masked);
        assert!(m.masked.contains("Instant"), "code after the literal must survive");
    }

    #[test]
    fn lifetimes_survive_char_literals_dont_confuse() {
        let m = MaskedSource::new("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(m.masked.contains("fn f<'a>(x: &'a str)"));
        assert!(!m.masked.contains("'x'") || m.masked.contains("' '"));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let m = MaskedSource::new("let q = '\\''; let h = HashMap::new();\n");
        assert!(m.masked.contains("HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let m = MaskedSource::new("/* outer /* inner */ still comment */ let z = 1;\n");
        assert!(!m.masked.contains("outer"));
        assert!(m.masked.contains("let z = 1;"));
    }

    #[test]
    fn newlines_inside_literals_keep_line_numbers() {
        let src = "let s = \"a\nb\nc\";\nlet t = 9;\n";
        let m = MaskedSource::new(src);
        assert_eq!(m.lines.len(), 4);
        assert!(m.lines[3].contains("let t = 9;"));
    }

    #[test]
    fn escaped_newline_keeps_line_structure() {
        // A backslash-newline string continuation must not swallow the
        // line break: every later line number would shift by one.
        let src = "let s = \"ab\\\ncd\";\nlet t = 9;\n";
        let m = MaskedSource::new(src);
        assert_eq!(m.lines.len(), 3, "masked text lost a line: {:?}", m.lines);
        assert!(m.lines[2].contains("let t = 9;"));
    }

    #[test]
    fn cfg_test_span_detection() {
        let src = "\
fn lib_code() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
fn more_lib() {}
";
        let m = MaskedSource::new(src);
        assert!(!m.is_test(1));
        assert!(m.is_test(2));
        assert!(m.is_test(3));
        assert!(m.is_test(4));
        assert!(m.is_test(5));
        assert!(!m.is_test(6));
    }

    #[test]
    fn allow_pragma_parsing() {
        let src = "let a = x.unwrap(); // simlint: allow(panic_hygiene)\n";
        let m = MaskedSource::new(src);
        assert!(m.has_allow(1, "panic_hygiene"));
        assert!(!m.has_allow(1, "determinism"));
        let multi = "bad(); // simlint: allow(determinism, float_cmp)\n";
        let m2 = MaskedSource::new(multi);
        assert!(m2.has_allow(1, "determinism"));
        assert!(m2.has_allow(1, "float_cmp"));
        assert!(!m2.has_allow(1, "panic_hygiene"));
    }

    #[test]
    fn own_line_pragma_applies_to_next_line() {
        let src = "\
fn f() {
    // simlint: allow(panic_hygiene)
    let a = x.unwrap();
    let b = y.unwrap();
}
";
        let m = MaskedSource::new(src);
        assert_eq!(m.allow_pragma_line(3, "panic_hygiene"), Some(2));
        assert!(!m.has_allow(4, "panic_hygiene"), "pragma covers only the next line");
        // Stacked own-line pragmas all apply to the first code line below.
        let stacked = "// simlint: allow(determinism)\n// simlint: allow(float_cmp)\nbad();\n";
        let m2 = MaskedSource::new(stacked);
        assert_eq!(m2.allow_pragma_line(3, "determinism"), Some(1));
        assert_eq!(m2.allow_pragma_line(3, "float_cmp"), Some(2));
    }

    #[test]
    fn pragmas_inside_literals_do_not_count() {
        // The pragma text lives in a string literal: it must not suppress
        // the unwrap on the same line.
        let src = "let s = \"simlint: allow(panic_hygiene)\"; let a = x.unwrap();\n";
        let m = MaskedSource::new(src);
        assert!(!m.has_allow(1, "panic_hygiene"), "literal text is not a pragma");
        // And mentioning a pragma mid-sentence in a doc comment is prose.
        let doc = "/// Carries a `// simlint: allow(rule)` pragma.\nfn f() {}\n";
        let m2 = MaskedSource::new(doc);
        assert!(m2.pragmas.is_empty(), "doc prose is not a pragma: {:?}", m2.pragmas);
    }

    #[test]
    fn directive_parsing_and_unknown_directives() {
        let src = "\
// simlint: hot-path
// simlint: hot-path-end
// simlint: alow(determinism)
";
        let m = MaskedSource::new(src);
        assert_eq!(m.pragmas[0].directive, Directive::HotPathOpen);
        assert_eq!(m.pragmas[1].directive, Directive::HotPathClose);
        assert!(matches!(m.pragmas[2].directive, Directive::Unknown(_)));
        assert!(m.pragmas.iter().all(|p| p.own_line));
    }

    #[test]
    fn comments_capture_text_and_position() {
        let src = "let x = 1; // trailing words\n   // own line\n";
        let m = MaskedSource::new(src);
        assert_eq!(m.comments.len(), 2);
        assert_eq!(m.comments[0].text, "trailing words");
        assert!(!m.comments[0].own_line);
        assert_eq!(m.comments[1].line, 2);
        assert!(m.comments[1].own_line);
    }
}
