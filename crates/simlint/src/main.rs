#![forbid(unsafe_code)]
//! `simlint` binary: lint the workspace, apply the `simlint.baseline`
//! ratchet, report in the chosen format, exit non-zero on any gate
//! failure.
//!
//! ```text
//! cargo run -p simlint -- [<workspace-root>] [--format text|json|sarif]
//!                         [--baseline <path>] [--write-baseline]
//!                         [--no-baseline] [--list-rules]
//! ```
//!
//! `--baseline <path>` reads (and, with `--write-baseline`, writes) the
//! ratchet file at an explicit location instead of
//! `<root>/simlint.baseline` — CI jobs keep per-branch baselines out of
//! the tree this way.
//!
//! Exit codes: 0 clean, 1 gate failure (violations, baseline
//! regressions or stale entries), 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{output, Baseline, Outcome, RULE_TABLE};

enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    root: Option<PathBuf>,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    no_baseline: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        baseline: None,
        write_baseline: false,
        no_baseline: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file path")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value: text|json|sarif")?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`; use text|json|sarif")),
                };
            }
            "--write-baseline" => args.write_baseline = true,
            "--no-baseline" => args.no_baseline = true,
            "--list-rules" => args.list_rules = true,
            other if !other.starts_with('-') && args.root.is_none() => {
                args.root = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in RULE_TABLE {
            println!("{:<16} {}", rule.id(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match simlint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("simlint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let violations = match simlint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = args.baseline.clone().unwrap_or_else(|| root.join(simlint::BASELINE_FILE));
    let baseline = if args.no_baseline {
        Baseline::default()
    } else {
        match Baseline::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        }
    };

    if args.write_baseline {
        match Baseline::ratcheted_from(&baseline, &violations) {
            Ok(new) => {
                if let Err(e) = std::fs::write(&baseline_path, new.render()) {
                    eprintln!("simlint: write {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
                println!(
                    "simlint: wrote {} ({} entr(ies))",
                    baseline_path.display(),
                    if new.is_empty() {
                        "no".to_owned()
                    } else {
                        new.render().lines().count().saturating_sub(3).to_string()
                    }
                );
                return ExitCode::SUCCESS;
            }
            Err(raised) => {
                for r in raised {
                    eprintln!("simlint: refusing to raise baseline: {r}");
                }
                return ExitCode::FAILURE;
            }
        }
    }

    let outcome: Outcome = baseline.apply(&violations);
    let rendered = match args.format {
        Format::Text => output::render_text(&outcome),
        Format::Json => output::render_json(&outcome),
        Format::Sarif => output::render_sarif(&outcome),
    };
    print!("{rendered}");
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
