#![forbid(unsafe_code)]
//! `simlint` binary: lint the workspace, print violations, exit non-zero
//! if any are found. Usage: `cargo run -p simlint [-- <workspace-root>]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match simlint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("simlint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    match simlint::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("simlint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("simlint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("simlint: {e}");
            ExitCode::from(2)
        }
    }
}
