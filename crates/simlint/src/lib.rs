#![forbid(unsafe_code)]
//! # simlint — in-tree determinism & hygiene static analysis
//!
//! The netsim engine promises bit-reproducible runs; every figure in
//! EXPERIMENTS.md depends on it. This crate is the enforcement arm of
//! that contract: a dependency-free lint pass over the workspace's own
//! sources, run both as a binary (`cargo run -p simlint`) and as a
//! regular `#[test]` so plain `cargo test` keeps the tree clean.
//!
//! It deliberately avoids `syn`/full parsing (the build must work with
//! zero network access). Instead, [`source::MaskedSource`] blanks
//! comment and literal bodies (line structure preserved), and
//! [`items`] builds a brace-matched **item tree** — modules, fns, impl
//! blocks, `use` declarations, with spans, visibility and
//! `#[cfg(test)]` state — over the masked text. Rules are token-level
//! checks that consult the tree to know *where* a token sits, which
//! makes each rule a *conservative heuristic*; see the per-rule docs
//! for exactly what is matched.
//!
//! ## Rules
//!
//! | rule id           | what it enforces |
//! |-------------------|------------------|
//! | `determinism`     | no wall-clock/entropy (`Instant::now`, `SystemTime`, `thread_rng`, `from_entropy`) and no unordered containers (`HashMap`/`HashSet`) in `netsim`, `core`, `transports`, `trace` non-test code |
//! | `panic_hygiene`   | no `unwrap()` / `expect(...)` / `panic!` in library code (binaries, benches and tests may) |
//! | `float_cmp`       | no `==` / `!=` against a floating-point literal |
//! | `forbid_unsafe`   | every crate root starts with `#![forbid(unsafe_code)]` |
//! | `hot_path_alloc`  | no `Box::new` / `Vec::new` / `vec![` / `to_vec()` between hot-path fence pragmas in `netsim` library code (the per-event engine path must reuse pooled/scratch buffers) |
//! | `shared_mut`      | no `static mut`, `Cell`/`RefCell`, `Mutex`/`RwLock`, atomics in the determinism crates — the sharded engine communicates via messages only |
//! | `event_order`     | only the engine's enqueue helpers may push the event heap; the `(time, seq)` FIFO tie-break is engine-internal |
//! | `unit_safety`     | public fns in `netsim`/`core`/`transports` take `SimTime`/`SimDuration`/`Rate` newtypes, not raw `u64`/`f64`, when the parameter name denotes a time or rate |
//! | `rto_common`      | no hand-rolled `TIMER_RTO` arm/service blocks outside `transports::common` |
//! | `assert_msg`      | every `assert!` / `debug_assert!` in the determinism crates carries a message string naming the violated invariant (`assert_eq!`/`assert_ne!` print both operands already and are exempt) |
//! | `pragma_hygiene`  | an `allow(...)` pragma that suppresses nothing (or names an unknown rule/directive) is itself a violation |
//! | `paper_constants` | λ_LCP = 0.1 < λ_HCP = 0.17 (Eq. 3) and the 1-ACK-per-2-LCP-packets constant match DESIGN.md |
//! | `trace_schema`    | every `TraceEvent` variant has a `kind()` arm and a JSONL encoder arm in `encode_line` (`crates/trace/src/event.rs`) |
//!
//! ## Pragmas
//!
//! A violation on a line carrying `// simlint: allow(<rule>)` is
//! suppressed; an *own-line* pragma suppresses the line directly below
//! it (rustfmt splits long lines, so the pragma rides above). Pragmas
//! are recognized only in real comments — pragma-shaped text inside a
//! string literal does nothing. Per-line and per-rule; `allow(all)` is
//! intentionally not supported — name the rule you are overriding. A
//! pragma that suppresses nothing is flagged by `pragma_hygiene`
//! (escape hatch: include `pragma_hygiene` in the same `allow(...)`).
//!
//! ## Baseline / ratchet
//!
//! `simlint.baseline` at the workspace root tolerates pre-existing
//! findings per `(rule, file)`; counts may only decrease. See
//! [`baseline`] for the exact semantics.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod items;
pub mod output;
pub mod rules;
pub mod source;
pub mod walk;

pub use baseline::{Baseline, Outcome};
pub use items::ItemTree;
pub use rules::{Findings, Rule, ALL_RULES, RULE_TABLE};
pub use source::MaskedSource;

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.id(), self.message)
    }
}

/// How a file participates in the rule set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileClass {
    /// Crate directory name under `crates/` (e.g. "netsim"), if any.
    pub in_determinism_scope: bool,
    /// Library (non-bin, non-test, non-bench, non-example) source.
    pub is_library: bool,
    /// Crate root (`src/lib.rs`, or `src/main.rs` for pure binaries).
    pub is_crate_root: bool,
}

/// Crates whose non-test code must be free of wall-clock randomness and
/// unordered-container iteration (the simulation result path).
pub const DETERMINISM_CRATES: &[&str] = &["netsim", "core", "transports", "trace"];

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = if parts.len() >= 2 && parts[0] == "crates" { Some(parts[1]) } else { None };
    let under_src = parts.len() >= 3 && parts.get(2) == Some(&"src");
    let is_bin = rel_path.contains("/src/bin/") || rel_path.ends_with("/main.rs");
    let is_library = under_src && !is_bin;
    let is_crate_root =
        under_src && parts.len() == 4 && (parts[3] == "lib.rs" || parts[3] == "main.rs");
    let in_determinism_scope =
        is_library && crate_name.is_some_and(|c| DETERMINISM_CRATES.contains(&c));
    FileClass { in_determinism_scope, is_library, is_crate_root }
}

/// Lint a single file's contents. `rel_path` is the workspace-relative
/// path used both for scoping and reporting.
pub fn lint_source(rel_path: &str, content: &str) -> Vec<Violation> {
    let class = classify(rel_path);
    let masked = MaskedSource::new(content);
    let mut findings = Findings::new();
    for rule in ALL_RULES {
        rule.check(rel_path, class, &masked, &mut findings);
    }
    findings.violations
}

/// Lint every workspace source file under `root`, plus the cross-file
/// paper-constant checks. Output is sorted (file, line, rule, message)
/// so reports are deterministic.
pub fn lint_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let mut files = walk::rust_sources(&root.join("crates"))?;
    files.sort();
    let mut out = Vec::new();
    for path in &files {
        let rel = relative_to(path, root);
        let content =
            std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        out.extend(lint_source(&rel, &content));
    }
    rules::check_paper_constants(root, &mut out);
    rules::check_trace_schema(root, &mut out);
    output::sort_violations(&mut out);
    Ok(out)
}

/// Name of the ratchet file at the workspace root.
pub const BASELINE_FILE: &str = "simlint.baseline";

/// The full gate: lint the workspace and apply the baseline ratchet.
/// This is what both the CLI and the in-test `workspace_is_clean` check
/// run, so `cargo test` and CI cannot disagree.
pub fn gate(root: &Path) -> Result<Outcome, String> {
    let violations = lint_workspace(root)?;
    let baseline = Baseline::load(&root.join(BASELINE_FILE))?;
    Ok(baseline.apply(&violations))
}

fn relative_to(path: &Path, root: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    // Normalize to forward slashes for stable reporting across hosts.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locate the workspace root from a starting directory by looking for
/// the top-level `Cargo.toml` containing `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}
