//! The violation baseline / ratchet.
//!
//! `simlint.baseline` at the workspace root records, per `(rule, file)`
//! pair, how many violations are tolerated. The gate then enforces a
//! one-way ratchet:
//!
//! - **count above baseline** → regression, gate fails;
//! - **count below baseline** → the baseline is stale: the gate fails
//!   with an instruction to run `--write-baseline`, which records the
//!   lower count — so improvements are locked in, not silently loanable
//!   to future regressions;
//! - `--write-baseline` refuses to *raise* any existing entry. Existing
//!   counts only go down; the only way to add headroom for a tracked
//!   pair is to fix the code.
//!
//! The file format is line-oriented and diff-friendly:
//! `<rule_id> <count> <file>`, sorted, `#` comments ignored.

use std::collections::BTreeMap;
use std::path::Path;

use crate::Violation;

const HEADER: &str = "\
# simlint baseline: tolerated violation counts, per `<rule> <count> <file>`.
# The gate fails if any count rises OR falls (run with --write-baseline to
# ratchet a fallen count down). Counts never increase.
";

/// Tolerated violation counts, keyed by `(rule_id, file)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

/// Result of checking current violations against a [`Baseline`].
#[derive(Debug, Default)]
pub struct Outcome {
    /// Violations not covered by the baseline (their `(rule, file)`
    /// group is over budget; the whole group is reported).
    pub fresh: Vec<Violation>,
    /// Human-readable notes for groups whose count rose above baseline.
    pub regressions: Vec<String>,
    /// Notes for baseline entries whose count fell (or hit zero): the
    /// ratchet demands the baseline be rewritten downward.
    pub stale: Vec<String>,
}

impl Outcome {
    /// The gate passes only with no fresh violations, no regressions and
    /// no stale entries.
    pub fn is_clean(&self) -> bool {
        self.fresh.is_empty() && self.regressions.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Read the baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let (rule, count, file) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(c), Some(f)) => (r, c, f),
                _ => return Err(format!("line {}: expected `<rule> <count> <file>`", idx + 1)),
            };
            let count: usize =
                count.parse().map_err(|_| format!("line {}: bad count `{count}`", idx + 1))?;
            if count == 0 {
                return Err(format!("line {}: zero-count entries must be removed", idx + 1));
            }
            if entries.insert((rule.to_owned(), file.to_owned()), count).is_some() {
                return Err(format!("line {}: duplicate entry `{rule} {file}`", idx + 1));
            }
        }
        Ok(Baseline { entries })
    }

    /// Snapshot the current violations as a baseline, enforcing the
    /// ratchet against `old`: an existing entry's count may not rise.
    /// New `(rule, file)` pairs are allowed — that is how a freshly
    /// landed rule adopts its pre-existing findings.
    pub fn ratcheted_from(old: &Baseline, violations: &[Violation]) -> Result<Self, Vec<String>> {
        let new = Self::from_violations(violations);
        let raised: Vec<String> = new
            .entries
            .iter()
            .filter_map(|((rule, file), &count)| {
                let prior = *old.entries.get(&(rule.clone(), file.clone()))?;
                (count > prior).then(|| {
                    format!("{rule} {file}: baseline would rise {prior} -> {count}; fix the code instead")
                })
            })
            .collect();
        if raised.is_empty() {
            Ok(new)
        } else {
            Err(raised)
        }
    }

    /// Current violation counts grouped per `(rule, file)`.
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in violations {
            *entries.entry((v.rule.id().to_owned(), v.file.clone())).or_default() += 1;
        }
        Baseline { entries }
    }

    /// Serialize (sorted, stable across runs).
    pub fn render(&self) -> String {
        let mut out = String::from(HEADER);
        for ((rule, file), count) in &self.entries {
            out.push_str(&format!("{rule} {count} {file}\n"));
        }
        out
    }

    /// Split current violations into baseline-covered and gate-failing.
    pub fn apply(&self, violations: &[Violation]) -> Outcome {
        let current = Self::from_violations(violations);
        let mut outcome = Outcome::default();
        for (key, &count) in &current.entries {
            let budget = self.entries.get(key).copied().unwrap_or(0);
            if count > budget {
                if budget > 0 {
                    outcome.regressions.push(format!(
                        "{} {}: {count} violation(s), baseline tolerates {budget}",
                        key.0, key.1
                    ));
                }
                outcome.fresh.extend(
                    violations.iter().filter(|v| v.rule.id() == key.0 && v.file == key.1).cloned(),
                );
            } else if count < budget {
                outcome.stale.push(format!(
                    "{} {}: baseline tolerates {budget} but only {count} found; \
                     run `cargo run -p simlint -- --write-baseline` to ratchet down",
                    key.0, key.1
                ));
            }
        }
        for (key, &budget) in &self.entries {
            if !current.entries.contains_key(key) {
                outcome.stale.push(format!(
                    "{} {}: baseline tolerates {budget} but none found; \
                     run `cargo run -p simlint -- --write-baseline` to ratchet down",
                    key.0, key.1
                ));
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn v(rule: Rule, file: &str, line: usize) -> Violation {
        Violation { file: file.into(), line, rule, message: "m".into() }
    }

    #[test]
    fn parse_render_round_trip() {
        let b = Baseline::parse("# c\nshared_mut 2 crates/a.rs\nunit_safety 1 crates/b.rs\n")
            .expect("parses");
        let again = Baseline::parse(&b.render()).expect("round-trips");
        assert_eq!(b, again);
    }

    #[test]
    fn parse_rejects_bad_lines() {
        assert!(Baseline::parse("shared_mut crates/a.rs").is_err());
        assert!(Baseline::parse("shared_mut x crates/a.rs").is_err());
        assert!(Baseline::parse("shared_mut 0 crates/a.rs").is_err());
        assert!(Baseline::parse("r 1 f\nr 2 f\n").is_err());
    }

    #[test]
    fn apply_flags_fresh_regressed_and_stale() {
        let base = Baseline::parse("shared_mut 2 a.rs\nunit_safety 1 b.rs\n").expect("parses");
        // a.rs regressed 2 -> 3; b.rs improved 1 -> 0; c.rs is brand new.
        let current = vec![
            v(Rule::SharedMut, "a.rs", 1),
            v(Rule::SharedMut, "a.rs", 2),
            v(Rule::SharedMut, "a.rs", 3),
            v(Rule::RtoCommon, "c.rs", 9),
        ];
        let out = base.apply(&current);
        assert!(!out.is_clean());
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.fresh.len(), 4, "regressed group + new group: {:?}", out.fresh);
    }

    #[test]
    fn apply_is_clean_at_exact_counts() {
        let base = Baseline::parse("shared_mut 2 a.rs\n").expect("parses");
        let current = vec![v(Rule::SharedMut, "a.rs", 1), v(Rule::SharedMut, "a.rs", 2)];
        assert!(base.apply(&current).is_clean());
    }

    #[test]
    fn ratchet_refuses_to_raise_an_existing_entry() {
        let old = Baseline::parse("shared_mut 1 a.rs\n").expect("parses");
        let current = vec![v(Rule::SharedMut, "a.rs", 1), v(Rule::SharedMut, "a.rs", 2)];
        assert!(Baseline::ratcheted_from(&old, &current).is_err());
        // But a brand-new pair may be adopted, and a drop is recorded.
        let adopted = Baseline::ratcheted_from(&old, &[v(Rule::UnitSafety, "n.rs", 5)])
            .expect("new pair + ratchet down");
        assert_eq!(adopted, Baseline::parse("unit_safety 1 n.rs\n").expect("parses"));
    }
}
