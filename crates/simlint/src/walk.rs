//! Deterministic recursive `.rs` collector.

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Collect every `.rs` file under `root`, recursively, in sorted order.
pub fn rust_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    collect(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if name.as_deref().is_some_and(|n| SKIP_DIRS.contains(&n)) {
                continue;
            }
            collect(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_finds_this_crate_sorted() {
        let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let found = rust_sources(&src).expect("walk simlint src");
        let names: Vec<String> = found
            .iter()
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        assert!(names.contains(&"lib.rs".to_owned()));
        assert!(names.contains(&"rules.rs".to_owned()));
        let mut sorted = found.clone();
        sorted.sort();
        assert_eq!(found, sorted);
    }
}
