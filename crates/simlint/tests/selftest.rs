//! Fixture-driven proof that each rule fires on a violation and is
//! suppressed by its `// simlint: allow(<rule>)` pragma — plus the gate
//! test that keeps the real workspace clean.

use std::path::Path;

use simlint::{classify, lint_source, lint_workspace, Rule};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn lines_for(violations: &[simlint::Violation], rule: Rule) -> Vec<usize> {
    violations.iter().filter(|v| v.rule == rule).map(|v| v.line).collect()
}

#[test]
fn determinism_rule_fires_and_respects_pragma() {
    let src = fixture("determinism.rs");
    // In scope: a library file of an engine-path crate.
    let v = lint_source("crates/netsim/src/fixture.rs", &src);
    let lines = lines_for(&v, Rule::Determinism);
    // `use std::collections::HashMap`, `use std::time::Instant`, the two
    // bad fn bodies and signatures fire; the pragma'd pair and the
    // #[cfg(test)] block do not.
    assert!(lines.contains(&2), "use HashMap must fire: {v:?}");
    assert!(lines.contains(&3), "use Instant must fire: {v:?}");
    assert!(lines.contains(&6), "Instant::now() must fire: {v:?}");
    assert!(lines.contains(&10), "HashMap::new() must fire: {v:?}");
    assert!(!lines.contains(&13), "pragma line must be suppressed: {v:?}");
    assert!(!lines.contains(&14), "pragma line must be suppressed: {v:?}");
    assert!(!lines.iter().any(|&l| l >= 17), "cfg(test) block is exempt: {v:?}");

    // Out of scope: same content in a non-engine crate is clean.
    let v = lint_source("crates/workloads/src/fixture.rs", &src);
    assert!(lines_for(&v, Rule::Determinism).is_empty());
}

#[test]
fn panic_hygiene_rule_fires_and_respects_pragma() {
    let src = fixture("panic_hygiene.rs");
    let v = lint_source("crates/stats/src/fixture.rs", &src);
    let lines = lines_for(&v, Rule::PanicHygiene);
    assert!(lines.contains(&3), "unwrap() must fire: {v:?}");
    assert!(lines.contains(&7), "expect() must fire: {v:?}");
    assert!(lines.contains(&11), "panic! must fire: {v:?}");
    assert!(!lines.contains(&16), "pragma line must be suppressed: {v:?}");
    assert!(!lines.contains(&20), "unwrap_or / unwrap_or_default are fine: {v:?}");
    assert!(!lines.iter().any(|&l| l >= 23), "cfg(test) block is exempt: {v:?}");

    // Binaries are exempt.
    let v = lint_source("crates/pptlab/src/main.rs", &src);
    assert!(lines_for(&v, Rule::PanicHygiene).is_empty());
}

#[test]
fn float_cmp_rule_fires_and_respects_pragma() {
    let src = fixture("float_cmp.rs");
    let v = lint_source("crates/core/src/fixture.rs", &src);
    let lines = lines_for(&v, Rule::FloatCmp);
    assert!(lines.contains(&3), "x == 1.0 must fire: {v:?}");
    assert!(lines.contains(&7), "0.17 != x must fire: {v:?}");
    assert!(!lines.contains(&11), "pragma line must be suppressed: {v:?}");
    assert!(!lines.contains(&15), "integer == is fine: {v:?}");
    assert!(!lines.contains(&19), "<= and >= are fine: {v:?}");
}

#[test]
fn hot_path_alloc_rule_fires_and_respects_pragma() {
    let src = fixture("hot_path_alloc.rs");
    let v = lint_source("crates/netsim/src/fixture.rs", &src);
    let lines = lines_for(&v, Rule::HotPathAlloc);
    // Box::new / Vec::new / vec![ / to_vec() inside the fence fire; the
    // allocation before the fence (line 4), the pragma'd line (13) and
    // the one after the close marker (19) do not.
    assert_eq!(lines, vec![9, 10, 11, 12], "fenced allocations must fire: {v:?}");

    // Out of scope: the same content outside netsim is clean.
    let v = lint_source("crates/ppt/src/fixture.rs", &src);
    assert!(lines_for(&v, Rule::HotPathAlloc).is_empty());

    // Non-library netsim files (tests, benches) are exempt.
    let v = lint_source("crates/netsim/tests/fixture.rs", &src);
    assert!(lines_for(&v, Rule::HotPathAlloc).is_empty());

    // An unclosed fence is itself a violation, reported at the opener —
    // a typo'd end marker must not silently extend the banned region.
    let unclosed = "// simlint: hot-path\npub fn f() {}\n";
    let v = lint_source("crates/netsim/src/fixture.rs", unclosed);
    assert_eq!(lines_for(&v, Rule::HotPathAlloc), vec![1], "unclosed fence must fire: {v:?}");
}

#[test]
fn forbid_unsafe_rule_checks_crate_roots_only() {
    let bare = "pub fn f() {}\n";
    let v = lint_source("crates/foo/src/lib.rs", bare);
    assert!(
        v.iter().any(|v| v.rule == Rule::ForbidUnsafe),
        "crate root without the attribute must fire: {v:?}"
    );

    let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    let v = lint_source("crates/foo/src/lib.rs", good);
    assert!(v.iter().all(|v| v.rule != Rule::ForbidUnsafe), "attribute satisfies: {v:?}");

    // Non-root files don't need the attribute.
    let v = lint_source("crates/foo/src/inner.rs", bare);
    assert!(v.iter().all(|v| v.rule != Rule::ForbidUnsafe));
}

#[test]
fn comments_and_strings_cannot_fire_rules() {
    let src = "#![forbid(unsafe_code)]\n\
               // HashMap::new() and Instant::now() and x.unwrap() in prose\n\
               pub const DOC: &str = \"panic! == 1.0 HashMap\";\n";
    let v = lint_source("crates/netsim/src/lib.rs", src);
    assert!(v.is_empty(), "masked text must not fire: {v:?}");
}

#[test]
fn classification_matches_layout() {
    assert!(classify("crates/netsim/src/engine.rs").in_determinism_scope);
    assert!(classify("crates/core/src/ecn.rs").in_determinism_scope);
    assert!(!classify("crates/workloads/src/dist.rs").in_determinism_scope);
    assert!(!classify("crates/netsim/tests/engine_props.rs").is_library);
    assert!(!classify("crates/pptlab/src/main.rs").is_library);
    assert!(classify("crates/pptlab/src/main.rs").is_crate_root);
    assert!(classify("crates/netsim/src/lib.rs").is_crate_root);
    assert!(!classify("crates/netsim/src/rng.rs").is_crate_root);
}

#[test]
fn paper_constants_fire_on_drift() {
    let tmp = std::env::temp_dir().join(format!("simlint-selftest-{}", std::process::id()));
    let core_src = tmp.join("crates/core/src");
    std::fs::create_dir_all(&core_src).expect("mkdir fixture tree");
    std::fs::write(
        core_src.join("ecn.rs"),
        "pub const LAMBDA_HIGH: f64 = 0.20;\npub const LAMBDA_LOW: f64 = 0.1;\n",
    )
    .expect("write ecn fixture");
    std::fs::write(core_src.join("lcp.rs"), "pub const LCP_PACKETS_PER_ACK: u32 = 3;\n")
        .expect("write lcp fixture");
    // Lambda defaults re-encoded as literals instead of the ecn constants.
    std::fs::write(core_src.join("config.rs"), "pub fn lambda_high() -> f64 { 0.17 }\n")
        .expect("write config fixture");

    let mut out = Vec::new();
    simlint::rules::check_paper_constants(&tmp, &mut out);
    assert!(
        out.iter().any(|v| v.rule == Rule::PaperConstants && v.message.contains("LAMBDA_HIGH")),
        "drifted LAMBDA_HIGH must fire: {out:?}"
    );
    assert!(
        out.iter()
            .any(|v| v.rule == Rule::PaperConstants && v.message.contains("LCP_PACKETS_PER_ACK")),
        "drifted LCP_PACKETS_PER_ACK must fire: {out:?}"
    );
    assert!(
        out.iter()
            .any(|v| v.rule == Rule::PaperConstants && v.message.contains("ecn::LAMBDA_HIGH")),
        "config.rs not wired to ecn constants must fire: {out:?}"
    );
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn trace_schema_fires_on_missing_encoder_arm() {
    let tmp = std::env::temp_dir().join(format!("simlint-traceschema-{}", std::process::id()));
    let trace_src = tmp.join("crates/trace/src");
    std::fs::create_dir_all(&trace_src).expect("mkdir fixture tree");
    let broken = "\
pub enum TraceEvent {
    FlowStart { flow: u64 },
    Orphan { flow: u64 },
}

pub fn encode_line(out: &mut String, at: u64, ev: &TraceEvent) {
    match ev {
        TraceEvent::FlowStart { flow } => {}
        _ => {}
    }
}
";
    std::fs::write(trace_src.join("event.rs"), broken).expect("write event fixture");
    let mut out = Vec::new();
    simlint::rules::check_trace_schema(&tmp, &mut out);
    assert!(
        out.iter().any(|v| v.rule == Rule::TraceSchema && v.message.contains("Orphan")),
        "variant without an encoder arm must fire: {out:?}"
    );
    assert!(
        !out.iter().any(|v| v.message.contains("FlowStart")),
        "encoded variant must not fire: {out:?}"
    );

    // Fixed: every variant has an arm → clean.
    let fixed = broken.replace("_ => {}", "TraceEvent::Orphan { flow } => {}");
    std::fs::write(trace_src.join("event.rs"), fixed).expect("write fixed fixture");
    let mut out = Vec::new();
    simlint::rules::check_trace_schema(&tmp, &mut out);
    assert!(out.is_empty(), "complete encoder must be clean: {out:?}");
    std::fs::remove_dir_all(&tmp).ok();
}

/// THE gate: the real workspace must be violation-free. This is what
/// wires simlint into plain `cargo test`.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("simlint lives at <root>/crates/simlint");
    let violations = lint_workspace(root).expect("lint workspace");
    assert!(
        violations.is_empty(),
        "simlint found {} violation(s):\n{}",
        violations.len(),
        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}
