//! Fixture-driven proof that each rule fires on a violation and is
//! suppressed by its `// simlint: allow(<rule>)` pragma — plus the gate
//! test that keeps the real workspace clean.

use std::path::Path;

use simlint::{classify, lint_source, Baseline, Rule};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn lines_for(violations: &[simlint::Violation], rule: Rule) -> Vec<usize> {
    violations.iter().filter(|v| v.rule == rule).map(|v| v.line).collect()
}

#[test]
fn determinism_rule_fires_and_respects_pragma() {
    let src = fixture("determinism.rs");
    // In scope: a library file of an engine-path crate.
    let v = lint_source("crates/netsim/src/fixture.rs", &src);
    let lines = lines_for(&v, Rule::Determinism);
    // `use std::collections::HashMap`, `use std::time::Instant`, the two
    // bad fn bodies and signatures fire; the pragma'd pair and the
    // #[cfg(test)] block do not.
    assert!(lines.contains(&2), "use HashMap must fire: {v:?}");
    assert!(lines.contains(&3), "use Instant must fire: {v:?}");
    assert!(lines.contains(&6), "Instant::now() must fire: {v:?}");
    assert!(lines.contains(&10), "HashMap::new() must fire: {v:?}");
    assert!(!lines.contains(&13), "pragma line must be suppressed: {v:?}");
    assert!(!lines.contains(&14), "pragma line must be suppressed: {v:?}");
    assert!(!lines.iter().any(|&l| l >= 17), "cfg(test) block is exempt: {v:?}");

    // Out of scope: same content in a non-engine crate is clean.
    let v = lint_source("crates/workloads/src/fixture.rs", &src);
    assert!(lines_for(&v, Rule::Determinism).is_empty());
}

#[test]
fn panic_hygiene_rule_fires_and_respects_pragma() {
    let src = fixture("panic_hygiene.rs");
    let v = lint_source("crates/stats/src/fixture.rs", &src);
    let lines = lines_for(&v, Rule::PanicHygiene);
    assert!(lines.contains(&3), "unwrap() must fire: {v:?}");
    assert!(lines.contains(&7), "expect() must fire: {v:?}");
    assert!(lines.contains(&11), "panic! must fire: {v:?}");
    assert!(!lines.contains(&16), "pragma line must be suppressed: {v:?}");
    assert!(!lines.contains(&20), "unwrap_or / unwrap_or_default are fine: {v:?}");
    assert!(!lines.iter().any(|&l| l >= 23), "cfg(test) block is exempt: {v:?}");

    // Binaries are exempt.
    let v = lint_source("crates/pptlab/src/main.rs", &src);
    assert!(lines_for(&v, Rule::PanicHygiene).is_empty());
}

#[test]
fn float_cmp_rule_fires_and_respects_pragma() {
    let src = fixture("float_cmp.rs");
    let v = lint_source("crates/core/src/fixture.rs", &src);
    let lines = lines_for(&v, Rule::FloatCmp);
    assert!(lines.contains(&3), "x == 1.0 must fire: {v:?}");
    assert!(lines.contains(&7), "0.17 != x must fire: {v:?}");
    assert!(!lines.contains(&11), "pragma line must be suppressed: {v:?}");
    assert!(!lines.contains(&15), "integer == is fine: {v:?}");
    assert!(!lines.contains(&19), "<= and >= are fine: {v:?}");
}

#[test]
fn hot_path_alloc_rule_fires_and_respects_pragma() {
    let src = fixture("hot_path_alloc.rs");
    let v = lint_source("crates/netsim/src/fixture.rs", &src);
    let lines = lines_for(&v, Rule::HotPathAlloc);
    // Box::new / Vec::new / vec![ / to_vec() inside the fence fire; the
    // allocation before the fence (line 4), the pragma'd line (13) and
    // the one after the close marker (19) do not.
    assert_eq!(lines, vec![9, 10, 11, 12], "fenced allocations must fire: {v:?}");

    // Out of scope: the same content outside netsim is clean.
    let v = lint_source("crates/ppt/src/fixture.rs", &src);
    assert!(lines_for(&v, Rule::HotPathAlloc).is_empty());

    // Non-library netsim files (tests, benches) are exempt.
    let v = lint_source("crates/netsim/tests/fixture.rs", &src);
    assert!(lines_for(&v, Rule::HotPathAlloc).is_empty());

    // An unclosed fence is itself a violation, reported at the opener —
    // a typo'd end marker must not silently extend the banned region.
    let unclosed = "// simlint: hot-path\npub fn f() {}\n";
    let v = lint_source("crates/netsim/src/fixture.rs", unclosed);
    assert_eq!(lines_for(&v, Rule::HotPathAlloc), vec![1], "unclosed fence must fire: {v:?}");
}

#[test]
fn forbid_unsafe_rule_checks_crate_roots_only() {
    let bare = "pub fn f() {}\n";
    let v = lint_source("crates/foo/src/lib.rs", bare);
    assert!(
        v.iter().any(|v| v.rule == Rule::ForbidUnsafe),
        "crate root without the attribute must fire: {v:?}"
    );

    let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    let v = lint_source("crates/foo/src/lib.rs", good);
    assert!(v.iter().all(|v| v.rule != Rule::ForbidUnsafe), "attribute satisfies: {v:?}");

    // Non-root files don't need the attribute.
    let v = lint_source("crates/foo/src/inner.rs", bare);
    assert!(v.iter().all(|v| v.rule != Rule::ForbidUnsafe));
}

#[test]
fn comments_and_strings_cannot_fire_rules() {
    let src = "#![forbid(unsafe_code)]\n\
               // HashMap::new() and Instant::now() and x.unwrap() in prose\n\
               pub const DOC: &str = \"panic! == 1.0 HashMap\";\n";
    let v = lint_source("crates/netsim/src/lib.rs", src);
    assert!(v.is_empty(), "masked text must not fire: {v:?}");
}

#[test]
fn classification_matches_layout() {
    assert!(classify("crates/netsim/src/engine.rs").in_determinism_scope);
    assert!(classify("crates/core/src/ecn.rs").in_determinism_scope);
    assert!(!classify("crates/workloads/src/dist.rs").in_determinism_scope);
    assert!(!classify("crates/netsim/tests/engine_props.rs").is_library);
    assert!(!classify("crates/pptlab/src/main.rs").is_library);
    assert!(classify("crates/pptlab/src/main.rs").is_crate_root);
    assert!(classify("crates/netsim/src/lib.rs").is_crate_root);
    assert!(!classify("crates/netsim/src/rng.rs").is_crate_root);
}

#[test]
fn paper_constants_fire_on_drift() {
    let tmp = std::env::temp_dir().join(format!("simlint-selftest-{}", std::process::id()));
    let core_src = tmp.join("crates/core/src");
    std::fs::create_dir_all(&core_src).expect("mkdir fixture tree");
    std::fs::write(
        core_src.join("ecn.rs"),
        "pub const LAMBDA_HIGH: f64 = 0.20;\npub const LAMBDA_LOW: f64 = 0.1;\n",
    )
    .expect("write ecn fixture");
    std::fs::write(core_src.join("lcp.rs"), "pub const LCP_PACKETS_PER_ACK: u32 = 3;\n")
        .expect("write lcp fixture");
    // Lambda defaults re-encoded as literals instead of the ecn constants.
    std::fs::write(core_src.join("config.rs"), "pub fn lambda_high() -> f64 { 0.17 }\n")
        .expect("write config fixture");

    let mut out = Vec::new();
    simlint::rules::check_paper_constants(&tmp, &mut out);
    assert!(
        out.iter().any(|v| v.rule == Rule::PaperConstants && v.message.contains("LAMBDA_HIGH")),
        "drifted LAMBDA_HIGH must fire: {out:?}"
    );
    assert!(
        out.iter()
            .any(|v| v.rule == Rule::PaperConstants && v.message.contains("LCP_PACKETS_PER_ACK")),
        "drifted LCP_PACKETS_PER_ACK must fire: {out:?}"
    );
    assert!(
        out.iter()
            .any(|v| v.rule == Rule::PaperConstants && v.message.contains("ecn::LAMBDA_HIGH")),
        "config.rs not wired to ecn constants must fire: {out:?}"
    );
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn trace_schema_fires_on_missing_encoder_arm() {
    let tmp = std::env::temp_dir().join(format!("simlint-traceschema-{}", std::process::id()));
    let trace_src = tmp.join("crates/trace/src");
    std::fs::create_dir_all(&trace_src).expect("mkdir fixture tree");
    let broken = "\
pub enum TraceEvent {
    FlowStart { flow: u64 },
    Orphan { flow: u64 },
}

impl TraceEvent {
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FlowStart { .. } => \"flow_start\",
            TraceEvent::Orphan { .. } => \"orphan\",
        }
    }
}

pub fn encode_line(out: &mut String, at: u64, ev: &TraceEvent) {
    match ev {
        TraceEvent::FlowStart { flow } => {}
        _ => {}
    }
}
";
    std::fs::write(trace_src.join("event.rs"), broken).expect("write event fixture");
    let mut out = Vec::new();
    simlint::rules::check_trace_schema(&tmp, &mut out);
    assert!(
        out.iter().any(|v| v.rule == Rule::TraceSchema && v.message.contains("Orphan")),
        "variant without an encoder arm must fire: {out:?}"
    );
    assert!(
        !out.iter().any(|v| v.message.contains("FlowStart")),
        "encoded variant must not fire: {out:?}"
    );

    // A variant with an encoder arm but no kind() arm must also fire —
    // both halves of the schema are checked independently.
    let kindless = broken.replace("            TraceEvent::Orphan { .. } => \"orphan\",\n", "");
    let kindless = kindless.replace("_ => {}", "TraceEvent::Orphan { flow } => {}");
    std::fs::write(trace_src.join("event.rs"), kindless).expect("write kindless fixture");
    let mut out = Vec::new();
    simlint::rules::check_trace_schema(&tmp, &mut out);
    assert!(
        out.iter().any(|v| v.rule == Rule::TraceSchema
            && v.message.contains("Orphan")
            && v.message.contains("kind()")),
        "variant without a kind() arm must fire: {out:?}"
    );

    // Fixed: every variant has both arms → clean.
    let fixed = broken.replace("_ => {}", "TraceEvent::Orphan { flow } => {}");
    std::fs::write(trace_src.join("event.rs"), fixed).expect("write fixed fixture");
    let mut out = Vec::new();
    simlint::rules::check_trace_schema(&tmp, &mut out);
    assert!(out.is_empty(), "complete encoder must be clean: {out:?}");
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn masking_cannot_hide_or_host_violations() {
    let src = fixture("masking.rs");
    let v = lint_source("crates/netsim/src/fixture.rs", &src);
    let det = lines_for(&v, Rule::Determinism);
    // Tokens inside raw strings (4, 5), the nested block comment (7) and
    // the escaped-newline continuation (8–9) must not fire…
    for hidden in [4usize, 5, 7, 8, 9] {
        assert!(!det.contains(&hidden), "line {hidden} is literal/comment text: {v:?}");
    }
    // …while the real code after them fires at exactly the right lines —
    // proving the continuation did not shift line numbers.
    assert_eq!(det, vec![11, 12], "code after the literals must fire: {v:?}");
    assert!(lines_for(&v, Rule::PanicHygiene).is_empty(), "panic! only in literals: {v:?}");
}

#[test]
fn shared_mut_rule_fires_and_respects_pragma() {
    let pos = fixture("shared_mut_pos.rs");
    let v = lint_source("crates/netsim/src/fixture.rs", &pos);
    let lines = lines_for(&v, Rule::SharedMut);
    assert_eq!(lines, vec![2, 3, 4, 7, 8, 9, 12], "uses, fields and static mut: {v:?}");

    // Out of determinism scope the same content is clean.
    let v = lint_source("crates/workloads/src/fixture.rs", &pos);
    assert!(lines_for(&v, Rule::SharedMut).is_empty());

    let neg = fixture("shared_mut_neg.rs");
    let v = lint_source("crates/netsim/src/fixture.rs", &neg);
    assert!(lines_for(&v, Rule::SharedMut).is_empty(), "owned/pragma'd/test state: {v:?}");
    assert!(lines_for(&v, Rule::PragmaHygiene).is_empty(), "the pragma is used: {v:?}");
}

#[test]
fn event_order_rule_fires_and_respects_engine_allowlist() {
    let pos = fixture("event_order_pos.rs");
    let v = lint_source("crates/netsim/src/fixture.rs", &pos);
    let lines = lines_for(&v, Rule::EventOrder);
    assert!(lines.contains(&2), "BinaryHeap use outside engine: {v:?}");
    assert!(lines.contains(&5), "BinaryHeap field outside engine: {v:?}");
    assert!(lines.contains(&10), "heap.push outside engine: {v:?}");

    // The identical enqueue helpers are legal only inside engine.rs.
    let neg = fixture("event_order_neg.rs");
    let v = lint_source("crates/netsim/src/engine.rs", &neg);
    assert!(lines_for(&v, Rule::EventOrder).is_empty(), "schedule/run may push: {v:?}");
    let v = lint_source("crates/netsim/src/fixture.rs", &neg);
    assert!(!lines_for(&v, Rule::EventOrder).is_empty(), "same code elsewhere fires");

    // Inside engine.rs, a push from any other fn still fires.
    let rogue = "pub struct E { heap: std::collections::BinaryHeap<u64> }\n\
                 impl E {\n    pub fn sneak(&mut self) {\n        self.heap.push(1);\n    }\n}\n";
    let v = lint_source("crates/netsim/src/engine.rs", rogue);
    assert_eq!(lines_for(&v, Rule::EventOrder), vec![4], "push outside schedule/run: {v:?}");
}

#[test]
fn unit_safety_rule_fires_on_raw_typed_signatures() {
    let pos = fixture("unit_safety_pos.rs");
    let v = lint_source("crates/transports/src/fixture.rs", &pos);
    let lines = lines_for(&v, Rule::UnitSafety);
    assert!(lines.contains(&2), "deadline: u64 must fire: {v:?}");
    assert!(lines.contains(&6), "rate_bps: f64 / gap_ns: u64 must fire: {v:?}");
    assert!(lines.contains(&13), "timeout_us: u64 in an impl must fire: {v:?}");

    // Out of scope crates and the newtype-defining files are exempt.
    let v = lint_source("crates/workloads/src/fixture.rs", &pos);
    assert!(lines_for(&v, Rule::UnitSafety).is_empty());
    let v = lint_source("crates/netsim/src/time.rs", &pos);
    assert!(lines_for(&v, Rule::UnitSafety).is_empty(), "newtype constructors are exempt");

    let neg = fixture("unit_safety_neg.rs");
    let v = lint_source("crates/transports/src/fixture.rs", &neg);
    assert!(lines_for(&v, Rule::UnitSafety).is_empty(), "newtyped/private/byte-count: {v:?}");
}

#[test]
fn rto_common_rule_fires_outside_owner_files() {
    let pos = fixture("rto_common_pos.rs");
    let v = lint_source("crates/transports/src/fixture.rs", &pos);
    let lines = lines_for(&v, Rule::RtoCommon);
    assert!(!lines.contains(&2), "the use line is allowed: {v:?}");
    assert!(lines.contains(&5), "rto_token( call must fire: {v:?}");
    assert!(lines.contains(&9), "Token {{ kind: TIMER_RTO }} must fire: {v:?}");
    assert!(lines.contains(&13), ".on_rto( call must fire: {v:?}");

    // The owner files may do all of this.
    let v = lint_source("crates/transports/src/common.rs", &pos);
    assert!(lines_for(&v, Rule::RtoCommon).is_empty(), "common.rs owns the machinery");
    let v = lint_source("crates/transports/src/tcp_base.rs", &pos);
    assert!(lines_for(&v, Rule::RtoCommon).is_empty(), "tcp_base.rs owns the state machine");

    let neg = fixture("rto_common_neg.rs");
    let v = lint_source("crates/transports/src/fixture.rs", &neg);
    assert!(lines_for(&v, Rule::RtoCommon).is_empty(), "match arms and compares: {v:?}");
}

#[test]
fn assert_msg_rule_fires_on_messageless_asserts() {
    let src = fixture("assert_msg.rs");
    let v = lint_source("crates/netsim/src/fixture.rs", &src);
    let lines = lines_for(&v, Rule::AssertMsg);
    // The bare single-line asserts (2, 3) and the bare multi-line one
    // (11) fire; messaged asserts, assert_eq!, the pragma'd line and the
    // #[cfg(test)] block do not.
    assert_eq!(lines, vec![2, 3, 11], "bare asserts must fire: {v:?}");
    assert!(lines_for(&v, Rule::PragmaHygiene).is_empty(), "the allow pragma is used: {v:?}");

    // Out of determinism scope the same content is clean.
    let v = lint_source("crates/workloads/src/fixture.rs", &src);
    assert!(lines_for(&v, Rule::AssertMsg).is_empty());
}

#[test]
fn pragma_hygiene_rule_fires_on_stale_and_malformed_pragmas() {
    let pos = fixture("pragma_hygiene_pos.rs");
    let v = lint_source("crates/netsim/src/fixture.rs", &pos);
    let lines = lines_for(&v, Rule::PragmaHygiene);
    assert!(lines.contains(&3), "allow(determinism) suppressing nothing must fire: {v:?}");
    assert!(lines.contains(&6), "allow(no_such_rule) must fire: {v:?}");
    assert!(lines.contains(&11), "typo'd directive must fire: {v:?}");
    assert_eq!(lines.len(), 3, "exactly the three bad pragmas: {v:?}");

    let neg = fixture("pragma_hygiene_neg.rs");
    let v = lint_source("crates/netsim/src/fixture.rs", &neg);
    assert!(lines_for(&v, Rule::PragmaHygiene).is_empty(), "used/escaped/test pragmas: {v:?}");
    assert!(lines_for(&v, Rule::Determinism).is_empty(), "all Instants suppressed: {v:?}");
}

/// The ratchet: baseline counts may only decrease. A regression fails
/// the gate, an improvement demands a rewrite, and the rewrite refuses
/// to raise any existing entry.
#[test]
fn baseline_counts_can_only_decrease() {
    // Three real violations from the shared_mut fixture struct body.
    let all = lint_source("crates/netsim/src/fixture.rs", &fixture("shared_mut_pos.rs"));
    let all: Vec<_> = all.into_iter().filter(|v| v.rule == Rule::SharedMut).collect();
    assert_eq!(all.len(), 7);

    // Adopt them; at the recorded count the gate is clean.
    let base = Baseline::from_violations(&all);
    assert!(base.apply(&all).is_clean());

    // Fixing some makes the baseline stale: the gate demands a ratchet.
    let fewer = &all[..2];
    let out = base.apply(fewer);
    assert!(!out.is_clean() && !out.stale.is_empty(), "improvement must force a rewrite");

    // Ratcheting down succeeds and locks in the lower count…
    let lower = Baseline::ratcheted_from(&base, fewer).expect("ratchet down");
    assert!(lower.apply(fewer).is_clean());
    let out = lower.apply(&all[..3]);
    assert!(!out.is_clean() && !out.regressions.is_empty(), "2 -> 3 is a regression");

    // …and the rewrite path refuses to raise the entry back up.
    assert!(Baseline::ratcheted_from(&lower, &all[..3]).is_err(), "counts may only decrease");
}

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("simlint lives at <root>/crates/simlint")
}

/// THE gate: the real workspace must be clean after the baseline is
/// applied. This is what wires simlint into plain `cargo test` — the
/// exact pass the CLI and scripts/check.sh run.
#[test]
fn workspace_is_clean() {
    let outcome = simlint::gate(workspace_root()).expect("lint workspace");
    assert!(outcome.is_clean(), "simlint gate failed:\n{}", simlint::output::render_text(&outcome));
}

/// Machine-readable output must be byte-identical across runs over the
/// same tree (CI runs the pass twice and diffs).
#[test]
fn reports_are_deterministic() {
    let root = workspace_root();
    let a = simlint::gate(root).expect("first pass");
    let b = simlint::gate(root).expect("second pass");
    assert_eq!(simlint::output::render_json(&a), simlint::output::render_json(&b));
    assert_eq!(simlint::output::render_sarif(&a), simlint::output::render_sarif(&b));
}
