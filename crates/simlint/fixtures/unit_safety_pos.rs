// Fixture: raw-typed time/rate parameters in public signatures.
pub fn arm_timer(deadline: u64) {
    let _ = deadline;
}

pub fn pace(rate_bps: f64, gap_ns: u64) {
    let _ = (rate_bps, gap_ns);
}

pub struct S;

impl S {
    pub fn wait(&self, timeout_us: u64) {
        let _ = timeout_us;
    }
}
