// Fixture: used pragmas, the escape hatch, and test-code pragmas.
use std::time::Instant; // simlint: allow(determinism)

// simlint: allow(determinism)
pub fn clock() -> Instant {
    Instant::now() // simlint: allow(determinism)
}

// Kept deliberately while the next refactor lands.
// simlint: allow(float_cmp, pragma_hygiene)
pub fn threshold(x: f64) -> bool {
    x > 0.5
}

#[cfg(test)]
mod tests {
    #[test]
    fn stale_pragmas_in_tests_are_ignored() {
        let _ = 1u64; // simlint: allow(determinism)
    }
}
