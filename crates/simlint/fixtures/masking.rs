// Fixture: rule tokens hidden inside raw strings, nested block comments
// and escaped-newline string continuations must not fire — and the code
// *after* those constructs must still be scanned at the right lines.
pub const RAW: &str = r#"HashMap::new() x.unwrap() panic!"#;
pub const RAW2: &str = r##"Instant::now() "# still inside the literal"##;

/* nested /* block */ comments: HashMap Instant unwrap() */
pub const CONT: &str = "split \
across lines: SystemTime panic!";

pub fn after_the_literals() -> std::time::Instant {
    std::time::Instant::now()
}
