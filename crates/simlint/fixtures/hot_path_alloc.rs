//! Fixture: allocation constructors inside a hot-path fence.

pub fn cold_setup() -> Vec<u32> {
    Vec::new()
}

// simlint: hot-path
pub fn dispatch(xs: &[u32]) -> usize {
    let b = Box::new(1u32);
    let v: Vec<u32> = Vec::new();
    let lit = vec![1, 2, 3];
    let copied = xs.to_vec();
    let allowed = xs.to_vec(); // simlint: allow(hot_path_alloc)
    *b as usize + v.len() + lit.len() + copied.len() + allowed.len()
}
// simlint: hot-path-end

pub fn after_fence() -> Vec<u32> {
    vec![9]
}
