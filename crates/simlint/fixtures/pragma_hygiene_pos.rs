// Fixture: stale and malformed pragmas are themselves violations.
pub fn clean() -> u64 {
    7 // simlint: allow(determinism)
}

// simlint: allow(no_such_rule)
pub fn also_clean() -> u64 {
    8
}

// simlint: alow(determinism)
pub fn typo() -> u64 {
    9
}
