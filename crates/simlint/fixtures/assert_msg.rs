pub fn checks(x: u64, y: u64) {
    debug_assert!(x > 0);
    assert!(x != y);
    debug_assert!(x > 0, "x must be positive");
    assert!(x <= y, "x {x} exceeds y {y}");
    assert_eq!(x, y);
    debug_assert!(
        x > y,
        "multi-line message: {x} vs {y}"
    );
    debug_assert!(
        x > y
    );
    // simlint: allow(assert_msg)
    debug_assert!(x > 0);
}

#[cfg(test)]
mod tests {
    pub fn t(x: u64) {
        assert!(x > 0);
    }
}
