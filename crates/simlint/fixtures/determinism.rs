// Fixture: determinism violations in an engine-path library file.
use std::collections::HashMap;
use std::time::Instant;

pub fn bad_clock() -> Instant {
    Instant::now()
}

pub fn bad_table() -> HashMap<u64, u64> {
    HashMap::new()
}

pub fn allowed_table() -> std::collections::HashMap<u64, u64> { // simlint: allow(determinism)
    std::collections::HashMap::new() // simlint: allow(determinism)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_wall_clock() {
        let _ = std::time::Instant::now();
        let _ = std::collections::HashSet::<u32>::new();
    }
}
