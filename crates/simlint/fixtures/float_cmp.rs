// Fixture: float comparison violations.
pub fn bad_eq(x: f64) -> bool {
    x == 1.0
}

pub fn bad_ne(x: f64) -> bool {
    0.17 != x
}

pub fn allowed_eq(x: f64) -> bool {
    x == 0.0 // simlint: allow(float_cmp)
}

pub fn integers_are_fine(n: u64) -> bool {
    n == 100 && n != 7
}

pub fn orderings_are_fine(x: f64) -> bool {
    x <= 1.0 && x >= 0.5
}
