// Fixture: the engine's own enqueue helpers may push the heap.
use std::collections::BinaryHeap;

pub struct Engine {
    heap: BinaryHeap<u64>,
}

impl Engine {
    fn schedule(&mut self, v: u64) {
        self.heap.push(v);
    }

    pub fn run(&mut self) {
        self.heap.push(7);
    }
}
