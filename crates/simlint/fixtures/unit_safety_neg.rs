// Fixture: newtyped signatures, private fns, byte counts and tests.
use netsim::time::{SimDuration, SimTime};

pub fn arm_timer(deadline: SimTime) {
    let _ = deadline;
}

fn private_ok(gap_ns: u64) {
    let _ = gap_ns;
}

pub fn sized(rtt_bytes: u64, window: u64) {
    let _ = (rtt_bytes, window);
}

pub fn pace(rate: netsim::units::Rate, pause: SimDuration) {
    let _ = (rate, pause);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_take_raw_ns() {
        fn helper(at_ns: u64) -> u64 {
            at_ns
        }
        assert_eq!(helper(3), 3);
    }
}
