// Fixture: hand-rolled RTO machinery outside transports::common.
use crate::common::{rto_token, Token, TIMER_RTO};

pub fn hand_rolled_arm(flow: u64, deadline_token: u64) -> (u64, u64) {
    (deadline_token, rto_token(flow))
}

pub fn hand_rolled_token(flow: u64) -> u64 {
    Token { kind: TIMER_RTO, generation: 0, flow }.encode()
}

pub fn hand_rolled_service(f: &mut crate::tcp_base::DctcpFlowTx) -> bool {
    f.on_rto(f.deadline())
}
