// Fixture: the sanctioned pattern — common helpers, match arms, compares.
use crate::common::{arm_rto, service_rto, Token, TIMER_RTO};

pub fn timer_kind(token: Token) -> bool {
    match token.kind {
        TIMER_RTO => true,
        _ => false,
    }
}

pub fn is_other(kind: u8) -> bool {
    kind != TIMER_RTO
}
