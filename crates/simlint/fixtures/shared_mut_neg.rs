// Fixture: owned state is fine; tests and justified pragmas are exempt.
use std::collections::BTreeMap;

pub struct Fine {
    pub table: BTreeMap<u64, u64>,
    pub statics: u64,
}

// A measurement tap consumed outside the engine, never shard state.
// simlint: allow(shared_mut)
pub type Tap = std::rc::Rc<std::cell::RefCell<u64>>;

#[cfg(test)]
mod tests {
    use std::cell::RefCell;

    #[test]
    fn tests_may_use_refcell() {
        let _ = RefCell::new(1u64);
    }
}
