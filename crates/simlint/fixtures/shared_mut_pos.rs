// Fixture: shared-mutability primitives in an engine-path library file.
use std::cell::RefCell;
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

pub struct Bad {
    pub counter: AtomicU64,
    pub table: Mutex<u64>,
    pub scratch: RefCell<u64>,
}

pub static mut GLOBAL: u64 = 0;
