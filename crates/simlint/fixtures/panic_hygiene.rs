// Fixture: panic-hygiene violations in a library file.
pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("always present")
}

pub fn bad_panic() {
    panic!("boom");
}

pub fn allowed_panic() {
    // The two-pass API contract makes this unreachable for callers.
    panic!("unreachable by contract"); // simlint: allow(panic_hygiene)
}

pub fn combinators_are_fine(v: Option<u32>) -> u32 {
    v.unwrap_or(0).max(v.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
