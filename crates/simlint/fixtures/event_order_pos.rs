// Fixture: direct event-heap manipulation outside the engine.
use std::collections::BinaryHeap;

pub struct Rogue {
    heap: BinaryHeap<u64>,
}

impl Rogue {
    pub fn inject(&mut self, v: u64) {
        self.heap.push(v);
    }
}
