//! The experiment harness: build a topology, install a scheme, inject a
//! workload, run, and collect FCT statistics — the loop every figure of
//! the paper runs.

use netsim::trace::{
    encode_line, FlightRecorder, JsonObject, LogHistogram, MemorySink, MetricsRegistry, ProfKind,
    TraceEvent,
};
use netsim::{Rate, RunLimits, SimDuration, SimTime, SwitchConfig, Topology};
use transports::{MwRecorder, Proto, TcpCfg};
use workloads::FlowSpec;

use dcn_stats::{FctStats, SeriesAnalysis};
use ppt_core::PptConfig;

/// Ring capacity of the always-on flight recorder: enough to show the
/// final few RTTs of activity when a run ends abnormally, small enough
/// that steady-state runs pay only a bounded-ring write per event.
pub const FLIGHT_RECORDER_EVENTS: usize = 256;

/// Everything scheme installation needs to know about the environment.
#[derive(Clone, Debug)]
pub struct SchemeEnv {
    /// Edge (host) link rate.
    pub edge_rate: Rate,
    /// Base round-trip time.
    pub base_rtt: SimDuration,
    /// Per-port switch buffer, bytes.
    pub port_buffer: u64,
    /// ECN threshold for DCTCP / the HCP queues.
    pub k_high: u64,
    /// ECN threshold for the LCP queues.
    pub k_low: u64,
    /// Homa/Aeolus/NDP first-window ("RTTbytes").
    pub rtt_bytes: u64,
    /// Minimum RTO.
    pub min_rto: SimDuration,
    /// TCP send buffer (PPT identification + tail reach).
    pub send_buffer: u64,
    /// NDP trim threshold.
    pub trim_threshold: u64,
    /// Run switches in PFC backpressure mode (per-priority XOFF/XON
    /// pause, thresholds derived from the port buffer). Off by default;
    /// `pptlab --switch pfc` and the fault suite turn it on.
    pub pfc: bool,
}

impl SchemeEnv {
    /// Defaults from the paper's Table 3 scaled to an environment.
    pub fn new(edge_rate: Rate, base_rtt: SimDuration) -> Self {
        let (k_high, k_low) = ppt_core::ppt_thresholds(edge_rate, base_rtt);
        SchemeEnv {
            edge_rate,
            base_rtt,
            port_buffer: 120_000,
            k_high,
            k_low,
            rtt_bytes: netsim::bdp_bytes(edge_rate, base_rtt).max(10 * netsim::MSS_BYTES as u64),
            min_rto: SimDuration::from_millis(10),
            send_buffer: 2 << 20,
            trim_threshold: 8 * netsim::MTU_BYTES as u64,
            pfc: false,
        }
    }

    /// Scale every buffer-denominated knob by `factor` — the tiny-buffer
    /// regime study (ROADMAP: do PPT's LCP gains survive shallow
    /// buffers?). The port buffer, both ECN thresholds, and the trim
    /// threshold shrink together; each stays at least one MTU and the
    /// thresholds never exceed the buffer.
    pub fn scale_buffers(mut self, factor: f64) -> Self {
        let scale = |v: u64| ((v as f64 * factor) as u64).max(netsim::MTU_BYTES as u64);
        self.port_buffer = scale(self.port_buffer);
        self.k_high = scale(self.k_high).min(self.port_buffer);
        self.k_low = scale(self.k_low).min(self.port_buffer);
        self.trim_threshold = scale(self.trim_threshold).min(self.port_buffer);
        self
    }

    /// The paper's 15-host 10 G testbed (§6.1, Table 3): 80 µs RTT,
    /// RTOmin 10 ms, K = 100 KB / 80 KB, big (50 MB-class) buffers.
    pub fn paper_testbed() -> Self {
        let mut env = Self::new(Rate::gbps(10), SimDuration::from_micros(80));
        env.port_buffer = 1_000_000; // 50MB / 54 ports ≈ ~1MB per port
        env.k_high = 100_000;
        env.k_low = 80_000;
        env.rtt_bytes = 50_000;
        env
    }

    /// The paper's large-scale simulation settings (§6.2): 120 KB port
    /// buffers, K = 96 KB / 86 KB, RTTbytes = 45 KB, 2 GB send buffers.
    pub fn paper_sim(edge_rate: Rate, base_rtt: SimDuration) -> Self {
        let mut env = Self::new(edge_rate, base_rtt);
        env.port_buffer = 120_000;
        env.k_high = 96_000;
        env.k_low = 86_000;
        env.rtt_bytes = 45_000;
        env.min_rto = SimDuration::from_millis(1);
        env.send_buffer = 2 << 30;
        env
    }

    /// TCP mechanics derived from this environment.
    pub fn tcp_cfg(&self) -> TcpCfg {
        let mut cfg = TcpCfg::new(self.base_rtt);
        cfg.min_rto = self.min_rto;
        cfg
    }

    /// PPT configuration derived from this environment.
    pub fn ppt_cfg(&self) -> PptConfig {
        let mut cfg = PptConfig::new(self.edge_rate, self.base_rtt);
        cfg.send_buffer_bytes = self.send_buffer;
        cfg
    }
}

/// Why [`Scheme::install`] could not install a scheme in a single pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstallError {
    /// `Hypothetical` needs an oracle recording pass before it can be
    /// installed; run it through [`run_experiment`] (or the sweep layer),
    /// which performs the two-pass §2.3 construction automatically.
    NeedsTwoPass,
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::NeedsTwoPass => {
                write!(f, "scheme needs the two-pass run_experiment()/sweep runner")
            }
        }
    }
}

impl std::error::Error for InstallError {}

/// Every scheme the paper evaluates, plus PPT's ablation variants.
#[derive(Clone, Debug, PartialEq)]
pub enum Scheme {
    Dctcp,
    /// Table 1 baseline: loss-based TCP with a 10-MSS initial window.
    Tcp10,
    /// Table 1 baseline: TCP-10 + line-rate first RTT for short flows.
    Halfback,
    /// Table 1 baseline: credit-scheduled proactive transport.
    ExpressPass,
    Ppt,
    /// Fig 15: LCP without ECN.
    PptNoLcpEcn,
    /// Fig 16: no EWD (line-rate LCP).
    PptNoEwd,
    /// Fig 17: no flow scheduling.
    PptNoScheduling,
    /// Fig 18: no buffer-aware identification.
    PptNoIdentification,
    /// Fig 3: fill to `fraction × MW`.
    PptFill(f64),
    Rc3,
    /// Fig 24: RC3 with the low-priority buffer capped to a fraction of
    /// the port buffer.
    Rc3BufferCap(f64),
    Pias,
    Homa,
    Aeolus,
    Ndp,
    Hpcc,
    /// ROADMAP item 4: window control from in-flight power (queue +
    /// throughput gradient) over HPCC's INT telemetry.
    PowerTcp,
    /// Appendix B: PPT's LCP + scheduling layered over HPCC, with
    /// priority-aware INT.
    HpccPpt,
    Swift,
    /// Fig 14: PPT layered over the Swift-like transport.
    SwiftPpt,
    /// §2.3: oracle gap-filler at `fraction × MW` (runs a DCTCP recording
    /// pass automatically).
    Hypothetical(f64),
}

impl Scheme {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Scheme::Dctcp => "DCTCP".into(),
            Scheme::Tcp10 => "TCP-10".into(),
            Scheme::Halfback => "Halfback".into(),
            Scheme::ExpressPass => "ExpressPass".into(),
            Scheme::Ppt => "PPT".into(),
            Scheme::PptNoLcpEcn => "PPT w/o ECN".into(),
            Scheme::PptNoEwd => "PPT w/o EWD".into(),
            Scheme::PptNoScheduling => "PPT w/o scheduling".into(),
            Scheme::PptNoIdentification => "PPT w/o identification".into(),
            Scheme::PptFill(f) => format!("PPT fill {:.0}%×MW", f * 100.0),
            Scheme::Rc3 => "RC3".into(),
            Scheme::Rc3BufferCap(f) => format!("RC3 lp-buf {:.0}%", f * 100.0),
            Scheme::Pias => "PIAS".into(),
            Scheme::Homa => "Homa".into(),
            Scheme::Aeolus => "Aeolus".into(),
            Scheme::Ndp => "NDP".into(),
            Scheme::Hpcc => "HPCC".into(),
            Scheme::PowerTcp => "PowerTCP".into(),
            Scheme::HpccPpt => "PPT-over-HPCC".into(),
            Scheme::Swift => "Swift-like".into(),
            Scheme::SwiftPpt => "PPT-over-Swift".into(),
            Scheme::Hypothetical(f) => format!("hypothetical DCTCP ({:.0}%×MW)", f * 100.0),
        }
    }

    /// The switch configuration this scheme requires. With `env.pfc`
    /// set, PFC backpressure (thresholds derived from the port buffer)
    /// is layered on top of whatever the scheme asked for.
    pub fn switch_config(&self, env: &SchemeEnv) -> SwitchConfig {
        let cfg = self.base_switch_config(env);
        if env.pfc {
            let pfc = netsim::PfcConfig::for_buffer(cfg.port_buffer_bytes);
            cfg.with_pfc(pfc)
        } else {
            cfg
        }
    }

    fn base_switch_config(&self, env: &SchemeEnv) -> SwitchConfig {
        match self {
            Scheme::Dctcp | Scheme::Pias => SwitchConfig::dctcp(env.port_buffer, env.k_high),
            Scheme::Tcp10 | Scheme::Halfback | Scheme::ExpressPass => {
                SwitchConfig::basic(env.port_buffer)
            }
            Scheme::Ppt
            | Scheme::PptNoLcpEcn
            | Scheme::PptNoEwd
            | Scheme::PptNoScheduling
            | Scheme::PptNoIdentification
            | Scheme::PptFill(_)
            | Scheme::SwiftPpt
            | Scheme::Hypothetical(_) => SwitchConfig::ppt(env.port_buffer, env.k_high, env.k_low),
            Scheme::Rc3 => SwitchConfig::ppt(env.port_buffer, env.k_high, env.k_low),
            Scheme::Rc3BufferCap(frac) => SwitchConfig::ppt(env.port_buffer, env.k_high, env.k_low)
                .with_range_cap(4, 8, (env.port_buffer as f64 * frac) as u64),
            Scheme::Homa => transports::homa_switch_config(env.port_buffer, false),
            Scheme::Aeolus => transports::homa_switch_config(env.port_buffer, true),
            Scheme::Ndp => SwitchConfig::ndp(env.port_buffer, env.trim_threshold),
            Scheme::Hpcc | Scheme::PowerTcp | Scheme::Swift => SwitchConfig::basic(env.port_buffer),
            Scheme::HpccPpt => {
                // No ECN for the INT-driven HCP band; PPT's low threshold
                // for the LCP band; push-out protection.
                let mut cfg = SwitchConfig::basic(env.port_buffer).with_push_out(true);
                for p in 4..8 {
                    cfg.ecn[p] = Some(netsim::EcnRule {
                        threshold_bytes: env.k_low,
                        scope: netsim::MarkScope::Port,
                    });
                }
                cfg
            }
        }
    }

    /// Install the scheme on every host of a built topology.
    ///
    /// Errors with [`InstallError::NeedsTwoPass`] for the `Hypothetical`
    /// variant, which requires the oracle recording pass that
    /// [`run_experiment`] and the sweep runner perform automatically.
    pub fn install(&self, topo: &mut Topology<Proto>, env: &SchemeEnv) -> Result<(), InstallError> {
        let tcp = env.tcp_cfg();
        match self {
            Scheme::Dctcp => transports::install_dctcp(topo, &tcp),
            Scheme::Tcp10 => {
                for &h in &topo.hosts.clone() {
                    topo.sim
                        .set_transport(h, Box::new(transports::DctcpTransport::tcp10(tcp.clone())));
                }
            }
            Scheme::Halfback => {
                for &h in &topo.hosts.clone() {
                    topo.sim.set_transport(
                        h,
                        Box::new(transports::DctcpTransport::halfback(tcp.clone())),
                    );
                }
            }
            Scheme::ExpressPass => transports::install_expresspass(topo, env.min_rto),
            Scheme::Ppt => transports::install_ppt(topo, &tcp, &env.ppt_cfg()),
            Scheme::PptNoLcpEcn => {
                let mut cfg = env.ppt_cfg();
                cfg.lcp_ecn_enabled = false;
                transports::install_ppt(topo, &tcp, &cfg);
            }
            Scheme::PptNoEwd => {
                let mut cfg = env.ppt_cfg();
                cfg.ewd_enabled = false;
                transports::install_ppt(topo, &tcp, &cfg);
            }
            Scheme::PptNoScheduling => {
                let mut cfg = env.ppt_cfg();
                cfg.scheduling_enabled = false;
                transports::install_ppt(topo, &tcp, &cfg);
            }
            Scheme::PptNoIdentification => {
                let mut cfg = env.ppt_cfg();
                cfg.identification_enabled = false;
                transports::install_ppt(topo, &tcp, &cfg);
            }
            Scheme::PptFill(frac) => {
                let mut cfg = env.ppt_cfg();
                cfg.fill_fraction = *frac;
                transports::install_ppt(topo, &tcp, &cfg);
            }
            Scheme::Rc3 | Scheme::Rc3BufferCap(_) => {
                let cfg = transports::Rc3Cfg {
                    bdp_bytes: netsim::bdp_bytes(env.edge_rate, env.base_rtt),
                    send_buffer_bytes: 2 << 30,
                };
                transports::install_rc3(topo, &tcp, &cfg);
            }
            Scheme::Pias => transports::install_pias(topo, &tcp, &transports::PiasCfg::default()),
            Scheme::Homa => {
                let mut cfg = transports::HomaCfg::new(env.rtt_bytes);
                cfg.resend_timeout = env.min_rto;
                transports::install_homa(topo, &cfg);
            }
            Scheme::Aeolus => {
                let mut cfg = transports::HomaCfg::new(env.rtt_bytes).aeolus();
                cfg.resend_timeout = env.min_rto;
                transports::install_homa(topo, &cfg);
            }
            Scheme::Ndp => transports::install_ndp(topo, env.min_rto),
            Scheme::Hpcc => transports::install_hpcc(topo, &tcp),
            Scheme::PowerTcp => transports::install_powertcp(topo, &tcp),
            Scheme::HpccPpt => transports::install_hpcc_ppt(topo, &tcp, &env.ppt_cfg()),
            Scheme::Swift => transports::install_swift(topo, &tcp),
            Scheme::SwiftPpt => transports::install_swift_ppt(topo, &tcp, &env.ppt_cfg()),
            Scheme::Hypothetical(_) => return Err(InstallError::NeedsTwoPass),
        }
        Ok(())
    }
}

/// Which topology an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoKind {
    /// `n` hosts on one switch.
    Star { n: usize, rate_gbps: u64, delay_us: u64 },
    /// The §6.1 testbed: 15 hosts, 10 G, ~80 µs RTT.
    PaperTestbed,
    /// The §6.2 oversubscribed fabric: 144 hosts, 40/100 G.
    Oversubscribed,
    /// Appendix E: 144 hosts, 10/40 G, 1:1.
    NonOversubscribed,
    /// §6.3.2: 144 hosts, 100/400 G.
    HighSpeed,
    /// A k-ary fat-tree (k³/4 hosts) — beyond the paper's two-tier
    /// fabrics, for scale-out studies.
    FatTree { k: usize, edge_gbps: u64 },
}

impl TopoKind {
    /// Build the topology with the given per-port switch config.
    pub fn build(&self, cfg: SwitchConfig) -> Topology<Proto> {
        match *self {
            TopoKind::Star { n, rate_gbps, delay_us } => {
                netsim::star(n, Rate::gbps(rate_gbps), SimDuration::from_micros(delay_us), cfg)
            }
            TopoKind::PaperTestbed => netsim::topology::paper_testbed(cfg),
            TopoKind::Oversubscribed => netsim::topology::paper_oversubscribed(cfg),
            TopoKind::NonOversubscribed => netsim::topology::paper_nonoversubscribed(cfg),
            TopoKind::HighSpeed => netsim::topology::paper_100_400g(cfg),
            TopoKind::FatTree { k, edge_gbps } => netsim::fat_tree(
                &netsim::FatTreeParams {
                    k,
                    edge_rate: Rate::gbps(edge_gbps),
                    aggregate_rate: Rate::gbps(edge_gbps * 4),
                    core_rate: Rate::gbps(edge_gbps * 4),
                    link_delay: SimDuration::from_micros(1),
                },
                cfg,
            ),
        }
    }

    /// Edge rate of the topology (for load calculations).
    pub fn edge_rate(&self) -> Rate {
        match *self {
            TopoKind::Star { rate_gbps, .. } => Rate::gbps(rate_gbps),
            TopoKind::PaperTestbed => Rate::gbps(10),
            TopoKind::Oversubscribed => Rate::gbps(40),
            TopoKind::NonOversubscribed => Rate::gbps(10),
            TopoKind::HighSpeed => Rate::gbps(100),
            TopoKind::FatTree { edge_gbps, .. } => Rate::gbps(edge_gbps),
        }
    }

    /// Host count.
    pub fn hosts(&self) -> usize {
        match *self {
            TopoKind::Star { n, .. } => n,
            TopoKind::PaperTestbed => 15,
            TopoKind::FatTree { k, .. } => k * k * k / 4,
            _ => 144,
        }
    }

    /// Base RTT of the topology.
    pub fn base_rtt(&self) -> SimDuration {
        match *self {
            TopoKind::Star { delay_us, .. } => SimDuration::from_micros(delay_us) * 4,
            TopoKind::PaperTestbed => SimDuration::from_micros(80),
            TopoKind::FatTree { .. } => SimDuration::from_micros(10),
            _ => SimDuration::from_micros(12),
        }
    }

    /// A `SchemeEnv` with the paper's parameters for this topology.
    pub fn env(&self) -> SchemeEnv {
        match self {
            TopoKind::PaperTestbed | TopoKind::Star { .. } => {
                let mut env = SchemeEnv::paper_testbed();
                env.edge_rate = self.edge_rate();
                env.base_rtt = self.base_rtt();
                env
            }
            _ => SchemeEnv::paper_sim(self.edge_rate(), self.base_rtt()),
        }
    }
}

/// A timed fault command, phrased against topology-level names (host
/// index, switch index) and resolved to concrete link ids once the
/// topology is built.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultCmd {
    /// Take the NIC uplink of host `host` down over `[from, until)`.
    HostUplinkDown { host: usize, from: SimTime, until: SimTime },
    /// Freeze all forwarding at switch `switch` over `[at, at + duration)`.
    SwitchStall { switch: usize, at: SimTime, duration: SimDuration },
}

/// Fault-injection description attached to an [`Experiment`].
///
/// This is the harness-level mirror of [`netsim::FaultSchedule`]: the
/// random-loss knobs carry over verbatim, while [`FaultCmd`]s are resolved
/// against the built topology. For `Hypothetical` schemes only the main
/// pass sees faults — the DCTCP oracle recording pass runs on a clean
/// network, so the MW oracle is the same one a fault-free run would use.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Probability that any serialized data packet is destroyed.
    pub data_loss: f64,
    /// Probability that any serialized control packet is destroyed.
    pub ack_loss: f64,
    /// Restrict `ack_loss` to the low-priority band (priority ≥ 4): the
    /// §3.2 "LCP ACKs all lost" experiment, which must close PPT's loop
    /// with [`netsim::trace::LcpCloseReason::NoLpAcks`] without touching
    /// the high-priority ACK stream.
    pub lp_acks_only: bool,
    /// Seed of the dedicated fault RNG (independent of the workload seed).
    pub seed: u64,
    /// Timed link/switch events.
    pub events: Vec<FaultCmd>,
}

impl FaultSpec {
    /// An empty schedule with the given fault-RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultSpec { data_loss: 0.0, ack_loss: 0.0, lp_acks_only: false, seed, events: Vec::new() }
    }

    /// Set the per-packet data-loss probability.
    pub fn with_data_loss(mut self, p: f64) -> Self {
        self.data_loss = p;
        self
    }

    /// Set the per-packet control-loss probability.
    pub fn with_ack_loss(mut self, p: f64) -> Self {
        self.ack_loss = p;
        self
    }

    /// Confine ACK loss to the low-priority band (priority ≥ 4).
    pub fn lp_acks_only(mut self) -> Self {
        self.lp_acks_only = true;
        self
    }

    /// Append a timed fault command.
    pub fn cmd(mut self, cmd: FaultCmd) -> Self {
        self.events.push(cmd);
        self
    }

    /// True when the spec injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.data_loss <= 0.0 && self.ack_loss <= 0.0
    }

    /// Resolve against a built topology into an engine-level schedule.
    pub fn resolve(&self, topo: &Topology<Proto>) -> netsim::FaultSchedule {
        let mut sched = netsim::FaultSchedule::new(self.seed)
            .with_data_loss(self.data_loss)
            .with_ack_loss(self.ack_loss);
        if self.lp_acks_only {
            sched = sched.with_ack_loss_min_prio(4);
        }
        for cmd in &self.events {
            match *cmd {
                FaultCmd::HostUplinkDown { host, from, until } => {
                    let link = topo.sim.host_uplink(topo.hosts[host]);
                    sched = sched.link_outage(link, from, until);
                }
                FaultCmd::SwitchStall { switch, at, duration } => {
                    sched = sched.stall_switch(netsim::SwitchId(switch as u32), at, duration);
                }
            }
        }
        sched
    }
}

/// Continuous-telemetry knobs for an experiment (plain data; cloned with
/// the experiment into sweep points and mapped onto
/// [`netsim::TelemetryConfig`] at install time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Sampling interval of the deterministic whole-fabric sampler.
    pub interval: SimDuration,
    /// Points retained per series (ring capacity).
    pub series_capacity: usize,
    /// Also run the wall-clock dispatch self-profiler (nondeterministic
    /// numbers — kept out of byte-compared output unless asked for).
    pub prof: bool,
}

impl TelemetrySpec {
    /// Sampler at `interval` with the default ring capacity, no profiler.
    pub fn new(interval: SimDuration) -> Self {
        TelemetrySpec { interval, series_capacity: 4096, prof: false }
    }

    /// Enable the self-profiler, builder-style.
    pub fn with_prof(mut self) -> Self {
        self.prof = true;
        self
    }

    fn config(&self) -> netsim::TelemetryConfig {
        let mut cfg =
            netsim::TelemetryConfig::new(self.interval).with_series_capacity(self.series_capacity);
        if self.prof {
            cfg = cfg.with_prof();
        }
        cfg
    }
}

/// A fully-described experiment.
#[derive(Clone, Debug)]
pub struct Experiment {
    pub topo: TopoKind,
    pub scheme: Scheme,
    pub env: SchemeEnv,
    pub flows: Vec<FlowSpec>,
    /// Faults to inject during the (main) run; `None` ⇒ clean network.
    pub faults: Option<FaultSpec>,
    /// Continuous telemetry for the main run; `None` ⇒ off. The oracle
    /// recording pass of `Hypothetical` schemes is never telemetered.
    pub telemetry: Option<TelemetrySpec>,
    /// Wall stop (simulated); generous defaults cover stragglers.
    pub max_time: SimTime,
    pub max_events: u64,
}

impl Experiment {
    /// New experiment with the topology's default environment.
    pub fn new(topo: TopoKind, scheme: Scheme, flows: Vec<FlowSpec>) -> Self {
        Experiment {
            env: topo.env(),
            topo,
            scheme,
            flows,
            faults: None,
            telemetry: None,
            max_time: SimTime(30_000_000_000), // 30s simulated
            max_events: 4_000_000_000,
        }
    }

    /// Attach a fault schedule to the experiment.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enable continuous telemetry on the main run.
    pub fn with_telemetry(mut self, telemetry: TelemetrySpec) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

/// What an experiment run produced.
pub struct Outcome {
    /// Per-flow FCTs of completed flows.
    pub fct: FctStats,
    /// Fraction of flows that completed.
    pub completion_ratio: f64,
    /// Aggregate switch counters (drops, marks, trims).
    pub counters: netsim::PortCounters,
    /// The simulator (for post-hoc inspection: samplers, links, raw
    /// telemetry via [`netsim::Simulator::telemetry`]).
    pub sim: netsim::Simulator<Proto>,
    /// Engine report.
    pub report: netsim::RunReport,
    /// Telemetry summary, when the experiment enabled telemetry.
    pub telemetry: Option<TelemetrySummary>,
}

/// `Send`-able digest of a run's telemetry: per-series analyses, the
/// three histograms and the optional profile rows. Everything except
/// `prof` is a pure function of simulated state, so its JSON encoding is
/// byte-identical across reruns and sweep job counts (DESIGN.md §14).
#[derive(Clone, Debug)]
pub struct TelemetrySummary {
    /// Sampling interval used.
    pub interval: SimDuration,
    /// Sampler ticks taken.
    pub samples: u64,
    /// Per-series amplitude/oscillation analyses, in series-table order.
    pub series: Vec<SeriesAnalysis>,
    /// Flow completion times, nanoseconds.
    pub fct_ns: LogHistogram,
    /// Per-packet queueing delay, nanoseconds.
    pub queue_delay_ns: LogHistogram,
    /// Sampled per-port queue depth, bytes.
    pub queue_depth_bytes: LogHistogram,
    /// Wall-clock dispatch profile `(kind, count, total_ns)` rows when
    /// the profiler ran — machine noise, excluded from goldens.
    pub prof: Option<Vec<(ProfKind, u64, u64)>>,
}

impl TelemetrySummary {
    /// Digest the engine's telemetry state.
    pub fn from_telemetry(t: &netsim::Telemetry) -> Self {
        TelemetrySummary {
            interval: t.interval(),
            samples: t.samples_taken(),
            series: dcn_stats::analyze_all(t.series()),
            fct_ns: t.fct_hist().clone(),
            queue_delay_ns: t.queue_delay_hist().clone(),
            queue_depth_bytes: t.queue_depth_hist().clone(),
            prof: t.prof_breakdown().map(|rows| rows.to_vec()),
        }
    }

    /// Deterministic JSON encoding for `pptlab report`. Profile rows are
    /// wall-clock noise, so they only appear when `include_prof` is set —
    /// default report output stays byte-comparable.
    pub fn to_json(&self, include_prof: bool) -> String {
        let mut series = String::from("[");
        for (i, a) in self.series.iter().enumerate() {
            if i > 0 {
                series.push(',');
            }
            let mut obj = JsonObject::new()
                .str("name", &a.name)
                .u64("points", a.points as u64)
                .f64("mean", a.mean)
                .f64("min", a.min)
                .f64("max", a.max)
                .f64("peak_to_peak", a.peak_to_peak);
            if let Some(p) = a.period_ns {
                obj = obj.u64("period_ns", p).f64("period_strength", a.period_strength);
            }
            series.push_str(&obj.bool("oscillating", a.oscillating).finish());
        }
        series.push(']');
        let mut obj = JsonObject::new()
            .u64("interval_ns", self.interval.as_nanos())
            .u64("samples", self.samples)
            .raw("series", &series)
            .raw("fct_ns", &self.fct_ns.to_json())
            .raw("queue_delay_ns", &self.queue_delay_ns.to_json())
            .raw("queue_depth_bytes", &self.queue_depth_bytes.to_json());
        if include_prof {
            if let Some(rows) = &self.prof {
                let mut prof = String::from("[");
                for (i, (kind, count, total_ns)) in rows.iter().enumerate() {
                    if i > 0 {
                        prof.push(',');
                    }
                    prof.push_str(
                        &JsonObject::new()
                            .str("kind", kind.as_str())
                            .u64("count", *count)
                            .u64("total_ns", *total_ns)
                            .finish(),
                    );
                }
                prof.push(']');
                obj = obj.raw("prof", &prof);
            }
        }
        obj.finish()
    }

    /// Series flagged as oscillating by the analysis pass.
    pub fn oscillating(&self) -> impl Iterator<Item = &SeriesAnalysis> {
        self.series.iter().filter(|a| a.oscillating)
    }
}

/// Run an experiment end to end. `Hypothetical` schemes automatically run
/// the plain-DCTCP recording pass on an identical topology + workload
/// first (the §2.3 construction).
pub fn run_experiment(exp: &Experiment) -> Outcome {
    run_experiment_with(exp, |_| {})
}

/// [`run_experiment`] with a pre-run hook for installing samplers.
pub fn run_experiment_with<F>(exp: &Experiment, pre_run: F) -> Outcome
where
    F: FnOnce(&mut Topology<Proto>),
{
    let oracle: Option<MwRecorder> = match exp.scheme {
        Scheme::Hypothetical(_) => {
            // Recording pass: plain DCTCP on the same topology & flows.
            let rec: MwRecorder =
                std::rc::Rc::new(std::cell::RefCell::new(std::collections::BTreeMap::new()));
            let mut topo = exp.topo.build(apply_switch_env(Scheme::Dctcp.switch_config(&exp.env)));
            apply_queue_env(&mut topo);
            let tcp = exp.env.tcp_cfg();
            for &h in &topo.hosts.clone() {
                topo.sim.set_transport(
                    h,
                    Box::new(
                        transports::DctcpTransport::new(tcp.clone()).with_mw_recorder(rec.clone()),
                    ),
                );
            }
            workloads::install_flows(&mut topo.sim, &topo.hosts, &exp.flows);
            topo.sim.run(RunLimits { max_time: exp.max_time, max_events: exp.max_events });
            Some(rec)
        }
        _ => None,
    };

    let mut topo = exp.topo.build(apply_switch_env(exp.scheme.switch_config(&exp.env)));
    apply_queue_env(&mut topo);
    match (&exp.scheme, &oracle) {
        (Scheme::Hypothetical(frac), Some(rec)) => {
            transports::install_hypothetical(&mut topo, &exp.env.tcp_cfg(), rec, *frac);
        }
        _ => {
            // Unreachable by construction: the only erroring variant is
            // Hypothetical, and the oracle branch above always takes it.
            if let Err(e) = exp.scheme.install(&mut topo, &exp.env) {
                debug_assert!(false, "{}: {e}", exp.scheme.name());
                eprintln!("warning: {}: {e}; hosts left without transports", exp.scheme.name());
            }
        }
    }
    workloads::install_flows(&mut topo.sim, &topo.hosts, &exp.flows);
    pre_run(&mut topo);
    if !topo.sim.sanitizer_enabled() {
        // PPT_SANITIZE=event|1|epoch|end installs the simsan runtime
        // invariant auditor (DESIGN.md §13); pre_run hooks that already
        // installed one keep their chosen cadence.
        if let Ok(v) = std::env::var("PPT_SANITIZE") {
            if let Some(level) = netsim::SanLevel::parse(&v) {
                topo.sim.set_sanitizer(level);
            }
        }
    }
    if let Some(spec) = &exp.faults {
        if !spec.is_empty() {
            let sched = spec.resolve(&topo);
            topo.sim.set_fault_schedule(sched);
        }
    }
    if let Some(spec) = &exp.telemetry {
        topo.sim.enable_telemetry(spec.config());
    }
    if !topo.sim.trace_enabled() {
        // No caller-installed sink: keep a bounded flight recorder running
        // so abnormal stops can dump the tail of the event stream.
        topo.sim.set_trace_sink(Box::new(FlightRecorder::new(FLIGHT_RECORDER_EVENTS)));
    }
    let report = topo.sim.run(RunLimits { max_time: exp.max_time, max_events: exp.max_events });
    if report.is_abnormal() {
        warn_abnormal(exp, &mut topo.sim, &report);
    }
    let fct = FctStats::from_sim(&topo.sim);
    let completion_ratio = FctStats::completion_ratio(&topo.sim);
    let counters = topo.sim.total_counters();
    let telemetry = topo.sim.telemetry().map(TelemetrySummary::from_telemetry);
    Outcome { fct, completion_ratio, counters, sim: topo.sim, report, telemetry }
}

/// Apply the `PPT_SWITCH=pfc` knob (set by `pptlab --switch pfc`): layer
/// PFC backpressure over the scheme's switch config before the topology
/// is built. A config that already carries PFC (programmatic `env.pfc`)
/// keeps its thresholds. Tests use [`SchemeEnv::pfc`] instead — env vars
/// are process-global and would race across parallel test threads.
fn apply_switch_env(cfg: SwitchConfig) -> SwitchConfig {
    match std::env::var("PPT_SWITCH").as_deref() {
        Ok("pfc") if cfg.pfc.is_none() => {
            let buf = cfg.port_buffer_bytes;
            cfg.with_pfc(netsim::PfcConfig::for_buffer(buf))
        }
        _ => cfg,
    }
}

/// Apply the `PPT_QUEUE=heap|calendar` debug knob (set by `pptlab
/// --queue`): selects the engine's event-queue implementation before any
/// event is scheduled. Both implementations pop in the same `(time, seq)`
/// order, so this knob can never change results — that is exactly what it
/// exists to prove (see `scripts/check.sh`'s byte-identity smoke).
fn apply_queue_env(topo: &mut Topology<Proto>) {
    if let Ok(v) = std::env::var("PPT_QUEUE") {
        if let Some(kind) = netsim::QueueKind::parse(&v) {
            topo.sim.set_queue_kind(kind);
        }
    }
}

/// Report an abnormal stop on stderr and, when the run was recorded by
/// the default [`FlightRecorder`], dump the ring's tail as JSONL.
fn warn_abnormal(exp: &Experiment, sim: &mut netsim::Simulator<Proto>, report: &netsim::RunReport) {
    eprintln!(
        "warning: {} run stopped abnormally: reason={} flows={}/{}",
        exp.scheme.name(),
        report.stop.as_str(),
        report.flows_completed,
        report.flows_total,
    );
    if sim.faults_enabled() {
        let f = report.faults;
        eprintln!(
            "fault context: {} injected drops, {} retransmits, max stall {} ns, \
             {} goodput bytes during faults",
            f.fault_drops,
            f.retransmits,
            f.max_stall.as_nanos(),
            f.goodput_during_fault_bytes,
        );
    }
    if report.stop == netsim::StopReason::SanViolation {
        for v in sim.san_violations() {
            eprintln!(
                "san violation: check={} at={} subject={} expected={} actual={}",
                v.check.as_str(),
                v.at.0,
                v.subject,
                v.expected,
                v.actual,
            );
        }
    }
    let Some(sink) = sim.take_trace_sink() else { return };
    if let Some(rec) = sink.as_any().downcast_ref::<FlightRecorder>() {
        if !rec.is_empty() {
            // With PPT_DUMP_DIR set, the ring dump goes to its own file —
            // parallel sweep workers would otherwise interleave multi-line
            // dumps on shared stderr. Stderr remains the default.
            match std::env::var("PPT_DUMP_DIR") {
                Ok(dir) if !dir.is_empty() => {
                    let path = dump_file_path(&dir, exp);
                    match std::fs::write(&path, rec.to_jsonl()) {
                        Ok(()) => eprintln!(
                            "flight recorder: last {} of {} events dumped to {}",
                            rec.len(),
                            rec.total_seen(),
                            path,
                        ),
                        Err(e) => {
                            eprintln!(
                                "flight recorder: failed to write {path}: {e}; dumping to stderr"
                            );
                            eprintln!(
                                "flight recorder: last {} of {} events:",
                                rec.len(),
                                rec.total_seen()
                            );
                            eprint!("{}", rec.to_jsonl());
                        }
                    }
                }
                _ => {
                    eprintln!(
                        "flight recorder: last {} of {} events:",
                        rec.len(),
                        rec.total_seen()
                    );
                    eprint!("{}", rec.to_jsonl());
                }
            }
        }
    }
    sim.set_trace_sink(sink);
}

/// A collision-free dump file name: scheme + pid + a process-wide counter
/// (several sweep workers in one process may dump concurrently).
fn dump_file_path(dir: &str, exp: &Experiment) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let n = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    format!(
        "{}/ppt-dump-{}-{}-{}.jsonl",
        dir.trim_end_matches('/'),
        exp.scheme.name(),
        std::process::id(),
        n,
    )
}

/// A captured event stream from a traced run.
#[derive(Clone, Debug, Default)]
pub struct TraceData {
    /// `(time_ns, event)` pairs in emission order.
    pub events: Vec<(u64, TraceEvent)>,
}

impl TraceData {
    /// Encode the stream as JSON Lines (one event object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (at, ev) in &self.events {
            encode_line(&mut out, *at, ev);
            out.push('\n');
        }
        out
    }
}

/// Run an experiment with full event capture: a [`MemorySink`] replaces
/// the default flight recorder and records every engine + transport
/// event. Same experiment (topology, scheme, flows, seed) ⇒ identical
/// event stream.
pub fn run_experiment_traced(exp: &Experiment) -> (Outcome, TraceData) {
    run_experiment_traced_with(exp, |_| {})
}

/// [`run_experiment_traced`] with a pre-run hook (runs after the memory
/// sink is installed — use it for samplers or [`netsim::Simulator::set_sanitizer`]).
pub fn run_experiment_traced_with<F>(exp: &Experiment, pre_run: F) -> (Outcome, TraceData)
where
    F: FnOnce(&mut Topology<Proto>),
{
    let mut outcome = run_experiment_with(exp, |topo| {
        topo.sim.set_trace_sink(Box::new(MemorySink::new()));
        pre_run(topo);
    });
    let events = outcome
        .sim
        .take_trace_sink()
        .and_then(|sink| {
            sink.as_any().downcast_ref::<MemorySink>().map(|mem| mem.events().to_vec())
        })
        .unwrap_or_default();
    (outcome, TraceData { events })
}

/// Distill an [`Outcome`] into a deterministic [`MetricsRegistry`]:
/// engine totals, per-port switch counters (quiet ports skipped), link
/// byte/packet counts, and the paper's FCT summary as gauges.
pub fn collect_metrics(outcome: &Outcome) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    let report = &outcome.report;
    m.set_counter("engine.events", report.events);
    m.set_counter("engine.end_time_ns", report.end_time.0);
    m.set_counter(&format!("engine.stop.{}", report.stop.as_str()), 1);
    m.set_counter("flows.total", report.flows_total as u64);
    m.set_counter("flows.completed", report.flows_completed as u64);
    m.set_gauge("flows.completion_ratio", outcome.completion_ratio);

    let t = &outcome.counters;
    m.set_counter("switch.total.enqueued", t.enqueued);
    m.set_counter("switch.total.dropped", t.dropped);
    m.set_counter("switch.total.trimmed", t.trimmed);
    m.set_counter("switch.total.marked", t.marked);
    m.set_counter("switch.total.evicted", t.evicted);
    m.set_counter("switch.total.dropped_bytes", t.dropped_bytes);

    let sim = &outcome.sim;
    for si in 0..sim.switch_count() {
        let sw = netsim::SwitchId(si as u32);
        for pi in 0..sim.port_count(sw) {
            let c = sim.port_counters(sw, pi as u16);
            if c.enqueued == 0 && c.dropped == 0 && c.trimmed == 0 && c.marked == 0 {
                continue;
            }
            let prefix = format!("sw{si}.port{pi}");
            m.set_counter(&format!("{prefix}.enqueued"), c.enqueued);
            if c.dropped > 0 {
                m.set_counter(&format!("{prefix}.dropped"), c.dropped);
            }
            if c.trimmed > 0 {
                m.set_counter(&format!("{prefix}.trimmed"), c.trimmed);
            }
            if c.marked > 0 {
                m.set_counter(&format!("{prefix}.marked"), c.marked);
            }
            if c.evicted > 0 {
                m.set_counter(&format!("{prefix}.evicted"), c.evicted);
            }
        }
    }
    let mut link_bytes = 0u64;
    let mut link_packets = 0u64;
    for li in 0..sim.link_count() {
        let l = sim.link(netsim::LinkId(li as u32));
        link_bytes += l.tx_bytes;
        link_packets += l.tx_packets;
    }
    m.set_counter("links.tx_bytes", link_bytes);
    m.set_counter("links.tx_packets", link_packets);

    let s = outcome.fct.summary();
    m.set_counter("fct.count.all", s.counts.0 as u64);
    m.set_counter("fct.count.small", s.counts.1 as u64);
    m.set_counter("fct.count.large", s.counts.2 as u64);
    m.set_gauge("fct.overall_avg_us", s.overall_avg_us);
    m.set_gauge("fct.small_avg_us", s.small_avg_us);
    m.set_gauge("fct.small_p99_us", s.small_p99_us);
    m.set_gauge("fct.large_avg_us", s.large_avg_us);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_schemes() -> Vec<Scheme> {
        vec![
            Scheme::Dctcp,
            Scheme::Tcp10,
            Scheme::Halfback,
            Scheme::ExpressPass,
            Scheme::Ppt,
            Scheme::PptNoLcpEcn,
            Scheme::PptNoEwd,
            Scheme::PptNoScheduling,
            Scheme::PptNoIdentification,
            Scheme::PptFill(0.75),
            Scheme::Rc3,
            Scheme::Rc3BufferCap(0.5),
            Scheme::Pias,
            Scheme::Homa,
            Scheme::Aeolus,
            Scheme::Ndp,
            Scheme::Hpcc,
            Scheme::PowerTcp,
            Scheme::HpccPpt,
            Scheme::Swift,
            Scheme::SwiftPpt,
            Scheme::Hypothetical(1.0),
        ]
    }

    #[test]
    fn scheme_names_are_unique() {
        let names: Vec<String> = all_schemes().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scheme names");
    }

    #[test]
    fn switch_configs_are_well_formed() {
        let env = SchemeEnv::paper_sim(Rate::gbps(40), SimDuration::from_micros(12));
        for scheme in all_schemes() {
            let cfg = scheme.switch_config(&env);
            assert!(cfg.port_buffer_bytes > 0, "{}: zero buffer", scheme.name());
            for rule in cfg.ecn.iter().flatten() {
                assert!(
                    rule.threshold_bytes <= cfg.port_buffer_bytes,
                    "{}: K above the buffer",
                    scheme.name()
                );
            }
            for cap in &cfg.range_caps {
                assert!(cap.lo < cap.hi && cap.hi as usize <= netsim::NUM_PRIORITIES);
            }
        }
    }

    #[test]
    fn env_pfc_layers_backpressure_on_every_scheme() {
        let mut env = SchemeEnv::paper_sim(Rate::gbps(40), SimDuration::from_micros(12));
        env.pfc = true;
        for scheme in all_schemes() {
            let cfg = scheme.switch_config(&env);
            let pfc = cfg.pfc.unwrap_or_else(|| panic!("{}: env.pfc ignored", scheme.name()));
            assert!(pfc.xon_bytes < pfc.xoff_bytes, "{}: no hysteresis", scheme.name());
            assert!(pfc.xoff_bytes < cfg.port_buffer_bytes, "{}: no headroom", scheme.name());
        }
    }

    #[test]
    fn scale_buffers_shrinks_all_thresholds_consistently() {
        let env = SchemeEnv::paper_testbed().scale_buffers(0.1);
        assert_eq!(env.port_buffer, 100_000);
        assert_eq!(env.k_high, 10_000);
        assert_eq!(env.k_low, 8_000);
        assert!(env.trim_threshold <= env.port_buffer);
        // Extreme shrink floors at one MTU and keeps K ≤ buffer.
        let tiny = SchemeEnv::paper_testbed().scale_buffers(1e-9);
        assert_eq!(tiny.port_buffer, netsim::MTU_BYTES as u64);
        assert!(tiny.k_high <= tiny.port_buffer && tiny.k_low <= tiny.port_buffer);
    }

    #[test]
    fn topo_kinds_build_consistently() {
        for kind in [
            TopoKind::Star { n: 3, rate_gbps: 10, delay_us: 5 },
            TopoKind::PaperTestbed,
            TopoKind::Oversubscribed,
            TopoKind::NonOversubscribed,
            TopoKind::HighSpeed,
        ] {
            let topo = kind.build(SwitchConfig::basic(1 << 20));
            assert_eq!(topo.hosts.len(), kind.hosts(), "{kind:?}: host count");
            assert_eq!(topo.edge_rate, kind.edge_rate(), "{kind:?}: edge rate");
            assert_eq!(topo.base_rtt, kind.base_rtt(), "{kind:?}: base rtt");
        }
    }

    #[test]
    fn envs_follow_the_paper_tables() {
        let tb = SchemeEnv::paper_testbed();
        assert_eq!(tb.k_high, 100_000);
        assert_eq!(tb.k_low, 80_000);
        assert_eq!(tb.rtt_bytes, 50_000);
        assert_eq!(tb.min_rto, SimDuration::from_millis(10));

        let sim = SchemeEnv::paper_sim(Rate::gbps(40), SimDuration::from_micros(12));
        assert_eq!(sim.port_buffer, 120_000);
        assert_eq!(sim.k_high, 96_000);
        assert_eq!(sim.k_low, 86_000);
        assert_eq!(sim.rtt_bytes, 45_000);
    }

    #[test]
    fn hypothetical_requires_two_pass_runner() {
        let mut topo =
            TopoKind::Star { n: 2, rate_gbps: 10, delay_us: 5 }.build(SwitchConfig::basic(1 << 20));
        let env = SchemeEnv::new(Rate::gbps(10), SimDuration::from_micros(20));
        let err = Scheme::Hypothetical(1.0).install(&mut topo, &env);
        assert_eq!(err, Err(InstallError::NeedsTwoPass));
        assert!(format!("{}", InstallError::NeedsTwoPass).contains("two-pass"));
        // Every other scheme installs in a single pass.
        for scheme in all_schemes() {
            if matches!(scheme, Scheme::Hypothetical(_)) {
                continue;
            }
            let mut topo = TopoKind::Star { n: 2, rate_gbps: 10, delay_us: 5 }
                .build(SwitchConfig::basic(1 << 20));
            assert_eq!(scheme.install(&mut topo, &env), Ok(()), "{}", scheme.name());
        }
    }
}
