//! The shared sweep layer: every figure of the paper is a grid of
//! (scheme, load, seed, …) points, and this module is the one place that
//! loop lives — a declarative [`SweepSpec`] executed by a zero-dependency
//! `std::thread` worker pool.
//!
//! ## Determinism
//!
//! Each point is a complete, independent [`run_experiment`] call: a fresh
//! `Simulator`, a fresh workload expansion, and (by harness default) its
//! own bounded flight recorder — workers share no mutable state, so a
//! point's bytes cannot depend on which worker ran it or on how points
//! interleave in wall-clock time. Results are keyed by point *index*, not
//! completion order, so `jobs = 1` and `jobs = N` return byte-identical
//! vectors (asserted by `tests/determinism.rs`). The only observable
//! difference under parallelism is stderr interleaving of abnormal-run
//! warnings.
//!
//! Two-pass schemes ([`Scheme::Hypothetical`]) work unchanged: the oracle
//! recording pass happens inside the worker's `run_experiment` call, so a
//! sweep may freely mix single-pass and two-pass points.

use dcn_stats::FctStats;
use netsim::{PortCounters, RunReport};
use workloads::{all_to_all, SizeDistribution, WorkloadSpec};

use crate::harness::{run_experiment, run_experiment_traced, Experiment, Scheme, TopoKind};
use crate::harness::{Outcome, TraceData};

/// Run `f(0..n)` on `jobs` worker threads and return the results in index
/// order. The primitive under [`SweepSpec::run`]; use it directly when a
/// figure needs a custom per-point extraction (samplers, traces, …).
///
/// `T` must be `Send` plain data — the full [`Outcome`] (which owns the
/// simulator) stays on the worker thread. `jobs <= 1` runs serially on
/// the caller's thread with no pool at all. A panic in any point
/// propagates to the caller once all workers have stopped.
pub fn run_points<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                // Work-stealing counter: each index is claimed exactly once.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                let mut slots = results.lock().unwrap_or_else(|e| e.into_inner());
                slots[i] = Some(out);
            });
        }
    });
    let slots = results.into_inner().unwrap_or_else(|e| e.into_inner());
    slots
        .into_iter()
        .map(|slot| match slot {
            Some(v) => v,
            // Unreachable: every index below `n` is claimed by exactly one
            // worker, and the scope joins (or propagates a panic from)
            // every worker before we get here.
            None => unreachable!("sweep point not computed"),
        })
        .collect()
}

/// One cell of a sweep: a display label plus the experiment to run.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Human-readable tag carried into the result (e.g. `"PPT load 0.5"`).
    pub label: String,
    /// The fully-described experiment for this cell.
    pub exp: Experiment,
}

/// The `Send` extract of one point's [`Outcome`]: everything the figure
/// binaries print, without the simulator itself.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The point's label, copied from the spec.
    pub label: String,
    /// The scheme that ran (for grouping grid results).
    pub scheme: Scheme,
    /// Per-flow FCTs of completed flows.
    pub fct: FctStats,
    /// Fraction of flows that completed.
    pub completion_ratio: f64,
    /// Aggregate switch counters (drops, marks, trims).
    pub counters: PortCounters,
    /// Engine report.
    pub report: RunReport,
    /// Telemetry summary, when the point's experiment enabled telemetry.
    pub telemetry: Option<crate::harness::TelemetrySummary>,
}

impl PointResult {
    fn extract(label: String, scheme: Scheme, outcome: &Outcome) -> Self {
        PointResult {
            label,
            scheme,
            fct: outcome.fct.clone(),
            completion_ratio: outcome.completion_ratio,
            counters: outcome.counters,
            report: outcome.report,
            telemetry: outcome.telemetry.clone(),
        }
    }
}

/// A declarative sweep: an ordered list of points and a worker count.
#[derive(Clone, Debug, Default)]
pub struct SweepSpec {
    /// The grid cells, in result order.
    pub points: Vec<SweepPoint>,
    /// Worker threads (`0`/`1` = serial).
    pub jobs: usize,
}

impl SweepSpec {
    /// An empty serial sweep.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Append one point.
    pub fn point(mut self, label: impl Into<String>, exp: Experiment) -> Self {
        self.points.push(SweepPoint { label: label.into(), exp });
        self
    }

    /// Append the scheme × load × seed grid of the paper's figures, in
    /// row-major order (scheme outermost, seed innermost): an all-to-all
    /// workload of `flows` flows drawn from `dist` on `topo`.
    pub fn grid(
        mut self,
        topo: TopoKind,
        schemes: &[Scheme],
        dist: &SizeDistribution,
        loads: &[f64],
        flows: usize,
        seeds: &[u64],
    ) -> Self {
        for scheme in schemes {
            for &load in loads {
                for &seed in seeds {
                    let spec = WorkloadSpec::new(dist.clone(), load, topo.edge_rate(), flows, seed);
                    let exp =
                        Experiment::new(topo, scheme.clone(), all_to_all(topo.hosts(), &spec));
                    let label = match (loads.len(), seeds.len()) {
                        (1, 1) => scheme.name(),
                        (_, 1) => format!("{} load {load}", scheme.name()),
                        (1, _) => format!("{} seed {seed}", scheme.name()),
                        _ => format!("{} load {load} seed {seed}", scheme.name()),
                    };
                    self.points.push(SweepPoint { label, exp });
                }
            }
        }
        self
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Run every point and return results in point order.
    pub fn run(self) -> Vec<PointResult> {
        let SweepSpec { points, jobs } = self;
        run_points(points.len(), jobs, |i| {
            let SweepPoint { label, exp } = &points[i];
            PointResult::extract(label.clone(), exp.scheme.clone(), &run_experiment(exp))
        })
    }

    /// Run every point with full event capture (a per-point `MemorySink`
    /// instead of the default flight recorder); results in point order.
    pub fn run_traced(self) -> Vec<(PointResult, TraceData)> {
        let SweepSpec { points, jobs } = self;
        run_points(points.len(), jobs, |i| {
            let SweepPoint { label, exp } = &points[i];
            let (outcome, trace) = run_experiment_traced(exp);
            (PointResult::extract(label.clone(), exp.scheme.clone(), &outcome), trace)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_points_orders_by_index_not_completion() {
        // Heavier work at low indices so later indices finish first.
        let out = run_points(8, 4, |i| {
            let mut acc = 0u64;
            for k in 0..((8 - i as u64) * 100_000) {
                acc = acc.wrapping_add(k);
            }
            (i, acc.min(1))
        });
        let idx: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_used_for_jobs_1() {
        assert_eq!(run_points(3, 1, |i| i * i), vec![0, 1, 4]);
        assert_eq!(run_points(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn grid_is_row_major_and_labelled() {
        let spec = SweepSpec::new().grid(
            TopoKind::Star { n: 3, rate_gbps: 10, delay_us: 5 },
            &[Scheme::Dctcp, Scheme::Ppt],
            &SizeDistribution::web_search(),
            &[0.3, 0.6],
            10,
            &[1],
        );
        assert_eq!(spec.len(), 4);
        let labels: Vec<&str> = spec.points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["DCTCP load 0.3", "DCTCP load 0.6", "PPT load 0.3", "PPT load 0.6"]);
    }
}
