//! Table 1 — the qualitative scheme comparison — as data, so the bench
//! harness can regenerate the table and tests can assert the claimed
//! properties line up with what the implementations actually do.

/// How a scheme uses spare bandwidth (Table 1, "Spare bandwidth utilizing
/// pattern").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparePattern {
    Passive,
    Aggressive,
    Graceful,
    /// Graceful but requires INT switch support.
    GracefulIntRequired,
    /// Passive with the first RTT wasted.
    PassiveFirstRttWasted,
}

impl SparePattern {
    pub fn label(&self) -> &'static str {
        match self {
            SparePattern::Passive => "Passive",
            SparePattern::Aggressive => "Aggressive",
            SparePattern::Graceful => "Graceful",
            SparePattern::GracefulIntRequired => "Graceful (but INT required)",
            SparePattern::PassiveFirstRttWasted => "Passive (1st RTT wasted)",
        }
    }
}

/// Scheduling column: Yes / not-applicable (rate control only) / needs
/// flow sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulingCol {
    Yes,
    RateControlOnly,
    NeedsFlowSize,
}

impl SchedulingCol {
    pub fn label(&self) -> &'static str {
        match self {
            SchedulingCol::Yes => "Yes",
            SchedulingCol::RateControlOnly => "x",
            SchedulingCol::NeedsFlowSize => "No (flow size required)",
        }
    }
}

/// One Table 1 row.
#[derive(Clone, Copy, Debug)]
pub struct SchemeRow {
    pub family: &'static str,
    pub name: &'static str,
    pub spare: SparePattern,
    pub scheduling: SchedulingCol,
    pub commodity_switches: bool,
    pub tcpip_compatible: bool,
    pub app_non_intrusive: bool,
}

/// The full table, in the paper's row order.
pub const TABLE1: &[SchemeRow] = &[
    SchemeRow {
        family: "Reactive",
        name: "DCTCP",
        spare: SparePattern::Passive,
        scheduling: SchedulingCol::RateControlOnly,
        commodity_switches: true,
        tcpip_compatible: true,
        app_non_intrusive: true,
    },
    SchemeRow {
        family: "Reactive",
        name: "TCP-10",
        spare: SparePattern::Passive,
        scheduling: SchedulingCol::RateControlOnly,
        commodity_switches: true,
        tcpip_compatible: true,
        app_non_intrusive: true,
    },
    SchemeRow {
        family: "Reactive",
        name: "Halfback",
        spare: SparePattern::Passive,
        scheduling: SchedulingCol::RateControlOnly,
        commodity_switches: true,
        tcpip_compatible: true,
        app_non_intrusive: true,
    },
    SchemeRow {
        family: "Reactive",
        name: "RC3",
        spare: SparePattern::Aggressive,
        scheduling: SchedulingCol::RateControlOnly,
        commodity_switches: true,
        tcpip_compatible: true,
        app_non_intrusive: true,
    },
    SchemeRow {
        family: "Reactive",
        name: "PIAS",
        spare: SparePattern::Passive,
        scheduling: SchedulingCol::Yes,
        commodity_switches: true,
        tcpip_compatible: true,
        app_non_intrusive: true,
    },
    SchemeRow {
        family: "Reactive",
        name: "HPCC",
        spare: SparePattern::GracefulIntRequired,
        scheduling: SchedulingCol::RateControlOnly,
        commodity_switches: false,
        tcpip_compatible: false,
        app_non_intrusive: true,
    },
    SchemeRow {
        family: "Proactive",
        name: "Homa",
        spare: SparePattern::Aggressive,
        scheduling: SchedulingCol::NeedsFlowSize,
        commodity_switches: true,
        tcpip_compatible: false,
        app_non_intrusive: false,
    },
    SchemeRow {
        family: "Proactive",
        name: "Aeolus",
        spare: SparePattern::Aggressive,
        scheduling: SchedulingCol::NeedsFlowSize,
        commodity_switches: true,
        tcpip_compatible: false,
        app_non_intrusive: false,
    },
    SchemeRow {
        family: "Proactive",
        name: "ExpressPass",
        spare: SparePattern::PassiveFirstRttWasted,
        scheduling: SchedulingCol::RateControlOnly,
        commodity_switches: true,
        tcpip_compatible: false,
        app_non_intrusive: false,
    },
    SchemeRow {
        family: "Proactive",
        name: "NDP",
        spare: SparePattern::PassiveFirstRttWasted,
        scheduling: SchedulingCol::RateControlOnly,
        commodity_switches: false,
        tcpip_compatible: false,
        app_non_intrusive: false,
    },
    SchemeRow {
        family: "",
        name: "PPT",
        spare: SparePattern::Graceful,
        scheduling: SchedulingCol::Yes,
        commodity_switches: true,
        tcpip_compatible: true,
        app_non_intrusive: true,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppt_is_the_only_fully_green_row() {
        let full: Vec<&SchemeRow> = TABLE1
            .iter()
            .filter(|r| {
                r.spare == SparePattern::Graceful
                    && r.scheduling == SchedulingCol::Yes
                    && r.commodity_switches
                    && r.tcpip_compatible
                    && r.app_non_intrusive
            })
            .collect();
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].name, "PPT");
    }

    #[test]
    fn table_has_eleven_rows() {
        assert_eq!(TABLE1.len(), 11);
    }
}
