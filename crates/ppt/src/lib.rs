#![forbid(unsafe_code)]
//! # ppt — PPT: A Pragmatic Transport for Datacenters
//!
//! A from-scratch Rust reproduction of *PPT: A Pragmatic Transport for
//! Datacenters* (SIGCOMM '24): the dual-loop rate control and
//! buffer-aware flow scheduling algorithms, every baseline the paper
//! compares against (DCTCP, RC3, PIAS, Homa, Aeolus, NDP, HPCC, a
//! Swift-like delay CC), a deterministic packet-level datacenter network
//! simulator to run them on, the paper's workloads, and an experiment
//! harness that regenerates every table and figure of the evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
//! use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};
//!
//! let topo = TopoKind::Star { n: 4, rate_gbps: 10, delay_us: 20 };
//! let spec = WorkloadSpec::new(
//!     SizeDistribution::web_search(), 0.5, topo.edge_rate(), 50, 42,
//! );
//! let flows = all_to_all(topo.hosts(), &spec);
//! let outcome = run_experiment(&Experiment::new(topo, Scheme::Ppt, flows));
//! assert!(outcome.completion_ratio > 0.99);
//! println!("overall avg FCT: {:.1}us", outcome.fct.overall_avg_us());
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | `core` (re-exported as `ppt_core`) | the paper's algorithms as a pure library |
//! | [`netsim`] | the discrete-event network simulator substrate |
//! | [`transports`] | PPT + every baseline as simulator endpoints |
//! | [`workloads`] | flow-size CDFs, Poisson arrivals, traffic patterns |
//! | `stats` (re-exported as `dcn_stats`) | FCT / utilization / occupancy statistics |
//! | `bench` | one binary per paper table & figure |

pub mod harness;
pub mod sweep;
pub mod table1;

pub use dcn_stats as stats;
pub use netsim;
pub use netsim::trace;
pub use ppt_core as core;
pub use transports;
pub use workloads;

pub use harness::{
    collect_metrics, run_experiment, run_experiment_traced, run_experiment_with, Experiment,
    InstallError, Outcome, Scheme, SchemeEnv, TelemetrySpec, TelemetrySummary, TopoKind, TraceData,
};
pub use sweep::{run_points, PointResult, SweepPoint, SweepSpec};
