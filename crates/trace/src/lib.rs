#![forbid(unsafe_code)]
//! # dcn-trace — flight-recorder tracing and metrics
//!
//! A zero-dependency observability layer for the simulator and the
//! transports. Three pieces:
//!
//! - **[`TraceEvent`]**: a typed, `Copy` event stream covering engine-level
//!   happenings (flow start/complete, enqueue/dequeue/drop, ECN mark,
//!   timer, retransmit) and protocol-level ones (LCP loop lifecycle, EWD
//!   ACKs, alpha/cwnd updates, PIAS demotions). Events are plain integers
//!   and bools — constructing one never allocates, so the disabled path
//!   costs a single branch.
//! - **[`TraceSink`]**: where events go. [`MemorySink`] keeps everything
//!   (tests, analyzers), [`JsonlSink`] eagerly encodes to JSON-lines text,
//!   and [`FlightRecorder`] is a bounded ring that keeps only the last N
//!   events for post-mortem dumps on abnormal runs.
//! - **[`MetricsRegistry`]**: BTreeMap-keyed counters and gauges with a
//!   hand-rolled, deterministically ordered JSON snapshot. No serde; the
//!   workspace stays offline.
//! - **[`Series`] / [`LogHistogram`]**: continuous-telemetry containers —
//!   a bounded ring time series and an HDR-style log-bucket histogram —
//!   filled by the engine's deterministic interval sampler (DESIGN.md §14).
//!
//! Determinism contract: every event field is derived from simulated state,
//! and every serialization iterates in `BTreeMap`/insertion order, so the
//! same seed produces byte-identical `events.jsonl` and `metrics.json`.

pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod telemetry;

pub use event::{encode_line, LcpCloseReason, LcpTrigger, ProfKind, SanCheck, TraceEvent};
pub use json::JsonObject;
pub use metrics::MetricsRegistry;
pub use sink::{FlightRecorder, JsonlSink, MemorySink, TraceSink};
pub use telemetry::{LogHistogram, Series, SeriesPoint};
