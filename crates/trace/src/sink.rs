//! Trace sinks: where the event stream goes.

use std::any::Any;
use std::collections::VecDeque;

use crate::event::{encode_line, TraceEvent};

/// A consumer of trace events.
///
/// The simulator holds `Option<Box<dyn TraceSink>>`; `None` is the
/// strictly zero-cost disabled path. `Any` is a supertrait so callers can
/// take the sink back from the engine and downcast to the concrete type
/// (`sink.as_any().downcast_ref::<MemorySink>()`).
pub trait TraceSink: Any {
    /// Consume one event stamped with simulated time `at` (nanoseconds).
    fn emit(&mut self, at: u64, ev: &TraceEvent);

    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Keeps every event in memory. The sink for tests and for the
/// `stats` analyzers, which want typed events rather than text.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    events: Vec<(u64, TraceEvent)>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn events(&self) -> &[(u64, TraceEvent)] {
        &self.events
    }

    pub fn into_events(self) -> Vec<(u64, TraceEvent)> {
        self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Encode the whole stream as JSON-lines text (one trailing newline
    /// per event).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (at, ev) in &self.events {
            encode_line(&mut out, *at, ev);
            out.push('\n');
        }
        out
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, at: u64, ev: &TraceEvent) {
        self.events.push((at, *ev));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Encodes every event to JSONL text eagerly. Streams into one growing
/// `String` buffer the caller writes to disk when the run ends.
#[derive(Debug, Default, Clone)]
pub struct JsonlSink {
    buf: String,
}

impl JsonlSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn as_str(&self) -> &str {
        &self.buf
    }

    pub fn into_string(self) -> String {
        self.buf
    }
}

impl TraceSink for JsonlSink {
    fn emit(&mut self, at: u64, ev: &TraceEvent) {
        encode_line(&mut self.buf, at, ev);
        self.buf.push('\n');
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A bounded ring buffer keeping only the last `cap` events — the flight
/// recorder. Cheap enough to leave on for every run; dumped when a run
/// ends abnormally (event budget exhausted, incomplete flows).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    ring: VecDeque<(u64, TraceEvent)>,
    total: u64,
}

impl FlightRecorder {
    /// `cap` is clamped to at least 1.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder { cap, ring: VecDeque::with_capacity(cap), total: 0 }
    }

    /// Total events seen, including those already evicted from the ring.
    pub fn total_seen(&self) -> u64 {
        self.total
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, TraceEvent)> {
        self.ring.iter()
    }

    /// JSONL dump of the retained tail, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (at, ev) in &self.ring {
            encode_line(&mut out, *at, ev);
            out.push('\n');
        }
        out
    }
}

impl TraceSink for FlightRecorder {
    fn emit(&mut self, at: u64, ev: &TraceEvent) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back((at, *ev));
        self.total += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_records_in_order() {
        let mut s = MemorySink::new();
        s.emit(1, &TraceEvent::FlowComplete { flow: 0 });
        s.emit(2, &TraceEvent::FlowComplete { flow: 1 });
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].0, 1);
        assert_eq!(s.to_jsonl().lines().count(), 2);
    }

    #[test]
    fn jsonl_sink_matches_memory_sink_encoding() {
        let evs = [
            (5, TraceEvent::Timer { host: 1, token: 9 }),
            (6, TraceEvent::FlowComplete { flow: 3 }),
        ];
        let mut a = MemorySink::new();
        let mut b = JsonlSink::new();
        for (at, ev) in &evs {
            a.emit(*at, ev);
            b.emit(*at, ev);
        }
        assert_eq!(a.to_jsonl(), b.as_str());
    }

    #[test]
    fn flight_recorder_keeps_only_the_tail() {
        let mut r = FlightRecorder::new(3);
        for i in 0..10u64 {
            r.emit(i, &TraceEvent::FlowComplete { flow: i });
        }
        assert_eq!(r.total_seen(), 10);
        assert_eq!(r.len(), 3);
        let kept: Vec<u64> = r.events().map(|(at, _)| *at).collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn downcast_through_the_trait_object_works() {
        let mut boxed: Box<dyn TraceSink> = Box::new(MemorySink::new());
        boxed.emit(1, &TraceEvent::FlowComplete { flow: 0 });
        let mem = boxed.as_any().downcast_ref::<MemorySink>().unwrap();
        assert_eq!(mem.len(), 1);
    }
}
