//! Continuous-telemetry primitives: ring-buffered time [`Series`] and
//! dependency-free log-bucket [`LogHistogram`]s.
//!
//! Both types are plain deterministic containers: feeding them the same
//! values in the same order produces byte-identical JSON, so they can sit
//! behind the engine's telemetry sampler without weakening the
//! byte-identity contract (DESIGN.md §14). Neither allocates after
//! construction — a `Series` ring is bounded by its capacity and a
//! histogram's bucket array is fixed at ~15 KB.

use std::collections::VecDeque;

use crate::json::push_f64;

/// One point of a [`Series`]: a simulated-time stamp and a value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Simulated time of the observation, nanoseconds.
    pub at: u64,
    /// Observed value (counters and byte totals are widened to `f64`).
    pub value: f64,
}

/// A bounded time series: pushes beyond the capacity evict the oldest
/// point, so long runs keep the most recent window at a fixed memory
/// cost. The eviction count is retained for reporting.
#[derive(Clone, Debug)]
pub struct Series {
    name: String,
    cap: usize,
    evicted: u64,
    points: VecDeque<SeriesPoint>,
}

impl Series {
    /// A new empty series holding at most `cap` points.
    pub fn new(name: impl Into<String>, cap: usize) -> Self {
        assert!(cap > 0, "series capacity must be positive");
        Series { name: name.into(), cap, evicted: 0, points: VecDeque::with_capacity(cap) }
    }

    /// Append a point, evicting the oldest when the ring is full.
    pub fn push(&mut self, at: u64, value: f64) {
        if self.points.len() == self.cap {
            self.points.pop_front();
            self.evicted += 1;
        }
        self.points.push_back(SeriesPoint { at, value });
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Points currently retained.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points are retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points evicted from the ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &SeriesPoint> {
        self.points.iter()
    }

    /// The most recent point, if any.
    pub fn last(&self) -> Option<&SeriesPoint> {
        self.points.back()
    }

    /// JSON encoding: `{"name":…,"evicted":N,"points":[[at,value],…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"name\":\"");
        crate::json::push_escaped(&mut out, &self.name);
        out.push_str("\",\"evicted\":");
        out.push_str(&self.evicted.to_string());
        out.push_str(",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            out.push_str(&p.at.to_string());
            out.push(',');
            push_f64(&mut out, p.value);
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

/// Sub-bucket resolution of [`LogHistogram`]: each power-of-two octave is
/// split into `2^SUB_BITS` linear sub-buckets, bounding the relative
/// quantization error at `2^-SUB_BITS` (≈3.1%).
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Index space: values below `SUB` get exact unit buckets; above that,
/// `(top_bit - SUB_BITS)` shifted octaves of `SUB` sub-buckets each.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Bucket index for a value (total order preserved across buckets).
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let top = 63 - v.leading_zeros() as u64;
    let shift = top - SUB_BITS as u64;
    (((shift + 1) * SUB) + ((v >> shift) - SUB)) as usize
}

/// Lower bound of a bucket (the value [`LogHistogram::percentile`] reports).
fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let shift = idx / SUB - 1;
        (SUB + idx % SUB) << shift
    }
}

/// An HDR-style log-bucket histogram over `u64` values: fixed-size bucket
/// array (no allocation per record), exact min/max/sum, and percentile
/// queries with a bounded ≈3.1% relative error from bucket quantization.
/// Merging two histograms is exact bucket-wise addition, so per-shard
/// histograms can be combined without re-recording.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// A new empty histogram.
    pub fn new() -> Self {
        LogHistogram { counts: vec![0; BUCKETS], total: 0, min: u64::MAX, max: 0, sum: 0 }
    }

    /// Record one value. Specialized over [`LogHistogram::record_n`]
    /// because this is the per-packet hot path: no zero-count branch and
    /// no 128-bit multiply.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Record `n` occurrences of a value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.total += n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128 * n as u128;
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Nearest-rank percentile (`q` in 0..=100): the lower bound of the
    /// bucket holding the rank, clamped into the exact `[min, max]` range
    /// so `percentile(0.0)` and `percentile(100.0)` are exact.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        // Boundary ranks are known exactly: the smallest recorded value
        // holds rank 1 and the largest holds rank `total`.
        if rank == 1 {
            return self.min;
        }
        if rank == self.total {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Add every recorded value of `other` into `self` (exact bucket-wise).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Non-empty buckets as `(bucket_floor, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (bucket_floor(i), c))
    }

    /// JSON summary: count, exact min/max/mean and the standard
    /// percentile ladder (p50/p90/p99/p999).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"count\":");
        out.push_str(&self.total.to_string());
        out.push_str(",\"min\":");
        out.push_str(&self.min().to_string());
        out.push_str(",\"max\":");
        out.push_str(&self.max.to_string());
        out.push_str(",\"mean\":");
        push_f64(&mut out, self.mean());
        for (tag, q) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("p999", 99.9)] {
            out.push_str(",\"");
            out.push_str(tag);
            out.push_str("\":");
            out.push_str(&self.percentile(q).to_string());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_ring_evicts_oldest() {
        let mut s = Series::new("q", 3);
        for i in 0..5u64 {
            s.push(i * 10, i as f64);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        let ats: Vec<u64> = s.points().map(|p| p.at).collect();
        assert_eq!(ats, [20, 30, 40]);
        assert_eq!(s.last().unwrap().value, 4.0);
    }

    #[test]
    fn series_json_is_stable() {
        let mut s = Series::new("link0.util", 8);
        s.push(1000, 0.5);
        s.push(2000, 1.0);
        assert_eq!(
            s.to_json(),
            r#"{"name":"link0.util","evicted":0,"points":[[1000,0.5],[2000,1]]}"#
        );
    }

    #[test]
    fn histogram_buckets_are_exact_below_sub() {
        for v in 0..SUB {
            assert_eq!(bucket_floor(bucket_index(v)), v, "v={v}");
        }
    }

    #[test]
    fn histogram_bucket_floor_is_a_lower_bound_within_3pct() {
        for v in [32u64, 33, 100, 1000, 12_345, 1 << 20, u64::MAX / 3, u64::MAX] {
            let floor = bucket_floor(bucket_index(v));
            assert!(floor <= v, "floor {floor} above v={v}");
            let err = (v - floor) as f64 / v as f64;
            assert!(err < 1.0 / SUB as f64 + 1e-12, "err {err} too large for v={v}");
        }
    }

    #[test]
    fn histogram_bucket_index_is_monotone() {
        let mut prev = 0usize;
        for k in 0..63u32 {
            for v in [(1u64 << k), (1u64 << k) + 1, (1u64 << k).wrapping_sub(1).max(1)] {
                let idx = bucket_index(v);
                assert!(idx < BUCKETS, "idx {idx} out of range for v={v}");
                let _ = prev;
                prev = idx;
            }
        }
        // Strict check on a sorted sweep.
        let mut last = bucket_index(0);
        for v in (0..20_000u64).step_by(7) {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at v={v}");
            last = idx;
        }
    }

    #[test]
    fn histogram_percentiles_track_sorted_data() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9, "mean {}", h.mean());
        let p50 = h.percentile(50.0);
        assert!((469..=500).contains(&p50), "p50 {p50} outside quantization window");
        let p99 = h.percentile(99.0);
        assert!((960..=990).contains(&p99), "p99 {p99} outside quantization window");
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 1000);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for v in [3u64, 77, 1460, 95_000, 12] {
            a.record(v);
            c.record(v);
        }
        for v in [40u64, 40, 2_000_000] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.to_json(), c.to_json());
        assert_eq!(a.count(), 8);
    }

    #[test]
    fn histogram_json_is_stable_and_deterministic() {
        let build = || {
            let mut h = LogHistogram::new();
            for v in [10u64, 100, 1000, 10_000] {
                h.record(v);
            }
            h.to_json()
        };
        let j = build();
        assert_eq!(j, build());
        assert!(j.starts_with(r#"{"count":4,"min":10,"max":10000,"mean":2777.5"#), "{j}");
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert!(h.is_empty(), "fresh histogram must be empty");
    }
}
