//! A deterministic metrics registry: named counters and gauges keyed by
//! `BTreeMap`, so iteration (and therefore the JSON snapshot) is always
//! in lexicographic key order regardless of insertion order.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::json::{push_escaped, push_f64};

/// Monotonic `u64` counters plus `f64` gauges, snapshot to hand-rolled
/// JSON. Keys are dotted paths (`"sw0.port1.dropped"`, `"flows.completed"`).
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `key` (creating it at zero).
    pub fn add(&mut self, key: &str, delta: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += delta;
    }

    /// Set counter `key` to an absolute value.
    pub fn set_counter(&mut self, key: &str, value: u64) {
        self.counters.insert(key.to_string(), value);
    }

    /// Set gauge `key`.
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Deterministic pretty-printed JSON snapshot:
    /// `{"counters": {...}, "gauges": {...}}` with keys in sorted order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    \"");
            push_escaped(&mut out, k);
            let _ = write!(out, "\": {v}");
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        let mut first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    \"");
            push_escaped(&mut out, k);
            out.push_str("\": ");
            push_f64(&mut out, *v);
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.add("a.b", 2);
        m.add("a.b", 3);
        m.set_gauge("g", 0.25);
        m.set_gauge("g", 0.5);
        assert_eq!(m.counter("a.b"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(0.5));
    }

    #[test]
    fn json_snapshot_is_sorted_and_insertion_order_independent() {
        let mut a = MetricsRegistry::new();
        a.add("z", 1);
        a.add("a", 2);
        a.set_gauge("m", 1.5);
        let mut b = MetricsRegistry::new();
        b.set_gauge("m", 1.5);
        b.add("a", 2);
        b.add("z", 1);
        assert_eq!(a.to_json(), b.to_json());
        let json = a.to_json();
        assert!(json.find("\"a\": 2").unwrap() < json.find("\"z\": 1").unwrap(), "{json}");
    }

    #[test]
    fn empty_registry_serializes_to_empty_sections() {
        let json = MetricsRegistry::new().to_json();
        assert_eq!(json, "{\n  \"counters\": {},\n  \"gauges\": {}\n}\n");
    }
}
