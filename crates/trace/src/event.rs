//! The typed trace-event stream.
//!
//! Every variant is `Copy` and built from plain integers/bools, so
//! constructing an event never allocates: with no sink attached, tracing
//! costs exactly one branch per emission site.
//!
//! Two layers feed the stream. The *engine* emits flow lifecycle, queue
//! and timer events from inside `Simulator`; *transports* publish
//! protocol-level events (PPT's LCP loop lifecycle, EWD ACK decisions,
//! DCTCP alpha/cwnd updates, PIAS demotions) through `Ctx::emit`.
//!
//! The JSONL wire format is one object per line, `at` (sim-time ns) and
//! `ev` (the [`TraceEvent::kind`] tag) first, then variant fields. The
//! encoder in [`encode_line`] must have one arm per variant — simlint's
//! `trace_schema` rule enforces that.

use std::fmt::Write;

/// Why an LCP (low-priority control loop) was opened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LcpTrigger {
    /// Case 1: opened at flow start to fill the first-RTT gap (§3.1).
    FlowStart,
    /// Case 2: opened when DCTCP's alpha pinned at its minimum, i.e. the
    /// flow observed persistent queue headroom (§3.1).
    QueueBuildup,
}

impl LcpTrigger {
    pub fn as_str(&self) -> &'static str {
        match self {
            LcpTrigger::FlowStart => "flow_start",
            LcpTrigger::QueueBuildup => "queue_buildup",
        }
    }
}

/// Why an LCP was closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LcpCloseReason {
    /// Every byte the loop could usefully send is covered by the HCP.
    FlowDone,
    /// The loop's expiry timer lapsed without useful work left.
    Expired,
    /// The loop expired without ever receiving a low-priority ACK: the
    /// network is dropping LP traffic outright, so the loop terminates
    /// after 2 silent RTTs (§3.2, "Remarks").
    NoLpAcks,
}

impl LcpCloseReason {
    pub fn as_str(&self) -> &'static str {
        match self {
            LcpCloseReason::FlowDone => "flow_done",
            LcpCloseReason::Expired => "expired",
            LcpCloseReason::NoLpAcks => "no_lp_acks",
        }
    }
}

/// Which runtime invariant a sanitizer violation report refers to.
///
/// The tags mirror the invariant families of DESIGN.md §13; the engine's
/// simsan auditor (`netsim::sanitizer`) emits one
/// [`TraceEvent::SanViolation`] per detected breach.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SanCheck {
    /// Packet-pool conservation: every in-flight slot allocated exactly
    /// once, freed exactly once, none live at a quiescent run end.
    PoolConservation,
    /// Event-clock discipline: dispatch times never decrease.
    ClockMonotonic,
    /// FIFO tie-break: heap sequence numbers must be assigned in strictly
    /// increasing order so same-time events dispatch in insertion order.
    TieBreak,
    /// A handler scheduled an event before the current simulated time.
    SchedulePast,
    /// Queue accounting: byte counters recomputed from queue contents (or
    /// the shadow ledger) disagree with `PrioQueues` internals.
    QueueAccounting,
    /// An ECN mark was applied inconsistently with the instantaneous
    /// backlog / configured rule.
    EcnMark,
    /// Link occupancy: at most one serialization in flight per port, and
    /// every TxDone must match a prior transmit.
    LinkOccupancy,
    /// Transport conservation: cwnd > 0, monotone cumulative ACKs,
    /// armed RTO implies outstanding data.
    TransportConservation,
    /// Fault-injected drops not fully attributed in the `FaultReport`.
    FaultAttribution,
}

impl SanCheck {
    pub fn as_str(&self) -> &'static str {
        match self {
            SanCheck::PoolConservation => "pool_conservation",
            SanCheck::ClockMonotonic => "clock_monotonic",
            SanCheck::TieBreak => "tie_break",
            SanCheck::SchedulePast => "schedule_past",
            SanCheck::QueueAccounting => "queue_accounting",
            SanCheck::EcnMark => "ecn_mark",
            SanCheck::LinkOccupancy => "link_occupancy",
            SanCheck::TransportConservation => "transport_conservation",
            SanCheck::FaultAttribution => "fault_attribution",
        }
    }
}

/// The engine event kinds the dispatch-loop self-profiler attributes
/// wall-clock time to (DESIGN.md §14). Mirrors the engine's internal
/// event enum one-to-one; `ALL` fixes the reporting order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfKind {
    /// Flow-start dispatches (application handoff to the transport).
    FlowStart,
    /// Packet deliveries (host receive + switch forwarding).
    Deliver,
    /// Egress serialization completions.
    TxDone,
    /// Transport timer fires.
    Timer,
    /// Telemetry/legacy sampler ticks.
    Sample,
    /// Timed fault operations.
    Fault,
}

impl ProfKind {
    /// Every kind, in the order profile breakdowns are reported.
    pub const ALL: [ProfKind; 6] = [
        ProfKind::FlowStart,
        ProfKind::Deliver,
        ProfKind::TxDone,
        ProfKind::Timer,
        ProfKind::Sample,
        ProfKind::Fault,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            ProfKind::FlowStart => "flow_start",
            ProfKind::Deliver => "deliver",
            ProfKind::TxDone => "tx_done",
            ProfKind::Timer => "timer",
            ProfKind::Sample => "sample",
            ProfKind::Fault => "fault",
        }
    }
}

/// One trace event. Time is carried next to the event by the sink
/// (`TraceSink::emit(at, ev)`), not inside it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// The application handed `flow` to the transport at its source host.
    FlowStart { flow: u64, src: u32, dst: u32, size: u64 },
    /// The receiver reported every byte of `flow` delivered.
    FlowComplete { flow: u64 },
    /// A packet was admitted to a switch egress queue.
    Enqueue { sw: u32, port: u16, flow: u64, prio: u8, qlen: u64 },
    /// A packet left a switch egress queue for serialization.
    Dequeue { sw: u32, port: u16, flow: u64, prio: u8 },
    /// A packet was dropped at admission (buffer exhausted).
    Drop { sw: u32, port: u16, flow: u64, prio: u8, bytes: u64 },
    /// A packet was ECN-marked at admission (instantaneous queue > K).
    EcnMark { sw: u32, port: u16, flow: u64, prio: u8, qlen: u64 },
    /// A packet's payload was trimmed to a header at admission (NDP-style).
    Trim { sw: u32, port: u16, flow: u64, prio: u8 },
    /// A transport timer fired.
    Timer { host: u32, token: u64 },
    /// A sender retransmitted the segment at `offset`.
    Retransmit { flow: u64, offset: u64, len: u64 },
    /// PPT opened a low-priority control loop.
    LcpOpened { flow: u64, trigger: LcpTrigger, init_bytes: u64 },
    /// PPT closed a low-priority control loop.
    LcpClosed { flow: u64, reason: LcpCloseReason },
    /// An LCP ACK arrived; `sent_new` records whether it clocked out new
    /// packets (EWD: ECE-marked LCP ACKs must not, §3.2).
    LcpAck { flow: u64, ece: bool, sent_new: bool },
    /// The LCP sent the segment at `offset` (tail side).
    LcpSend { flow: u64, offset: u64, len: u64 },
    /// DCTCP's per-round congestion estimate was updated.
    AlphaUpdate { flow: u64, alpha: f64 },
    /// The HCP congestion window changed (post-ACK value, bytes).
    CwndUpdate { flow: u64, cwnd: u64 },
    /// PIAS demoted `flow` between priority levels.
    PiasDemote { flow: u64, from: u8, to: u8 },
    /// A switch egress port crossed a PFC threshold for priority `prio`
    /// and broadcast pause (`on == true`, backlog ≥ XOFF) or resume
    /// (`on == false`, backlog ≤ XON) frames to every upstream neighbour.
    /// `qlen` is the priority's backlog at the crossing.
    PfcXoff { sw: u32, port: u16, prio: u8, qlen: u64, on: bool },
    /// A host NIC applied a received pause (`on == true`) or resume
    /// (`on == false`) frame for priority `prio`.
    PfcPause { host: u32, prio: u8, on: bool },
    /// A switch egress port applied a received pause/resume frame for
    /// priority `prio` (the port faces the congested downstream switch).
    PfcSwPause { sw: u32, port: u16, prio: u8, on: bool },
    /// A scheduled fault took `link` down: everything serialized onto it
    /// until the matching [`TraceEvent::LinkUp`] is lost on the wire.
    LinkDown { link: u32 },
    /// A scheduled fault restored `link`.
    LinkUp { link: u32 },
    /// The fault layer dropped a packet in flight (random loss or a down
    /// link); `bytes` is the wire size of the lost packet.
    FaultDrop { link: u32, flow: u64, prio: u8, bytes: u64 },
    /// The runtime sanitizer (simsan) detected an invariant breach.
    /// `subject` identifies the entity (port key, pool slot, flow or link
    /// id — which one depends on `check`); `expected`/`actual` carry the
    /// disagreeing quantities.
    SanViolation { check: SanCheck, subject: u64, expected: u64, actual: u64 },
    /// One telemetry sampler reading: `series` indexes the run's series
    /// table (written alongside the stream). Only post-run telemetry
    /// export writes these — the live golden trace path never sees them,
    /// which is what keeps telemetry-on runs byte-identical (DESIGN.md §14).
    Sample { series: u32, value: f64 },
    /// Engine self-profiler totals for one event kind: wall-clock
    /// nanoseconds, so only written behind the explicit `prof` knob and
    /// always excluded from determinism goldens (DESIGN.md §14).
    Profile { kind: ProfKind, count: u64, total_ns: u64 },
}

impl TraceEvent {
    /// The `ev` tag used in the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FlowStart { .. } => "flow_start",
            TraceEvent::FlowComplete { .. } => "flow_complete",
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::Dequeue { .. } => "dequeue",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::EcnMark { .. } => "ecn_mark",
            TraceEvent::Trim { .. } => "trim",
            TraceEvent::Timer { .. } => "timer",
            TraceEvent::Retransmit { .. } => "retransmit",
            TraceEvent::LcpOpened { .. } => "lcp_opened",
            TraceEvent::LcpClosed { .. } => "lcp_closed",
            TraceEvent::LcpAck { .. } => "lcp_ack",
            TraceEvent::LcpSend { .. } => "lcp_send",
            TraceEvent::AlphaUpdate { .. } => "alpha_update",
            TraceEvent::CwndUpdate { .. } => "cwnd_update",
            TraceEvent::PiasDemote { .. } => "pias_demote",
            TraceEvent::PfcXoff { .. } => "pfc_xoff",
            TraceEvent::PfcPause { .. } => "pfc_pause",
            TraceEvent::PfcSwPause { .. } => "pfc_sw_pause",
            TraceEvent::LinkDown { .. } => "link_down",
            TraceEvent::LinkUp { .. } => "link_up",
            TraceEvent::FaultDrop { .. } => "fault_drop",
            TraceEvent::SanViolation { .. } => "san_violation",
            TraceEvent::Sample { .. } => "sample",
            TraceEvent::Profile { .. } => "profile",
        }
    }
}

/// Append the JSONL encoding of `(at, ev)` to `out` (no trailing newline).
///
/// simlint's `trace_schema` rule checks that every `TraceEvent` variant
/// appears as an arm inside this function's body.
pub fn encode_line(out: &mut String, at: u64, ev: &TraceEvent) {
    let _ = write!(out, "{{\"at\":{at},\"ev\":\"{}\"", ev.kind());
    match *ev {
        TraceEvent::FlowStart { flow, src, dst, size } => {
            let _ = write!(out, ",\"flow\":{flow},\"src\":{src},\"dst\":{dst},\"size\":{size}");
        }
        TraceEvent::FlowComplete { flow } => {
            let _ = write!(out, ",\"flow\":{flow}");
        }
        TraceEvent::Enqueue { sw, port, flow, prio, qlen } => {
            let _ = write!(
                out,
                ",\"sw\":{sw},\"port\":{port},\"flow\":{flow},\"prio\":{prio},\"qlen\":{qlen}"
            );
        }
        TraceEvent::Dequeue { sw, port, flow, prio } => {
            let _ = write!(out, ",\"sw\":{sw},\"port\":{port},\"flow\":{flow},\"prio\":{prio}");
        }
        TraceEvent::Drop { sw, port, flow, prio, bytes } => {
            let _ = write!(
                out,
                ",\"sw\":{sw},\"port\":{port},\"flow\":{flow},\"prio\":{prio},\"bytes\":{bytes}"
            );
        }
        TraceEvent::EcnMark { sw, port, flow, prio, qlen } => {
            let _ = write!(
                out,
                ",\"sw\":{sw},\"port\":{port},\"flow\":{flow},\"prio\":{prio},\"qlen\":{qlen}"
            );
        }
        TraceEvent::Trim { sw, port, flow, prio } => {
            let _ = write!(out, ",\"sw\":{sw},\"port\":{port},\"flow\":{flow},\"prio\":{prio}");
        }
        TraceEvent::Timer { host, token } => {
            let _ = write!(out, ",\"host\":{host},\"token\":{token}");
        }
        TraceEvent::Retransmit { flow, offset, len } => {
            let _ = write!(out, ",\"flow\":{flow},\"offset\":{offset},\"len\":{len}");
        }
        TraceEvent::LcpOpened { flow, trigger, init_bytes } => {
            let _ = write!(
                out,
                ",\"flow\":{flow},\"trigger\":\"{}\",\"init_bytes\":{init_bytes}",
                trigger.as_str()
            );
        }
        TraceEvent::LcpClosed { flow, reason } => {
            let _ = write!(out, ",\"flow\":{flow},\"reason\":\"{}\"", reason.as_str());
        }
        TraceEvent::LcpAck { flow, ece, sent_new } => {
            let _ = write!(out, ",\"flow\":{flow},\"ece\":{ece},\"sent_new\":{sent_new}");
        }
        TraceEvent::LcpSend { flow, offset, len } => {
            let _ = write!(out, ",\"flow\":{flow},\"offset\":{offset},\"len\":{len}");
        }
        TraceEvent::AlphaUpdate { flow, alpha } => {
            let _ = write!(out, ",\"flow\":{flow},\"alpha\":");
            crate::json::push_f64(out, alpha);
        }
        TraceEvent::CwndUpdate { flow, cwnd } => {
            let _ = write!(out, ",\"flow\":{flow},\"cwnd\":{cwnd}");
        }
        TraceEvent::PiasDemote { flow, from, to } => {
            let _ = write!(out, ",\"flow\":{flow},\"from\":{from},\"to\":{to}");
        }
        TraceEvent::PfcXoff { sw, port, prio, qlen, on } => {
            let _ = write!(
                out,
                ",\"sw\":{sw},\"port\":{port},\"prio\":{prio},\"qlen\":{qlen},\"on\":{on}"
            );
        }
        TraceEvent::PfcPause { host, prio, on } => {
            let _ = write!(out, ",\"host\":{host},\"prio\":{prio},\"on\":{on}");
        }
        TraceEvent::PfcSwPause { sw, port, prio, on } => {
            let _ = write!(out, ",\"sw\":{sw},\"port\":{port},\"prio\":{prio},\"on\":{on}");
        }
        TraceEvent::LinkDown { link } => {
            let _ = write!(out, ",\"link\":{link}");
        }
        TraceEvent::LinkUp { link } => {
            let _ = write!(out, ",\"link\":{link}");
        }
        TraceEvent::FaultDrop { link, flow, prio, bytes } => {
            let _ =
                write!(out, ",\"link\":{link},\"flow\":{flow},\"prio\":{prio},\"bytes\":{bytes}");
        }
        TraceEvent::SanViolation { check, subject, expected, actual } => {
            let _ = write!(
                out,
                ",\"check\":\"{}\",\"subject\":{subject},\"expected\":{expected},\"actual\":{actual}",
                check.as_str()
            );
        }
        TraceEvent::Sample { series, value } => {
            let _ = write!(out, ",\"series\":{series},\"value\":");
            crate::json::push_f64(out, value);
        }
        TraceEvent::Profile { kind, count, total_ns } => {
            let _ = write!(
                out,
                ",\"kind\":\"{}\",\"count\":{count},\"total_ns\":{total_ns}",
                kind.as_str()
            );
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: &[TraceEvent] = &[
        TraceEvent::FlowStart { flow: 1, src: 0, dst: 3, size: 1_000_000 },
        TraceEvent::FlowComplete { flow: 1 },
        TraceEvent::Enqueue { sw: 0, port: 2, flow: 1, prio: 0, qlen: 2920 },
        TraceEvent::Dequeue { sw: 0, port: 2, flow: 1, prio: 0 },
        TraceEvent::Drop { sw: 0, port: 2, flow: 1, prio: 7, bytes: 1460 },
        TraceEvent::EcnMark { sw: 0, port: 2, flow: 1, prio: 0, qlen: 95_000 },
        TraceEvent::Trim { sw: 0, port: 2, flow: 1, prio: 0 },
        TraceEvent::Timer { host: 4, token: 77 },
        TraceEvent::Retransmit { flow: 1, offset: 1460, len: 1460 },
        TraceEvent::LcpOpened { flow: 1, trigger: LcpTrigger::FlowStart, init_bytes: 85_000 },
        TraceEvent::LcpClosed { flow: 1, reason: LcpCloseReason::FlowDone },
        TraceEvent::LcpAck { flow: 1, ece: true, sent_new: false },
        TraceEvent::LcpSend { flow: 1, offset: 900_000, len: 1460 },
        TraceEvent::AlphaUpdate { flow: 1, alpha: 0.0625 },
        TraceEvent::CwndUpdate { flow: 1, cwnd: 14_600 },
        TraceEvent::PiasDemote { flow: 1, from: 0, to: 1 },
        TraceEvent::PfcXoff { sw: 0, port: 2, prio: 3, qlen: 260_000, on: true },
        TraceEvent::PfcPause { host: 4, prio: 3, on: true },
        TraceEvent::PfcSwPause { sw: 1, port: 0, prio: 3, on: false },
        TraceEvent::LinkDown { link: 3 },
        TraceEvent::LinkUp { link: 3 },
        TraceEvent::FaultDrop { link: 3, flow: 1, prio: 4, bytes: 1500 },
        TraceEvent::SanViolation {
            check: SanCheck::QueueAccounting,
            subject: 5,
            expected: 2920,
            actual: 4380,
        },
        TraceEvent::Sample { series: 12, value: 46_720.0 },
        TraceEvent::Profile { kind: ProfKind::Deliver, count: 420_000, total_ns: 180_000_000 },
    ];

    #[test]
    fn every_variant_encodes_to_one_json_object_line() {
        for ev in SAMPLES {
            let mut line = String::new();
            encode_line(&mut line, 123, ev);
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'), "{line}");
            assert!(line.starts_with("{\"at\":123,\"ev\":\""), "{line}");
            assert!(line.contains(ev.kind()), "{line} missing kind {}", ev.kind());
        }
    }

    #[test]
    fn encoding_is_stable() {
        let mut line = String::new();
        encode_line(
            &mut line,
            42,
            &TraceEvent::LcpOpened { flow: 9, trigger: LcpTrigger::QueueBuildup, init_bytes: 10 },
        );
        assert_eq!(
            line,
            r#"{"at":42,"ev":"lcp_opened","flow":9,"trigger":"queue_buildup","init_bytes":10}"#
        );
        line.clear();
        encode_line(&mut line, 7, &TraceEvent::LcpAck { flow: 2, ece: true, sent_new: false });
        assert_eq!(line, r#"{"at":7,"ev":"lcp_ack","flow":2,"ece":true,"sent_new":false}"#);
    }
}
