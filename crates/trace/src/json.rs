//! Minimal hand-rolled JSON emission. No serde: the workspace builds with
//! zero registry dependencies, and the handful of shapes we serialize
//! (event lines, metric snapshots, result tables) don't justify one.

use std::fmt::Write;

/// Append `s` to `out` as the *contents* of a JSON string (no surrounding
/// quotes), escaping per RFC 8259.
pub fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Append `v` as a JSON number. Rust's `Display` for finite `f64` is the
/// shortest decimal that round-trips — deterministic and valid JSON.
/// Non-finite values have no JSON representation and become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A single-line JSON object builder with `self`-consuming chaining:
///
/// ```
/// use dcn_trace::JsonObject;
/// let line = JsonObject::new().u64("at", 7).str("ev", "drop").finish();
/// assert_eq!(line, r#"{"at":7,"ev":"drop"}"#);
/// ```
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObject {
    pub fn new() -> Self {
        JsonObject { buf: String::from("{"), first: true }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        push_escaped(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        push_f64(&mut self.buf, v);
        self
    }

    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        push_escaped(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Insert pre-serialized JSON (an array or nested object) verbatim.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn floats_are_shortest_roundtrip_and_nonfinite_is_null() {
        let mut s = String::new();
        push_f64(&mut s, 0.0625);
        assert_eq!(s, "0.0625");
        s.clear();
        push_f64(&mut s, 2.0);
        assert_eq!(s, "2");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn object_builder_chains_fields_in_order() {
        let line = JsonObject::new()
            .u64("a", 1)
            .str("b", "x\"y")
            .bool("c", false)
            .f64("d", 0.5)
            .raw("e", "[1,2]")
            .finish();
        assert_eq!(line, r#"{"a":1,"b":"x\"y","c":false,"d":0.5,"e":[1,2]}"#);
    }

    #[test]
    fn empty_object_is_braces() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
