#![forbid(unsafe_code)]
//! # dcn-stats — flow-completion-time and network statistics
//!
//! Small, allocation-light helpers that turn raw simulator output
//! (completions, link samples, port counters) into the numbers the paper
//! reports: overall average FCT, average/99th-percentile FCT of small
//! flows, average FCT of large flows, normalized link utilization, buffer
//! occupancy shares and transfer efficiency.

pub mod fct;
pub mod lcp;
pub mod recovery;
pub mod series;
pub mod telemetry;

pub use fct::{FctRecord, FctStats, FctSummary, SMALL_FLOW_MAX_BYTES};
pub use lcp::{analyze_lcp, LcpLoop, LcpReport};
pub use recovery::{analyze_recovery, OutageWindow, RecoveryReport};
pub use series::{
    jain_index, mean_utilization, occupancy_split, utilization_series, OccupancySplit,
    UtilizationPoint,
};
pub use telemetry::{analyze_all, analyze_series, SeriesAnalysis, OSC_THRESHOLD};
