//! Flow-completion-time aggregation.

use netsim::{SimDuration, SimTime, Simulator};

/// The paper's small/large split: flows of (0, 100 KB] are "small",
/// (100 KB, ∞) are "large" (§6.1.1).
pub const SMALL_FLOW_MAX_BYTES: u64 = 100_000;

/// One completed flow.
#[derive(Clone, Copy, Debug)]
pub struct FctRecord {
    /// Flow size, bytes.
    pub size_bytes: u64,
    /// Completion time minus start time.
    pub fct: SimDuration,
}

impl FctRecord {
    /// True for flows the paper bins as "small" (≤ 100 KB).
    pub fn is_small(&self) -> bool {
        self.size_bytes <= SMALL_FLOW_MAX_BYTES
    }
}

/// A collection of FCT records with the paper's standard summaries.
#[derive(Clone, Debug, Default)]
pub struct FctStats {
    records: Vec<FctRecord>,
}

/// The four numbers every FCT figure in the paper reports.
#[derive(Clone, Copy, Debug)]
pub struct FctSummary {
    /// Mean FCT over all flows, microseconds.
    pub overall_avg_us: f64,
    /// Mean FCT of (0, 100 KB] flows, microseconds.
    pub small_avg_us: f64,
    /// 99th-percentile FCT of small flows, microseconds.
    pub small_p99_us: f64,
    /// Mean FCT of (100 KB, ∞) flows, microseconds.
    pub large_avg_us: f64,
    /// Completed flow counts: (all, small, large).
    pub counts: (usize, usize, usize),
}

impl FctStats {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed flow.
    pub fn push(&mut self, size_bytes: u64, start: SimTime, end: SimTime) {
        debug_assert!(end >= start);
        self.records.push(FctRecord { size_bytes, fct: end - start });
    }

    /// Harvest every completed flow from a finished simulation.
    pub fn from_sim<P: netsim::Payload>(sim: &Simulator<P>) -> Self {
        let mut stats = Self::new();
        for (flow, done) in sim.completions() {
            stats.push(flow.size_bytes, flow.start, done);
        }
        stats
    }

    /// Fraction of registered flows that completed (sanity check: a scheme
    /// that starves flows shows up here, not as a rosy average).
    pub fn completion_ratio<P: netsim::Payload>(sim: &Simulator<P>) -> f64 {
        let total = sim.flows().len();
        if total == 0 {
            return 1.0;
        }
        sim.completions().count() as f64 / total as f64
    }

    /// All records.
    pub fn records(&self) -> &[FctRecord] {
        &self.records
    }

    /// Number of completed flows recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean FCT in microseconds over records matching `pred`.
    pub fn avg_us_where<F: Fn(&FctRecord) -> bool>(&self, pred: F) -> f64 {
        let (sum, n) = self
            .records
            .iter()
            .filter(|r| pred(r))
            .fold((0.0, 0usize), |(s, n), r| (s + r.fct.as_micros_f64(), n + 1));
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    /// `q`-quantile (0..=1) FCT in microseconds over records matching
    /// `pred`, using the nearest-rank method on the sorted sample.
    pub fn quantile_us_where<F: Fn(&FctRecord) -> bool>(&self, q: f64, pred: F) -> f64 {
        let mut v: Vec<f64> =
            self.records.iter().filter(|r| pred(r)).map(|r| r.fct.as_micros_f64()).collect();
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(f64::total_cmp);
        let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
        v[rank - 1]
    }

    /// Mean FCT over all flows, microseconds.
    pub fn overall_avg_us(&self) -> f64 {
        self.avg_us_where(|_| true)
    }

    /// Mean FCT of small flows, microseconds.
    pub fn small_avg_us(&self) -> f64 {
        self.avg_us_where(FctRecord::is_small)
    }

    /// 99th-percentile FCT of small flows, microseconds.
    pub fn small_p99_us(&self) -> f64 {
        self.quantile_us_where(0.99, FctRecord::is_small)
    }

    /// Mean FCT of large flows, microseconds.
    pub fn large_avg_us(&self) -> f64 {
        self.avg_us_where(|r| !r.is_small())
    }

    /// The standard four-number summary.
    pub fn summary(&self) -> FctSummary {
        let small = self.records.iter().filter(|r| r.is_small()).count();
        FctSummary {
            overall_avg_us: self.overall_avg_us(),
            small_avg_us: self.small_avg_us(),
            small_p99_us: self.small_p99_us(),
            large_avg_us: self.large_avg_us(),
            counts: (self.records.len(), small, self.records.len() - small),
        }
    }

    /// Mean normalized slowdown: FCT divided by the ideal FCT of a flow of
    /// that size on an empty `rate` path with `base_rtt` (a common
    /// alternative metric; used by some ablations).
    pub fn mean_slowdown(&self, rate: netsim::Rate, base_rtt: SimDuration) -> f64 {
        if self.records.is_empty() {
            return f64::NAN;
        }
        let sum: f64 = self
            .records
            .iter()
            .map(|r| {
                let ideal = rate.serialization_time(r.size_bytes).as_nanos() + base_rtt.as_nanos();
                r.fct.as_nanos() as f64 / ideal as f64
            })
            .sum();
        sum / self.records.len() as f64
    }
}

impl FctStats {
    /// The empirical FCT CDF over records matching `pred`: sorted
    /// (fct_us, cumulative_fraction) points, ready for plotting.
    pub fn cdf_us_where<F: Fn(&FctRecord) -> bool>(&self, pred: F) -> Vec<(f64, f64)> {
        let mut v: Vec<f64> =
            self.records.iter().filter(|r| pred(r)).map(|r| r.fct.as_micros_f64()).collect();
        v.sort_by(f64::total_cmp);
        let n = v.len();
        v.into_iter().enumerate().map(|(i, x)| (x, (i + 1) as f64 / n as f64)).collect()
    }
}

/// Harvest flows started by a specific set of sizes for a partial view
/// (used when an experiment mixes warm-up and measured flows).
pub fn filter_measured(stats: &FctStats, min_size: u64) -> FctStats {
    FctStats {
        records: stats.records.iter().copied().filter(|r| r.size_bytes >= min_size).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(size: u64, us: u64) -> (u64, SimTime, SimTime) {
        (size, SimTime::ZERO, SimTime(us * 1_000))
    }

    fn build(entries: &[(u64, SimTime, SimTime)]) -> FctStats {
        let mut s = FctStats::new();
        for &(size, a, b) in entries {
            s.push(size, a, b);
        }
        s
    }

    #[test]
    fn averages_split_by_size_bin() {
        let s = build(&[rec(1_000, 10), rec(50_000, 30), rec(1_000_000, 500)]);
        assert_eq!(s.overall_avg_us(), (10.0 + 30.0 + 500.0) / 3.0);
        assert_eq!(s.small_avg_us(), 20.0);
        assert_eq!(s.large_avg_us(), 500.0);
        let sum = s.summary();
        assert_eq!(sum.counts, (3, 2, 1));
    }

    #[test]
    fn boundary_flow_is_small() {
        let s = build(&[rec(SMALL_FLOW_MAX_BYTES, 10), rec(SMALL_FLOW_MAX_BYTES + 1, 90)]);
        assert_eq!(s.small_avg_us(), 10.0);
        assert_eq!(s.large_avg_us(), 90.0);
    }

    #[test]
    fn p99_nearest_rank() {
        // 100 samples 1..=100us: p99 = 99th value = 99us.
        let entries: Vec<_> = (1..=100).map(|i| rec(1000, i)).collect();
        let s = build(&entries);
        assert_eq!(s.small_p99_us(), 99.0);
        // p50 = 50th value.
        assert_eq!(s.quantile_us_where(0.5, |_| true), 50.0);
        // p100 = max.
        assert_eq!(s.quantile_us_where(1.0, |_| true), 100.0);
    }

    #[test]
    fn empty_bins_are_nan_not_panic() {
        let s = build(&[rec(1_000, 10)]);
        assert!(s.large_avg_us().is_nan());
        assert!(!s.small_avg_us().is_nan());
        let empty = FctStats::new();
        assert!(empty.overall_avg_us().is_nan());
        assert!(empty.small_p99_us().is_nan());
    }

    #[test]
    fn single_sample_quantiles() {
        let s = build(&[rec(1_000, 42)]);
        assert_eq!(s.small_p99_us(), 42.0);
        assert_eq!(s.quantile_us_where(0.0, |_| true), 42.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let s = build(&[rec(1000, 30), rec(1000, 10), rec(1000, 20)]);
        let cdf = s.cdf_us_where(|_| true);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (10.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (30.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 > w[0].1);
        }
        assert!(s.cdf_us_where(|r| r.size_bytes > 1_000_000).is_empty());
    }

    #[test]
    fn mean_slowdown_is_one_for_ideal_flows() {
        let rate = netsim::Rate::gbps(10);
        let rtt = SimDuration::from_micros(80);
        let size = 100_000u64;
        let ideal = rate.serialization_time(size) + rtt;
        let mut s = FctStats::new();
        s.push(size, SimTime::ZERO, SimTime::ZERO + ideal);
        assert!((s.mean_slowdown(rate, rtt) - 1.0).abs() < 1e-9);
    }
}
