//! LCP loop lifecycle analysis over recorded trace streams.
//!
//! Reconstructs PPT's tail-loop behaviour from a [`TraceEvent`] stream:
//! when loops opened (case-1 flow start vs case-2 queue buildup), how
//! long they lived and why they closed, whether ECE-marked LCP ACKs were
//! correctly ignored (the LCP never reacts to its own marks), and whether
//! exponential wave damping roughly halved the per-RTT send volume
//! (the Fig 16 invariant).

use std::collections::BTreeMap;

use netsim::trace::{LcpCloseReason, LcpTrigger, TraceEvent};
use netsim::SimDuration;

/// One reconstructed LCP loop lifecycle.
#[derive(Clone, Debug)]
pub struct LcpLoop {
    /// Flow the loop belongs to.
    pub flow: u64,
    /// Why the loop opened.
    pub trigger: LcpTrigger,
    /// Open time, ns.
    pub opened_at: u64,
    /// Close time, ns (`None`: still open when the trace ended).
    pub closed_at: Option<u64>,
    /// Why the loop closed.
    pub close_reason: Option<LcpCloseReason>,
    /// Every LCP data send as `(time_ns, bytes)`.
    pub sends: Vec<(u64, u64)>,
    /// LCP ACKs received while this was the flow's latest loop.
    pub acks: u32,
    /// ... of which ECE-marked.
    pub ece_acks: u32,
    /// ... of which ECE-marked and correctly ignored (no new packet).
    pub ece_ignored: u32,
}

impl LcpLoop {
    /// Loop lifetime in ns (0 for loops still open at trace end).
    pub fn duration_ns(&self) -> u64 {
        self.closed_at.map_or(0, |c| c.saturating_sub(self.opened_at))
    }

    /// Bytes sent in each RTT-sized window since the loop opened.
    pub fn rtt_windows(&self, rtt_ns: u64) -> Vec<u64> {
        if rtt_ns == 0 || self.sends.is_empty() {
            return Vec::new();
        }
        let last = self.sends.last().map_or(0, |&(at, _)| at);
        let n = (last.saturating_sub(self.opened_at) / rtt_ns) as usize + 1;
        let mut windows = vec![0u64; n];
        for &(at, bytes) in &self.sends {
            let idx = (at.saturating_sub(self.opened_at) / rtt_ns) as usize;
            windows[idx] += bytes;
        }
        windows
    }
}

/// Aggregate LCP behaviour over a whole trace.
#[derive(Clone, Debug, Default)]
pub struct LcpReport {
    /// Every reconstructed loop, in open order.
    pub loops: Vec<LcpLoop>,
    /// Loops opened at flow start (case 1).
    pub opened_flow_start: usize,
    /// Loops opened on queue buildup / alpha minimum (case 2).
    pub opened_queue_buildup: usize,
    /// Loops closed because the flow finished.
    pub closed_flow_done: usize,
    /// Loops closed by expiry.
    pub closed_expired: usize,
    /// Loops closed by expiry without a single LP ACK arriving (§3.2:
    /// every low-priority packet — or its ACK — was lost or starved).
    pub closed_no_lp_acks: usize,
    /// Loops still open when the trace ended.
    pub still_open: usize,
    /// Mean lifetime of closed loops, µs.
    pub mean_duration_us: f64,
    /// Total LCP ACKs seen.
    pub lcp_acks: usize,
    /// ... of which ECE-marked.
    pub ece_acks: usize,
    /// ... of which ECE-marked and ignored (no packet sent in response).
    pub ece_ignored: usize,
    /// Number of consecutive RTT-window pairs with traffic in both.
    pub ewd_ratios: usize,
    /// Mean ratio of bytes sent in window *i+1* vs window *i* (≈ 0.5 with
    /// EWD on, ≈ 0 without a second window at all); 0 when no samples.
    pub ewd_halving_ratio: f64,
}

impl LcpReport {
    /// Fraction of ECE-marked LCP ACKs that triggered no new packet.
    pub fn ece_ignored_fraction(&self) -> f64 {
        if self.ece_acks == 0 {
            0.0
        } else {
            self.ece_ignored as f64 / self.ece_acks as f64
        }
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "LCP loops: {} opened ({} flow-start, {} queue-buildup)\n",
            self.loops.len(),
            self.opened_flow_start,
            self.opened_queue_buildup
        ));
        out.push_str(&format!(
            "  closed: {} flow-done, {} expired, {} no-lp-acks, {} still open\n",
            self.closed_flow_done, self.closed_expired, self.closed_no_lp_acks, self.still_open
        ));
        out.push_str(&format!("  mean loop duration: {:.1} us\n", self.mean_duration_us));
        out.push_str(&format!(
            "  LCP acks: {} ({} ECE-marked, {:.0}% of those ignored)\n",
            self.lcp_acks,
            self.ece_acks,
            self.ece_ignored_fraction() * 100.0
        ));
        out.push_str(&format!(
            "  EWD per-RTT send ratio: {:.2} over {} window pairs\n",
            self.ewd_halving_ratio, self.ewd_ratios
        ));
        out
    }
}

/// Reconstruct every LCP loop lifecycle from a `(time_ns, event)` stream.
///
/// `rtt` sizes the windows for the EWD halving-ratio estimate; pass the
/// topology's base RTT.
pub fn analyze_lcp(events: &[(u64, TraceEvent)], rtt: SimDuration) -> LcpReport {
    let mut loops: Vec<LcpLoop> = Vec::new();
    // Flow → index of its most recent loop (events for a flow always
    // refer to its latest loop: PPT runs at most one LCP per flow).
    let mut latest: BTreeMap<u64, usize> = BTreeMap::new();
    for &(at, ev) in events {
        match ev {
            TraceEvent::LcpOpened { flow, trigger, .. } => {
                latest.insert(flow, loops.len());
                loops.push(LcpLoop {
                    flow,
                    trigger,
                    opened_at: at,
                    closed_at: None,
                    close_reason: None,
                    sends: Vec::new(),
                    acks: 0,
                    ece_acks: 0,
                    ece_ignored: 0,
                });
            }
            TraceEvent::LcpClosed { flow, reason } => {
                if let Some(&i) = latest.get(&flow) {
                    let l = &mut loops[i];
                    if l.closed_at.is_none() {
                        l.closed_at = Some(at);
                        l.close_reason = Some(reason);
                    }
                }
            }
            TraceEvent::LcpSend { flow, len, .. } => {
                if let Some(&i) = latest.get(&flow) {
                    loops[i].sends.push((at, len));
                }
            }
            TraceEvent::LcpAck { flow, ece, sent_new } => {
                if let Some(&i) = latest.get(&flow) {
                    let l = &mut loops[i];
                    l.acks += 1;
                    if ece {
                        l.ece_acks += 1;
                        if !sent_new {
                            l.ece_ignored += 1;
                        }
                    }
                }
            }
            _ => {}
        }
    }

    let rtt_ns = rtt.as_nanos();
    let mut report = LcpReport::default();
    let (mut dur_sum, mut dur_n) = (0u64, 0usize);
    let (mut ratio_sum, mut ratio_n) = (0.0f64, 0usize);
    for l in &loops {
        match l.trigger {
            LcpTrigger::FlowStart => report.opened_flow_start += 1,
            LcpTrigger::QueueBuildup => report.opened_queue_buildup += 1,
        }
        match l.close_reason {
            Some(LcpCloseReason::FlowDone) => report.closed_flow_done += 1,
            Some(LcpCloseReason::Expired) => report.closed_expired += 1,
            Some(LcpCloseReason::NoLpAcks) => report.closed_no_lp_acks += 1,
            None => report.still_open += 1,
        }
        if l.closed_at.is_some() {
            dur_sum += l.duration_ns();
            dur_n += 1;
        }
        report.lcp_acks += l.acks as usize;
        report.ece_acks += l.ece_acks as usize;
        report.ece_ignored += l.ece_ignored as usize;
        for pair in l.rtt_windows(rtt_ns).windows(2) {
            if pair[0] > 0 && pair[1] > 0 {
                ratio_sum += pair[1] as f64 / pair[0] as f64;
                ratio_n += 1;
            }
        }
    }
    report.mean_duration_us = if dur_n == 0 { 0.0 } else { dur_sum as f64 / dur_n as f64 / 1000.0 };
    report.ewd_ratios = ratio_n;
    report.ewd_halving_ratio = if ratio_n == 0 { 0.0 } else { ratio_sum / ratio_n as f64 };
    report.loops = loops;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const RTT: SimDuration = SimDuration(1_000);

    #[test]
    fn reconstructs_loop_lifecycles() {
        let events = vec![
            (0, TraceEvent::LcpOpened { flow: 1, trigger: LcpTrigger::FlowStart, init_bytes: 8 }),
            (100, TraceEvent::LcpSend { flow: 1, offset: 0, len: 4 }),
            (200, TraceEvent::LcpSend { flow: 1, offset: 4, len: 4 }),
            (1_100, TraceEvent::LcpSend { flow: 1, offset: 8, len: 4 }),
            (1_200, TraceEvent::LcpAck { flow: 1, ece: true, sent_new: false }),
            (2_000, TraceEvent::LcpClosed { flow: 1, reason: LcpCloseReason::FlowDone }),
            (
                5_000,
                TraceEvent::LcpOpened { flow: 2, trigger: LcpTrigger::QueueBuildup, init_bytes: 4 },
            ),
        ];
        let r = analyze_lcp(&events, RTT);
        assert_eq!(r.loops.len(), 2);
        assert_eq!(r.opened_flow_start, 1);
        assert_eq!(r.opened_queue_buildup, 1);
        assert_eq!(r.closed_flow_done, 1);
        assert_eq!(r.still_open, 1);
        assert_eq!(r.lcp_acks, 1);
        assert_eq!(r.ece_acks, 1);
        assert_eq!(r.ece_ignored, 1);
        assert!((r.ece_ignored_fraction() - 1.0).abs() < 1e-12);
        assert!((r.mean_duration_us - 2.0).abs() < 1e-12);
        // Windows: [8, 4] → one pair with ratio 0.5.
        assert_eq!(r.ewd_ratios, 1);
        assert!((r.ewd_halving_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reopened_loop_events_go_to_the_latest_loop() {
        let events = vec![
            (0, TraceEvent::LcpOpened { flow: 7, trigger: LcpTrigger::FlowStart, init_bytes: 4 }),
            (500, TraceEvent::LcpClosed { flow: 7, reason: LcpCloseReason::Expired }),
            (
                1_000,
                TraceEvent::LcpOpened { flow: 7, trigger: LcpTrigger::QueueBuildup, init_bytes: 4 },
            ),
            (1_100, TraceEvent::LcpSend { flow: 7, offset: 0, len: 4 }),
        ];
        let r = analyze_lcp(&events, RTT);
        assert_eq!(r.loops.len(), 2);
        assert_eq!(r.closed_expired, 1);
        assert!(r.loops[0].sends.is_empty());
        assert_eq!(r.loops[1].sends, vec![(1_100, 4)]);
    }

    #[test]
    fn rtt_windows_bucket_by_open_time() {
        let l = LcpLoop {
            flow: 1,
            trigger: LcpTrigger::FlowStart,
            opened_at: 10_000,
            closed_at: None,
            close_reason: None,
            sends: vec![(10_100, 16), (10_900, 8), (12_500, 4)],
            acks: 0,
            ece_acks: 0,
            ece_ignored: 0,
        };
        assert_eq!(l.rtt_windows(1_000), vec![24, 0, 4]);
        assert!(l.rtt_windows(0).is_empty());
    }

    #[test]
    fn render_mentions_the_headline_numbers() {
        let events =
            [(0, TraceEvent::LcpOpened { flow: 1, trigger: LcpTrigger::FlowStart, init_bytes: 8 })];
        let text = analyze_lcp(&events, RTT).render();
        assert!(text.contains("1 opened"));
        assert!(text.contains("1 flow-start"));
        assert!(text.contains("still open"));
    }
}
