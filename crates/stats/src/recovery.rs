//! Recovery statistics for fault-injection runs.
//!
//! Reconstructs link-outage windows from the engine's `LinkDown` /
//! `LinkUp` trace events, attributes injected `FaultDrop`s to them, and
//! measures how long each recovery took: the delay from a link coming
//! back up to the first sign of forward progress (a retransmission or a
//! flow completion) afterwards.
//!
//! The engine-side totals a trace cannot carry (goodput delivered while
//! faults were active, the longest switch stall) come straight from the
//! engine's [`FaultReport`] — pass `outcome.report.faults`, or
//! `FaultReport::default()` when analyzing a bare trace.

use netsim::trace::TraceEvent;
use netsim::FaultReport;

/// One `LinkDown` → `LinkUp` window of a single link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutageWindow {
    /// Link id (engine order).
    pub link: u32,
    /// When the link went down, ns.
    pub from_ns: u64,
    /// When it came back up; `None` when the trace ended mid-outage.
    pub until_ns: Option<u64>,
    /// Injected drops charged to this link while it was down.
    pub drops: u64,
}

impl OutageWindow {
    /// Outage duration, ns (0 while still open).
    pub fn duration_ns(&self) -> u64 {
        self.until_ns.map_or(0, |u| u.saturating_sub(self.from_ns))
    }
}

/// Aggregate recovery behaviour over a fault-injection run.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Every reconstructed outage, in down order.
    pub outages: Vec<OutageWindow>,
    /// Total injected drops seen in the trace.
    pub fault_drops: u64,
    /// ... total bytes of those packets.
    pub fault_dropped_bytes: u64,
    /// ... of which were control packets (zero payload bytes).
    pub ctrl_drops: u64,
    /// Retransmit events seen in the trace.
    pub retransmits: u64,
    /// Per closed outage: delay from `LinkUp` to the first retransmission
    /// or flow completion at/after it (outages with no later activity are
    /// skipped).
    pub recovery_times_ns: Vec<u64>,
    /// Engine totals, when the caller supplied them.
    pub engine: FaultReport,
}

impl RecoveryReport {
    /// Sum of all closed outage windows, ns.
    pub fn total_outage_ns(&self) -> u64 {
        self.outages.iter().map(|o| o.duration_ns()).sum()
    }

    /// Slowest measured recovery, µs (0 with no samples).
    pub fn max_recovery_us(&self) -> f64 {
        self.recovery_times_ns.iter().copied().max().unwrap_or(0) as f64 / 1_000.0
    }

    /// Mean measured recovery, µs (0 with no samples).
    pub fn mean_recovery_us(&self) -> f64 {
        if self.recovery_times_ns.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.recovery_times_ns.iter().sum();
        sum as f64 / self.recovery_times_ns.len() as f64 / 1_000.0
    }

    /// Goodput sustained while faults were active, Gbps, using the closed
    /// outage windows as the degraded interval (0 when none closed).
    pub fn degraded_goodput_gbps(&self) -> f64 {
        let ns = self.total_outage_ns();
        if ns == 0 {
            return 0.0;
        }
        self.engine.goodput_during_fault_bytes as f64 * 8.0 / ns as f64
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "faults: {} outages ({} ns down), {} injected drops ({} ctrl, {} bytes)\n",
            self.outages.len(),
            self.total_outage_ns(),
            self.fault_drops,
            self.ctrl_drops,
            self.fault_dropped_bytes,
        ));
        out.push_str(&format!(
            "  recovery: {} retransmits, mean {:.1} us, worst {:.1} us over {} samples\n",
            self.retransmits,
            self.mean_recovery_us(),
            self.max_recovery_us(),
            self.recovery_times_ns.len(),
        ));
        out.push_str(&format!(
            "  degraded: {:.3} Gbps goodput during faults, max stall {} ns\n",
            self.degraded_goodput_gbps(),
            self.engine.max_stall.as_nanos(),
        ));
        out
    }
}

/// Reconstruct outage windows and recovery times from a `(time_ns,
/// event)` stream. Pass the engine's [`FaultReport`] to fill in the
/// goodput/stall numbers a trace cannot carry; `FaultReport::default()`
/// leaves them zero.
pub fn analyze_recovery(events: &[(u64, TraceEvent)], engine: FaultReport) -> RecoveryReport {
    let mut report = RecoveryReport { engine, ..RecoveryReport::default() };
    // link → index of its currently-open outage.
    let mut open: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    for &(at, ev) in events {
        match ev {
            TraceEvent::LinkDown { link } => {
                open.insert(link, report.outages.len());
                report.outages.push(OutageWindow { link, from_ns: at, until_ns: None, drops: 0 });
            }
            TraceEvent::LinkUp { link } => {
                if let Some(i) = open.remove(&link) {
                    report.outages[i].until_ns = Some(at);
                }
            }
            TraceEvent::FaultDrop { link, bytes, .. } => {
                report.fault_drops += 1;
                report.fault_dropped_bytes += bytes;
                if bytes == 0 {
                    report.ctrl_drops += 1;
                }
                if let Some(&i) = open.get(&link) {
                    report.outages[i].drops += 1;
                }
            }
            TraceEvent::Retransmit { .. } => report.retransmits += 1,
            _ => {}
        }
    }
    // Recovery time per closed outage: first forward progress at/after up.
    for o in &report.outages {
        let Some(up) = o.until_ns else { continue };
        let first_progress = events.iter().find_map(|&(at, ev)| match ev {
            TraceEvent::Retransmit { .. } | TraceEvent::FlowComplete { .. } if at >= up => Some(at),
            _ => None,
        });
        if let Some(at) = first_progress {
            report.recovery_times_ns.push(at - up);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn down(at: u64, link: u32) -> (u64, TraceEvent) {
        (at, TraceEvent::LinkDown { link })
    }
    fn up(at: u64, link: u32) -> (u64, TraceEvent) {
        (at, TraceEvent::LinkUp { link })
    }
    fn fault_drop(at: u64, link: u32, bytes: u64) -> (u64, TraceEvent) {
        (at, TraceEvent::FaultDrop { link, flow: 0, prio: 0, bytes })
    }

    #[test]
    fn outage_windows_pair_and_attribute_drops() {
        let events = vec![
            down(1_000, 3),
            fault_drop(1_500, 3, 1460),
            fault_drop(2_000, 3, 0),
            up(5_000, 3),
            fault_drop(6_000, 7, 1460), // random loss on a healthy link
            (7_000, TraceEvent::Retransmit { flow: 1, offset: 0, len: 1460 }),
        ];
        let r = analyze_recovery(&events, FaultReport::default());
        assert_eq!(r.outages.len(), 1);
        let o = r.outages[0];
        assert_eq!((o.link, o.from_ns, o.until_ns, o.drops), (3, 1_000, Some(5_000), 2));
        assert_eq!(o.duration_ns(), 4_000);
        assert_eq!((r.fault_drops, r.ctrl_drops, r.fault_dropped_bytes), (3, 1, 2_920));
        assert_eq!(r.retransmits, 1);
        assert_eq!(r.recovery_times_ns, vec![2_000], "retransmit at 7000 - up at 5000");
    }

    #[test]
    fn open_outages_and_degraded_goodput() {
        let events = vec![down(0, 1), up(1_000_000, 1), down(2_000_000, 1)];
        let engine = FaultReport {
            goodput_during_fault_bytes: 125_000, // 1 Mb over the 1 ms closed window
            max_stall: netsim::SimDuration::from_nanos(42),
            ..FaultReport::default()
        };
        let r = analyze_recovery(&events, engine);
        assert_eq!(r.outages.len(), 2);
        assert_eq!(r.outages[1].until_ns, None, "trace ended mid-outage");
        assert_eq!(r.total_outage_ns(), 1_000_000);
        assert!((r.degraded_goodput_gbps() - 1.0).abs() < 1e-9);
        assert!(r.recovery_times_ns.is_empty(), "no progress events in the trace");
        let text = r.render();
        assert!(text.contains("2 outages") && text.contains("max stall 42 ns"), "{text}");
    }
}
