//! Analysis pass over the engine's telemetry series (DESIGN.md §14):
//! per-series amplitude and dominant-oscillation detection — the seed of
//! the stability lab.
//!
//! Dual-loop / ECN transports can hide limit cycles behind healthy
//! *average* numbers (see "Nonlinear Instabilities in D2TCP-II" and
//! "Disentangling Flaws in Linux DCTCP", PAPERS.md): a queue that swings
//! between empty and the ECN threshold every few RTTs has a fine mean and
//! a terrible tail. Because the sampler is deterministic, the series here
//! are exactly reproducible, so oscillation verdicts are too — the same
//! run always yields the same flags.
//!
//! Detection is two-stage. The primary detector is lag autocorrelation on
//! the mean-removed series: find the first negative-correlation lag (the
//! half-cycle), then the strongest positive peak past it (the full
//! cycle). A peak at lag `L` with normalized correlation ≥
//! [`OSC_THRESHOLD`] flags the series as oscillating with period
//! `L × dt`. When autocorrelation finds no confident peak, a
//! zero-crossing count still produces a period *estimate* (twice the mean
//! half-cycle length) without setting the flag.

use netsim::trace::Series;

/// Minimum points before analysis attempts period detection.
pub const MIN_POINTS: usize = 8;

/// Normalized autocorrelation a candidate period must reach for the
/// series to be flagged oscillating.
pub const OSC_THRESHOLD: f64 = 0.2;

/// Summary statistics and oscillation verdict for one telemetry series.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesAnalysis {
    /// Series name (e.g. `"sw0.port1.queue_bytes"`).
    pub name: String,
    /// Points analyzed.
    pub points: usize,
    /// Arithmetic mean of the values.
    pub mean: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// `max - min`: the swing a mean hides.
    pub peak_to_peak: f64,
    /// Dominant oscillation period in nanoseconds — from the
    /// autocorrelation peak when confident, else the zero-crossing
    /// estimate, else `None` (flat or aperiodic).
    pub period_ns: Option<u64>,
    /// Normalized autocorrelation at the chosen period (0 when the
    /// period came from the zero-crossing fallback or is absent).
    pub period_strength: f64,
    /// True when the autocorrelation peak cleared [`OSC_THRESHOLD`].
    pub oscillating: bool,
}

/// Analyze one sampled series. Total-ordering note: the input is produced
/// by the deterministic sampler, and every operation here is
/// IEEE-754-exact over it in a fixed order, so equal runs give equal
/// analyses.
pub fn analyze_series(series: &Series) -> SeriesAnalysis {
    let values: Vec<f64> = series.points().map(|p| p.value).collect();
    let times: Vec<u64> = series.points().map(|p| p.at).collect();
    let n = values.len();
    let mut out = SeriesAnalysis {
        name: series.name().to_string(),
        points: n,
        mean: 0.0,
        min: 0.0,
        max: 0.0,
        peak_to_peak: 0.0,
        period_ns: None,
        period_strength: 0.0,
        oscillating: false,
    };
    if n == 0 {
        return out;
    }
    let sum: f64 = values.iter().sum();
    out.mean = sum / n as f64;
    out.min = values.iter().copied().fold(f64::INFINITY, f64::min);
    out.max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    out.peak_to_peak = out.max - out.min;
    if n < MIN_POINTS || out.peak_to_peak <= 0.0 {
        return out;
    }
    // Mean sample spacing; the sampler is uniform, so this is exact up to
    // integer division.
    let span = times[n - 1].saturating_sub(times[0]);
    if span == 0 {
        return out;
    }
    let dt = span / (n as u64 - 1);
    let centered: Vec<f64> = values.iter().map(|v| v - out.mean).collect();
    let energy: f64 = centered.iter().map(|x| x * x).sum();
    if energy <= 0.0 {
        return out;
    }
    if let Some((lag, strength)) = autocorr_peak(&centered, energy) {
        out.period_ns = Some(lag as u64 * dt);
        out.period_strength = strength;
        out.oscillating = strength >= OSC_THRESHOLD;
        return out;
    }
    if let Some(period) = zero_crossing_period(&centered, dt) {
        out.period_ns = Some(period);
    }
    out
}

/// Analyze every series of a run, in table order.
pub fn analyze_all(series: &[Series]) -> Vec<SeriesAnalysis> {
    series.iter().map(analyze_series).collect()
}

/// Find the dominant positive autocorrelation peak past the first
/// negative-correlation lag. Returns `(lag, normalized_correlation)`.
fn autocorr_peak(centered: &[f64], energy: f64) -> Option<(usize, f64)> {
    let n = centered.len();
    let max_lag = n / 2;
    let r = |lag: usize| -> f64 {
        let mut acc = 0.0;
        for i in 0..n - lag {
            acc += centered[i] * centered[i + lag];
        }
        acc / energy
    };
    // The half-cycle: the first lag anti-correlated with lag zero.
    let first_neg = (1..max_lag).find(|&lag| r(lag) < 0.0)?;
    let mut best: Option<(usize, f64)> = None;
    for lag in first_neg + 1..max_lag {
        let v = r(lag);
        if best.is_none_or(|(_, b)| v > b) {
            best = Some((lag, v));
        }
    }
    let (lag, strength) = best?;
    if strength <= 0.0 {
        return None;
    }
    Some((lag, strength))
}

/// Period estimate from mean-crossing count: `crossings / 2` full cycles
/// over the observed span. Needs at least two full cycles to say anything.
fn zero_crossing_period(centered: &[f64], dt: u64) -> Option<u64> {
    let mut crossings = 0u64;
    let mut prev_sign = 0i8;
    for &x in centered {
        let sign = if x > 0.0 {
            1
        } else if x < 0.0 {
            -1
        } else {
            0
        };
        if sign != 0 {
            if prev_sign != 0 && sign != prev_sign {
                crossings += 1;
            }
            prev_sign = sign;
        }
    }
    if crossings < 4 {
        return None;
    }
    let span = dt * (centered.len() as u64 - 1);
    Some(2 * span / crossings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_of(values: &[f64], dt: u64) -> Series {
        let mut s = Series::new("test", values.len().max(1));
        for (i, v) in values.iter().enumerate() {
            s.push(i as u64 * dt, *v);
        }
        s
    }

    #[test]
    fn empty_series_yields_zeroes() {
        let a = analyze_series(&series_of(&[], 1000));
        assert_eq!(a.points, 0);
        assert_eq!(a.period_ns, None);
        assert!(!a.oscillating, "empty series cannot oscillate");
    }

    #[test]
    fn flat_series_is_not_oscillating() {
        let a = analyze_series(&series_of(&[7.0; 64], 1000));
        assert_eq!(a.mean, 7.0);
        assert_eq!(a.peak_to_peak, 0.0);
        assert_eq!(a.period_ns, None);
        assert!(!a.oscillating, "constant series must not be flagged");
    }

    #[test]
    fn square_wave_period_detected() {
        // Period-8 square wave, 8 cycles: +1 +1 +1 +1 -1 -1 -1 -1 ...
        let mut v = Vec::new();
        for i in 0..64 {
            v.push(if (i / 4) % 2 == 0 { 1.0 } else { -1.0 });
        }
        let a = analyze_series(&series_of(&v, 1000));
        assert!(a.oscillating, "square wave must be flagged oscillating");
        let period = a.period_ns.expect("square wave has a period");
        assert_eq!(period, 8000, "period-8 wave at dt=1000ns");
        assert!(a.period_strength >= OSC_THRESHOLD);
        assert_eq!(a.peak_to_peak, 2.0);
    }

    #[test]
    fn ramp_is_not_flagged() {
        let v: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let a = analyze_series(&series_of(&v, 1000));
        assert!(!a.oscillating, "a monotone ramp is not an oscillation");
    }

    #[test]
    fn short_series_skips_detection() {
        let a = analyze_series(&series_of(&[0.0, 1.0, 0.0, 1.0], 1000));
        assert_eq!(a.period_ns, None, "below MIN_POINTS no period is attempted");
        assert!(!a.oscillating);
        assert_eq!(a.peak_to_peak, 1.0);
    }

    #[test]
    fn analysis_is_deterministic() {
        let mut v = Vec::new();
        for i in 0..100 {
            v.push((i % 10) as f64);
        }
        let a = analyze_series(&series_of(&v, 500));
        let b = analyze_series(&series_of(&v, 500));
        assert_eq!(a, b, "same series must give the identical analysis");
    }
}
