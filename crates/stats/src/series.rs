//! Time-series post-processing: link utilization and queue occupancy.

use netsim::{Rate, Sample};

/// One normalized utilization observation for a sampling interval.
#[derive(Clone, Copy, Debug)]
pub struct UtilizationPoint {
    /// End of the interval, nanoseconds.
    pub at_ns: u64,
    /// Fraction of the link capacity used during the interval (0..=1).
    pub utilization: f64,
}

/// Convert cumulative tx-byte samples of a link into per-interval
/// normalized utilization (Fig 1 / Fig 20 post-processing).
pub fn utilization_series(samples: &[Sample], rate: Rate) -> Vec<UtilizationPoint> {
    samples
        .windows(2)
        .map(|w| {
            let dt_ns = w[1].at.as_nanos() - w[0].at.as_nanos();
            let dbytes = w[1].value - w[0].value;
            let capacity_bytes = rate.bytes_per_sec() as f64 * dt_ns as f64 / 1e9;
            UtilizationPoint {
                at_ns: w[1].at.as_nanos(),
                utilization: if capacity_bytes > 0.0 {
                    (dbytes as f64 / capacity_bytes).min(1.0)
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Mean of a utilization series.
pub fn mean_utilization(points: &[UtilizationPoint]) -> f64 {
    if points.is_empty() {
        return f64::NAN;
    }
    points.iter().map(|p| p.utilization).sum::<f64>() / points.len() as f64
}

/// Average queue occupancy split into a high-priority group (P0–P3) and a
/// low-priority group (P4–P7) from port samples (Fig 28 post-processing).
#[derive(Clone, Copy, Debug, Default)]
pub struct OccupancySplit {
    /// Mean bytes queued at priorities 0..4.
    pub high_avg_bytes: f64,
    /// Mean bytes queued at priorities 4..8.
    pub low_avg_bytes: f64,
    /// Mean total backlog.
    pub total_avg_bytes: f64,
}

/// Compute mean occupancy shares from port samples.
pub fn occupancy_split(samples: &[Sample]) -> OccupancySplit {
    if samples.is_empty() {
        return OccupancySplit::default();
    }
    let n = samples.len() as f64;
    let mut high = 0.0;
    let mut low = 0.0;
    let mut total = 0.0;
    for s in samples {
        let h: u64 = s.per_priority[..4].iter().sum();
        let l: u64 = s.per_priority[4..].iter().sum();
        high += h as f64;
        low += l as f64;
        total += s.value as f64;
    }
    OccupancySplit { high_avg_bytes: high / n, low_avg_bytes: low / n, total_avg_bytes: total / n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;

    fn sample(at_ns: u64, value: u64) -> Sample {
        Sample { at: SimTime(at_ns), value, per_priority: [0; 8] }
    }

    #[test]
    fn utilization_from_cumulative_counter() {
        // 10Gbps link: 1.25 GB/s. 100us interval capacity = 125000 bytes.
        let samples = vec![sample(0, 0), sample(100_000, 62_500), sample(200_000, 187_500)];
        let u = utilization_series(&samples, Rate::gbps(10));
        assert_eq!(u.len(), 2);
        assert!((u[0].utilization - 0.5).abs() < 1e-9);
        assert!((u[1].utilization - 1.0).abs() < 1e-9);
        assert!((mean_utilization(&u) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamps_at_one() {
        let samples = vec![sample(0, 0), sample(1, u64::MAX / 2)];
        let u = utilization_series(&samples, Rate::mbps(1));
        assert_eq!(u[0].utilization, 1.0);
    }

    #[test]
    fn empty_series_is_nan_mean() {
        assert!(mean_utilization(&[]).is_nan());
        assert!(utilization_series(&[sample(0, 0)], Rate::gbps(1)).is_empty());
    }

    #[test]
    fn occupancy_split_groups_priorities() {
        let mut s1 = sample(0, 100);
        s1.per_priority = [10, 10, 10, 10, 15, 15, 15, 15];
        s1.value = 100;
        let mut s2 = sample(1, 200);
        s2.per_priority = [50, 0, 0, 0, 150, 0, 0, 0];
        s2.value = 200;
        let split = occupancy_split(&[s1, s2]);
        assert_eq!(split.high_avg_bytes, (40.0 + 50.0) / 2.0);
        assert_eq!(split.low_avg_bytes, (60.0 + 150.0) / 2.0);
        assert_eq!(split.total_avg_bytes, 150.0);
    }
}

/// Jain's fairness index over a set of allocations: (Σx)² / (n·Σx²).
/// 1.0 = perfectly fair; 1/n = one flow gets everything.
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|x| x * x).sum();
    // Zero guard before the division below (sq is a sum of squares,
    // so <= 0 means exactly zero).
    if sq <= 0.0 {
        return f64::NAN;
    }
    sum * sum / (values.len() as f64 * sq)
}

#[cfg(test)]
mod jain_tests {
    use super::jain_index;

    #[test]
    fn equal_allocations_are_perfectly_fair() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_hog_approaches_one_over_n() {
        let idx = jain_index(&[100.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_nan() {
        assert!(jain_index(&[]).is_nan());
        assert!(jain_index(&[0.0, 0.0]).is_nan());
    }
}
