//! Randomized-workload and failure-injection tests across the transport
//! family.
//!
//! Deterministic seeded sweeps (always on) plus the original `proptest`
//! suite behind the `proptest` feature (needs the dev-dependency
//! restored — see crates/netsim/Cargo.toml).

use netsim::{star, Pcg32, Rate, RunLimits, SimDuration, SimTime, SwitchConfig};
use ppt_core::PptConfig;
use transports::{install_dctcp, install_homa, install_ndp, install_ppt, HomaCfg, Proto, TcpCfg};

fn tcp(base_rtt: SimDuration) -> TcpCfg {
    TcpCfg::new(base_rtt)
}

fn random_sizes(rng: &mut Pcg32, max_n: usize, max_size: u64) -> Vec<u64> {
    let n = 1 + rng.gen_index(max_n);
    (0..n).map(|_| 1 + rng.gen_range(max_size - 1)).collect()
}

/// DCTCP delivers any mix of flow sizes losslessly over an ECN fabric.
#[test]
fn dctcp_random_workload_completes_seeded() {
    for seed in 0..6u64 {
        let mut rng = Pcg32::seed_from_u64(seed);
        let sizes = random_sizes(&mut rng, 9, 3_000_000);
        let mut topo = star::<Proto>(
            4,
            Rate::gbps(10),
            SimDuration::from_micros(20),
            SwitchConfig::dctcp(500_000, 60_000),
        );
        let t = tcp(topo.base_rtt);
        install_dctcp(&mut topo, &t);
        for (i, &size) in sizes.iter().enumerate() {
            topo.sim.add_flow(
                topo.hosts[i % 3],
                topo.hosts[3],
                size,
                SimTime(i as u64 * 30_000),
                size,
            );
        }
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(120_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, sizes.len(), "seed {seed}");
    }
}

/// PPT delivers any mix of flow sizes and first-write patterns.
#[test]
fn ppt_random_workload_completes_seeded() {
    for seed in 0..6u64 {
        let mut rng = Pcg32::seed_from_u64(seed);
        let n = 1 + rng.gen_index(9);
        let flows: Vec<(u64, u64)> = (0..n)
            .map(|_| (1 + rng.gen_range(3_000_000 - 1), 1 + rng.gen_range(3_000_000 - 1)))
            .collect();
        let rate = Rate::gbps(10);
        let mut topo = star::<Proto>(
            4,
            rate,
            SimDuration::from_micros(20),
            SwitchConfig::ppt(500_000, 60_000, 40_000),
        );
        let cfg = PptConfig::new(rate, topo.base_rtt);
        let t = tcp(topo.base_rtt);
        install_ppt(&mut topo, &t, &cfg);
        for (i, &(size, fw)) in flows.iter().enumerate() {
            let first_write = fw.min(size);
            topo.sim.add_flow(
                topo.hosts[i % 3],
                topo.hosts[3],
                size,
                SimTime(i as u64 * 30_000),
                first_write,
            );
        }
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(120_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, flows.len(), "seed {seed}");
    }
}

/// Homa delivers any mix of message sizes (grants + timeout recovery).
#[test]
fn homa_random_workload_completes_seeded() {
    for seed in 0..6u64 {
        let mut rng = Pcg32::seed_from_u64(seed);
        let sizes = random_sizes(&mut rng, 7, 2_000_000);
        let mut topo = star::<Proto>(
            4,
            Rate::gbps(10),
            SimDuration::from_micros(20),
            SwitchConfig::basic(500_000),
        );
        install_homa(&mut topo, &HomaCfg::new(50_000));
        for (i, &size) in sizes.iter().enumerate() {
            topo.sim.add_flow(
                topo.hosts[i % 3],
                topo.hosts[3],
                size,
                SimTime(i as u64 * 40_000),
                size,
            );
        }
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(120_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, sizes.len(), "seed {seed}");
    }
}

/// NDP delivers any mix of message sizes through the trim/pull path.
#[test]
fn ndp_random_workload_completes_seeded() {
    for seed in 0..6u64 {
        let mut rng = Pcg32::seed_from_u64(seed);
        let sizes = random_sizes(&mut rng, 7, 2_000_000);
        let mut topo = star::<Proto>(
            4,
            Rate::gbps(10),
            SimDuration::from_micros(20),
            SwitchConfig::ndp(120_000, 12_000),
        );
        install_ndp(&mut topo, SimDuration::from_millis(1));
        for (i, &size) in sizes.iter().enumerate() {
            topo.sim.add_flow(
                topo.hosts[i % 3],
                topo.hosts[3],
                size,
                SimTime(i as u64 * 40_000),
                size,
            );
        }
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(120_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, sizes.len(), "seed {seed}");
    }
}

/// Failure injection: a brutally small switch buffer (4 packets) with no
/// ECN — heavy loss on every path. All TCP-family schemes must still
/// complete via SACK/RTO recovery.
#[test]
fn dctcp_survives_a_four_packet_buffer() {
    let mut topo = star::<Proto>(
        3,
        Rate::gbps(10),
        SimDuration::from_micros(20),
        SwitchConfig::basic(4 * 1500),
    );
    let t = tcp(topo.base_rtt);
    install_dctcp(&mut topo, &t);
    topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 1_000_000, SimTime::ZERO, 1);
    topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 1_000_000, SimTime::ZERO, 1);
    let report =
        topo.sim.run(RunLimits { max_time: SimTime(300_000_000_000), max_events: 2_000_000_000 });
    assert_eq!(report.flows_completed, 2);
    assert!(topo.sim.total_counters().dropped > 0);
}

/// Failure injection: PPT under the same starved buffer.
#[test]
fn ppt_survives_a_four_packet_buffer() {
    let rate = Rate::gbps(10);
    let mut topo = star::<Proto>(
        3,
        rate,
        SimDuration::from_micros(20),
        SwitchConfig::ppt(4 * 1500, 3_000, 1_500),
    );
    let cfg = PptConfig::new(rate, topo.base_rtt);
    let t = tcp(topo.base_rtt);
    install_ppt(&mut topo, &t, &cfg);
    topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 1_000_000, SimTime::ZERO, 1_000_000);
    topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 1_000_000, SimTime::ZERO, 1_000_000);
    let report =
        topo.sim.run(RunLimits { max_time: SimTime(300_000_000_000), max_events: 2_000_000_000 });
    assert_eq!(report.flows_completed, 2);
}

/// One-byte flows: the degenerate minimum for every scheme.
#[test]
fn one_byte_flows_work_everywhere() {
    // TCP family.
    let rate = Rate::gbps(10);
    let mut topo = star::<Proto>(
        2,
        rate,
        SimDuration::from_micros(20),
        SwitchConfig::ppt(200_000, 60_000, 40_000),
    );
    let cfg = PptConfig::new(rate, topo.base_rtt);
    let t = tcp(topo.base_rtt);
    install_ppt(&mut topo, &t, &cfg);
    let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 1, SimTime::ZERO, 1);
    topo.sim.run(RunLimits::default());
    assert!(topo.sim.completion(f).is_some());

    // Homa.
    let mut topo =
        star::<Proto>(2, rate, SimDuration::from_micros(20), SwitchConfig::basic(200_000));
    install_homa(&mut topo, &HomaCfg::new(50_000));
    let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 1, SimTime::ZERO, 1);
    topo.sim.run(RunLimits::default());
    assert!(topo.sim.completion(f).is_some());

    // NDP.
    let mut topo =
        star::<Proto>(2, rate, SimDuration::from_micros(20), SwitchConfig::ndp(200_000, 12_000));
    install_ndp(&mut topo, SimDuration::from_millis(1));
    let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 1, SimTime::ZERO, 1);
    topo.sim.run(RunLimits::default());
    assert!(topo.sim.completion(f).is_some());
}

/// A 50MB elephant through PPT (exercises deep interval sets, repeated
/// α rounds, many LCP loop generations).
#[test]
fn fifty_megabyte_elephant_completes() {
    let rate = Rate::gbps(10);
    let mut topo = star::<Proto>(
        2,
        rate,
        SimDuration::from_micros(20),
        SwitchConfig::ppt(200_000, 60_000, 40_000),
    );
    let cfg = PptConfig::new(rate, topo.base_rtt);
    let t = tcp(topo.base_rtt);
    install_ppt(&mut topo, &t, &cfg);
    let size = 50 << 20;
    let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], size, SimTime::ZERO, size);
    let report =
        topo.sim.run(RunLimits { max_time: SimTime(300_000_000_000), max_events: 2_000_000_000 });
    assert_eq!(report.flows_completed, 1);
    let fct = topo.sim.completion(f).expect("elephant completed");
    let ideal = Rate::gbps(10).serialization_time(size).as_nanos();
    assert!(
        fct.as_nanos() < 2 * ideal,
        "elephant too slow: {}ms vs ideal {}ms",
        fct.as_millis_f64(),
        ideal / 1_000_000
    );
}

/// The original property-based suite. Requires the `proptest` feature
/// *and* the `proptest` dev-dependency restored in Cargo.toml.
#[cfg(feature = "proptest")]
mod property_based {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// DCTCP delivers any mix of flow sizes losslessly over an ECN
        /// fabric.
        #[test]
        fn dctcp_random_workload_completes(
            sizes in proptest::collection::vec(1u64..3_000_000, 1..10),
        ) {
            let mut topo = star::<Proto>(4, Rate::gbps(10), SimDuration::from_micros(20), SwitchConfig::dctcp(500_000, 60_000));
            let t = tcp(topo.base_rtt);
            install_dctcp(&mut topo, &t);
            for (i, &size) in sizes.iter().enumerate() {
                topo.sim.add_flow(topo.hosts[i % 3], topo.hosts[3], size, SimTime(i as u64 * 30_000), size);
            }
            let report = topo.sim.run(RunLimits { max_time: SimTime(120_000_000_000), max_events: 2_000_000_000 });
            prop_assert_eq!(report.flows_completed, sizes.len());
        }

        /// PPT delivers any mix of flow sizes and first-write patterns.
        #[test]
        fn ppt_random_workload_completes(
            flows in proptest::collection::vec((1u64..3_000_000, 1u64..3_000_000), 1..10),
        ) {
            let rate = Rate::gbps(10);
            let mut topo = star::<Proto>(4, rate, SimDuration::from_micros(20), SwitchConfig::ppt(500_000, 60_000, 40_000));
            let cfg = PptConfig::new(rate, topo.base_rtt);
            let t = tcp(topo.base_rtt);
            install_ppt(&mut topo, &t, &cfg);
            for (i, &(size, fw)) in flows.iter().enumerate() {
                let first_write = fw.min(size);
                topo.sim.add_flow(topo.hosts[i % 3], topo.hosts[3], size, SimTime(i as u64 * 30_000), first_write);
            }
            let report = topo.sim.run(RunLimits { max_time: SimTime(120_000_000_000), max_events: 2_000_000_000 });
            prop_assert_eq!(report.flows_completed, flows.len());
        }

        /// Homa delivers any mix of message sizes (grants + timeout
        /// recovery).
        #[test]
        fn homa_random_workload_completes(
            sizes in proptest::collection::vec(1u64..2_000_000, 1..8),
        ) {
            let mut topo = star::<Proto>(4, Rate::gbps(10), SimDuration::from_micros(20), SwitchConfig::basic(500_000));
            install_homa(&mut topo, &HomaCfg::new(50_000));
            for (i, &size) in sizes.iter().enumerate() {
                topo.sim.add_flow(topo.hosts[i % 3], topo.hosts[3], size, SimTime(i as u64 * 40_000), size);
            }
            let report = topo.sim.run(RunLimits { max_time: SimTime(120_000_000_000), max_events: 2_000_000_000 });
            prop_assert_eq!(report.flows_completed, sizes.len());
        }

        /// NDP delivers any mix of message sizes through the trim/pull
        /// path.
        #[test]
        fn ndp_random_workload_completes(
            sizes in proptest::collection::vec(1u64..2_000_000, 1..8),
        ) {
            let mut topo = star::<Proto>(4, Rate::gbps(10), SimDuration::from_micros(20), SwitchConfig::ndp(120_000, 12_000));
            install_ndp(&mut topo, SimDuration::from_millis(1));
            for (i, &size) in sizes.iter().enumerate() {
                topo.sim.add_flow(topo.hosts[i % 3], topo.hosts[3], size, SimTime(i as u64 * 40_000), size);
            }
            let report = topo.sim.run(RunLimits { max_time: SimTime(120_000_000_000), max_events: 2_000_000_000 });
            prop_assert_eq!(report.flows_completed, sizes.len());
        }
    }
}
