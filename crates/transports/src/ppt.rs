//! **PPT** — the paper's pragmatic transport.
//!
//! Composition of the two components of §2.3:
//!
//! * **Dual-loop rate control (§3).** The HCP loop *is* DCTCP
//!   ([`DctcpFlowTx`], untouched). The LCP loop sends opportunistic
//!   packets from the tail of the send buffer: it opens intermittently
//!   (case 1 at flow start — delayed one RTT for identified-large flows —
//!   and case 2 whenever α hits its windowed minimum, Eq. 2), paces its
//!   initial window over one RTT, then decays exponentially under the EWD
//!   ACK clock, ignores ECE-marked low-priority ACKs, and expires after
//!   two silent RTTs.
//! * **Buffer-aware flow scheduling (§4).** Flows whose first syscall
//!   exceeds the identification threshold are tagged large from byte 0;
//!   everyone else starts at the top priority and ages down. HCP packets
//!   use P0–P3, LCP packets mirror at P4–P7.
//!
//! The ablation switches in [`PptConfig`] disable individual pieces to
//! reproduce Figs 15–18.

use std::collections::BTreeMap;

use netsim::trace::{LcpCloseReason, LcpTrigger};
use netsim::{Ctx, Ecn, FlowDesc, FlowId, Packet, SimDuration, TraceEvent, Transport};
use ppt_core::{
    initial_window_case1, initial_window_case2, FlowIdentifier, LcpAction, LcpLoop, LoopTrigger,
    MinTracker, MirrorTagger, PptConfig,
};

use crate::common::{arm_rto, service_rto, Token, TIMER_RTO};
use crate::proto::{DataHdr, Proto};
use crate::rx::TcpRx;
use crate::tcp_base::{DctcpFlowTx, TcpCfg};

/// LCP initial-burst pacing tick.
pub const TIMER_LCP_PACE: u8 = 2;
/// LCP liveness check (expiry after 2 silent RTTs).
pub const TIMER_LCP_EXPIRY: u8 = 3;
/// Delayed case-1 open for identified-large flows (2nd RTT).
pub const TIMER_LCP_DELAYED_OPEN: u8 = 4;

struct PptFlowTx {
    hcp: DctcpFlowTx,
    identified_large: bool,
    lcp: Option<LcpLoop>,
    /// Bumped whenever a loop closes; stale pace/expiry timers no-op.
    lcp_gen: u16,
    min_tracker: MinTracker,
    /// Remaining bytes of the paced initial burst.
    pace_remaining: u64,
    pace_interval: SimDuration,
}

/// The PPT endpoint (sender + receiver roles).
pub struct PptTransport {
    tcp: TcpCfg,
    cfg: PptConfig,
    identifier: FlowIdentifier,
    tagger: MirrorTagger,
    tx: BTreeMap<FlowId, PptFlowTx>,
    rx: BTreeMap<FlowId, TcpRx>,
}

impl PptTransport {
    /// Build an endpoint from the PPT configuration; TCP mechanics (MSS,
    /// RTO, initial window) come from `tcp`.
    pub fn new(tcp: TcpCfg, cfg: PptConfig) -> Self {
        PptTransport {
            identifier: FlowIdentifier { threshold_bytes: cfg.ident_threshold_bytes },
            tagger: MirrorTagger::new(cfg.demotion_thresholds.clone()),
            tcp,
            cfg,
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
        }
    }

    /// Transmit HCP segments while the window allows, then keep the RTO
    /// timer armed.
    fn pump_hcp(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) {
        let now = ctx.now();
        let Some(f) = self.tx.get_mut(&id) else { return };
        let mut outgoing = Vec::new();
        while let Some(seg) = f.hcp.next_segment(now) {
            outgoing.push(seg);
        }
        let prio = if self.cfg.scheduling_enabled {
            self.tagger.hcp_priority(f.identified_large, f.hcp.bytes_sent)
        } else {
            0
        };
        let (src, dst, size) = (f.hcp.src, f.hcp.dst, f.hcp.size);
        for seg in outgoing {
            if seg.retx {
                ctx.note_retransmit(id);
                ctx.emit(TraceEvent::Retransmit {
                    flow: id.0,
                    offset: seg.offset,
                    len: seg.len as u64,
                });
            }
            let hdr = DataHdr {
                offset: seg.offset,
                len: seg.len,
                msg_size: size,
                lcp: false,
                retx: seg.retx,
                sent_at: now,
                int: None,
            };
            ctx.send(Packet::data(id, src, dst, seg.len, Proto::Data(hdr)).with_priority(prio));
        }
        arm_rto(&f.hcp, ctx);
    }

    /// Send one opportunistic packet from the tail of the send buffer.
    /// Returns false when there is nothing left to claim (loops crossed).
    fn send_lcp_segment(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) -> bool {
        let lcp_ecn = self.cfg.lcp_ecn_enabled;
        let send_buffer = self.cfg.send_buffer_bytes;
        let sched = self.cfg.scheduling_enabled;
        let mss = self.tcp.mss as u64;
        let Some(f) = self.tx.get_mut(&id) else { return false };
        if f.hcp.is_done() {
            return false;
        }
        // The LCP reads the TCP write queue from its tail: only bytes
        // currently buffered are reachable (§5.1). The buffered window is
        // [cum_acked, cum_acked + send_buffer).
        let buffer_end = f.hcp.size.min(f.hcp.cum_acked().saturating_add(send_buffer));
        let Some((gap_start, gap_end)) = f.hcp.claimed().last_gap(buffer_end) else {
            return false;
        };
        let start = gap_end.saturating_sub(mss).max(gap_start);
        let len = (gap_end - start) as u32;
        f.hcp.claimed_mut().insert(start, gap_end);
        f.hcp.add_sent_bytes(len as u64);
        let prio =
            if sched { self.tagger.lcp_priority(f.identified_large, f.hcp.bytes_sent) } else { 4 };
        let hdr = DataHdr {
            offset: start,
            len,
            msg_size: f.hcp.size,
            lcp: true,
            retx: false,
            sent_at: ctx.now(),
            int: None,
        };
        let mut pkt =
            Packet::data(id, f.hcp.src, f.hcp.dst, len, Proto::Data(hdr)).with_priority(prio);
        pkt.ecn = if lcp_ecn { Ecn::capable() } else { Ecn::not_capable() };
        ctx.send(pkt);
        ctx.emit(TraceEvent::LcpSend { flow: id.0, offset: start, len: len as u64 });
        true
    }

    /// Open an LCP loop with initial window `init_bytes` (no-op when the
    /// window is under one segment or a loop is already running).
    fn open_lcp(
        &mut self,
        id: FlowId,
        trigger: LoopTrigger,
        init_bytes: u64,
        ctx: &mut Ctx<'_, Proto>,
    ) {
        let mss = self.tcp.mss as u64;
        let rtt = self.cfg.base_rtt;
        let ewd = self.cfg.ewd_enabled;
        {
            let Some(f) = self.tx.get_mut(&id) else { return };
            if f.lcp.is_some() || init_bytes < mss || f.hcp.is_done() {
                return;
            }
            f.lcp = Some(LcpLoop::open(trigger, init_bytes, ctx.now()));
            f.pace_remaining = init_bytes;
            // Pace the initial window at I/RTT: one MSS every mss·RTT/I.
            let interval_ns = (rtt.as_nanos() as u128 * mss as u128 / init_bytes as u128) as u64;
            f.pace_interval = SimDuration::from_nanos(interval_ns.max(1));
        }
        ctx.emit(TraceEvent::LcpOpened {
            flow: id.0,
            trigger: match trigger {
                LoopTrigger::FlowStart => LcpTrigger::FlowStart,
                LoopTrigger::AlphaMinimum => LcpTrigger::QueueBuildup,
            },
            init_bytes,
        });
        let gen = self.tx[&id].lcp_gen;
        if ewd {
            // First paced packet goes out immediately; the timer drives the
            // rest of the burst.
            if self.send_lcp_segment(id, ctx) {
                if let Some(f) = self.tx.get_mut(&id) {
                    f.pace_remaining = f.pace_remaining.saturating_sub(mss);
                }
                let interval = self.tx[&id].pace_interval;
                ctx.timer_after(
                    interval,
                    Token { kind: TIMER_LCP_PACE, generation: gen, flow: id.0 }.encode(),
                );
            }
        } else {
            // Ablation (Fig 16): no EWD — blast the whole initial window
            // at line rate.
            let packets = init_bytes.div_ceil(mss);
            for _ in 0..packets {
                if !self.send_lcp_segment(id, ctx) {
                    break;
                }
            }
            if let Some(f) = self.tx.get_mut(&id) {
                f.pace_remaining = 0;
            }
        }
        // Liveness check every RTT.
        ctx.timer_after(
            rtt,
            Token { kind: TIMER_LCP_EXPIRY, generation: gen, flow: id.0 }.encode(),
        );
    }

    fn close_lcp(f: &mut PptFlowTx, id: FlowId, reason: LcpCloseReason, ctx: &mut Ctx<'_, Proto>) {
        if f.lcp.take().is_some() {
            ctx.emit(TraceEvent::LcpClosed { flow: id.0, reason });
        }
        f.lcp_gen = f.lcp_gen.wrapping_add(1);
        f.pace_remaining = 0;
    }
}

impl Transport<Proto> for PptTransport {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Proto>) {
        // Identification sees what actually lands in the send buffer.
        let first_write = flow.first_write_bytes.min(self.cfg.send_buffer_bytes);
        let identified_large =
            self.cfg.identification_enabled && self.identifier.is_large_at_start(first_write);
        let hcp = DctcpFlowTx::new(flow.id, flow.src, flow.dst, flow.size_bytes, self.tcp.clone());
        let f = PptFlowTx {
            hcp,
            identified_large,
            lcp: None,
            lcp_gen: 0,
            min_tracker: MinTracker::new(self.cfg.alpha_min_window),
            pace_remaining: 0,
            pace_interval: SimDuration::ZERO,
        };
        self.tx.insert(flow.id, f);
        self.pump_hcp(flow.id, ctx);

        // Case 1: open the LCP loop in the 1st RTT for normal flows,
        // in the 2nd RTT for identified-large flows (§3.1).
        let iw = self.tcp.init_cwnd_bytes;
        let init = initial_window_case1(self.cfg.bdp_bytes(), iw);
        if identified_large {
            ctx.timer_after(
                self.cfg.base_rtt,
                Token { kind: TIMER_LCP_DELAYED_OPEN, generation: 0, flow: flow.id.0 }.encode(),
            );
        } else {
            self.open_lcp(flow.id, LoopTrigger::FlowStart, init, ctx);
        }
    }

    fn on_packet(&mut self, pkt: Packet<Proto>, ctx: &mut Ctx<'_, Proto>) {
        match &pkt.payload {
            Proto::Data(hdr) => {
                let rx = self
                    .rx
                    .entry(pkt.flow)
                    .or_insert_with(|| TcpRx::new(pkt.flow, pkt.src, hdr.msg_size, 2));
                let hdr = hdr.clone();
                rx.on_data(&pkt, &hdr, ctx);
            }
            Proto::Ack(ack) if ack.lcp => {
                let ack = ack.clone();
                let now = ctx.now();
                let (send_count, open_more) = {
                    let Some(f) = self.tx.get_mut(&pkt.flow) else { return };
                    f.hcp.on_lcp_ack(&ack, now);
                    if f.hcp.is_done() {
                        Self::close_lcp(f, pkt.flow, LcpCloseReason::FlowDone, ctx);
                        (0, false)
                    } else if let Some(lcp) = f.lcp.as_mut() {
                        match lcp.on_low_priority_ack(ack.ece, now) {
                            LcpAction::SendOne => {
                                // With EWD, one ACK clocks one packet; the
                                // no-EWD ablation clocks two (rate holds
                                // instead of halving).
                                (if self.cfg.ewd_enabled { 1 } else { 2 }, false)
                            }
                            LcpAction::Ignore => (0, false),
                        }
                    } else {
                        (0, false)
                    }
                };
                let _ = open_more;
                let mut sent = 0u32;
                for _ in 0..send_count {
                    if !self.send_lcp_segment(pkt.flow, ctx) {
                        break;
                    }
                    sent += 1;
                }
                ctx.emit(TraceEvent::LcpAck { flow: pkt.flow.0, ece: ack.ece, sent_new: sent > 0 });
            }
            Proto::Ack(ack) => {
                let ack = ack.clone();
                let now = ctx.now();
                let round_alpha;
                let done;
                {
                    let Some(f) = self.tx.get_mut(&pkt.flow) else { return };
                    let out = f.hcp.on_ack(&ack, now);
                    round_alpha = out.round_alpha;
                    done = f.hcp.is_done();
                    if ctx.tracing() {
                        if let Some(alpha) = round_alpha {
                            ctx.emit(TraceEvent::AlphaUpdate { flow: pkt.flow.0, alpha });
                        }
                        ctx.emit(TraceEvent::CwndUpdate {
                            flow: pkt.flow.0,
                            cwnd: f.hcp.cwnd_bytes(),
                        });
                    }
                    if done {
                        Self::close_lcp(f, pkt.flow, LcpCloseReason::FlowDone, ctx);
                    }
                }
                if !done {
                    self.pump_hcp(pkt.flow, ctx);
                    // Case 2: α closed a round at its windowed minimum →
                    // spare bandwidth is likely; open a loop per Eq. 2.
                    if let Some(alpha) = round_alpha {
                        let open = {
                            let f = self.tx.get_mut(&pkt.flow).expect("flow exists"); // simlint: allow(panic_hygiene)
                            let is_min = f.min_tracker.push(alpha);
                            if is_min && f.lcp.is_none() && f.hcp.wmax.past_slow_start() {
                                f.hcp.wmax.w_max_bytes().map(|w| {
                                    let target = (w as f64 * self.cfg.fill_fraction) as u64;
                                    let i = initial_window_case2(alpha, target);
                                    // §3: LCP + HCP must not exceed the
                                    // (scaled) MW.
                                    i.min(target.saturating_sub(f.hcp.cwnd_bytes()))
                                })
                            } else {
                                None
                            }
                        };
                        if let Some(init) = open {
                            self.open_lcp(pkt.flow, LoopTrigger::AlphaMinimum, init, ctx);
                        }
                    }
                }
            }
            _ => unreachable!("PPT endpoint received a non-TCP packet"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Proto>) {
        let token = Token::decode(token);
        let id = FlowId(token.flow);
        match token.kind {
            TIMER_RTO => {
                let Some(f) = self.tx.get_mut(&id) else { return };
                if service_rto(&mut f.hcp, ctx) {
                    self.pump_hcp(id, ctx);
                }
            }
            TIMER_LCP_PACE => {
                let mss = self.tcp.mss as u64;
                let proceed = {
                    let Some(f) = self.tx.get_mut(&id) else { return };
                    f.lcp.is_some() && f.lcp_gen == token.generation && f.pace_remaining > 0
                };
                if !proceed {
                    return;
                }
                if self.send_lcp_segment(id, ctx) {
                    let f = self.tx.get_mut(&id).expect("flow exists"); // simlint: allow(panic_hygiene)
                    f.pace_remaining = f.pace_remaining.saturating_sub(mss);
                    if f.pace_remaining > 0 {
                        let interval = f.pace_interval;
                        ctx.timer_after(
                            interval,
                            Token {
                                kind: TIMER_LCP_PACE,
                                generation: token.generation,
                                flow: id.0,
                            }
                            .encode(),
                        );
                    }
                }
            }
            TIMER_LCP_EXPIRY => {
                let rtt = self.cfg.base_rtt;
                let Some(f) = self.tx.get_mut(&id) else { return };
                if f.lcp_gen != token.generation {
                    return;
                }
                let Some(lcp) = f.lcp.as_ref() else { return };
                if lcp.is_expired(ctx.now(), rtt) || f.hcp.is_done() {
                    let reason = if f.hcp.is_done() {
                        LcpCloseReason::FlowDone
                    } else if lcp.ack_counts().0 == 0 {
                        // Expired without a single LP ACK ever arriving:
                        // the loop's packets (or their ACKs) all died, the
                        // §3.2 total-preemption / loss case.
                        LcpCloseReason::NoLpAcks
                    } else {
                        LcpCloseReason::Expired
                    };
                    Self::close_lcp(f, id, reason, ctx);
                } else {
                    ctx.timer_after(
                        rtt,
                        Token { kind: TIMER_LCP_EXPIRY, generation: token.generation, flow: id.0 }
                            .encode(),
                    );
                }
            }
            TIMER_LCP_DELAYED_OPEN => {
                // 2nd-RTT case-1 open for identified-large flows: the
                // spare window is the BDP minus what HCP now occupies.
                let init = {
                    let Some(f) = self.tx.get_mut(&id) else { return };
                    if f.hcp.is_done() || f.lcp.is_some() {
                        return;
                    }
                    initial_window_case1(self.cfg.bdp_bytes(), f.hcp.cwnd_bytes())
                };
                self.open_lcp(id, LoopTrigger::FlowStart, init, ctx);
            }
            _ => {}
        }
    }

    fn cc_snapshot(&self) -> netsim::CcSnapshot {
        let mut snap = netsim::CcSnapshot::default();
        for f in self.tx.values().filter(|f| !f.hcp.is_done()) {
            // The PPT window is the dual-loop total: the HCP congestion
            // window plus the open LCP's window, when one exists. LCP
            // segments claim flow bytes through the shared HCP ledger, so
            // its in-flight is already covered by `inflight_bytes`.
            snap.cwnd_bytes +=
                f.hcp.cwnd_bytes() + f.lcp.as_ref().map_or(0, |l| l.initial_window_bytes());
            snap.inflight_bytes += f.hcp.inflight_bytes();
            snap.flows += 1;
        }
        snap
    }
}

/// Install PPT on every host of a topology.
pub fn install_ppt(topo: &mut netsim::Topology<Proto>, tcp: &TcpCfg, cfg: &PptConfig) {
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Box::new(PptTransport::new(tcp.clone(), cfg.clone())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;
    use netsim::{star, Rate, RunLimits, SwitchConfig};

    fn ppt_testbed(n: usize) -> (netsim::Topology<Proto>, TcpCfg, PptConfig) {
        let rate = Rate::gbps(10);
        let delay = SimDuration::from_micros(20);
        let base_rtt = delay * 4;
        let cfg = PptConfig::new(rate, base_rtt);
        let (k_hi, k_lo) = cfg.ecn_thresholds();
        let topo = star::<Proto>(n, rate, delay, SwitchConfig::ppt(200_000, k_hi, k_lo));
        let tcp = TcpCfg::new(base_rtt);
        (topo, tcp, cfg)
    }

    fn run_flows(topo: &mut netsim::Topology<Proto>, max_time_ms: u64) -> netsim::RunReport {
        topo.sim.run(RunLimits {
            max_time: SimTime(max_time_ms * 1_000_000),
            max_events: 2_000_000_000,
        })
    }

    #[test]
    fn single_small_flow_completes_in_one_rtt_ish() {
        let (mut topo, tcp, cfg) = ppt_testbed(2);
        install_ppt(&mut topo, &tcp, &cfg);
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 5_000, SimTime::ZERO, 5_000);
        let report = run_flows(&mut topo, 100);
        assert_eq!(report.flows_completed, 1);
        let fct = topo.sim.completion(f).unwrap();
        assert!(fct.as_nanos() < 200_000, "small flow fct={fct}");
    }

    #[test]
    fn large_flow_completes_faster_than_dctcp() {
        // One 4MB flow on an idle network: PPT's LCP fills the pipe during
        // slow start, so it must beat plain DCTCP.
        let size = 4 << 20;

        let (mut ppt_topo, tcp, cfg) = ppt_testbed(2);
        install_ppt(&mut ppt_topo, &tcp, &cfg);
        let f =
            ppt_topo.sim.add_flow(ppt_topo.hosts[0], ppt_topo.hosts[1], size, SimTime::ZERO, size);
        run_flows(&mut ppt_topo, 1000);
        let ppt_fct = ppt_topo.sim.completion(f).expect("ppt flow done");

        let rate = Rate::gbps(10);
        let delay = SimDuration::from_micros(20);
        let mut dctcp_topo = star::<Proto>(2, rate, delay, SwitchConfig::dctcp(200_000, 17_000));
        crate::dctcp::install_dctcp(&mut dctcp_topo, &tcp);
        let g = dctcp_topo.sim.add_flow(
            dctcp_topo.hosts[0],
            dctcp_topo.hosts[1],
            size,
            SimTime::ZERO,
            size,
        );
        dctcp_topo.sim.run(RunLimits::default());
        let dctcp_fct = dctcp_topo.sim.completion(g).expect("dctcp flow done");

        assert!(
            ppt_fct < dctcp_fct,
            "PPT ({ppt_fct}) must beat DCTCP ({dctcp_fct}) on an idle pipe"
        );
    }

    #[test]
    fn lcp_packets_use_low_priority_band() {
        // Two senders onto one downlink so the egress queue actually
        // builds (on an idle path nothing ever sits in a queue and the
        // sampler would see zeros).
        let (mut topo, tcp, cfg) = ppt_testbed(3);
        install_ppt(&mut topo, &tcp, &cfg);
        let size = 2 << 20;
        topo.sim.add_flow(topo.hosts[0], topo.hosts[2], size, SimTime::ZERO, size);
        topo.sim.add_flow(topo.hosts[1], topo.hosts[2], size, SimTime::ZERO, size);
        // Sample the switch egress port toward the receiver.
        let port = topo
            .sim
            .switch_port_towards(topo.leaves[0], netsim::NodeId::Host(topo.hosts[2]))
            .unwrap();
        let sampler = topo.sim.sample_port(
            topo.leaves[0],
            port,
            SimDuration::from_micros(5),
            SimTime(3_000_000),
        );
        run_flows(&mut topo, 1000);
        let samples = topo.sim.samples(sampler);
        let low_band_bytes: u64 =
            samples.iter().map(|s| s.per_priority[4..].iter().sum::<u64>()).sum();
        assert!(low_band_bytes > 0, "LCP traffic must appear in P4-P7");
    }

    #[test]
    fn many_to_one_all_complete_without_collapse() {
        let (mut topo, tcp, cfg) = ppt_testbed(8);
        install_ppt(&mut topo, &tcp, &cfg);
        for i in 0..7 {
            topo.sim.add_flow(
                topo.hosts[i],
                topo.hosts[7],
                500_000,
                SimTime(i as u64 * 1000),
                500_000,
            );
        }
        let report = run_flows(&mut topo, 5_000);
        assert_eq!(report.flows_completed, 7, "incast flows must all finish");
    }

    #[test]
    fn small_flows_beat_large_flows_under_contention() {
        let (mut topo, tcp, cfg) = ppt_testbed(4);
        install_ppt(&mut topo, &tcp, &cfg);
        // Two large identified flows hog the path to h3...
        topo.sim.add_flow(topo.hosts[0], topo.hosts[3], 8 << 20, SimTime::ZERO, 8 << 20);
        topo.sim.add_flow(topo.hosts[1], topo.hosts[3], 8 << 20, SimTime::ZERO, 8 << 20);
        // ...then a burst of small flows arrives mid-transfer.
        let mut smalls = Vec::new();
        for i in 0..10u64 {
            smalls.push(topo.sim.add_flow(
                topo.hosts[2],
                topo.hosts[3],
                4_000,
                SimTime(2_000_000 + i * 10_000),
                4_000,
            ));
        }
        let report = run_flows(&mut topo, 60_000);
        assert_eq!(report.flows_completed, 12);
        for s in smalls {
            let start = topo.sim.flows()[s.0 as usize].start;
            let fct = topo.sim.completion(s).unwrap() - start;
            assert!(
                fct.as_nanos() < 1_000_000,
                "small flow should cut the line, fct={}us",
                fct.as_micros_f64()
            );
        }
    }

    #[test]
    fn ablations_run_to_completion() {
        for (ecn, ewd, sched, ident) in [
            (false, true, true, true),
            (true, false, true, true),
            (true, true, false, true),
            (true, true, true, false),
        ] {
            let (mut topo, tcp, mut cfg) = ppt_testbed(3);
            cfg.lcp_ecn_enabled = ecn;
            cfg.ewd_enabled = ewd;
            cfg.scheduling_enabled = sched;
            cfg.identification_enabled = ident;
            install_ppt(&mut topo, &tcp, &cfg);
            topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 1 << 20, SimTime::ZERO, 1 << 20);
            topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 50_000, SimTime(100_000), 50_000);
            let report = run_flows(&mut topo, 10_000);
            assert_eq!(
                report.flows_completed, 2,
                "ablation (ecn={ecn},ewd={ewd},sched={sched},ident={ident}) must still complete"
            );
        }
    }

    #[test]
    fn fill_fraction_sweep_runs() {
        for frac in [0.5, 1.0, 1.5] {
            let (mut topo, tcp, mut cfg) = ppt_testbed(3);
            cfg.fill_fraction = frac;
            install_ppt(&mut topo, &tcp, &cfg);
            topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 2 << 20, SimTime::ZERO, 2 << 20);
            topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 2 << 20, SimTime::ZERO, 2 << 20);
            let report = run_flows(&mut topo, 30_000);
            assert_eq!(report.flows_completed, 2, "fill fraction {frac}");
        }
    }
}
