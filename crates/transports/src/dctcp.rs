//! The DCTCP transport endpoint (the paper's primary reactive baseline
//! and PPT's HCP loop).

// The MwRecorder oracle handle below is the one sanctioned RefCell use:
// a measurement tap, not simulation state (see its doc comment).
// simlint: allow(shared_mut)
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use netsim::{Ctx, FlowDesc, FlowId, Packet, TraceEvent, Transport};

use crate::common::{arm_rto, service_rto, Token};
use crate::proto::{DataHdr, Proto};
use crate::rx::TcpRx;
use crate::tcp_base::{DctcpFlowTx, TcpCfg};

// Historical home of the shared TCP-family RTO timer kind.
pub use crate::common::TIMER_RTO;

/// Shared map for recording each flow's maximum window — consumed by the
/// "hypothetical DCTCP" oracle experiments (Fig 2/3/20).
///
/// This is observational plumbing between the measurement pass and the
/// replay pass of a single-threaded experiment, never engine state: no
/// event ordering depends on it, and it will not cross shard boundaries.
// simlint: allow(shared_mut)
pub type MwRecorder = Rc<RefCell<BTreeMap<FlowId, u64>>>;

/// Plain DCTCP: all data at the highest priority, ECN-driven window.
///
/// Two reactive Table-1 baselines are thin variants of this endpoint:
/// *TCP-10* (loss-based TCP with a 10-MSS initial window — ECN disabled)
/// and *Halfback* (TCP-10 plus a line-rate first-RTT blast for flows up
/// to 141 KB).
pub struct DctcpTransport {
    cfg: TcpCfg,
    tx: BTreeMap<FlowId, DctcpFlowTx>,
    rx: BTreeMap<FlowId, TcpRx>,
    mw_recorder: Option<MwRecorder>,
    /// ECN participation (off for the TCP-10 / Halfback variants: they
    /// react to loss only).
    ecn_enabled: bool,
    /// Halfback: flows up to this size blast their whole payload in the
    /// first RTT.
    first_rtt_blast_cap: Option<u64>,
}

impl DctcpTransport {
    /// New endpoint with the given TCP parameters.
    pub fn new(cfg: TcpCfg) -> Self {
        DctcpTransport {
            cfg,
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
            mw_recorder: None,
            ecn_enabled: true,
            first_rtt_blast_cap: None,
        }
    }

    /// The TCP-10 baseline: IW = 10 MSS, no ECN (loss-driven only).
    pub fn tcp10(cfg: TcpCfg) -> Self {
        let mut t = Self::new(cfg);
        t.ecn_enabled = false;
        t
    }

    /// The Halfback baseline: TCP-10 plus "pace out ≤141 KB flows in the
    /// first RTT" (the paper's §2.1 characterization).
    pub fn halfback(cfg: TcpCfg) -> Self {
        let mut t = Self::tcp10(cfg);
        t.first_rtt_blast_cap = Some(141_000);
        t
    }

    /// Record each completed flow's maximum congestion window into the
    /// shared map (the MW oracle for the hypothetical-DCTCP experiments).
    pub fn with_mw_recorder(mut self, rec: MwRecorder) -> Self {
        self.mw_recorder = Some(rec);
        self
    }

    fn pump(flow: &mut DctcpFlowTx, ecn: bool, ctx: &mut Ctx<'_, Proto>) {
        let now = ctx.now();
        while let Some(seg) = flow.next_segment(now) {
            if seg.retx {
                ctx.note_retransmit(flow.id);
                ctx.emit(TraceEvent::Retransmit {
                    flow: flow.id.0,
                    offset: seg.offset,
                    len: seg.len as u64,
                });
            }
            let hdr = DataHdr {
                offset: seg.offset,
                len: seg.len,
                msg_size: flow.size,
                lcp: false,
                retx: seg.retx,
                sent_at: now,
                int: None,
            };
            let mut pkt = Packet::data(flow.id, flow.src, flow.dst, seg.len, Proto::Data(hdr));
            if !ecn {
                pkt = pkt.without_ecn();
            }
            ctx.send(pkt);
        }
        arm_rto(flow, ctx);
    }

    fn record_mw(rec: &Option<MwRecorder>, flow: &DctcpFlowTx) {
        if let Some(rec) = rec {
            // Prefer the congestion-avoidance MW; flows that never left
            // slow start fall back to the final window.
            let mw = flow.wmax.w_max_bytes().unwrap_or_else(|| flow.cwnd_bytes());
            rec.borrow_mut().insert(flow.id, mw);
        }
    }
}

impl Transport<Proto> for DctcpTransport {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Proto>) {
        let mut cfg = self.cfg.clone();
        if let Some(cap) = self.first_rtt_blast_cap {
            if flow.size_bytes <= cap {
                // Halfback: short flows go out at line rate immediately.
                cfg.init_cwnd_bytes = cfg.init_cwnd_bytes.max(flow.size_bytes);
            }
        }
        let mut tx = DctcpFlowTx::new(flow.id, flow.src, flow.dst, flow.size_bytes, cfg);
        Self::pump(&mut tx, self.ecn_enabled, ctx);
        self.tx.insert(flow.id, tx);
    }

    fn on_packet(&mut self, pkt: Packet<Proto>, ctx: &mut Ctx<'_, Proto>) {
        match &pkt.payload {
            Proto::Data(hdr) => {
                let rx = self
                    .rx
                    .entry(pkt.flow)
                    .or_insert_with(|| TcpRx::new(pkt.flow, pkt.src, hdr.msg_size, 1));
                let hdr = hdr.clone();
                rx.on_data(&pkt, &hdr, ctx);
            }
            Proto::Ack(ack) => {
                let Some(flow) = self.tx.get_mut(&pkt.flow) else { return };
                let out = flow.on_ack(ack, ctx.now());
                if ctx.tracing() {
                    if let Some(alpha) = out.round_alpha {
                        ctx.emit(TraceEvent::AlphaUpdate { flow: pkt.flow.0, alpha });
                    }
                    ctx.emit(TraceEvent::CwndUpdate { flow: pkt.flow.0, cwnd: flow.cwnd_bytes() });
                }
                if flow.is_done() {
                    Self::record_mw(&self.mw_recorder, flow);
                } else {
                    Self::pump(flow, self.ecn_enabled, ctx);
                }
            }
            _ => unreachable!("DCTCP endpoint received a non-TCP packet"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Proto>) {
        let token = Token::decode(token);
        if token.kind != TIMER_RTO {
            return;
        }
        let Some(flow) = self.tx.get_mut(&FlowId(token.flow)) else { return };
        if service_rto(flow, ctx) {
            Self::pump(flow, self.ecn_enabled, ctx);
        }
    }

    fn cc_snapshot(&self) -> netsim::CcSnapshot {
        let mut snap = netsim::CcSnapshot::default();
        for flow in self.tx.values().filter(|f| !f.is_done()) {
            snap.cwnd_bytes += flow.cwnd_bytes();
            snap.inflight_bytes += flow.inflight_bytes();
            snap.flows += 1;
        }
        snap
    }
}

/// Convenience: install a fresh DCTCP endpoint on every host of a
/// topology.
pub fn install_dctcp(topo: &mut netsim::Topology<Proto>, cfg: &TcpCfg) {
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Box::new(DctcpTransport::new(cfg.clone())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{star, Rate, RunLimits, SimDuration, SimTime, SwitchConfig};

    fn testbed(n: usize, k_bytes: u64) -> netsim::Topology<Proto> {
        star(n, Rate::gbps(10), SimDuration::from_micros(20), SwitchConfig::dctcp(200_000, k_bytes))
    }

    #[test]
    fn single_flow_completes_quickly() {
        let mut topo = testbed(2, 100_000);
        let cfg = TcpCfg::new(topo.base_rtt);
        install_dctcp(&mut topo, &cfg);
        let size = 1 << 20; // 1MB
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], size, SimTime::ZERO, size);
        let report = topo.sim.run(RunLimits::default());
        assert_eq!(report.flows_completed, 1, "flow must complete");
        let fct = topo.sim.completion(f).unwrap();
        // Ideal: ~860us serialization + slow-start ramp. Allow 5x ideal.
        let ideal = Rate::gbps(10).serialization_time(size).as_nanos();
        assert!(fct.as_nanos() < 5 * ideal + 2_000_000, "fct={fct}");
    }

    #[test]
    fn many_flows_all_complete() {
        let mut topo = testbed(4, 60_000);
        let cfg = TcpCfg::new(topo.base_rtt);
        install_dctcp(&mut topo, &cfg);
        for i in 0..20u64 {
            let src = (i % 3) as usize;
            topo.sim.add_flow(
                topo.hosts[src],
                topo.hosts[3],
                50_000 + i * 10_000,
                SimTime(i * 50_000),
                1,
            );
        }
        let report =
            topo.sim.run(RunLimits { max_time: SimTime(5_000_000_000), max_events: 200_000_000 });
        assert_eq!(report.flows_completed, 20);
    }

    #[test]
    fn ecn_keeps_queue_bounded_and_avoids_drops() {
        // Two long flows share a 10G bottleneck with K = 30KB and a 200KB
        // buffer: DCTCP should hold the queue near K with zero drops.
        let mut topo = testbed(3, 30_000);
        let cfg = TcpCfg::new(topo.base_rtt);
        install_dctcp(&mut topo, &cfg);
        let size = 10 << 20;
        topo.sim.add_flow(topo.hosts[0], topo.hosts[2], size, SimTime::ZERO, size);
        topo.sim.add_flow(topo.hosts[1], topo.hosts[2], size, SimTime::ZERO, size);
        let report =
            topo.sim.run(RunLimits { max_time: SimTime(10_000_000_000), max_events: 500_000_000 });
        assert_eq!(report.flows_completed, 2);
        let c = topo.sim.total_counters();
        assert_eq!(c.dropped, 0, "ECN should prevent drops: {c:?}");
        assert!(c.marked > 0, "marks must have occurred");
    }

    #[test]
    fn loss_is_recovered_via_sack_or_rto() {
        // Tiny buffer without ECN: drops happen, flow must still finish.
        let mut topo = star::<Proto>(
            3,
            Rate::gbps(10),
            SimDuration::from_micros(20),
            SwitchConfig::basic(15_000),
        );
        let cfg = TcpCfg::new(topo.base_rtt);
        install_dctcp(&mut topo, &cfg);
        let size = 2 << 20;
        topo.sim.add_flow(topo.hosts[0], topo.hosts[2], size, SimTime::ZERO, size);
        topo.sim.add_flow(topo.hosts[1], topo.hosts[2], size, SimTime::ZERO, size);
        let report =
            topo.sim.run(RunLimits { max_time: SimTime(30_000_000_000), max_events: 500_000_000 });
        let c = topo.sim.total_counters();
        assert!(c.dropped > 0, "expected drops with a 15KB buffer");
        assert_eq!(report.flows_completed, 2, "flows must survive losses");
    }

    #[test]
    fn mw_recorder_captures_windows() {
        let mut topo = testbed(3, 30_000);
        let cfg = TcpCfg::new(topo.base_rtt);
        let rec: MwRecorder = Rc::new(RefCell::new(BTreeMap::new()));
        for &h in &topo.hosts.clone() {
            topo.sim.set_transport(
                h,
                Box::new(DctcpTransport::new(cfg.clone()).with_mw_recorder(rec.clone())),
            );
        }
        let size = 10 << 20;
        let f1 = topo.sim.add_flow(topo.hosts[0], topo.hosts[2], size, SimTime::ZERO, size);
        let f2 = topo.sim.add_flow(topo.hosts[1], topo.hosts[2], size, SimTime::ZERO, size);
        topo.sim.run(RunLimits { max_time: SimTime(10_000_000_000), max_events: 500_000_000 });
        let rec = rec.borrow();
        assert!(rec.contains_key(&f1) && rec.contains_key(&f2));
        assert!(rec[&f1] >= netsim::MSS_BYTES as u64);
    }
}
