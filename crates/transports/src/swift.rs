//! A Swift-like delay-based transport and the PPT-over-Swift variant.
//!
//! Fig 14 of the paper shows PPT's dual-loop design layered on a
//! delay-based transport "conceptually equivalent to Swift": the variant
//! opens an LCP loop whenever the flow's measured delay falls below the
//! target delay and closes it after two consecutive RTTs without
//! low-priority ACKs, with the same mirror-symmetric flow scheduling.

use std::collections::BTreeMap;

use netsim::{Ctx, Ecn, FlowDesc, FlowId, Packet, SimDuration, Transport};
use ppt_core::{FlowIdentifier, LcpAction, LcpLoop, LoopTrigger, MirrorTagger, PptConfig};

use crate::common::{arm_rto, service_rto, Token, TIMER_RTO};
use crate::ppt::{TIMER_LCP_EXPIRY, TIMER_LCP_PACE};
use crate::proto::{DataHdr, Proto};
use crate::rx::TcpRx;
use crate::tcp_base::{CcMode, DctcpFlowTx, SwiftCc, TcpCfg};

/// Plain Swift-like endpoint: delay-based window, single priority.
pub struct SwiftTransport {
    tcp: TcpCfg,
    tx: BTreeMap<FlowId, DctcpFlowTx>,
    rx: BTreeMap<FlowId, TcpRx>,
}

impl SwiftTransport {
    /// New endpoint; the delay target defaults to 1.5 × base RTT.
    pub fn new(tcp: TcpCfg) -> Self {
        SwiftTransport { tcp, tx: BTreeMap::new(), rx: BTreeMap::new() }
    }

    fn pump(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) {
        let now = ctx.now();
        let Some(flow) = self.tx.get_mut(&id) else { return };
        let (src, dst, size) = (flow.src, flow.dst, flow.size);
        while let Some(seg) = flow.next_segment(now) {
            if seg.retx {
                ctx.note_retransmit(id);
            }
            let hdr = DataHdr {
                offset: seg.offset,
                len: seg.len,
                msg_size: size,
                lcp: false,
                retx: seg.retx,
                sent_at: now,
                int: None,
            };
            // Delay-based: no ECN participation.
            let mut pkt = Packet::data(id, src, dst, seg.len, Proto::Data(hdr));
            pkt.ecn = Ecn::not_capable();
            ctx.send(pkt);
        }
        arm_rto(flow, ctx);
    }
}

impl Transport<Proto> for SwiftTransport {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Proto>) {
        let tx = DctcpFlowTx::new(flow.id, flow.src, flow.dst, flow.size_bytes, self.tcp.clone())
            .with_cc_mode(CcMode::Swift(SwiftCc::new(self.tcp.base_rtt)));
        self.tx.insert(flow.id, tx);
        self.pump(flow.id, ctx);
    }

    fn on_packet(&mut self, pkt: Packet<Proto>, ctx: &mut Ctx<'_, Proto>) {
        match &pkt.payload {
            Proto::Data(hdr) => {
                let rx = self
                    .rx
                    .entry(pkt.flow)
                    .or_insert_with(|| TcpRx::new(pkt.flow, pkt.src, hdr.msg_size, 1));
                let hdr = hdr.clone();
                rx.on_data(&pkt, &hdr, ctx);
            }
            Proto::Ack(ack) => {
                let ack = ack.clone();
                let done = {
                    let Some(flow) = self.tx.get_mut(&pkt.flow) else { return };
                    flow.on_ack(&ack, ctx.now());
                    flow.is_done()
                };
                if !done {
                    self.pump(pkt.flow, ctx);
                }
            }
            _ => unreachable!("Swift endpoint received a non-TCP packet"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Proto>) {
        let token = Token::decode(token);
        if token.kind != TIMER_RTO {
            return;
        }
        let id = FlowId(token.flow);
        let Some(flow) = self.tx.get_mut(&id) else { return };
        if service_rto(flow, ctx) {
            self.pump(id, ctx);
        }
    }
}

struct SwiftPptFlow {
    hcp: DctcpFlowTx,
    identified_large: bool,
    lcp: Option<LcpLoop>,
    lcp_gen: u16,
    pace_remaining: u64,
    pace_interval: SimDuration,
}

/// PPT layered over the Swift-like transport (Fig 14): the LCP trigger is
/// "delay below target" instead of "α at its minimum"; everything else —
/// EWD, loop expiry, mirror tagging — is PPT's.
pub struct SwiftPptTransport {
    tcp: TcpCfg,
    cfg: PptConfig,
    identifier: FlowIdentifier,
    tagger: MirrorTagger,
    tx: BTreeMap<FlowId, SwiftPptFlow>,
    rx: BTreeMap<FlowId, TcpRx>,
}

impl SwiftPptTransport {
    /// New endpoint.
    pub fn new(tcp: TcpCfg, cfg: PptConfig) -> Self {
        SwiftPptTransport {
            identifier: FlowIdentifier { threshold_bytes: cfg.ident_threshold_bytes },
            tagger: MirrorTagger::new(cfg.demotion_thresholds.clone()),
            tcp,
            cfg,
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
        }
    }

    fn pump_hcp(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) {
        let now = ctx.now();
        let Some(f) = self.tx.get_mut(&id) else { return };
        let prio = self.tagger.hcp_priority(f.identified_large, f.hcp.bytes_sent);
        let (src, dst, size) = (f.hcp.src, f.hcp.dst, f.hcp.size);
        while let Some(seg) = f.hcp.next_segment(now) {
            if seg.retx {
                ctx.note_retransmit(id);
            }
            let hdr = DataHdr {
                offset: seg.offset,
                len: seg.len,
                msg_size: size,
                lcp: false,
                retx: seg.retx,
                sent_at: now,
                int: None,
            };
            let mut pkt = Packet::data(id, src, dst, seg.len, Proto::Data(hdr)).with_priority(prio);
            pkt.ecn = Ecn::not_capable();
            ctx.send(pkt);
        }
        arm_rto(&f.hcp, ctx);
    }

    fn send_lcp_segment(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) -> bool {
        let mss = self.tcp.mss as u64;
        let send_buffer = self.cfg.send_buffer_bytes;
        let Some(f) = self.tx.get_mut(&id) else { return false };
        if f.hcp.is_done() {
            return false;
        }
        let buffer_end = f.hcp.size.min(f.hcp.cum_acked().saturating_add(send_buffer));
        let Some((gap_start, gap_end)) = f.hcp.claimed().last_gap(buffer_end) else {
            return false;
        };
        let start = gap_end.saturating_sub(mss).max(gap_start);
        let len = (gap_end - start) as u32;
        f.hcp.claimed_mut().insert(start, gap_end);
        f.hcp.add_sent_bytes(len as u64);
        let prio = self.tagger.lcp_priority(f.identified_large, f.hcp.bytes_sent);
        let hdr = DataHdr {
            offset: start,
            len,
            msg_size: f.hcp.size,
            lcp: true,
            retx: false,
            sent_at: ctx.now(),
            int: None,
        };
        let mut pkt =
            Packet::data(id, f.hcp.src, f.hcp.dst, len, Proto::Data(hdr)).with_priority(prio);
        // The LCP loop keeps ECN (it protects HCP through it) even though
        // the delay-based HCP ignores marks.
        pkt.ecn = if self.cfg.lcp_ecn_enabled { Ecn::capable() } else { Ecn::not_capable() };
        ctx.send(pkt);
        true
    }

    fn open_lcp(&mut self, id: FlowId, init_bytes: u64, ctx: &mut Ctx<'_, Proto>) {
        let mss = self.tcp.mss as u64;
        let rtt = self.cfg.base_rtt;
        {
            let Some(f) = self.tx.get_mut(&id) else { return };
            if f.lcp.is_some() || init_bytes < mss || f.hcp.is_done() {
                return;
            }
            f.lcp = Some(LcpLoop::open(LoopTrigger::FlowStart, init_bytes, ctx.now()));
            f.pace_remaining = init_bytes;
            let interval_ns = (rtt.as_nanos() as u128 * mss as u128 / init_bytes as u128) as u64;
            f.pace_interval = SimDuration::from_nanos(interval_ns.max(1));
        }
        let gen = self.tx[&id].lcp_gen;
        if self.send_lcp_segment(id, ctx) {
            if let Some(f) = self.tx.get_mut(&id) {
                f.pace_remaining = f.pace_remaining.saturating_sub(mss);
            }
            let interval = self.tx[&id].pace_interval;
            ctx.timer_after(
                interval,
                Token { kind: TIMER_LCP_PACE, generation: gen, flow: id.0 }.encode(),
            );
        }
        ctx.timer_after(
            rtt,
            Token { kind: TIMER_LCP_EXPIRY, generation: gen, flow: id.0 }.encode(),
        );
    }

    fn close_lcp(f: &mut SwiftPptFlow) {
        f.lcp = None;
        f.lcp_gen = f.lcp_gen.wrapping_add(1);
        f.pace_remaining = 0;
    }
}

impl Transport<Proto> for SwiftPptTransport {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Proto>) {
        let first_write = flow.first_write_bytes.min(self.cfg.send_buffer_bytes);
        let identified_large = self.identifier.is_large_at_start(first_write);
        let hcp = DctcpFlowTx::new(flow.id, flow.src, flow.dst, flow.size_bytes, self.tcp.clone())
            .with_cc_mode(CcMode::Swift(SwiftCc::new(self.tcp.base_rtt)));
        self.tx.insert(
            flow.id,
            SwiftPptFlow {
                hcp,
                identified_large,
                lcp: None,
                lcp_gen: 0,
                pace_remaining: 0,
                pace_interval: SimDuration::ZERO,
            },
        );
        self.pump_hcp(flow.id, ctx);
        // Case 1 as in PPT: the pipe is empty at flow start.
        let init = self.cfg.bdp_bytes().saturating_sub(self.tcp.init_cwnd_bytes);
        if !identified_large {
            self.open_lcp(flow.id, init, ctx);
        }
        // Identified-large flows simply rely on the delay trigger below.
    }

    fn on_packet(&mut self, pkt: Packet<Proto>, ctx: &mut Ctx<'_, Proto>) {
        match &pkt.payload {
            Proto::Data(hdr) => {
                let rx = self
                    .rx
                    .entry(pkt.flow)
                    .or_insert_with(|| TcpRx::new(pkt.flow, pkt.src, hdr.msg_size, 2));
                let hdr = hdr.clone();
                rx.on_data(&pkt, &hdr, ctx);
            }
            Proto::Ack(ack) if ack.lcp => {
                let ack = ack.clone();
                let now = ctx.now();
                let send = {
                    let Some(f) = self.tx.get_mut(&pkt.flow) else { return };
                    f.hcp.on_lcp_ack(&ack, now);
                    if f.hcp.is_done() {
                        Self::close_lcp(f);
                        false
                    } else if let Some(lcp) = f.lcp.as_mut() {
                        lcp.on_low_priority_ack(ack.ece, now) == LcpAction::SendOne
                    } else {
                        false
                    }
                };
                if send {
                    self.send_lcp_segment(pkt.flow, ctx);
                }
            }
            Proto::Ack(ack) => {
                let ack = ack.clone();
                let now = ctx.now();
                let (done, open_with) = {
                    let Some(f) = self.tx.get_mut(&pkt.flow) else { return };
                    let out = f.hcp.on_ack(&ack, now);
                    let done = f.hcp.is_done();
                    if done {
                        Self::close_lcp(f);
                    }
                    // Fig 14's trigger: delay below target ⇒ spare
                    // capacity ⇒ open a loop sized to the window gap.
                    let open = if !done && f.lcp.is_none() {
                        match (out.delay_sample, f.hcp.cc_mode()) {
                            (Some(d), CcMode::Swift(sw)) if d < sw.target => {
                                Some(self.cfg.bdp_bytes().saturating_sub(f.hcp.cwnd_bytes()))
                            }
                            _ => None,
                        }
                    } else {
                        None
                    };
                    (done, open)
                };
                if !done {
                    self.pump_hcp(pkt.flow, ctx);
                    if let Some(init) = open_with {
                        self.open_lcp(pkt.flow, init, ctx);
                    }
                }
            }
            _ => unreachable!("Swift-PPT endpoint received a non-TCP packet"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Proto>) {
        let token = Token::decode(token);
        let id = FlowId(token.flow);
        match token.kind {
            TIMER_RTO => {
                let Some(f) = self.tx.get_mut(&id) else { return };
                if service_rto(&mut f.hcp, ctx) {
                    self.pump_hcp(id, ctx);
                }
            }
            TIMER_LCP_PACE => {
                let mss = self.tcp.mss as u64;
                let proceed = {
                    let Some(f) = self.tx.get_mut(&id) else { return };
                    f.lcp.is_some() && f.lcp_gen == token.generation && f.pace_remaining > 0
                };
                if proceed && self.send_lcp_segment(id, ctx) {
                    let f = self.tx.get_mut(&id).expect("flow exists"); // simlint: allow(panic_hygiene)
                    f.pace_remaining = f.pace_remaining.saturating_sub(mss);
                    if f.pace_remaining > 0 {
                        let interval = f.pace_interval;
                        ctx.timer_after(
                            interval,
                            Token {
                                kind: TIMER_LCP_PACE,
                                generation: token.generation,
                                flow: id.0,
                            }
                            .encode(),
                        );
                    }
                }
            }
            TIMER_LCP_EXPIRY => {
                let rtt = self.cfg.base_rtt;
                let Some(f) = self.tx.get_mut(&id) else { return };
                if f.lcp_gen != token.generation {
                    return;
                }
                let Some(lcp) = f.lcp.as_ref() else { return };
                if lcp.is_expired(ctx.now(), rtt) || f.hcp.is_done() {
                    Self::close_lcp(f);
                } else {
                    ctx.timer_after(
                        rtt,
                        Token { kind: TIMER_LCP_EXPIRY, generation: token.generation, flow: id.0 }
                            .encode(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Install plain Swift on every host.
pub fn install_swift(topo: &mut netsim::Topology<Proto>, tcp: &TcpCfg) {
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Box::new(SwiftTransport::new(tcp.clone())));
    }
}

/// Install PPT-over-Swift on every host.
pub fn install_swift_ppt(topo: &mut netsim::Topology<Proto>, tcp: &TcpCfg, cfg: &PptConfig) {
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Box::new(SwiftPptTransport::new(tcp.clone(), cfg.clone())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;
    use netsim::{star, Rate, RunLimits, SwitchConfig};

    fn setup(n: usize) -> (netsim::Topology<Proto>, TcpCfg, PptConfig) {
        let rate = Rate::gbps(10);
        let delay = SimDuration::from_micros(20);
        let topo = star::<Proto>(n, rate, delay, SwitchConfig::ppt(200_000, 17_000, 10_000));
        let tcp = TcpCfg::new(topo.base_rtt);
        let cfg = PptConfig::new(rate, topo.base_rtt);
        (topo, tcp, cfg)
    }

    #[test]
    fn swift_flows_complete() {
        let (mut topo, tcp, _) = setup(3);
        install_swift(&mut topo, &tcp);
        topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 2 << 20, SimTime::ZERO, 1);
        topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 100_000, SimTime(200_000), 1);
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(30_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 2);
    }

    #[test]
    fn swift_keeps_delay_near_target_without_ecn() {
        // Swift has no ECN: queues are bounded by the delay target instead.
        let (mut topo, tcp, _) = setup(3);
        install_swift(&mut topo, &tcp);
        topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 8 << 20, SimTime::ZERO, 1);
        topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 8 << 20, SimTime::ZERO, 1);
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 2);
        let c = topo.sim.total_counters();
        assert_eq!(c.marked, 0, "Swift packets must not be ECN-marked");
    }

    #[test]
    fn ppt_over_swift_beats_plain_swift_on_idle_pipe() {
        let size = 4 << 20;
        let (mut a, tcp, cfg) = setup(2);
        install_swift_ppt(&mut a, &tcp, &cfg);
        let f = a.sim.add_flow(a.hosts[0], a.hosts[1], size, SimTime::ZERO, size);
        a.sim.run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        let ppt_fct = a.sim.completion(f).expect("swift-ppt done");

        let (mut b, tcp2, _) = setup(2);
        install_swift(&mut b, &tcp2);
        let g = b.sim.add_flow(b.hosts[0], b.hosts[1], size, SimTime::ZERO, size);
        b.sim.run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        let swift_fct = b.sim.completion(g).expect("swift done");

        assert!(ppt_fct < swift_fct, "ppt-over-swift ({ppt_fct}) must beat swift ({swift_fct})");
    }
}
