//! The shared TCP-family engine: a DCTCP sender flow and a common
//! receiver.
//!
//! `DctcpFlowTx` implements everything a window-based ECN sender needs —
//! segmentation, SACK scoreboarding, fast retransmit, RTO, slow start /
//! congestion avoidance, and the DCTCP α-based window cut. PPT, RC3 and
//! PIAS compose it; Swift and HPCC reuse the reliability plumbing with
//! their own window update.

use std::collections::BTreeMap;

use netsim::{FlowId, HostId, SimDuration, SimTime};
use ppt_core::{AlphaEstimator, WmaxTracker};

use crate::common::IntervalSet;
use crate::proto::AckHdr;

/// TCP-family configuration.
#[derive(Clone, Debug)]
pub struct TcpCfg {
    /// Maximum segment size (payload bytes per packet).
    pub mss: u32,
    /// Initial congestion window, bytes (TCP-10-era default: 10 MSS).
    pub init_cwnd_bytes: u64,
    /// Base round-trip time (pacing & α round bookkeeping fallback).
    pub base_rtt: SimDuration,
    /// Minimum retransmission timeout.
    pub min_rto: SimDuration,
    /// DCTCP EWMA gain.
    pub g: f64,
    /// Hard congestion-window cap, bytes.
    pub max_cwnd_bytes: u64,
    /// Duplicate-SACK threshold for fast retransmit.
    pub dupack_threshold: u8,
}

impl TcpCfg {
    /// Sensible defaults for a given base RTT (IW = 10 MSS, RTOmin 10 ms —
    /// the paper's testbed setting).
    pub fn new(base_rtt: SimDuration) -> Self {
        TcpCfg {
            mss: netsim::MSS_BYTES,
            init_cwnd_bytes: 10 * netsim::MSS_BYTES as u64,
            base_rtt,
            min_rto: SimDuration::from_millis(10),
            g: ppt_core::DEFAULT_G,
            max_cwnd_bytes: 16 << 20,
            dupack_threshold: 3,
        }
    }
}

/// Congestion-control phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcState {
    SlowStart,
    CongestionAvoidance,
}

/// Swift-style delay-based congestion control state (Fig 14's
/// "conceptually equivalent to Swift" variant: the window reacts to the
/// fabric delay only).
#[derive(Clone, Copy, Debug)]
pub struct SwiftCc {
    /// Target one-way+return fabric delay.
    pub target: SimDuration,
    /// Multiplicative-decrease gain β.
    pub beta: f64,
    /// Maximum fraction the window may lose per decrease.
    pub max_mdf: f64,
    /// Last multiplicative decrease (rate-limited to once per RTT).
    pub last_decrease: SimTime,
}

impl SwiftCc {
    /// Swift defaults for a given base RTT: target = 1.5 × base RTT.
    pub fn new(base_rtt: SimDuration) -> Self {
        SwiftCc {
            target: SimDuration::from_nanos(base_rtt.as_nanos() * 3 / 2),
            beta: 0.8,
            max_mdf: 0.5,
            last_decrease: SimTime::ZERO,
        }
    }
}

/// HPCC congestion-control state (per the HPCC paper's per-ACK window
/// update driven by INT telemetry).
#[derive(Clone, Debug)]
pub struct HpccCc {
    /// Utilization target η.
    pub eta: f64,
    /// Additive increase per update, bytes.
    pub w_ai: f64,
    /// Max additive-increase stages before a multiplicative step.
    pub max_stage: u32,
    /// Base RTT (the T in qlen/(B·T)).
    pub base_rtt: SimDuration,
    /// Reference window W_c.
    pub wc: f64,
    pub inc_stage: u32,
    pub last_update_seq: u64,
    /// Previous INT observation per hop, keyed by hop index.
    pub prev_int: Vec<crate::proto::IntHop>,
    /// Most recent inflight estimate U (the appendix-B PPT-over-HPCC
    /// variant opens its LCP loop when this drops below 1).
    pub last_u: f64,
    /// Priority-aware INT: measure only the high-priority band (P0–P3).
    /// Required when an LCP loop shares the path — otherwise HPCC counts
    /// the opportunistic traffic as congestion, yields window, and the
    /// LCP loop absorbs the yield in a spiral.
    pub high_band_only: bool,
}

impl HpccCc {
    /// HPCC defaults: η = 0.95, maxStage = 5, W_AI = one MSS.
    pub fn new(base_rtt: SimDuration, init_cwnd: u64) -> Self {
        HpccCc {
            eta: 0.95,
            w_ai: netsim::MSS_BYTES as f64,
            max_stage: 5,
            base_rtt,
            wc: init_cwnd as f64,
            inc_stage: 0,
            last_update_seq: 0,
            prev_int: Vec::new(),
            last_u: 0.0,
            high_band_only: false,
        }
    }

    /// Switch to priority-aware INT (see `high_band_only`).
    pub fn with_high_band_only(mut self) -> Self {
        self.high_band_only = true;
        self
    }

    /// The normalized max per-hop inflight estimate U from an echoed INT
    /// stack, updating the per-hop history.
    pub fn measure_u(&mut self, int: &[crate::proto::IntHop]) -> f64 {
        let mut u_max: f64 = 0.0;
        for (i, hop) in int.iter().enumerate() {
            let b_bytes_per_sec = hop.rate_bps as f64 / 8.0;
            let t = self.base_rtt.as_secs_f64();
            let qlen = if self.high_band_only { hop.qlen_high_bytes } else { hop.qlen_bytes };
            let mut u = qlen as f64 / (b_bytes_per_sec * t);
            if let Some(prev) = self.prev_int.get(i) {
                let dt_ns = hop.ts.as_nanos().saturating_sub(prev.ts.as_nanos());
                if dt_ns > 0 {
                    let (now_tx, prev_tx) = if self.high_band_only {
                        (hop.tx_high_bytes, prev.tx_high_bytes)
                    } else {
                        (hop.tx_bytes, prev.tx_bytes)
                    };
                    let dbytes = now_tx.saturating_sub(prev_tx) as f64;
                    let tx_rate = dbytes / (dt_ns as f64 / 1e9);
                    u += tx_rate / b_bytes_per_sec;
                }
            }
            u_max = u_max.max(u);
        }
        // Update history.
        self.prev_int = int.to_vec();
        self.last_u = u_max;
        u_max
    }
}

/// PowerTCP congestion-control state (NSDI'22): the window tracks
/// in-network *power* — current × voltage, where the current λ is the
/// per-hop throughput plus queue gradient and the voltage is the queue
/// plus one BDP — normalized so Γ = 1 at the q = 0, λ = C equilibrium.
/// Reacting to the gradient term lets it respond to congestion *while
/// queues are still building*, one RTT earlier than HPCC's inflight
/// estimate, which only sees the queue level itself.
#[derive(Clone, Debug)]
pub struct PowerTcpCc {
    /// EWMA gain γ of the window update (wc/Γ blends into cwnd at γ).
    pub gamma: f64,
    /// Additive increase β per update, bytes.
    pub beta: f64,
    /// Base RTT (the τ that converts rate to BDP and scales base power).
    pub base_rtt: SimDuration,
    /// Reference window W_c, latched once per RTT like HPCC's.
    pub wc: f64,
    pub last_update_seq: u64,
    /// Previous INT observation per hop, keyed by hop index.
    pub prev_int: Vec<crate::proto::IntHop>,
    /// Time-smoothed normalized power Γ (Algorithm 1's ewma over τ).
    pub smoothed: f64,
    /// When the previous power measurement was taken (Δt of the ewma).
    pub last_measure: SimTime,
}

impl PowerTcpCc {
    /// PowerTCP defaults: γ = 0.9, β = one MSS, Γ starts at equilibrium.
    pub fn new(base_rtt: SimDuration, init_cwnd: u64) -> Self {
        PowerTcpCc {
            gamma: 0.9,
            beta: netsim::MSS_BYTES as f64,
            base_rtt,
            wc: init_cwnd as f64,
            last_update_seq: 0,
            prev_int: Vec::new(),
            smoothed: 1.0,
            last_measure: SimTime::ZERO,
        }
    }

    /// Normalized power Γ from an echoed INT stack: per hop,
    /// λ = Δq/Δt + ΔtxBytes/Δt (current), v = q + C·τ (voltage), and the
    /// base power C²·τ normalizes the product so Γ = 1 means "exactly
    /// line rate with empty queues". The max over hops is then smoothed
    /// over one base RTT. Hops without history contribute nothing (the
    /// first ACK of a flow measures neutral power).
    pub fn measure_power(&mut self, int: &[crate::proto::IntHop], now: SimTime) -> f64 {
        let tau = self.base_rtt.as_secs_f64();
        let mut g_max: f64 = 0.0;
        for (i, hop) in int.iter().enumerate() {
            let c = hop.rate_bps as f64 / 8.0; // bytes/sec
            if c <= 0.0 {
                continue;
            }
            let Some(prev) = self.prev_int.get(i) else { continue };
            let dt_ns = hop.ts.as_nanos().saturating_sub(prev.ts.as_nanos());
            if dt_ns == 0 {
                continue;
            }
            let dt = dt_ns as f64 / 1e9;
            let dq = hop.qlen_bytes as f64 - prev.qlen_bytes as f64;
            let tx_rate = hop.tx_bytes.saturating_sub(prev.tx_bytes) as f64 / dt;
            // Draining queues can push λ negative; clamp at zero (the
            // window still grows through the β term and the small Γ).
            let lambda = (dq / dt + tx_rate).max(0.0);
            let voltage = hop.qlen_bytes as f64 + c * tau;
            let base_power = c * c * tau;
            g_max = g_max.max(lambda * voltage / base_power);
        }
        self.prev_int = int.to_vec();
        if g_max <= 0.0 {
            // No history yet (or an idle path): neutral power.
            g_max = 1.0;
        }
        // Time-weighted ewma over one base RTT (PowerTCP Algorithm 1).
        let dt = now.saturating_since(self.last_measure).as_secs_f64();
        self.last_measure = now;
        self.smoothed = if dt >= tau || tau <= 0.0 {
            g_max
        } else {
            (self.smoothed * (tau - dt) + g_max * dt) / tau
        };
        self.smoothed
    }
}

/// Which window-update law the flow runs. The reliability machinery
/// (segmentation, SACK, RTO) is identical across all of them.
#[derive(Clone, Debug)]
pub enum CcMode {
    /// ECN-fraction-based DCTCP (the default).
    Dctcp,
    /// Delay-based Swift-like control.
    Swift(SwiftCc),
    /// INT-based HPCC control.
    Hpcc(HpccCc),
    /// INT-based PowerTCP control (power = current × voltage).
    PowerTcp(PowerTcpCc),
}

/// A segment the transport should put on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegOut {
    pub offset: u64,
    pub len: u32,
    pub retx: bool,
}

/// Everything the caller needs to react to an ACK.
#[derive(Clone, Copy, Debug, Default)]
pub struct AckOutcome {
    /// Bytes newly covered by this ACK.
    pub newly_acked: u64,
    /// An α round closed with this ACK; carries the fresh α.
    pub round_alpha: Option<f64>,
    /// The flow is fully acknowledged.
    pub done: bool,
    /// An RTT sample measured from the echoed timestamp.
    pub rtt_sample: Option<SimDuration>,
    /// Swift mode: the per-ACK delay sample (now − ts_echo).
    pub delay_sample: Option<SimDuration>,
}

#[derive(Clone, Copy, Debug)]
struct InflightSeg {
    len: u32,
    sent_at: SimTime,
    /// SACK-hole counter: number of ACK arrivals that SACKed data above
    /// this segment while it remained unacked.
    dup_hits: u8,
    retx: bool,
}

/// A DCTCP sender flow.
#[derive(Debug)]
pub struct DctcpFlowTx {
    pub id: FlowId,
    pub src: HostId,
    pub dst: HostId,
    pub size: u64,
    cfg: TcpCfg,

    cwnd: f64,
    ssthresh: f64,
    state: CcState,

    /// Bytes transmitted at least once by *any* loop (HCP or LCP).
    /// The LCP tail loop consults this so it never duplicates in-flight
    /// opportunistic data; the HCP loop does NOT skip unacked claimed
    /// bytes — like the kernel, it resends anything not yet acknowledged
    /// when it reaches it (receivers discard duplicates).
    claimed: IntervalSet,
    /// HCP new-data pointer: the next in-order byte the primary loop will
    /// transmit. Jumps over ACKed (possibly LCP-delivered) ranges.
    hcp_next: u64,
    /// Bytes known delivered (cum + SACK).
    acked: IntervalSet,
    /// Outstanding HCP segments by offset.
    inflight: BTreeMap<u64, InflightSeg>,
    inflight_bytes: u64,
    /// Highest offset+len ever transmitted (α round bookkeeping).
    snd_hi: u64,
    /// HCP retransmission queue.
    retx_queue: Vec<(u64, u32)>,
    highest_sacked: u64,

    alpha: AlphaEstimator,
    round_end: u64,
    ce_in_round: bool,
    /// Maximum congestion-avoidance window (PPT's MW).
    pub wmax: WmaxTracker,

    /// RTO state.
    rto_deadline: SimTime,
    rto_backoff: u32,
    /// Bytes the flow has pushed (for priority aging).
    pub bytes_sent: u64,
    /// Which window-update law runs (DCTCP / Swift / HPCC).
    cc_mode: CcMode,
    done: bool,
}

impl DctcpFlowTx {
    /// New sender flow.
    pub fn new(id: FlowId, src: HostId, dst: HostId, size: u64, cfg: TcpCfg) -> Self {
        let init = cfg.init_cwnd_bytes as f64;
        DctcpFlowTx {
            id,
            src,
            dst,
            size,
            alpha: AlphaEstimator::new(cfg.g),
            cfg,
            cwnd: init,
            ssthresh: f64::INFINITY,
            state: CcState::SlowStart,
            claimed: IntervalSet::new(),
            hcp_next: 0,
            acked: IntervalSet::new(),
            inflight: BTreeMap::new(),
            inflight_bytes: 0,
            snd_hi: 0,
            retx_queue: Vec::new(),
            highest_sacked: 0,
            round_end: 0,
            ce_in_round: false,
            wmax: WmaxTracker::new(),
            rto_deadline: SimTime::MAX,
            rto_backoff: 0,
            bytes_sent: 0,
            cc_mode: CcMode::Dctcp,
            done: false,
        }
    }

    /// Switch the window-update law (builder-style). The reliability
    /// machinery is shared; only the reaction to feedback changes.
    pub fn with_cc_mode(mut self, mode: CcMode) -> Self {
        self.cc_mode = mode;
        self
    }

    /// Read the current CC mode (e.g. Swift target inspection).
    pub fn cc_mode(&self) -> &CcMode {
        &self.cc_mode
    }

    /// Current congestion window, bytes.
    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current phase.
    pub fn state(&self) -> CcState {
        self.state
    }

    /// Current α.
    pub fn alpha(&self) -> f64 {
        self.alpha.alpha()
    }

    /// Bytes in flight on the primary loop.
    pub fn inflight_bytes(&self) -> u64 {
        self.inflight_bytes
    }

    /// All bytes the flow has claimed (sent at least once by any loop).
    pub fn claimed(&self) -> &IntervalSet {
        &self.claimed
    }

    /// Mutable access for co-located loops (LCP marks tail bytes claimed).
    pub fn claimed_mut(&mut self) -> &mut IntervalSet {
        &mut self.claimed
    }

    /// Bytes known delivered.
    pub fn acked(&self) -> &IntervalSet {
        &self.acked
    }

    /// True once every byte is acknowledged.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Fully acknowledged prefix.
    pub fn cum_acked(&self) -> u64 {
        self.acked.contiguous_prefix()
    }

    /// The next HCP segment to transmit, honouring the window. Claims the
    /// bytes and tracks the segment; returns `None` when the window is
    /// full or there is nothing (new or lost) to send.
    pub fn next_segment(&mut self, now: SimTime) -> Option<SegOut> {
        if self.done {
            return None;
        }
        if self.inflight_bytes + self.cfg.mss as u64 > self.cwnd_bytes().max(self.cfg.mss as u64) {
            return None;
        }
        // Retransmissions first.
        while let Some((offset, len)) = self.retx_queue.pop() {
            if self.acked.contains(offset) {
                continue; // acked in the meantime
            }
            self.track_sent(offset, len, now, true);
            return Some(SegOut { offset, len, retx: true });
        }
        // New data: the next in-order byte that is not yet acknowledged.
        // LCP-delivered (acked) tail ranges are jumped over — the paper's
        // "advancing snd_nxt" on crossing; LCP-sent-but-unacked bytes are
        // NOT skipped, so a lost opportunistic packet is repaired by the
        // primary loop in order rather than waiting out an RTO.
        let (gap_start, gap_end) = self.acked.first_gap(self.hcp_next, self.size)?;
        let len = ((gap_end - gap_start).min(self.cfg.mss as u64)) as u32;
        self.claimed.insert(gap_start, gap_start + len as u64);
        self.hcp_next = gap_start + len as u64;
        self.track_sent(gap_start, len, now, false);
        Some(SegOut { offset: gap_start, len, retx: false })
    }

    fn track_sent(&mut self, offset: u64, len: u32, now: SimTime, retx: bool) {
        self.inflight.insert(offset, InflightSeg { len, sent_at: now, dup_hits: 0, retx });
        self.inflight_bytes += len as u64;
        self.snd_hi = self.snd_hi.max(offset + len as u64);
        self.bytes_sent += len as u64;
        if self.round_end == 0 {
            self.round_end = self.snd_hi;
        }
        self.arm_rto(now);
    }

    /// Process an ACK (cumulative + SACK ranges + ECN echo).
    pub fn on_ack(&mut self, ack: &AckHdr, now: SimTime) -> AckOutcome {
        let mut out = AckOutcome::default();
        if self.done {
            return out;
        }
        let mut newly = self.acked.insert(0, ack.cum);
        for &(s, e) in &ack.sacks {
            newly += self.acked.insert(s, e);
            self.highest_sacked = self.highest_sacked.max(e);
        }
        self.highest_sacked = self.highest_sacked.max(ack.cum);
        out.newly_acked = newly;

        // Clear acked segments from the in-flight table.
        let acked_offsets: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(&off, seg)| {
                off + seg.len as u64 <= ack.cum
                    || ack.sacks.iter().any(|&(s, e)| s <= off && off + seg.len as u64 <= e)
            })
            .map(|(&off, _)| off)
            .collect();
        for off in &acked_offsets {
            if let Some(seg) = self.inflight.remove(off) {
                self.inflight_bytes -= seg.len as u64;
                if out.rtt_sample.is_none() && !seg.retx {
                    out.rtt_sample = Some(now.saturating_since(seg.sent_at));
                }
            }
        }

        // Congestion-control window update (mode-specific).
        let mut mode = std::mem::replace(&mut self.cc_mode, CcMode::Dctcp);
        match &mut mode {
            CcMode::Dctcp => {
                // ECN + α bookkeeping (HCP ACKs only; callers filter LCP ACKs).
                self.alpha.on_ack(newly.max(1), if ack.ece { newly.max(1) } else { 0 });
                if ack.ece {
                    self.ce_in_round = true;
                }
                if newly > 0 {
                    match self.state {
                        CcState::SlowStart => {
                            self.cwnd += newly as f64;
                            if self.cwnd >= self.ssthresh {
                                self.enter_ca();
                            }
                        }
                        CcState::CongestionAvoidance => {
                            self.cwnd += self.cfg.mss as f64 * newly as f64 / self.cwnd;
                        }
                    }
                    self.cwnd = self.cwnd.min(self.cfg.max_cwnd_bytes as f64);
                    self.wmax.observe(self.cwnd as u64);
                    self.rto_backoff = 0;
                }
                // α round boundary: one window of data acknowledged.
                if self.cum_high_water() >= self.round_end && self.round_end > 0 {
                    let alpha = self.alpha.end_of_round();
                    // One multiplicative cut per round at most: ce_in_round
                    // is consumed here and only re-arms on fresh ECE.
                    if self.ce_in_round {
                        self.cwnd = (self.cwnd * self.alpha.cut_factor()).max(self.cfg.mss as f64);
                        self.ssthresh = self.cwnd;
                        self.enter_ca();
                    }
                    self.ce_in_round = false;
                    self.round_end = self.snd_hi.max(self.cum_high_water());
                    out.round_alpha = Some(alpha);
                }
            }
            CcMode::Swift(sw) => {
                if newly > 0 {
                    let delay = now.saturating_since(ack.ts_echo);
                    out.delay_sample = Some(delay);
                    if delay < sw.target {
                        match self.state {
                            CcState::SlowStart => {
                                self.cwnd += newly as f64;
                                if self.cwnd >= self.ssthresh {
                                    self.enter_ca();
                                }
                            }
                            CcState::CongestionAvoidance => {
                                self.cwnd += self.cfg.mss as f64 * newly as f64 / self.cwnd;
                            }
                        }
                    } else if now.saturating_since(sw.last_decrease) >= self.cfg.base_rtt {
                        let over = (delay.as_nanos() - sw.target.as_nanos()) as f64
                            / delay.as_nanos().max(1) as f64;
                        let factor = (1.0 - sw.beta * over).max(1.0 - sw.max_mdf);
                        self.cwnd = (self.cwnd * factor).max(self.cfg.mss as f64);
                        self.ssthresh = self.cwnd;
                        sw.last_decrease = now;
                        self.enter_ca();
                    }
                    self.cwnd = self.cwnd.min(self.cfg.max_cwnd_bytes as f64);
                    self.wmax.observe(self.cwnd as u64);
                    self.rto_backoff = 0;
                }
            }
            CcMode::Hpcc(h) => {
                if let Some(int) = &ack.int_echo {
                    let u = h.measure_u(int);
                    if ack.cum > h.last_update_seq {
                        h.wc = self.cwnd;
                        h.inc_stage = 0;
                        h.last_update_seq = self.snd_hi;
                    }
                    if u >= h.eta || h.inc_stage >= h.max_stage {
                        self.cwnd = (h.wc / (u / h.eta).max(1e-3) + h.w_ai)
                            .clamp(self.cfg.mss as f64, self.cfg.max_cwnd_bytes as f64);
                    } else {
                        self.cwnd = (h.wc + h.w_ai).min(self.cfg.max_cwnd_bytes as f64);
                        h.inc_stage += 1;
                    }
                    self.wmax.observe(self.cwnd as u64);
                }
                if newly > 0 {
                    self.rto_backoff = 0;
                }
            }
            CcMode::PowerTcp(p) => {
                if let Some(int) = &ack.int_echo {
                    let power = p.measure_power(int, now);
                    if ack.cum > p.last_update_seq {
                        p.wc = self.cwnd;
                        p.last_update_seq = self.snd_hi;
                    }
                    // w = γ·(w_c/Γ + β) + (1−γ)·w: multiplicative toward
                    // the power-balanced window, additive β probing.
                    self.cwnd = (p.gamma * (p.wc / power.max(1e-3) + p.beta)
                        + (1.0 - p.gamma) * self.cwnd)
                        .clamp(self.cfg.mss as f64, self.cfg.max_cwnd_bytes as f64);
                    self.wmax.observe(self.cwnd as u64);
                }
                if newly > 0 {
                    self.rto_backoff = 0;
                }
            }
        }
        self.cc_mode = mode;

        // Fast retransmit: segments with enough SACKed data above them.
        let threshold = self.cfg.dupack_threshold;
        let mut lost: Vec<(u64, u32)> = Vec::new();
        for (&off, seg) in self.inflight.iter_mut() {
            if off + (seg.len as u64) <= self.highest_sacked {
                seg.dup_hits = seg.dup_hits.saturating_add(1);
                if seg.dup_hits == threshold {
                    lost.push((off, seg.len));
                }
            }
        }
        if !lost.is_empty() {
            for &(off, len) in &lost {
                self.inflight.remove(&off);
                self.inflight_bytes -= len as u64;
                self.retx_queue.push((off, len));
            }
            // One multiplicative cut per loss event.
            self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.cfg.mss as f64);
            self.cwnd = self.ssthresh;
            self.enter_ca();
        }

        if self.acked.covers(self.size) {
            self.done = true;
            self.inflight.clear();
            self.inflight_bytes = 0;
            self.rto_deadline = SimTime::MAX;
        } else {
            self.arm_rto(now);
        }
        out.done = self.done;
        out
    }

    /// Process a *low-priority* (LCP) ACK: records delivered tail bytes
    /// without feeding congestion control — opportunistic packets must not
    /// inflate α, grow the window, or trigger HCP loss recovery.
    /// Returns the bytes newly covered.
    pub fn on_lcp_ack(&mut self, ack: &AckHdr, _now: SimTime) -> u64 {
        if self.done {
            return 0;
        }
        let mut newly = self.acked.insert(0, ack.cum);
        for &(s, e) in &ack.sacks {
            newly += self.acked.insert(s, e);
        }
        // Drop any HCP in-flight segment the LCP ACK happens to cover
        // (possible after crossing) so window accounting stays truthful.
        let covered: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(&off, seg)| {
                ack.sacks.iter().any(|&(s, e)| s <= off && off + seg.len as u64 <= e)
                    || off + seg.len as u64 <= ack.cum
            })
            .map(|(&off, _)| off)
            .collect();
        for off in covered {
            if let Some(seg) = self.inflight.remove(&off) {
                self.inflight_bytes -= seg.len as u64;
            }
        }
        if self.acked.covers(self.size) {
            self.done = true;
            self.inflight.clear();
            self.inflight_bytes = 0;
            self.rto_deadline = SimTime::MAX;
        }
        newly
    }

    /// Count opportunistic bytes toward the flow's total for priority
    /// aging (§4.2 demotes by bytes sent across both loops).
    pub fn add_sent_bytes(&mut self, bytes: u64) {
        self.bytes_sent += bytes;
    }

    /// Highest fully-acked watermark used for round accounting: the
    /// contiguous prefix plus SACKed ranges beyond it count toward the
    /// round because DCTCP rounds are about feedback coverage, not order.
    fn cum_high_water(&self) -> u64 {
        self.highest_sacked.max(self.cum_acked())
    }

    fn enter_ca(&mut self) {
        self.state = CcState::CongestionAvoidance;
        self.wmax.enter_congestion_avoidance();
        self.wmax.observe(self.cwnd as u64);
    }

    // ------------------------------------------------------------
    // RTO
    // ------------------------------------------------------------

    fn rto(&self) -> SimDuration {
        let base = self.cfg.min_rto.as_nanos();
        SimDuration::from_nanos(base << self.rto_backoff.min(6))
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = now + self.rto();
    }

    /// Current RTO deadline (`SimTime::MAX` when idle/done).
    pub fn rto_deadline(&self) -> SimTime {
        self.rto_deadline
    }

    /// Handle an expired RTO timer. Returns true when a timeout action was
    /// taken (caller should then pump the flow and re-arm its timer).
    pub fn on_rto(&mut self, now: SimTime) -> bool {
        if self.done || now < self.rto_deadline {
            return false;
        }
        // Retransmit the first unacked claimed range; collapse the window.
        let gap = self.acked.first_gap(0, self.size);
        let Some((start, end)) = gap else {
            return false;
        };
        // Only retransmit bytes we have actually sent before.
        if !self.claimed.contains(start) {
            // Nothing outstanding — stall was send-side; just re-arm.
            self.arm_rto(now);
            return false;
        }
        let len = (end - start).min(self.cfg.mss as u64) as u32;
        self.retx_queue.push((start, len));
        self.inflight.clear();
        self.inflight_bytes = 0;
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.cfg.mss as f64);
        self.cwnd = self.cfg.mss as f64;
        self.state = CcState::SlowStart;
        self.rto_backoff += 1;
        self.arm_rto(now);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpCfg {
        TcpCfg::new(SimDuration::from_micros(80))
    }

    fn flow(size: u64) -> DctcpFlowTx {
        DctcpFlowTx::new(FlowId(0), HostId(0), HostId(1), size, cfg())
    }

    fn ack(cum: u64, sacks: Vec<(u64, u64)>, ece: bool) -> AckHdr {
        AckHdr { cum, sacks, ece, lcp: false, ts_echo: SimTime::ZERO, int_echo: None }
    }

    #[test]
    fn initial_window_limits_burst() {
        let mut f = flow(1 << 20);
        let mut sent = 0u64;
        while let Some(seg) = f.next_segment(SimTime::ZERO) {
            sent += seg.len as u64;
        }
        assert_eq!(sent, cfg().init_cwnd_bytes);
        assert_eq!(f.inflight_bytes(), sent);
    }

    #[test]
    fn slow_start_doubles_per_round() {
        let mut f = flow(10 << 20);
        let mut t = SimTime::ZERO;
        // Round 1: send IW, ack it all.
        let mut offs = Vec::new();
        while let Some(seg) = f.next_segment(t) {
            offs.push((seg.offset, seg.len));
        }
        let w0 = f.cwnd_bytes();
        t = SimTime(80_000);
        for (o, l) in offs {
            f.on_ack(&ack(o + l as u64, vec![(o, o + l as u64)], false), t);
        }
        // cwnd grew by the acked bytes (exponential growth).
        assert_eq!(f.cwnd_bytes(), 2 * w0);
        assert_eq!(f.state(), CcState::SlowStart);
    }

    #[test]
    fn ecn_marks_cut_window_once_per_round() {
        let mut f = flow(10 << 20);
        let mut t = SimTime::ZERO;
        let mut offs = Vec::new();
        while let Some(seg) = f.next_segment(t) {
            offs.push((seg.offset, seg.len));
        }
        t = SimTime(80_000);
        // All ACKs carry ECE: α stays 1 → cut to half at round end.
        let before = f.cwnd_bytes() + cfg().init_cwnd_bytes; // after growth
        for (o, l) in offs {
            f.on_ack(&ack(o + l as u64, vec![(o, o + l as u64)], true), t);
        }
        // After the round: slow-start growth happened then the cut applied.
        assert!(f.cwnd_bytes() < before, "cwnd must be cut");
        assert_eq!(f.state(), CcState::CongestionAvoidance);
        assert!(f.alpha() > 0.9, "all-marked round drives α up");
    }

    #[test]
    fn sack_holes_trigger_fast_retransmit() {
        let mut f = flow(1 << 20);
        let mut segs = Vec::new();
        while let Some(seg) = f.next_segment(SimTime::ZERO) {
            segs.push(seg);
        }
        assert!(segs.len() >= 5);
        // Lose segment 0: SACK segments 1..=4 (4 dup events > threshold 3).
        let t = SimTime(80_000);
        for seg in segs.iter().skip(1).take(4) {
            f.on_ack(&ack(0, vec![(seg.offset, seg.offset + seg.len as u64)], false), t);
        }
        // Segment 0 must now be queued for retransmission.
        let next = f.next_segment(SimTime(90_000)).expect("retx segment");
        assert!(next.retx);
        assert_eq!(next.offset, segs[0].offset);
    }

    #[test]
    fn rto_collapses_window_and_retransmits_head() {
        let mut f = flow(1 << 20);
        while f.next_segment(SimTime::ZERO).is_some() {}
        let deadline = f.rto_deadline();
        assert!(deadline > SimTime::ZERO && deadline < SimTime::MAX);
        assert!(f.on_rto(deadline));
        assert_eq!(f.cwnd_bytes(), cfg().mss as u64);
        let seg = f.next_segment(deadline).expect("head retransmit");
        assert!(seg.retx);
        assert_eq!(seg.offset, 0);
        // Backoff doubles the next deadline distance.
        let d2 = f.rto_deadline();
        assert_eq!(d2.saturating_since(deadline).as_nanos(), 2 * cfg().min_rto.as_nanos());
    }

    #[test]
    fn completion_after_all_bytes_acked() {
        let size = 3 * netsim::MSS_BYTES as u64;
        let mut f = flow(size);
        let mut segs = Vec::new();
        while let Some(s) = f.next_segment(SimTime::ZERO) {
            segs.push(s);
        }
        let out = f.on_ack(&ack(size, vec![], false), SimTime(1));
        assert!(out.done);
        assert!(f.is_done());
        assert_eq!(f.rto_deadline(), SimTime::MAX);
        assert!(f.next_segment(SimTime(2)).is_none());
    }

    #[test]
    fn lcp_acked_tail_is_skipped_by_hcp() {
        // Simulate the PPT crossing: the tail was delivered by LCP and the
        // low-priority ACK arrived — HCP must jump over it.
        let size = 10 * netsim::MSS_BYTES as u64;
        let mut f = flow(size);
        let tail_start = size - 2 * netsim::MSS_BYTES as u64;
        f.claimed_mut().insert(tail_start, size);
        let lcp_ack = AckHdr {
            cum: 0,
            sacks: vec![(tail_start, size)],
            ece: false,
            lcp: true,
            ts_echo: SimTime::ZERO,
            int_echo: None,
        };
        f.on_lcp_ack(&lcp_ack, SimTime::ZERO);
        let mut max_off = 0;
        while let Some(seg) = f.next_segment(SimTime::ZERO) {
            max_off = max_off.max(seg.offset + seg.len as u64);
            assert!(
                seg.offset + seg.len as u64 <= tail_start,
                "HCP must not resend the LCP-acked tail"
            );
        }
        assert_eq!(max_off, tail_start);
    }

    #[test]
    fn lcp_unacked_claimed_bytes_are_resent_by_hcp_in_order() {
        // A lost opportunistic packet: claimed but never acked. The
        // primary loop must transmit it when it reaches that offset —
        // never strand it behind an RTO.
        let size = 5 * netsim::MSS_BYTES as u64;
        let mut f = flow(size);
        let tail_start = size - netsim::MSS_BYTES as u64;
        f.claimed_mut().insert(tail_start, size); // LCP sent it; ack lost
        let mut offsets = Vec::new();
        while let Some(seg) = f.next_segment(SimTime::ZERO) {
            offsets.push(seg.offset);
        }
        assert!(offsets.contains(&tail_start), "HCP must cover the unacked tail: {offsets:?}");
    }

    #[test]
    fn round_alpha_reported_at_boundary() {
        let mut f = flow(1 << 20);
        let mut segs = Vec::new();
        while let Some(s) = f.next_segment(SimTime::ZERO) {
            segs.push(s);
        }
        let last = segs.last().unwrap();
        let out = f.on_ack(&ack(last.offset + last.len as u64, vec![], false), SimTime(80_000));
        assert!(out.round_alpha.is_some(), "full-window ACK closes the round");
        assert!(out.round_alpha.unwrap() < 1.0);
    }

    fn hop(qlen: u64, tx: u64, ts_ns: u64) -> crate::proto::IntHop {
        crate::proto::IntHop {
            qlen_bytes: qlen,
            qlen_high_bytes: qlen,
            tx_bytes: tx,
            tx_high_bytes: tx,
            ts: SimTime(ts_ns),
            rate_bps: 10_000_000_000,
        }
    }

    #[test]
    fn powertcp_power_is_neutral_at_line_rate_and_rises_with_queue_gradient() {
        // 10G, τ = 80µs: C = 1.25e9 B/s, BDP = 100KB, base power = C²τ.
        let mut p = PowerTcpCc::new(SimDuration::from_micros(80), 100_000);
        // First ACK has no per-hop history: neutral power.
        let g = p.measure_power(&[hop(0, 0, 0)], SimTime(0));
        assert!((g - 1.0).abs() < 1e-9, "{g}");
        // Line rate with empty queue is the equilibrium: λ = C, v = BDP,
        // so Γ = C·(C·τ)/(C²·τ) = 1 exactly.
        let g = p.measure_power(&[hop(0, 50_000, 40_000)], SimTime(40_000));
        assert!((g - 1.0).abs() < 1e-6, "{g}");
        // A building queue adds its gradient to the current and its depth
        // to the voltage: power must rise above 1.
        let g = p.measure_power(&[hop(60_000, 100_000, 80_000)], SimTime(80_000));
        assert!(g > 1.0, "{g}");
    }

    #[test]
    fn powertcp_window_tracks_power() {
        let c = cfg();
        let mut f = DctcpFlowTx::new(FlowId(0), HostId(0), HostId(1), 100 << 20, c.clone())
            .with_cc_mode(CcMode::PowerTcp(PowerTcpCc::new(c.base_rtt, c.init_cwnd_bytes)));
        while f.next_segment(SimTime::ZERO).is_some() {}
        let w0 = f.cwnd_bytes();
        // Neutral power: the window grows by the γ-weighted β probe.
        let mut a = ack(1460, vec![(0, 1460)], false);
        a.int_echo = Some(vec![hop(0, 0, 0)]);
        f.on_ack(&a, SimTime(80_000));
        assert!(f.cwnd_bytes() > w0, "neutral power must leave room for additive growth");
        // High power (queue built fast at line rate): multiplicative cut
        // below the pre-congestion window.
        let mut a = ack(2920, vec![(1460, 2920)], false);
        a.int_echo = Some(vec![hop(100_000, 50_000, 40_000)]);
        f.on_ack(&a, SimTime(160_000));
        assert!(f.cwnd_bytes() < w0, "high power must shrink the window, got {}", f.cwnd_bytes());
    }

    #[test]
    fn powertcp_near_zero_power_cannot_blow_past_the_cap() {
        // An ACK after an idle/drained path measures Γ ≈ 0; the wc/Γ
        // term must clamp at max_cwnd_bytes instead of inflating the
        // window a thousandfold (the divisor floor alone allows 1000×).
        let mut c = cfg();
        c.max_cwnd_bytes = 4 * c.init_cwnd_bytes;
        let mut f = DctcpFlowTx::new(FlowId(0), HostId(0), HostId(1), 100 << 20, c.clone())
            .with_cc_mode(CcMode::PowerTcp(PowerTcpCc::new(c.base_rtt, c.init_cwnd_bytes)));
        while f.next_segment(SimTime::ZERO).is_some() {}
        // Prime per-hop history, then echo an almost-idle observation:
        // tiny tx delta, empty queue → λ ≈ 0 → Γ ≈ 0 after smoothing.
        let mut a = ack(1460, vec![(0, 1460)], false);
        a.int_echo = Some(vec![hop(0, 0, 0)]);
        f.on_ack(&a, SimTime(80_000));
        let mut a = ack(2920, vec![(1460, 2920)], false);
        a.int_echo = Some(vec![hop(0, 1, 160_000)]);
        f.on_ack(&a, SimTime(160_000));
        assert!(
            f.cwnd_bytes() <= c.max_cwnd_bytes,
            "near-zero power blew the window to {} (cap {})",
            f.cwnd_bytes(),
            c.max_cwnd_bytes
        );
    }

    #[test]
    fn window_cap_is_respected() {
        let mut c = cfg();
        c.max_cwnd_bytes = 20 * c.mss as u64;
        let mut f = DctcpFlowTx::new(FlowId(0), HostId(0), HostId(1), 100 << 20, c.clone());
        let mut t = 0u64;
        for _ in 0..30 {
            let mut segs = Vec::new();
            while let Some(s) = f.next_segment(SimTime(t)) {
                segs.push(s);
            }
            t += 80_000;
            for s in segs {
                f.on_ack(
                    &ack(s.offset + s.len as u64, vec![(s.offset, s.offset + s.len as u64)], false),
                    SimTime(t),
                );
            }
            assert!(f.cwnd_bytes() <= c.max_cwnd_bytes);
        }
        assert_eq!(f.cwnd_bytes(), c.max_cwnd_bytes);
    }
}
