//! NDP — re-architected datacenter transport with packet trimming and
//! receiver-driven pulls.
//!
//! * Senders blast the first window (one BDP) at line rate; everything
//!   after that is released one packet per PULL.
//! * Switches trim data packets to headers beyond a shallow queue
//!   threshold (see [`netsim::SwitchConfig::ndp`]); trimmed headers jump
//!   to the control queue, so the receiver learns about every would-be
//!   loss in one RTT and NACKs it back onto the sender's retransmit queue.
//! * Receivers pace PULLs at the downlink packet rate, round-robin across
//!   active flows, which clocks senders at exactly the bottleneck rate.
//!
//! The paper's characterization (§2.1, Table 1): passive first-RTT use
//! (trimmed payloads waste the capacity they occupied) but graceful
//! steady-state behaviour under incast.

use std::collections::{BTreeMap, VecDeque};

use netsim::{Ctx, FlowDesc, FlowId, HostId, Packet, Rate, SimDuration, SimTime, Transport};

use crate::common::{IntervalSet, Token};
use crate::proto::{NdpHdr, Proto};

/// Receiver pull-pacer tick.
pub const TIMER_NDP_PULL: u8 = 7;
/// Receiver stall watchdog.
pub const TIMER_NDP_WATCHDOG: u8 = 8;

/// NDP configuration.
#[derive(Clone, Debug)]
pub struct NdpCfg {
    /// First-window size (one BDP).
    pub initial_window_bytes: u64,
    /// Downlink rate the pull pacer clocks against.
    pub edge_rate: Rate,
    /// Watchdog interval for stalled incomplete flows.
    pub watchdog: SimDuration,
}

struct NdpTx {
    id: FlowId,
    src: HostId,
    dst: HostId,
    size: u64,
    /// Next new byte.
    sent: u64,
    /// NACKed ranges awaiting a pull.
    retx_queue: VecDeque<(u64, u32)>,
}

struct NdpRx {
    peer: HostId,
    size: u64,
    received: IntervalSet,
    completed: bool,
    last_activity: SimTime,
}

/// The NDP endpoint.
pub struct NdpTransport {
    cfg: NdpCfg,
    mss: u32,
    tx: BTreeMap<FlowId, NdpTx>,
    rx: BTreeMap<FlowId, NdpRx>,
    /// Receiver-side pull queue (one token per expected packet).
    pull_queue: VecDeque<FlowId>,
    pacer_armed: bool,
}

impl NdpTransport {
    /// New endpoint.
    pub fn new(cfg: NdpCfg, mss: u32) -> Self {
        NdpTransport {
            cfg,
            mss,
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
            pull_queue: VecDeque::new(),
            pacer_armed: false,
        }
    }

    fn data_packet(tx: &NdpTx, offset: u64, len: u32, retx: bool) -> Packet<Proto> {
        let hdr = NdpHdr::Data { offset, len, msg_size: tx.size, retx };
        Packet::data(tx.id, tx.src, tx.dst, len, Proto::Ndp(hdr))
            .with_priority(1)
            .with_trimmable(true)
            .without_ecn()
    }

    /// Release one packet in response to a PULL: retransmissions first,
    /// then new data.
    fn release_one(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) {
        let mss = self.mss as u64;
        let Some(tx) = self.tx.get_mut(&id) else { return };
        if let Some((off, len)) = tx.retx_queue.pop_front() {
            let take = len.min(mss as u32);
            if (take as u64) < len as u64 {
                tx.retx_queue.push_front((off + take as u64, len - take));
            }
            ctx.note_retransmit(tx.id);
            let pkt = Self::data_packet(tx, off, take, true);
            ctx.send(pkt);
            return;
        }
        if tx.sent < tx.size {
            let len = ((tx.size - tx.sent).min(mss)) as u32;
            let pkt = Self::data_packet(tx, tx.sent, len, false);
            tx.sent += len as u64;
            ctx.send(pkt);
        }
    }

    fn enqueue_pull(&mut self, flow: FlowId, ctx: &mut Ctx<'_, Proto>) {
        self.pull_queue.push_back(flow);
        if !self.pacer_armed {
            self.pacer_armed = true;
            // First pull fires after one packet service time.
            ctx.timer_after(
                self.cfg.edge_rate.serialization_time(netsim::MTU_BYTES as u64),
                Token { kind: TIMER_NDP_PULL, generation: 0, flow: 0 }.encode(),
            );
        }
    }

    fn pacer_tick(&mut self, ctx: &mut Ctx<'_, Proto>) {
        let host = ctx.host();
        // Skip pulls for flows that completed since enqueueing.
        while let Some(flow) = self.pull_queue.pop_front() {
            let live = self.rx.get(&flow).map(|m| !m.completed).unwrap_or(false);
            if live {
                let peer = self.rx[&flow].peer;
                ctx.send(Packet::ctrl(flow, host, peer, Proto::Ndp(NdpHdr::Pull)));
                break;
            }
        }
        if self.pull_queue.is_empty() {
            self.pacer_armed = false;
        } else {
            ctx.timer_after(
                self.cfg.edge_rate.serialization_time(netsim::MTU_BYTES as u64),
                Token { kind: TIMER_NDP_PULL, generation: 0, flow: 0 }.encode(),
            );
        }
    }
}

impl Transport<Proto> for NdpTransport {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Proto>) {
        let first = flow.size_bytes.min(self.cfg.initial_window_bytes);
        let tx = NdpTx {
            id: flow.id,
            src: flow.src,
            dst: flow.dst,
            size: flow.size_bytes,
            sent: 0,
            retx_queue: VecDeque::new(),
        };
        self.tx.insert(flow.id, tx);
        // Line-rate first window.
        let mss = self.mss as u64;
        let mut off = 0;
        while off < first {
            let len = ((first - off).min(mss)) as u32;
            let tx = &self.tx[&flow.id];
            let pkt = Self::data_packet(tx, off, len, false);
            ctx.send(pkt);
            off += len as u64;
        }
        self.tx.get_mut(&flow.id).expect("flow exists").sent = first; // simlint: allow(panic_hygiene)
    }

    fn on_packet(&mut self, pkt: Packet<Proto>, ctx: &mut Ctx<'_, Proto>) {
        let Proto::Ndp(hdr) = &pkt.payload else {
            unreachable!("NDP endpoint received a non-NDP packet")
        };
        match hdr {
            NdpHdr::Data { offset, len, msg_size, .. } => {
                let (offset, len, msg_size) = (*offset, *len, *msg_size);
                let flow = pkt.flow;
                let peer = pkt.src;
                let now = ctx.now();
                let watchdog = self.cfg.watchdog;
                let first_seen = !self.rx.contains_key(&flow);
                let m = self.rx.entry(flow).or_insert_with(|| NdpRx {
                    peer,
                    size: msg_size,
                    received: IntervalSet::new(),
                    completed: false,
                    last_activity: now,
                });
                m.last_activity = now;
                if first_seen {
                    ctx.timer_after(
                        watchdog,
                        Token { kind: TIMER_NDP_WATCHDOG, generation: 0, flow: flow.0 }.encode(),
                    );
                }
                if pkt.trimmed {
                    // Payload was cut: NACK so the sender requeues it, and
                    // pull it through the pacer like any other packet.
                    let host = ctx.host();
                    ctx.send(Packet::ctrl(
                        flow,
                        host,
                        peer,
                        Proto::Ndp(NdpHdr::Nack { offset, len }),
                    ));
                    self.enqueue_pull(flow, ctx);
                    return;
                }
                m.received.insert(offset, offset + len as u64);
                if !m.completed && m.received.covers(m.size) {
                    m.completed = true;
                    ctx.flow_completed(flow);
                } else if !m.completed {
                    self.enqueue_pull(flow, ctx);
                }
            }
            NdpHdr::Nack { offset, len } => {
                let (offset, len) = (*offset, *len);
                if let Some(tx) = self.tx.get_mut(&pkt.flow) {
                    // Front of the queue: trimmed data is the oldest.
                    tx.retx_queue.push_back((offset, len));
                    // A NACK may reach past `sent` (watchdog recovery of a
                    // dead pull chain): the range is queued for delivery
                    // now, so never send it again as "new" data.
                    tx.sent = tx.sent.max(offset + len as u64);
                }
            }
            NdpHdr::Pull => {
                self.release_one(pkt.flow, ctx);
            }
            NdpHdr::Ack { .. } => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Proto>) {
        let token = Token::decode(token);
        match token.kind {
            TIMER_NDP_PULL => self.pacer_tick(ctx),
            TIMER_NDP_WATCHDOG => {
                let flow = FlowId(token.flow);
                let watchdog = self.cfg.watchdog;
                let stalled = {
                    let Some(m) = self.rx.get(&flow) else { return };
                    if m.completed {
                        return;
                    }
                    ctx.now().saturating_since(m.last_activity) >= watchdog
                };
                if stalled {
                    // Whole-packet loss (a failed link, not the trimmer)
                    // leaves holes no trimmed header ever advertised: NACK
                    // every gap up to the message size so the sender
                    // requeues them, with one pull per missing packet to
                    // clock them out.
                    let host = ctx.host();
                    let mss = self.mss as u64;
                    let (peer, gaps) = {
                        let m = self.rx.get(&flow).expect("checked above"); // simlint: allow(panic_hygiene)
                        let mut gaps = Vec::new();
                        let mut cursor = 0;
                        while let Some((s, e)) = m.received.first_gap(cursor, m.size) {
                            gaps.push((s, (e - s).min(u32::MAX as u64) as u32));
                            cursor = e;
                        }
                        (m.peer, gaps)
                    };
                    for (off, len) in gaps {
                        ctx.send(Packet::ctrl(
                            flow,
                            host,
                            peer,
                            Proto::Ndp(NdpHdr::Nack { offset: off, len }),
                        ));
                        for _ in 0..(len as u64).div_ceil(mss) {
                            self.enqueue_pull(flow, ctx);
                        }
                    }
                    // Kick the sender with an extra pull (covers lost
                    // pulls/NACKs/headers).
                    self.enqueue_pull(flow, ctx);
                }
                ctx.timer_after(
                    watchdog,
                    Token { kind: TIMER_NDP_WATCHDOG, generation: 0, flow: token.flow }.encode(),
                );
            }
            _ => {}
        }
    }
}

/// Install NDP on every host; the initial window is the edge BDP.
pub fn install_ndp(topo: &mut netsim::Topology<Proto>, watchdog: SimDuration) {
    let cfg = NdpCfg {
        initial_window_bytes: netsim::bdp_bytes(topo.edge_rate, topo.base_rtt),
        edge_rate: topo.edge_rate,
        watchdog,
    };
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Box::new(NdpTransport::new(cfg.clone(), netsim::MSS_BYTES)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{star, RunLimits, SwitchConfig};

    fn setup(n: usize) -> netsim::Topology<Proto> {
        // NDP switch: shallow 60KB port buffer, trim beyond 12KB.
        star::<Proto>(
            n,
            Rate::gbps(10),
            SimDuration::from_micros(20),
            SwitchConfig::ndp(60_000, 12_000),
        )
    }

    #[test]
    fn single_flow_completes() {
        let mut topo = setup(2);
        install_ndp(&mut topo, SimDuration::from_millis(1));
        let size = 1 << 20;
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], size, SimTime::ZERO, size);
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 1);
        let fct = topo.sim.completion(f).unwrap();
        let ideal = Rate::gbps(10).serialization_time(size).as_nanos();
        assert!(fct.as_nanos() < 4 * ideal, "fct={fct}");
    }

    #[test]
    fn incast_trims_instead_of_dropping() {
        let mut topo = setup(9);
        install_ndp(&mut topo, SimDuration::from_millis(1));
        for i in 0..8 {
            topo.sim.add_flow(topo.hosts[i], topo.hosts[8], 200_000, SimTime(i as u64 * 100), 1);
        }
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 8);
        let c = topo.sim.total_counters();
        assert!(c.trimmed > 0, "incast must engage the trimmer: {c:?}");
        // Trimming replaces dropping: payload drops should be rare or nil.
        assert!(c.dropped < c.trimmed / 10 + 5, "trim should dominate drops: {c:?}");
    }

    #[test]
    fn pull_pacing_clocks_sender_at_bottleneck_rate() {
        // One long flow: after the initial burst, data arrives pull-clocked
        // — so the FCT is close to size/rate with no queue blowup.
        let mut topo = setup(2);
        install_ndp(&mut topo, SimDuration::from_millis(1));
        let size = 4 << 20;
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], size, SimTime::ZERO, size);
        topo.sim.run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        let fct = topo.sim.completion(f).unwrap().as_nanos() as f64;
        let ideal = Rate::gbps(10).serialization_time(size).as_nanos() as f64;
        assert!(fct / ideal < 2.6, "pull clocking too slow: {}x ideal", fct / ideal);
    }
}
