//! The wire header carried by every packet, shared by all transports.
//!
//! One enum covers every implemented protocol family so a whole experiment
//! runs on `Simulator<Proto>`. Only HPCC's INT stack has switch-visible
//! behaviour (per-hop telemetry collection); everything else is opaque to
//! the network.

use netsim::{HopTelemetry, Payload, SimTime};

/// Maximum INT hops recorded (host→leaf→spine→leaf→host has 4 egresses).
pub const MAX_INT_HOPS: usize = 5;

/// One INT record, as stamped by an HPCC-capable switch.
#[derive(Clone, Copy, Debug)]
pub struct IntHop {
    /// Egress queue backlog at enqueue, bytes.
    pub qlen_bytes: u64,
    /// Backlog of the high-priority band (P0–P3) only.
    pub qlen_high_bytes: u64,
    /// Cumulative bytes transmitted on the egress link.
    pub tx_bytes: u64,
    /// Cumulative high-priority-band bytes transmitted.
    pub tx_high_bytes: u64,
    /// Stamp time.
    pub ts: SimTime,
    /// Egress link rate, bits per second.
    pub rate_bps: u64,
}

/// TCP-family data header (DCTCP, PPT, RC3, PIAS, Swift, HPCC).
#[derive(Clone, Debug)]
pub struct DataHdr {
    /// First byte carried.
    pub offset: u64,
    /// Payload length.
    pub len: u32,
    /// Total message size (receivers learn it from any packet).
    pub msg_size: u64,
    /// True for opportunistic (LCP / RC3 low-priority) packets.
    pub lcp: bool,
    /// True for retransmissions (diagnostics).
    pub retx: bool,
    /// Send timestamp, echoed by the ACK for RTT sampling.
    pub sent_at: SimTime,
    /// INT stack; `Some` only for HPCC flows.
    pub int: Option<Vec<IntHop>>,
}

/// TCP-family ACK header.
#[derive(Clone, Debug)]
pub struct AckHdr {
    /// Bytes received contiguously from offset 0.
    pub cum: u64,
    /// Selectively acknowledged ranges (the segment(s) triggering this ACK).
    pub sacks: Vec<(u64, u64)>,
    /// ECN echo of the acked data packet(s).
    pub ece: bool,
    /// True for low-priority (LCP) ACKs.
    pub lcp: bool,
    /// Echo of the data packet's send timestamp (RTT sampling).
    pub ts_echo: SimTime,
    /// Echoed INT stack (HPCC).
    pub int_echo: Option<Vec<IntHop>>,
}

/// Homa-family headers.
#[derive(Clone, Debug)]
pub enum HomaHdr {
    /// Data (unscheduled in the first RTTbytes, scheduled afterwards).
    Data { offset: u64, len: u32, msg_size: u64, unscheduled: bool, retx: bool },
    /// Receiver grant: sender may transmit up to `granted_offset` at
    /// priority `prio`.
    Grant { granted_offset: u64, prio: u8 },
    /// Receiver asks for retransmission of `[offset, offset+len)`.
    Resend { offset: u64, len: u32 },
    /// Aeolus probe: trails the unscheduled burst; tells the receiver how
    /// many unscheduled bytes were sent so lost ones are detected at once.
    Probe { unscheduled_sent: u64, msg_size: u64 },
}

/// NDP headers.
#[derive(Clone, Debug)]
pub enum NdpHdr {
    /// Data packet (trimmable; a trimmed one arrives with
    /// `Packet::trimmed == true` and no payload).
    Data { offset: u64, len: u32, msg_size: u64, retx: bool },
    /// Receiver acknowledges a full data packet.
    Ack { offset: u64 },
    /// Receiver reports a trimmed packet (sender must requeue the range).
    Nack { offset: u64, len: u32 },
    /// Receiver-paced pull: sender may release one more packet.
    Pull,
}

/// The union header.
#[derive(Clone, Debug)]
pub enum Proto {
    Data(DataHdr),
    Ack(AckHdr),
    Homa(HomaHdr),
    Ndp(NdpHdr),
}

impl Payload for Proto {
    fn on_switch_hop(&mut self, hop: HopTelemetry) {
        if let Proto::Data(DataHdr { int: Some(stack), .. }) = self {
            if stack.len() < MAX_INT_HOPS {
                stack.push(IntHop {
                    qlen_bytes: hop.qlen_bytes,
                    qlen_high_bytes: hop.qlen_high_bytes,
                    tx_bytes: hop.tx_bytes,
                    tx_high_bytes: hop.tx_high_bytes,
                    ts: hop.ts,
                    rate_bps: hop.link_rate.bits_per_sec(),
                });
            }
        }
    }
}

impl Proto {
    /// Shorthand accessors used pervasively by the transports.
    pub fn as_data(&self) -> Option<&DataHdr> {
        match self {
            Proto::Data(d) => Some(d),
            _ => None,
        }
    }

    /// ACK accessor.
    pub fn as_ack(&self) -> Option<&AckHdr> {
        match self {
            Proto::Ack(a) => Some(a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Rate;

    #[test]
    fn int_stack_grows_per_hop_only_when_enabled() {
        let hop = HopTelemetry {
            qlen_bytes: 100,
            qlen_high_bytes: 80,
            tx_bytes: 5_000,
            tx_high_bytes: 4_000,
            ts: SimTime(1),
            link_rate: Rate::gbps(40),
        };
        let mut with_int = Proto::Data(DataHdr {
            offset: 0,
            len: 100,
            msg_size: 100,
            lcp: false,
            retx: false,
            sent_at: SimTime::ZERO,
            int: Some(Vec::new()),
        });
        with_int.on_switch_hop(hop);
        with_int.on_switch_hop(hop);
        match &with_int {
            Proto::Data(d) => assert_eq!(d.int.as_ref().unwrap().len(), 2),
            _ => unreachable!(),
        }

        let mut without = Proto::Data(DataHdr {
            offset: 0,
            len: 100,
            msg_size: 100,
            lcp: false,
            retx: false,
            sent_at: SimTime::ZERO,
            int: None,
        });
        without.on_switch_hop(hop);
        assert!(matches!(&without, Proto::Data(d) if d.int.is_none()));
    }

    #[test]
    fn int_stack_caps_depth() {
        let hop = HopTelemetry {
            qlen_bytes: 0,
            qlen_high_bytes: 0,
            tx_bytes: 0,
            tx_high_bytes: 0,
            ts: SimTime::ZERO,
            link_rate: Rate::gbps(1),
        };
        let mut p = Proto::Data(DataHdr {
            offset: 0,
            len: 1,
            msg_size: 1,
            lcp: false,
            retx: false,
            sent_at: SimTime::ZERO,
            int: Some(Vec::new()),
        });
        for _ in 0..20 {
            p.on_switch_hop(hop);
        }
        match &p {
            Proto::Data(d) => assert_eq!(d.int.as_ref().unwrap().len(), MAX_INT_HOPS),
            _ => unreachable!(),
        }
    }
}
