//! PIAS — Practical Information-Agnostic flow Scheduling.
//!
//! DCTCP rate control plus multi-level-feedback-queue priority tagging:
//! every flow starts at the highest priority and is demoted as its
//! bytes-sent crosses successive thresholds, approximating SJF without
//! knowing flow sizes. Contrasted with PPT in appendix D (Fig 25): PIAS
//! has no spare-bandwidth filling and demotes large flows only *after*
//! they have pushed a lot of bytes through the high-priority queues.

use std::collections::BTreeMap;

use netsim::{Ctx, FlowDesc, FlowId, Packet, TraceEvent, Transport};

use crate::common::{arm_rto, service_rto, Token, TIMER_RTO};
use crate::proto::{DataHdr, Proto};
use crate::rx::TcpRx;
use crate::tcp_base::{DctcpFlowTx, TcpCfg};

/// PIAS demotion thresholds: bytes-sent boundaries between the 8 priority
/// levels (7 thresholds). Defaults follow the equal-split spirit of the
/// PIAS paper's web-search settings, scaled geometrically.
#[derive(Clone, Debug)]
pub struct PiasCfg {
    pub thresholds: [u64; 7],
}

impl Default for PiasCfg {
    fn default() -> Self {
        PiasCfg { thresholds: [10_000, 30_000, 80_000, 200_000, 600_000, 2_000_000, 10_000_000] }
    }
}

impl PiasCfg {
    /// Priority level for a flow that has sent `bytes_sent` bytes.
    pub fn priority(&self, bytes_sent: u64) -> u8 {
        self.thresholds.iter().take_while(|&&t| bytes_sent >= t).count() as u8
    }
}

/// The PIAS endpoint.
pub struct PiasTransport {
    tcp: TcpCfg,
    cfg: PiasCfg,
    tx: BTreeMap<FlowId, DctcpFlowTx>,
    rx: BTreeMap<FlowId, TcpRx>,
    /// Last priority each flow's packets were tagged with — only
    /// maintained while tracing, to emit `PiasDemote` on level changes.
    traced_prio: BTreeMap<FlowId, u8>,
}

impl PiasTransport {
    /// New endpoint.
    pub fn new(tcp: TcpCfg, cfg: PiasCfg) -> Self {
        PiasTransport {
            tcp,
            cfg,
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
            traced_prio: BTreeMap::new(),
        }
    }

    fn pump(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) {
        let now = ctx.now();
        let Some(flow) = self.tx.get_mut(&id) else { return };
        let (src, dst, size) = (flow.src, flow.dst, flow.size);
        while let Some(seg) = flow.next_segment(now) {
            if seg.retx {
                ctx.note_retransmit(id);
            }
            let prio = self.cfg.priority(flow.bytes_sent);
            if ctx.tracing() {
                let prev = *self.traced_prio.get(&id).unwrap_or(&0);
                if prio > prev {
                    ctx.emit(TraceEvent::PiasDemote { flow: id.0, from: prev, to: prio });
                }
                if prio != prev {
                    self.traced_prio.insert(id, prio);
                }
            }
            let hdr = DataHdr {
                offset: seg.offset,
                len: seg.len,
                msg_size: size,
                lcp: false,
                retx: seg.retx,
                sent_at: now,
                int: None,
            };
            ctx.send(Packet::data(id, src, dst, seg.len, Proto::Data(hdr)).with_priority(prio));
        }
        arm_rto(flow, ctx);
    }
}

impl Transport<Proto> for PiasTransport {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Proto>) {
        let tx = DctcpFlowTx::new(flow.id, flow.src, flow.dst, flow.size_bytes, self.tcp.clone());
        self.tx.insert(flow.id, tx);
        self.pump(flow.id, ctx);
    }

    fn on_packet(&mut self, pkt: Packet<Proto>, ctx: &mut Ctx<'_, Proto>) {
        match &pkt.payload {
            Proto::Data(hdr) => {
                let rx = self
                    .rx
                    .entry(pkt.flow)
                    .or_insert_with(|| TcpRx::new(pkt.flow, pkt.src, hdr.msg_size, 1));
                let hdr = hdr.clone();
                rx.on_data(&pkt, &hdr, ctx);
            }
            Proto::Ack(ack) => {
                let ack = ack.clone();
                let done = {
                    let Some(flow) = self.tx.get_mut(&pkt.flow) else { return };
                    flow.on_ack(&ack, ctx.now());
                    flow.is_done()
                };
                if !done {
                    self.pump(pkt.flow, ctx);
                }
            }
            _ => unreachable!("PIAS endpoint received a non-TCP packet"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Proto>) {
        let token = Token::decode(token);
        if token.kind != TIMER_RTO {
            return;
        }
        let id = FlowId(token.flow);
        let Some(flow) = self.tx.get_mut(&id) else { return };
        if service_rto(flow, ctx) {
            self.pump(id, ctx);
        }
    }
}

/// Install PIAS on every host.
pub fn install_pias(topo: &mut netsim::Topology<Proto>, tcp: &TcpCfg, cfg: &PiasCfg) {
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Box::new(PiasTransport::new(tcp.clone(), cfg.clone())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{star, Rate, RunLimits, SimDuration, SimTime, SwitchConfig};

    #[test]
    fn demotion_levels() {
        let cfg = PiasCfg::default();
        assert_eq!(cfg.priority(0), 0);
        assert_eq!(cfg.priority(9_999), 0);
        assert_eq!(cfg.priority(10_000), 1);
        assert_eq!(cfg.priority(100_000), 3);
        assert_eq!(cfg.priority(50_000_000), 7);
    }

    #[test]
    fn small_flow_overtakes_large_under_pias() {
        let rate = Rate::gbps(10);
        let delay = SimDuration::from_micros(20);
        let mut topo = star::<Proto>(3, rate, delay, SwitchConfig::dctcp(200_000, 17_000));
        let tcp = TcpCfg::new(topo.base_rtt);
        install_pias(&mut topo, &tcp, &PiasCfg::default());
        let big = topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 8 << 20, SimTime::ZERO, 1);
        let small = topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 20_000, SimTime(1_000_000), 1);
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 2);
        // The aged-down big flow must not block the young small flow.
        let small_fct = topo.sim.completion(small).unwrap() - SimTime(1_000_000);
        assert!(
            small_fct.as_nanos() < 2_000_000,
            "small flow fct = {}us",
            small_fct.as_micros_f64()
        );
        assert!(topo.sim.completion(big).is_some());
    }
}
