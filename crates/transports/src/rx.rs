//! The shared TCP-family receiver.
//!
//! Reassembles arbitrary-order HCP (head) and LCP (tail) data into one
//! interval set, generates per-packet ACKs with exact SACK information,
//! applies the EWD two-for-one ACK coalescing to low-priority packets,
//! and reports flow completion the moment every byte is present.

use netsim::{Ctx, FlowId, HostId, Packet, SimTime};
use ppt_core::LcpAckClock;

use crate::common::IntervalSet;
use crate::proto::{AckHdr, DataHdr, Proto};

/// Per-flow receiver state.
#[derive(Debug)]
pub struct TcpRx {
    flow: FlowId,
    /// The data sender (ACK destination).
    peer: HostId,
    size: u64,
    received: IntervalSet,
    completed: bool,
    lcp_clock: LcpAckClock,
    /// Pending SACK ranges for the next coalesced LCP ACK.
    lcp_pending: Vec<(u64, u64)>,
    /// 1 = ACK every LCP packet (RC3-style), 2 = EWD two-for-one.
    lcp_coalesce: u32,
}

impl TcpRx {
    /// New receiver state, learning the size from the first data packet.
    pub fn new(flow: FlowId, peer: HostId, size: u64, lcp_coalesce: u32) -> Self {
        assert!(lcp_coalesce >= 1, "lcp_coalesce of 0 would never send an ACK");
        TcpRx {
            flow,
            peer,
            size,
            received: IntervalSet::new(),
            completed: false,
            lcp_clock: LcpAckClock::new(),
            lcp_pending: Vec::new(),
            lcp_coalesce,
        }
    }

    /// All bytes present?
    pub fn is_complete(&self) -> bool {
        self.completed
    }

    /// Bytes received so far (deduplicated).
    pub fn received_bytes(&self) -> u64 {
        self.received.covered_bytes()
    }

    /// Handle a data packet addressed to this flow; emits ACK(s) and the
    /// completion notification through `ctx`.
    pub fn on_data(&mut self, pkt: &Packet<Proto>, hdr: &DataHdr, ctx: &mut Ctx<'_, Proto>) {
        let start = hdr.offset;
        let end = hdr.offset + hdr.len as u64;
        self.received.insert(start, end);

        let just_completed = !self.completed && self.received.covers(self.size);
        if just_completed {
            self.completed = true;
            ctx.flow_completed(self.flow);
        }

        if hdr.lcp && self.lcp_coalesce > 1 && !just_completed {
            // EWD: one low-priority ACK per two opportunistic packets.
            self.lcp_pending.push((start, end));
            if let Some(ece) = self.lcp_clock.on_data(pkt.ecn.ce) {
                let sacks = std::mem::take(&mut self.lcp_pending);
                self.send_ack(sacks, ece, true, pkt.priority, hdr.sent_at, ctx);
            }
        } else {
            // Per-packet ACK (HCP always; LCP when coalescing is off; and
            // the completing packet regardless, so the sender can finish).
            let mut sacks = vec![(start, end)];
            if hdr.lcp {
                sacks.append(&mut self.lcp_pending);
            }
            self.send_ack(sacks, pkt.ecn.ce, hdr.lcp, pkt.priority, hdr.sent_at, ctx);
        }
    }

    fn send_ack(
        &self,
        sacks: Vec<(u64, u64)>,
        ece: bool,
        lcp: bool,
        data_prio: u8,
        ts_echo: SimTime,
        ctx: &mut Ctx<'_, Proto>,
    ) {
        // HCP ACKs ride the control (highest) priority; LCP ACKs stay in
        // the low-priority band of their data (§3.2: "one low-priority
        // ACK"), so they cannot perturb normal traffic.
        let prio = if lcp { data_prio.max(4) } else { 0 };
        let ack = AckHdr {
            cum: self.received.contiguous_prefix(),
            sacks,
            ece,
            lcp,
            ts_echo,
            int_echo: None,
        };
        let pkt =
            Packet::ctrl(self.flow, ctx.host(), self.peer, Proto::Ack(ack)).with_priority(prio);
        ctx.send(pkt);
    }

    /// Variant of [`Self::on_data`] that also echoes the INT stack (HPCC).
    pub fn on_data_with_int(
        &mut self,
        pkt: &Packet<Proto>,
        hdr: &DataHdr,
        ctx: &mut Ctx<'_, Proto>,
    ) {
        let start = hdr.offset;
        let end = hdr.offset + hdr.len as u64;
        self.received.insert(start, end);
        if !self.completed && self.received.covers(self.size) {
            self.completed = true;
            ctx.flow_completed(self.flow);
        }
        let ack = AckHdr {
            cum: self.received.contiguous_prefix(),
            sacks: vec![(start, end)],
            ece: pkt.ecn.ce,
            lcp: false,
            ts_echo: hdr.sent_at,
            int_echo: hdr.int.clone(),
        };
        let pkt = Packet::ctrl(self.flow, ctx.host(), self.peer, Proto::Ack(ack)).with_priority(0);
        ctx.send(pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::host::Effects;
    use netsim::{Ecn, HostId};

    fn data_pkt(
        flow: FlowId,
        offset: u64,
        len: u32,
        size: u64,
        lcp: bool,
        ce: bool,
    ) -> (Packet<Proto>, DataHdr) {
        let hdr = DataHdr {
            offset,
            len,
            msg_size: size,
            lcp,
            retx: false,
            sent_at: SimTime(5),
            int: None,
        };
        let mut pkt = Packet::data(flow, HostId(0), HostId(1), len, Proto::Data(hdr.clone()))
            .with_priority(if lcp { 4 } else { 0 });
        pkt.ecn = Ecn { capable: true, ce };
        (pkt, hdr)
    }

    /// Drive the receiver with a scratch Ctx and collect emitted ACKs.
    fn drive(
        rx: &mut TcpRx,
        packets: Vec<(Packet<Proto>, DataHdr)>,
    ) -> (Vec<AckHdr>, Vec<u8>, bool) {
        let mut acks = Vec::new();
        let mut prios = Vec::new();
        let mut completed = false;
        for (pkt, hdr) in packets {
            let mut effects = Effects::default();
            let mut ctx = Ctx::new(SimTime(10), HostId(1), &mut effects);
            rx.on_data(&pkt, &hdr, &mut ctx);
            let (pkts, _timers, done) = effects.into_parts();
            completed |= !done.is_empty();
            for p in pkts {
                prios.push(p.priority);
                if let Proto::Ack(a) = p.payload {
                    acks.push(a);
                }
            }
        }
        (acks, prios, completed)
    }

    #[test]
    fn hcp_packets_acked_individually_with_exact_sacks() {
        let flow = FlowId(1);
        let mut rx = TcpRx::new(flow, HostId(0), 4000, 2);
        let (acks, prios, done) = drive(
            &mut rx,
            vec![
                data_pkt(flow, 0, 1000, 4000, false, false),
                data_pkt(flow, 2000, 1000, 4000, false, true),
            ],
        );
        assert_eq!(acks.len(), 2);
        assert_eq!(acks[0].cum, 1000);
        assert_eq!(acks[0].sacks, vec![(0, 1000)]);
        assert!(!acks[0].ece);
        assert_eq!(acks[1].cum, 1000, "hole keeps cum at 1000");
        assert_eq!(acks[1].sacks, vec![(2000, 3000)]);
        assert!(acks[1].ece, "CE must echo as ECE");
        assert!(prios.iter().all(|&p| p == 0), "HCP ACKs ride P0");
        assert!(!done);
    }

    #[test]
    fn lcp_packets_coalesce_two_to_one_with_both_sacks() {
        let flow = FlowId(2);
        let mut rx = TcpRx::new(flow, HostId(0), 100_000, 2);
        let (acks, prios, _) = drive(
            &mut rx,
            vec![
                data_pkt(flow, 98_000, 1000, 100_000, true, false),
                data_pkt(flow, 99_000, 1000, 100_000, true, true),
                data_pkt(flow, 97_000, 1000, 100_000, true, false),
            ],
        );
        // 3 LCP packets => exactly one ACK (for the first pair).
        assert_eq!(acks.len(), 1);
        assert!(acks[0].lcp);
        assert!(acks[0].ece, "CE on either packet of the pair sets ECE");
        assert_eq!(acks[0].sacks.len(), 2);
        assert!(prios.iter().all(|&p| p >= 4), "LCP ACKs stay low priority");
    }

    #[test]
    fn completing_packet_always_acks_even_if_lcp_odd() {
        let flow = FlowId(3);
        let mut rx = TcpRx::new(flow, HostId(0), 2000, 2);
        let (_, _, done1) = drive(&mut rx, vec![data_pkt(flow, 0, 1000, 2000, false, false)]);
        assert!(!done1);
        // The final byte arrives as a single (odd) LCP packet: the
        // completion must be reported immediately, not after a pair.
        let (_, _, done2) = drive(&mut rx, vec![data_pkt(flow, 1000, 1000, 2000, true, false)]);
        assert!(done2, "completion must not wait for the EWD pair");
        assert!(rx.is_complete());
        assert_eq!(rx.received_bytes(), 2000);
    }

    #[test]
    fn duplicate_data_does_not_double_count() {
        let flow = FlowId(4);
        let mut rx = TcpRx::new(flow, HostId(0), 3000, 1);
        drive(
            &mut rx,
            vec![
                data_pkt(flow, 0, 1000, 3000, false, false),
                data_pkt(flow, 0, 1000, 3000, false, false),
            ],
        );
        assert_eq!(rx.received_bytes(), 1000);
    }
}
