//! The "hypothetical DCTCP" oracle of §2.3.
//!
//! Built exactly as the paper describes: *first* run default DCTCP and
//! record each flow's maximum window (MW) with
//! [`crate::dctcp::MwRecorder`]; *then* run this transport, which sends
//! just enough low-priority opportunistic packets to fill each flow's
//! window gap up to `fill_fraction × MW` every RTT. Fig 2 uses
//! fill_fraction = 1; Fig 3 sweeps 0.5–1.5 and shows both under- and
//! over-filling lose.

use std::collections::BTreeMap;

use netsim::{Ctx, Ecn, FlowDesc, FlowId, Packet, Transport};

use crate::common::{arm_rto, service_rto, Token, TIMER_RTO};
use crate::dctcp::MwRecorder;
use crate::proto::{DataHdr, Proto};
use crate::rx::TcpRx;
use crate::tcp_base::{DctcpFlowTx, TcpCfg};

/// Per-RTT oracle fill tick.
pub const TIMER_HYPO_FILL: u8 = 9;

struct HypoFlow {
    hcp: DctcpFlowTx,
    /// The oracle MW from the recording run (None → no filling).
    mw: Option<u64>,
    /// Low-priority bytes in flight.
    lp_inflight: u64,
}

/// The hypothetical-DCTCP endpoint.
pub struct HypotheticalTransport {
    tcp: TcpCfg,
    /// MW oracle recorded from a prior plain-DCTCP run of the *same*
    /// workload (same seeds ⇒ same flow ids).
    oracle: BTreeMap<FlowId, u64>,
    fill_fraction: f64,
    tx: BTreeMap<FlowId, HypoFlow>,
    rx: BTreeMap<FlowId, TcpRx>,
}

impl HypotheticalTransport {
    /// Build from a recorded oracle.
    pub fn new(tcp: TcpCfg, oracle: &MwRecorder, fill_fraction: f64) -> Self {
        HypotheticalTransport {
            tcp,
            oracle: oracle.borrow().clone(),
            fill_fraction,
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
        }
    }

    fn pump_hcp(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) {
        let now = ctx.now();
        let Some(f) = self.tx.get_mut(&id) else { return };
        let (src, dst, size) = (f.hcp.src, f.hcp.dst, f.hcp.size);
        while let Some(seg) = f.hcp.next_segment(now) {
            if seg.retx {
                ctx.note_retransmit(id);
            }
            let hdr = DataHdr {
                offset: seg.offset,
                len: seg.len,
                msg_size: size,
                lcp: false,
                retx: seg.retx,
                sent_at: now,
                int: None,
            };
            ctx.send(Packet::data(id, src, dst, seg.len, Proto::Data(hdr)));
        }
        arm_rto(&f.hcp, ctx);
    }

    /// Once per RTT: send opportunistic tail packets so that
    /// cwnd + lp_inflight ≈ fill_fraction × MW.
    fn fill_tick(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) {
        let mss = self.tcp.mss as u64;
        let frac = self.fill_fraction;
        let now = ctx.now();
        let Some(f) = self.tx.get_mut(&id) else { return };
        if f.hcp.is_done() {
            return;
        }
        let Some(mw) = f.mw else { return };
        let target = (mw as f64 * frac) as u64;
        let occupied = f.hcp.cwnd_bytes() + f.lp_inflight;
        let mut budget = target.saturating_sub(occupied);
        let (src, dst, size) = (f.hcp.src, f.hcp.dst, f.hcp.size);
        while budget >= mss {
            let Some((gap_start, gap_end)) = f.hcp.claimed().last_gap(size) else { break };
            let start = gap_end.saturating_sub(mss).max(gap_start);
            let len = (gap_end - start) as u32;
            f.hcp.claimed_mut().insert(start, gap_end);
            f.lp_inflight += len as u64;
            budget = budget.saturating_sub(len as u64);
            let hdr = DataHdr {
                offset: start,
                len,
                msg_size: size,
                lcp: true,
                retx: false,
                sent_at: now,
                int: None,
            };
            let mut pkt = Packet::data(id, src, dst, len, Proto::Data(hdr)).with_priority(4);
            pkt.ecn = Ecn::capable();
            ctx.send(pkt);
        }
    }
}

impl Transport<Proto> for HypotheticalTransport {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Proto>) {
        let hcp = DctcpFlowTx::new(flow.id, flow.src, flow.dst, flow.size_bytes, self.tcp.clone());
        let mw = self.oracle.get(&flow.id).copied();
        self.tx.insert(flow.id, HypoFlow { hcp, mw, lp_inflight: 0 });
        self.pump_hcp(flow.id, ctx);
        self.fill_tick(flow.id, ctx);
        ctx.timer_after(
            self.tcp.base_rtt,
            Token { kind: TIMER_HYPO_FILL, generation: 0, flow: flow.id.0 }.encode(),
        );
    }

    fn on_packet(&mut self, pkt: Packet<Proto>, ctx: &mut Ctx<'_, Proto>) {
        match &pkt.payload {
            Proto::Data(hdr) => {
                let rx = self
                    .rx
                    .entry(pkt.flow)
                    .or_insert_with(|| TcpRx::new(pkt.flow, pkt.src, hdr.msg_size, 1));
                let hdr = hdr.clone();
                rx.on_data(&pkt, &hdr, ctx);
            }
            Proto::Ack(ack) if ack.lcp => {
                let ack = ack.clone();
                let now = ctx.now();
                let Some(f) = self.tx.get_mut(&pkt.flow) else { return };
                let sacked: u64 = ack.sacks.iter().map(|&(s, e)| e - s).sum();
                f.lp_inflight = f.lp_inflight.saturating_sub(sacked);
                f.hcp.on_lcp_ack(&ack, now);
            }
            Proto::Ack(ack) => {
                let ack = ack.clone();
                let done = {
                    let Some(f) = self.tx.get_mut(&pkt.flow) else { return };
                    f.hcp.on_ack(&ack, ctx.now());
                    f.hcp.is_done()
                };
                if !done {
                    self.pump_hcp(pkt.flow, ctx);
                }
            }
            _ => unreachable!("hypothetical endpoint received a non-TCP packet"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Proto>) {
        let token = Token::decode(token);
        let id = FlowId(token.flow);
        match token.kind {
            TIMER_RTO => {
                let Some(f) = self.tx.get_mut(&id) else { return };
                if service_rto(&mut f.hcp, ctx) {
                    self.pump_hcp(id, ctx);
                }
            }
            TIMER_HYPO_FILL => {
                let live = {
                    let Some(f) = self.tx.get_mut(&id) else { return };
                    if f.hcp.is_done() {
                        false
                    } else {
                        // Lost low-priority packets never get acked;
                        // reclaim their budget each RTT.
                        f.lp_inflight = 0;
                        true
                    }
                };
                if live {
                    self.fill_tick(id, ctx);
                    ctx.timer_after(
                        self.tcp.base_rtt,
                        Token { kind: TIMER_HYPO_FILL, generation: 0, flow: id.0 }.encode(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Install the hypothetical transport with a previously recorded oracle.
pub fn install_hypothetical(
    topo: &mut netsim::Topology<Proto>,
    tcp: &TcpCfg,
    oracle: &MwRecorder,
    fill_fraction: f64,
) {
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(
            h,
            Box::new(HypotheticalTransport::new(tcp.clone(), oracle, fill_fraction)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dctcp::DctcpTransport;
    use netsim::SimTime;
    use netsim::{star, Rate, RunLimits, SimDuration, SwitchConfig};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Run DCTCP to record MWs, then the hypothetical filler on the same
    /// workload; the filler must cut the large flow's FCT.
    #[test]
    fn oracle_filling_beats_plain_dctcp() {
        let rate = Rate::gbps(10);
        let delay = SimDuration::from_micros(20);
        let mk = || star::<Proto>(3, rate, delay, SwitchConfig::ppt(200_000, 17_000, 10_000));
        let size = 4u64 << 20;

        // Pass 1: record.
        let mut a = mk();
        let tcp = TcpCfg::new(a.base_rtt);
        let rec: MwRecorder = Rc::new(RefCell::new(BTreeMap::new()));
        for &h in &a.hosts.clone() {
            a.sim.set_transport(
                h,
                Box::new(DctcpTransport::new(tcp.clone()).with_mw_recorder(rec.clone())),
            );
        }
        let f1 = a.sim.add_flow(a.hosts[0], a.hosts[2], size, SimTime::ZERO, size);
        let f2 = a.sim.add_flow(a.hosts[1], a.hosts[2], size, SimTime(40_000_000), size);
        a.sim.run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        let base1 = a.sim.completion(f1).unwrap();
        let _ = f2;

        // Pass 2: replay with the oracle.
        let mut b = mk();
        install_hypothetical(&mut b, &tcp, &rec, 1.0);
        let g1 = b.sim.add_flow(b.hosts[0], b.hosts[2], size, SimTime::ZERO, size);
        b.sim.add_flow(b.hosts[1], b.hosts[2], size, SimTime(40_000_000), size);
        let report =
            b.sim.run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 2);
        let hypo1 = b.sim.completion(g1).unwrap();
        assert!(hypo1 < base1, "oracle filler ({hypo1}) must beat plain DCTCP ({base1})");
    }

    #[test]
    fn flows_without_oracle_entries_degrade_to_dctcp() {
        let rate = Rate::gbps(10);
        let delay = SimDuration::from_micros(20);
        let mut topo = star::<Proto>(2, rate, delay, SwitchConfig::dctcp(200_000, 17_000));
        let tcp = TcpCfg::new(topo.base_rtt);
        let rec: MwRecorder = Rc::new(RefCell::new(BTreeMap::new())); // empty oracle
        install_hypothetical(&mut topo, &tcp, &rec, 1.0);
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 1 << 20, SimTime::ZERO, 1);
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 1);
        assert!(topo.sim.completion(f).is_some());
    }
}
