//! PowerTCP — window control from in-network power.
//!
//! "PowerTCP: Pushing the Performance Limits of Datacenter Networks"
//! (NSDI'22): every ACK echoes the per-hop INT stack HPCC already
//! carries, and the sender computes normalized *power* Γ — current
//! (throughput + queue gradient) times voltage (queue + BDP) over the
//! base power C²τ — then sets W = γ·(W_c/Γ + β) + (1−γ)·W. Reacting to
//! the queue *gradient* lets PowerTCP back off while the queue is still
//! building, a reaction HPCC only has once the queue level itself moves.
//! The INT plumbing (collection at switch egress, echo in ACKs) is
//! shared with `hpcc.rs` verbatim.

use std::collections::BTreeMap;

use netsim::{Ctx, Ecn, FlowDesc, FlowId, Packet, Transport};

use crate::common::{arm_rto, service_rto, Token, TIMER_RTO};
use crate::proto::{DataHdr, Proto};
use crate::rx::TcpRx;
use crate::tcp_base::{CcMode, DctcpFlowTx, PowerTcpCc, TcpCfg};

/// The PowerTCP endpoint.
pub struct PowerTcpTransport {
    tcp: TcpCfg,
    /// Line-rate start: the initial window is one BDP.
    bdp_bytes: u64,
    tx: BTreeMap<FlowId, DctcpFlowTx>,
    rx: BTreeMap<FlowId, TcpRx>,
}

impl PowerTcpTransport {
    /// New endpoint (γ = 0.9, β = 1 MSS); `bdp_bytes` sizes the
    /// line-rate initial window.
    pub fn new(tcp: TcpCfg, bdp_bytes: u64) -> Self {
        PowerTcpTransport { tcp, bdp_bytes, tx: BTreeMap::new(), rx: BTreeMap::new() }
    }

    fn pump(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) {
        let now = ctx.now();
        let Some(flow) = self.tx.get_mut(&id) else { return };
        let (src, dst, size) = (flow.src, flow.dst, flow.size);
        while let Some(seg) = flow.next_segment(now) {
            if seg.retx {
                ctx.note_retransmit(id);
            }
            let hdr = DataHdr {
                offset: seg.offset,
                len: seg.len,
                msg_size: size,
                lcp: false,
                retx: seg.retx,
                sent_at: now,
                int: Some(Vec::new()),
            };
            let mut pkt = Packet::data(id, src, dst, seg.len, Proto::Data(hdr));
            pkt.ecn = Ecn::not_capable(); // PowerTCP replaces ECN with INT
            ctx.send(pkt);
        }
        arm_rto(flow, ctx);
    }
}

impl Transport<Proto> for PowerTcpTransport {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Proto>) {
        // PowerTCP starts at line rate: IW = one BDP.
        let mut tcp = self.tcp.clone();
        tcp.init_cwnd_bytes = tcp.init_cwnd_bytes.max(self.bdp_bytes);
        // The window law divides by Γ on *every* ACK (unlike HPCC, which
        // only divides when congested), and an ACK arriving after the
        // path drained can measure near-zero power — W_c/Γ would then
        // inflate the window by orders of magnitude and W_c latches the
        // inflated value an RTT later. Reference implementations bound
        // the window at a small BDP multiple; 4× leaves room for the
        // additive probe to fill a shared buffer without letting one
        // idle-path ACK park megabytes in the NIC queue.
        tcp.max_cwnd_bytes = tcp.max_cwnd_bytes.min((4 * self.bdp_bytes).max(tcp.init_cwnd_bytes));
        let cc = PowerTcpCc::new(tcp.base_rtt, tcp.init_cwnd_bytes);
        let tx = DctcpFlowTx::new(flow.id, flow.src, flow.dst, flow.size_bytes, tcp)
            .with_cc_mode(CcMode::PowerTcp(cc));
        self.tx.insert(flow.id, tx);
        self.pump(flow.id, ctx);
    }

    fn on_packet(&mut self, pkt: Packet<Proto>, ctx: &mut Ctx<'_, Proto>) {
        match &pkt.payload {
            Proto::Data(hdr) => {
                let rx = self
                    .rx
                    .entry(pkt.flow)
                    .or_insert_with(|| TcpRx::new(pkt.flow, pkt.src, hdr.msg_size, 1));
                let hdr = hdr.clone();
                // INT echo path.
                rx.on_data_with_int(&pkt, &hdr, ctx);
            }
            Proto::Ack(ack) => {
                let ack = ack.clone();
                let done = {
                    let Some(flow) = self.tx.get_mut(&pkt.flow) else { return };
                    flow.on_ack(&ack, ctx.now());
                    flow.is_done()
                };
                if !done {
                    self.pump(pkt.flow, ctx);
                }
            }
            _ => unreachable!("PowerTCP endpoint received a non-TCP packet"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Proto>) {
        let token = Token::decode(token);
        if token.kind != TIMER_RTO {
            return;
        }
        let id = FlowId(token.flow);
        let Some(flow) = self.tx.get_mut(&id) else { return };
        if service_rto(flow, ctx) {
            self.pump(id, ctx);
        }
    }
}

/// Install PowerTCP on every host; the initial window is the topology's
/// edge-link BDP.
pub fn install_powertcp(topo: &mut netsim::Topology<Proto>, tcp: &TcpCfg) {
    let bdp = netsim::bdp_bytes(topo.edge_rate, topo.base_rtt);
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Box::new(PowerTcpTransport::new(tcp.clone(), bdp)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{star, Rate, RunLimits, SimDuration, SimTime, SwitchConfig};

    fn setup(n: usize) -> (netsim::Topology<Proto>, TcpCfg) {
        let rate = Rate::gbps(10);
        let delay = SimDuration::from_micros(20);
        // PowerTCP needs no ECN config; plain deep-buffered switch.
        let topo = star::<Proto>(n, rate, delay, SwitchConfig::basic(200_000));
        let tcp = TcpCfg::new(topo.base_rtt);
        (topo, tcp)
    }

    #[test]
    fn powertcp_flows_complete() {
        let (mut topo, tcp) = setup(3);
        install_powertcp(&mut topo, &tcp);
        topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 2 << 20, SimTime::ZERO, 1);
        topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 500_000, SimTime(100_000), 1);
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 2);
    }

    #[test]
    fn powertcp_converges_to_low_queue_occupancy() {
        // Two long flows share the bottleneck: the power signal targets
        // λ = C with empty queues, so drops must not occur and the
        // backlog should stay shallow.
        let (mut topo, tcp) = setup(3);
        install_powertcp(&mut topo, &tcp);
        topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 6 << 20, SimTime::ZERO, 1);
        topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 6 << 20, SimTime::ZERO, 1);
        let port = topo
            .sim
            .switch_port_towards(topo.leaves[0], netsim::NodeId::Host(topo.hosts[2]))
            .unwrap();
        let sampler = topo.sim.sample_port(
            topo.leaves[0],
            port,
            SimDuration::from_micros(50),
            SimTime(12_000_000),
        );
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 2);
        assert_eq!(
            topo.sim.total_counters().dropped,
            0,
            "PowerTCP should not overflow a 200KB buffer"
        );
        // Average backlog over the steady interval should be well under
        // the buffer (the near-zero-queue property, loosely checked).
        let samples = topo.sim.samples(sampler);
        let avg: f64 =
            samples.iter().map(|s| s.value as f64).sum::<f64>() / samples.len().max(1) as f64;
        assert!(avg < 100_000.0, "avg queue {avg} too deep for PowerTCP");
    }
}
