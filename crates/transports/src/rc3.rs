//! RC3 (Recursively Cautious Congestion Control), adapted to the
//! datacenter per the paper's comparison setup: the primary loop is DCTCP
//! (not Internet TCP), and the low-priority loops fill the *entire*
//! remaining BDP from the flow's tail every RTT.
//!
//! Key contrasts with PPT (§3 "Remarks") that this implementation
//! reproduces deliberately:
//! * the low-priority loop opens at flow start and stays open until it
//!   crosses the primary loop — no intermittent detection;
//! * low-priority packets do **not** react to ECN — RC3 makes no attempt
//!   to protect the primary loop;
//! * no exponential decrease: the loop tops back up to a full BDP of
//!   low-priority in-flight every RTT.
//!
//! RC3's recursive priority layering is kept: the last 40 packets of the
//! flow ride P4, the next 400 ride P5, the next 4000 ride P6 and the rest
//! P7, so across flows the scarcest tail bytes win ties.

use std::collections::BTreeMap;

use netsim::{Ctx, Ecn, FlowDesc, FlowId, Packet, Transport};

use crate::common::{arm_rto, service_rto, Token, TIMER_RTO};
use crate::proto::{DataHdr, Proto};
use crate::rx::TcpRx;
use crate::tcp_base::{DctcpFlowTx, TcpCfg};

/// Per-RTT low-priority top-up tick.
pub const TIMER_RC3_TOPUP: u8 = 5;

/// RC3 configuration.
#[derive(Clone, Debug)]
pub struct Rc3Cfg {
    /// BDP the low-priority loop keeps in flight.
    pub bdp_bytes: u64,
    /// Send-buffer bound on tail reach (RC3 recommends huge buffers; the
    /// paper uses 2 GB).
    pub send_buffer_bytes: u64,
}

struct Rc3FlowTx {
    hcp: DctcpFlowTx,
    /// Low-priority bytes currently in flight (sent, not yet acked).
    lp_inflight: u64,
    /// The low-priority loop is open until it crosses the primary loop.
    lp_active: bool,
}

/// The RC3 endpoint.
pub struct Rc3Transport {
    tcp: TcpCfg,
    cfg: Rc3Cfg,
    tx: BTreeMap<FlowId, Rc3FlowTx>,
    rx: BTreeMap<FlowId, TcpRx>,
}

impl Rc3Transport {
    /// New endpoint.
    pub fn new(tcp: TcpCfg, cfg: Rc3Cfg) -> Self {
        Rc3Transport { tcp, cfg, tx: BTreeMap::new(), rx: BTreeMap::new() }
    }

    /// RC3's recursive layer priority for a byte that sits `from_tail`
    /// bytes before the end of the flow.
    fn layer_priority(mss: u64, from_tail: u64) -> u8 {
        let pkts = from_tail / mss;
        if pkts < 40 {
            4
        } else if pkts < 440 {
            5
        } else if pkts < 4440 {
            6
        } else {
            7
        }
    }

    fn pump_hcp(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) {
        let now = ctx.now();
        let Some(f) = self.tx.get_mut(&id) else { return };
        let (src, dst, size) = (f.hcp.src, f.hcp.dst, f.hcp.size);
        while let Some(seg) = f.hcp.next_segment(now) {
            if seg.retx {
                ctx.note_retransmit(id);
            }
            let hdr = DataHdr {
                offset: seg.offset,
                len: seg.len,
                msg_size: size,
                lcp: false,
                retx: seg.retx,
                sent_at: now,
                int: None,
            };
            ctx.send(Packet::data(id, src, dst, seg.len, Proto::Data(hdr)));
        }
        arm_rto(&f.hcp, ctx);
    }

    /// Top the low-priority loop back up to a full BDP of in-flight bytes.
    fn top_up(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) {
        let mss = self.tcp.mss as u64;
        let bdp = self.cfg.bdp_bytes;
        let send_buffer = self.cfg.send_buffer_bytes;
        let now = ctx.now();
        let Some(f) = self.tx.get_mut(&id) else { return };
        if !f.lp_active || f.hcp.is_done() {
            return;
        }
        let (src, dst, size) = (f.hcp.src, f.hcp.dst, f.hcp.size);
        while f.lp_inflight + mss <= bdp {
            let buffer_end = size.min(f.hcp.cum_acked().saturating_add(send_buffer));
            let Some((gap_start, gap_end)) = f.hcp.claimed().last_gap(buffer_end) else {
                // Loops crossed: every byte claimed at least once.
                f.lp_active = false;
                break;
            };
            let start = gap_end.saturating_sub(mss).max(gap_start);
            let len = (gap_end - start) as u32;
            f.hcp.claimed_mut().insert(start, gap_end);
            f.hcp.add_sent_bytes(len as u64);
            f.lp_inflight += len as u64;
            let prio = Self::layer_priority(mss, size - gap_end);
            let hdr = DataHdr {
                offset: start,
                len,
                msg_size: size,
                lcp: true,
                retx: false,
                sent_at: now,
                int: None,
            };
            let mut pkt = Packet::data(id, src, dst, len, Proto::Data(hdr)).with_priority(prio);
            // RC3's low loop ignores congestion signals entirely.
            pkt.ecn = Ecn::not_capable();
            ctx.send(pkt);
        }
    }
}

impl Transport<Proto> for Rc3Transport {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Proto>) {
        let hcp = DctcpFlowTx::new(flow.id, flow.src, flow.dst, flow.size_bytes, self.tcp.clone());
        self.tx.insert(flow.id, Rc3FlowTx { hcp, lp_inflight: 0, lp_active: true });
        self.pump_hcp(flow.id, ctx);
        self.top_up(flow.id, ctx);
        ctx.timer_after(
            self.tcp.base_rtt,
            Token { kind: TIMER_RC3_TOPUP, generation: 0, flow: flow.id.0 }.encode(),
        );
    }

    fn on_packet(&mut self, pkt: Packet<Proto>, ctx: &mut Ctx<'_, Proto>) {
        match &pkt.payload {
            Proto::Data(hdr) => {
                let rx = self
                    .rx
                    .entry(pkt.flow)
                    // RC3 ACKs every low-priority packet (no EWD clock).
                    .or_insert_with(|| TcpRx::new(pkt.flow, pkt.src, hdr.msg_size, 1));
                let hdr = hdr.clone();
                rx.on_data(&pkt, &hdr, ctx);
            }
            Proto::Ack(ack) if ack.lcp => {
                let ack = ack.clone();
                let now = ctx.now();
                {
                    let Some(f) = self.tx.get_mut(&pkt.flow) else { return };
                    let sacked: u64 = ack.sacks.iter().map(|&(s, e)| e - s).sum();
                    f.lp_inflight = f.lp_inflight.saturating_sub(sacked);
                    f.hcp.on_lcp_ack(&ack, now);
                }
                // An ACK frees low-priority window: immediately refill it
                // (this is what "fills the entire BDP every RTT" means).
                self.top_up(pkt.flow, ctx);
            }
            Proto::Ack(ack) => {
                let ack = ack.clone();
                let now = ctx.now();
                let done = {
                    let Some(f) = self.tx.get_mut(&pkt.flow) else { return };
                    f.hcp.on_ack(&ack, now);
                    f.hcp.is_done()
                };
                if !done {
                    self.pump_hcp(pkt.flow, ctx);
                }
            }
            _ => unreachable!("RC3 endpoint received a non-TCP packet"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Proto>) {
        let token = Token::decode(token);
        let id = FlowId(token.flow);
        match token.kind {
            TIMER_RTO => {
                let Some(f) = self.tx.get_mut(&id) else { return };
                if service_rto(&mut f.hcp, ctx) {
                    self.pump_hcp(id, ctx);
                }
            }
            TIMER_RC3_TOPUP => {
                let active = {
                    let Some(f) = self.tx.get_mut(&id) else { return };
                    // Periodic refill: lost low-priority packets never get
                    // acked, so reclaim their window each RTT.
                    if f.lp_active && !f.hcp.is_done() {
                        f.lp_inflight = 0;
                        true
                    } else {
                        false
                    }
                };
                if active {
                    self.top_up(id, ctx);
                    ctx.timer_after(
                        self.tcp.base_rtt,
                        Token { kind: TIMER_RC3_TOPUP, generation: 0, flow: id.0 }.encode(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Install RC3 on every host.
pub fn install_rc3(topo: &mut netsim::Topology<Proto>, tcp: &TcpCfg, cfg: &Rc3Cfg) {
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Box::new(Rc3Transport::new(tcp.clone(), cfg.clone())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;
    use netsim::{star, Rate, RunLimits, SimDuration, SwitchConfig};

    #[test]
    fn layer_priorities_follow_recursive_split() {
        let mss = netsim::MSS_BYTES as u64;
        assert_eq!(Rc3Transport::layer_priority(mss, 0), 4);
        assert_eq!(Rc3Transport::layer_priority(mss, 39 * mss), 4);
        assert_eq!(Rc3Transport::layer_priority(mss, 40 * mss), 5);
        assert_eq!(Rc3Transport::layer_priority(mss, 439 * mss), 5);
        assert_eq!(Rc3Transport::layer_priority(mss, 440 * mss), 6);
        assert_eq!(Rc3Transport::layer_priority(mss, 5000 * mss), 7);
    }

    #[test]
    fn rc3_completes_flows() {
        let rate = Rate::gbps(10);
        let delay = SimDuration::from_micros(20);
        let mut topo = star::<Proto>(3, rate, delay, SwitchConfig::dctcp(200_000, 17_000));
        let tcp = TcpCfg::new(topo.base_rtt);
        let cfg = Rc3Cfg {
            bdp_bytes: netsim::bdp_bytes(rate, topo.base_rtt),
            send_buffer_bytes: 2 << 30,
        };
        install_rc3(&mut topo, &tcp, &cfg);
        topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 3 << 20, SimTime::ZERO, 3 << 20);
        topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 200_000, SimTime(500_000), 200_000);
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(30_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 2);
    }

    #[test]
    fn rc3_beats_dctcp_on_idle_pipe() {
        // A single large flow on an empty network: the low loop fills the
        // pipe from the first RTT, so RC3 finishes well before DCTCP.
        let rate = Rate::gbps(10);
        let delay = SimDuration::from_micros(20);
        let size = 4 << 20;

        let mut a = star::<Proto>(2, rate, delay, SwitchConfig::dctcp(200_000, 17_000));
        let tcp = TcpCfg::new(a.base_rtt);
        let cfg =
            Rc3Cfg { bdp_bytes: netsim::bdp_bytes(rate, a.base_rtt), send_buffer_bytes: 2 << 30 };
        install_rc3(&mut a, &tcp, &cfg);
        let f = a.sim.add_flow(a.hosts[0], a.hosts[1], size, SimTime::ZERO, size);
        a.sim.run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        let rc3_fct = a.sim.completion(f).expect("rc3 done");

        let mut b = star::<Proto>(2, rate, delay, SwitchConfig::dctcp(200_000, 17_000));
        crate::dctcp::install_dctcp(&mut b, &tcp);
        let g = b.sim.add_flow(b.hosts[0], b.hosts[1], size, SimTime::ZERO, size);
        b.sim.run(RunLimits::default());
        let dctcp_fct = b.sim.completion(g).expect("dctcp done");

        assert!(rc3_fct < dctcp_fct, "rc3={rc3_fct} dctcp={dctcp_fct}");
    }
}
