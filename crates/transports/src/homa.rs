//! Homa — receiver-driven, SRPT-scheduled proactive transport — and the
//! Aeolus variant that de-prioritizes and selectively drops pre-credit
//! (unscheduled) packets.
//!
//! Mechanics reproduced from the papers, at the fidelity the PPT paper's
//! evaluation uses (Aeolus's simulator with timeout loss recovery):
//!
//! * Senders blast the first `rtt_bytes` of every message *unscheduled* at
//!   line rate. Homa maps unscheduled packets to the top priorities
//!   (P1–P4, cut by message size); Aeolus maps them to the lowest
//!   priority (P7) where the switch selectively drops them at a shallow
//!   threshold.
//! * Receivers grant the remainder with SRPT order and a configurable
//!   overcommitment degree: the `overcommit` messages with the fewest
//!   remaining bytes each keep one `rtt_bytes` window of grants
//!   outstanding; grants carry the scheduled priority (P5 + rank for
//!   Homa, P1 + rank for Aeolus).
//! * Loss recovery is timeout-based RESEND from the receiver. Aeolus adds
//!   the probe packet: it trails the unscheduled burst, is never dropped
//!   by the selective dropper, and lets the receiver request lost
//!   unscheduled bytes immediately as scheduled retransmissions.

use std::collections::BTreeMap;

use netsim::{Ctx, FlowDesc, FlowId, HostId, Packet, SimDuration, SimTime, Transport};

use crate::common::{IntervalSet, Token};
use crate::proto::{HomaHdr, Proto};

/// Receiver RESEND poll timer.
pub const TIMER_HOMA_RESEND: u8 = 6;

/// Homa/Aeolus configuration.
#[derive(Clone, Debug)]
pub struct HomaCfg {
    /// Unscheduled window per message (the paper: 50 KB testbed, 45 KB at
    /// 40/100 G).
    pub rtt_bytes: u64,
    /// Overcommitment degree (the paper: 2).
    pub overcommit: usize,
    /// Message-size cutoffs mapping unscheduled packets onto P1–P4.
    pub unsched_cutoffs: [u64; 3],
    /// Receiver timeout before requesting a RESEND.
    pub resend_timeout: SimDuration,
    /// Aeolus mode: unscheduled at P7 + selective dropping + probes.
    pub aeolus: bool,
}

impl HomaCfg {
    /// Paper-calibrated defaults for a given RTTbytes.
    pub fn new(rtt_bytes: u64) -> Self {
        HomaCfg {
            rtt_bytes,
            overcommit: 2,
            unsched_cutoffs: [3_000, 30_000, 300_000],
            resend_timeout: SimDuration::from_millis(1),
            aeolus: false,
        }
    }

    /// Switch to Aeolus behaviour.
    pub fn aeolus(mut self) -> Self {
        self.aeolus = true;
        self
    }

    fn unsched_priority(&self, msg_size: u64) -> u8 {
        if self.aeolus {
            return 7; // pre-credit packets ride the droppable band
        }
        let level = self.unsched_cutoffs.iter().take_while(|&&c| msg_size > c).count() as u8;
        1 + level // P1..P4
    }

    fn sched_priority(&self, rank: usize) -> u8 {
        if self.aeolus {
            (1 + rank.min(2)) as u8 // P1..P3: scheduled beats unscheduled
        } else {
            (5 + rank.min(2)) as u8 // P5..P7: below unscheduled
        }
    }

    /// The shallow byte cap Aeolus's selective dropper applies to the
    /// unscheduled band (P7) at every port.
    pub const AEOLUS_DROP_THRESHOLD: u64 = 24_000;
}

/// Build the switch configuration a Homa/Aeolus experiment needs.
pub fn homa_switch_config(port_buffer: u64, aeolus: bool) -> netsim::SwitchConfig {
    let cfg = netsim::SwitchConfig::basic(port_buffer);
    if aeolus {
        cfg.with_range_cap(7, 8, HomaCfg::AEOLUS_DROP_THRESHOLD)
    } else {
        cfg
    }
}

struct HomaTx {
    id: FlowId,
    src: HostId,
    dst: HostId,
    size: u64,
    /// Next new byte to transmit.
    sent: u64,
    /// Highest authorized offset.
    granted: u64,
    sched_prio: u8,
}

struct HomaRx {
    flow: FlowId,
    peer: HostId,
    size: u64,
    received: IntervalSet,
    /// Highest offset granted to the sender.
    granted: u64,
    completed: bool,
    last_data: SimTime,
    /// Aeolus: unscheduled bytes the probe said were sent.
    probe_expected: Option<u64>,
}

/// The Homa / Aeolus endpoint.
pub struct HomaTransport {
    cfg: HomaCfg,
    mss: u32,
    tx: BTreeMap<FlowId, HomaTx>,
    rx: BTreeMap<FlowId, HomaRx>,
}

impl HomaTransport {
    /// New endpoint.
    pub fn new(cfg: HomaCfg, mss: u32) -> Self {
        HomaTransport { cfg, mss, tx: BTreeMap::new(), rx: BTreeMap::new() }
    }

    fn send_range(
        tx: &HomaTx,
        from: u64,
        to: u64,
        prio: u8,
        unscheduled: bool,
        retx: bool,
        mss: u32,
        ctx: &mut Ctx<'_, Proto>,
    ) {
        let mut off = from;
        while off < to {
            let len = ((to - off).min(mss as u64)) as u32;
            if retx {
                ctx.note_retransmit(tx.id);
            }
            let hdr = HomaHdr::Data { offset: off, len, msg_size: tx.size, unscheduled, retx };
            let pkt = Packet::data(tx.id, tx.src, tx.dst, len, Proto::Homa(hdr))
                .with_priority(prio)
                .without_ecn();
            ctx.send(pkt);
            off += len as u64;
        }
    }

    /// Transmit any newly-granted region.
    fn pump_tx(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) {
        let mss = self.mss;
        let Some(tx) = self.tx.get_mut(&id) else { return };
        let to = tx.granted.min(tx.size);
        if tx.sent < to {
            let from = tx.sent;
            tx.sent = to;
            let prio = tx.sched_prio;
            Self::send_range(tx, from, to, prio, false, false, mss, ctx);
        }
    }

    /// SRPT + overcommit granting: keep one RTTbytes window outstanding
    /// for the `overcommit` incomplete messages with the fewest remaining
    /// bytes.
    fn regrant(&mut self, ctx: &mut Ctx<'_, Proto>) {
        let mut active: Vec<(u64, FlowId)> = self
            .rx
            .values()
            .filter(|m| !m.completed && m.granted < m.size)
            .map(|m| (m.size - m.received.covered_bytes(), m.flow))
            .collect();
        active.sort();
        let host = ctx.host();
        for (rank, &(_, flow)) in active.iter().take(self.cfg.overcommit).enumerate() {
            let prio = self.cfg.sched_priority(rank);
            let m = self.rx.get_mut(&flow).expect("rx exists"); // simlint: allow(panic_hygiene)
            let target = m.size.min(m.received.covered_bytes() + self.cfg.rtt_bytes);
            if target > m.granted {
                m.granted = target;
                let hdr = HomaHdr::Grant { granted_offset: target, prio };
                ctx.send(Packet::ctrl(flow, host, m.peer, Proto::Homa(hdr)));
            }
        }
    }

    /// Ask for a retransmission of every hole the receiver can prove.
    fn request_resends(m: &mut HomaRx, upto: u64, ctx: &mut Ctx<'_, Proto>) {
        let host = ctx.host();
        let mut cursor = 0u64;
        while let Some((s, e)) = m.received.first_gap(cursor, upto) {
            let hdr = HomaHdr::Resend { offset: s, len: (e - s).min(u32::MAX as u64) as u32 };
            ctx.send(Packet::ctrl(m.flow, host, m.peer, Proto::Homa(hdr)));
            cursor = e;
        }
    }
}

impl Transport<Proto> for HomaTransport {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Proto>) {
        let unsched = flow.size_bytes.min(self.cfg.rtt_bytes);
        let tx = HomaTx {
            id: flow.id,
            src: flow.src,
            dst: flow.dst,
            size: flow.size_bytes,
            sent: unsched,
            granted: unsched,
            sched_prio: self.cfg.sched_priority(0),
        };
        // Blind line-rate unscheduled burst (the pre-credit phase).
        let prio = self.cfg.unsched_priority(flow.size_bytes);
        Self::send_range(&tx, 0, unsched, prio, true, false, self.mss, ctx);
        if self.cfg.aeolus {
            // The probe trails the burst at control priority; it is not
            // subject to the selective dropper.
            let hdr = HomaHdr::Probe { unscheduled_sent: unsched, msg_size: flow.size_bytes };
            ctx.send(Packet::ctrl(flow.id, flow.src, flow.dst, Proto::Homa(hdr)));
        }
        self.tx.insert(flow.id, tx);
    }

    fn on_packet(&mut self, pkt: Packet<Proto>, ctx: &mut Ctx<'_, Proto>) {
        let Proto::Homa(hdr) = &pkt.payload else {
            unreachable!("Homa endpoint received a non-Homa packet")
        };
        match hdr {
            HomaHdr::Data { offset, len, msg_size, .. } => {
                let (offset, len, msg_size) = (*offset, *len, *msg_size);
                let now = ctx.now();
                let flow = pkt.flow;
                let peer = pkt.src;
                let first = !self.rx.contains_key(&flow);
                let timeout = self.cfg.resend_timeout;
                let m = self.rx.entry(flow).or_insert_with(|| HomaRx {
                    flow,
                    peer,
                    size: msg_size,
                    received: IntervalSet::new(),
                    granted: 0,
                    completed: false,
                    last_data: now,
                    probe_expected: None,
                });
                m.last_data = now;
                m.received.insert(offset, offset + len as u64);
                // The unscheduled window needs no grants.
                if first {
                    m.granted = m.granted.max(msg_size.min(self.cfg.rtt_bytes));
                    ctx.timer_after(
                        timeout,
                        Token { kind: TIMER_HOMA_RESEND, generation: 0, flow: flow.0 }.encode(),
                    );
                }
                if !m.completed && m.received.covers(m.size) {
                    m.completed = true;
                    ctx.flow_completed(flow);
                }
                self.regrant(ctx);
            }
            HomaHdr::Grant { granted_offset, prio } => {
                let (granted_offset, prio) = (*granted_offset, *prio);
                if let Some(tx) = self.tx.get_mut(&pkt.flow) {
                    tx.granted = tx.granted.max(granted_offset);
                    tx.sched_prio = prio;
                }
                self.pump_tx(pkt.flow, ctx);
            }
            HomaHdr::Resend { offset, len } => {
                let (offset, len) = (*offset, *len);
                let mss = self.mss;
                if let Some(tx) = self.tx.get(&pkt.flow) {
                    // Retransmissions go out scheduled at the top
                    // scheduled priority.
                    let prio = self.cfg.sched_priority(0);
                    let to = (offset + len as u64).min(tx.size);
                    Self::send_range(tx, offset, to, prio, false, true, mss, ctx);
                }
            }
            HomaHdr::Probe { unscheduled_sent, msg_size } => {
                let (unscheduled_sent, msg_size) = (*unscheduled_sent, *msg_size);
                let now = ctx.now();
                let flow = pkt.flow;
                let peer = pkt.src;
                let first = !self.rx.contains_key(&flow);
                if first {
                    // The probe can overtake the P7 data burst; the
                    // timeout-recovery timer must still get armed.
                    ctx.timer_after(
                        self.cfg.resend_timeout,
                        Token { kind: TIMER_HOMA_RESEND, generation: 0, flow: flow.0 }.encode(),
                    );
                }
                let m = self.rx.entry(flow).or_insert_with(|| HomaRx {
                    flow,
                    peer,
                    size: msg_size,
                    received: IntervalSet::new(),
                    granted: msg_size.min(unscheduled_sent),
                    completed: false,
                    last_data: now,
                    probe_expected: None,
                });
                m.probe_expected = Some(unscheduled_sent);
                m.granted = m.granted.max(unscheduled_sent);
                // Aeolus: any hole below the probe line was selectively
                // dropped — reclaim it immediately as scheduled traffic.
                if !m.completed {
                    Self::request_resends(m, unscheduled_sent, ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Proto>) {
        let token = Token::decode(token);
        if token.kind != TIMER_HOMA_RESEND {
            return;
        }
        let flow = FlowId(token.flow);
        let timeout = self.cfg.resend_timeout;
        let Some(m) = self.rx.get_mut(&flow) else { return };
        if m.completed {
            return;
        }
        let now = ctx.now();
        if now.saturating_since(m.last_data) >= timeout {
            // Stalled: request every provable hole up to the granted line.
            let upto = m.granted.min(m.size);
            Self::request_resends(m, upto, ctx);
        }
        ctx.timer_after(
            timeout,
            Token { kind: TIMER_HOMA_RESEND, generation: 0, flow: flow.0 }.encode(),
        );
    }
}

/// Install Homa (or Aeolus when `cfg.aeolus`) on every host.
pub fn install_homa(topo: &mut netsim::Topology<Proto>, cfg: &HomaCfg) {
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Box::new(HomaTransport::new(cfg.clone(), netsim::MSS_BYTES)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{star, Rate, RunLimits, SimDuration};

    fn setup(n: usize, aeolus: bool) -> (netsim::Topology<Proto>, HomaCfg) {
        let rate = Rate::gbps(10);
        let delay = SimDuration::from_micros(20);
        let topo = star::<Proto>(n, rate, delay, homa_switch_config(200_000, aeolus));
        let mut cfg = HomaCfg::new(50_000);
        cfg.aeolus = aeolus;
        (topo, cfg)
    }

    #[test]
    fn unscheduled_priority_by_message_size() {
        let cfg = HomaCfg::new(50_000);
        assert_eq!(cfg.unsched_priority(1_000), 1);
        assert_eq!(cfg.unsched_priority(10_000), 2);
        assert_eq!(cfg.unsched_priority(100_000), 3);
        assert_eq!(cfg.unsched_priority(10_000_000), 4);
        let ae = HomaCfg::new(50_000).aeolus();
        assert_eq!(ae.unsched_priority(1_000), 7);
    }

    #[test]
    fn small_message_completes_in_one_rtt() {
        let (mut topo, cfg) = setup(2, false);
        install_homa(&mut topo, &cfg);
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 10_000, SimTime::ZERO, 10_000);
        let report = topo.sim.run(RunLimits::default());
        assert_eq!(report.flows_completed, 1);
        // One-way: ~40us prop + serialization; no grant round needed.
        let fct = topo.sim.completion(f).unwrap();
        assert!(fct.as_nanos() < 100_000, "fct={fct}");
    }

    #[test]
    fn large_message_is_granted_through() {
        let (mut topo, cfg) = setup(2, false);
        install_homa(&mut topo, &cfg);
        let size = 2 << 20;
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], size, SimTime::ZERO, size);
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 1);
        let fct = topo.sim.completion(f).unwrap();
        let ideal = Rate::gbps(10).serialization_time(size).as_nanos();
        assert!(fct.as_nanos() < 4 * ideal, "fct={fct} ideal={ideal}ns");
    }

    #[test]
    fn srpt_prefers_shorter_message() {
        let (mut topo, cfg) = setup(3, false);
        install_homa(&mut topo, &cfg);
        // Long message first, then a short one mid-transfer: the short one
        // must finish far sooner than the long one.
        let long = topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 8 << 20, SimTime::ZERO, 1);
        let short = topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 300_000, SimTime(1_000_000), 1);
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 2);
        assert!(topo.sim.completion(short).unwrap() < topo.sim.completion(long).unwrap());
    }

    #[test]
    fn incast_burst_recovers_from_drops() {
        let (mut topo, cfg) = setup(9, false);
        install_homa(&mut topo, &cfg);
        // 8 × 100KB simultaneously into one host: the line-rate unscheduled
        // bursts overload the 200KB buffer; timeout recovery must finish
        // every message.
        for i in 0..8 {
            topo.sim.add_flow(topo.hosts[i], topo.hosts[8], 100_000, SimTime(i as u64 * 100), 1);
        }
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 8, "all incast messages must finish");
        assert!(topo.sim.total_counters().dropped > 0, "bursts should overflow the buffer");
    }

    #[test]
    fn aeolus_drops_only_unscheduled_and_recovers_via_probe() {
        let (mut topo, cfg) = setup(9, true);
        install_homa(&mut topo, &cfg);
        for i in 0..8 {
            topo.sim.add_flow(topo.hosts[i], topo.hosts[8], 100_000, SimTime(i as u64 * 100), 1);
        }
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 8);
        let c = topo.sim.total_counters();
        assert!(c.dropped > 0, "selective dropper must engage under incast");
    }
}
