//! Shared transport machinery: byte-interval bookkeeping, timer tokens,
//! and the TCP-family RTO arm/service helpers.

use std::collections::BTreeMap;

use netsim::trace::SanCheck;
use netsim::{Ctx, Payload, SanNote};

use crate::tcp_base::DctcpFlowTx;

/// A set of disjoint, coalesced half-open byte ranges `[start, end)`.
///
/// Used for receiver reassembly (which bytes arrived), sender scoreboards
/// (which bytes were SACKed) and the dual-loop "claimed" set (which bytes
/// either loop has transmitted at least once).
#[derive(Clone, Debug, Default)]
pub struct IntervalSet {
    // start -> end, non-overlapping, non-adjacent.
    ranges: BTreeMap<u64, u64>,
    covered: u64,
}

impl IntervalSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `[start, end)`, merging with neighbours. Returns how many
    /// previously-uncovered bytes became covered.
    pub fn insert(&mut self, start: u64, end: u64) -> u64 {
        if start >= end {
            return 0;
        }
        let mut new_start = start;
        let mut new_end = end;
        // Absorb any range that overlaps or touches [start, end).
        // Candidates begin at the last range starting at or before `end`.
        let mut absorbed: Vec<u64> = Vec::new();
        let mut absorbed_bytes = 0u64;
        for (&s, &e) in self.ranges.range(..=end) {
            if e < start {
                continue;
            }
            // Touching or overlapping.
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            absorbed.push(s);
            absorbed_bytes += e - s;
        }
        for s in absorbed {
            self.ranges.remove(&s);
        }
        self.ranges.insert(new_start, new_end);
        let gained = (new_end - new_start) - absorbed_bytes;
        self.covered += gained;
        gained
    }

    /// Total covered bytes.
    pub fn covered_bytes(&self) -> u64 {
        self.covered
    }

    /// Length of the contiguous covered prefix starting at 0.
    pub fn contiguous_prefix(&self) -> u64 {
        match self.ranges.first_key_value() {
            Some((&0, &e)) => e,
            _ => 0,
        }
    }

    /// True when `[0, size)` is fully covered.
    pub fn covers(&self, size: u64) -> bool {
        self.contiguous_prefix() >= size
    }

    /// Is `offset` covered?
    pub fn contains(&self, offset: u64) -> bool {
        self.ranges.range(..=offset).next_back().is_some_and(|(&s, &e)| s <= offset && offset < e)
    }

    /// The lowest uncovered range within `[from, limit)`, if any.
    pub fn first_gap(&self, from: u64, limit: u64) -> Option<(u64, u64)> {
        if from >= limit {
            return None;
        }
        let mut cursor = from;
        // Extend cursor through any range covering it.
        if let Some((&s, &e)) = self.ranges.range(..=cursor).next_back() {
            if s <= cursor && cursor < e {
                cursor = e;
            }
        }
        while cursor < limit {
            match self.ranges.range(cursor..).next() {
                Some((&s, &e)) => {
                    if s > cursor {
                        return Some((cursor, s.min(limit)));
                    }
                    cursor = e;
                }
                None => return Some((cursor, limit)),
            }
        }
        None
    }

    /// The highest uncovered range within `[0, limit)`, if any.
    pub fn last_gap(&self, limit: u64) -> Option<(u64, u64)> {
        if limit == 0 {
            return None;
        }
        let mut cursor = limit;
        // Walk ranges from the top down.
        for (&s, &e) in self.ranges.range(..limit).rev() {
            if e >= cursor {
                // Range covers up to (or beyond) the cursor: skip below it.
                cursor = s;
                if cursor == 0 {
                    return None;
                }
                continue;
            }
            return Some((e, cursor));
        }
        if cursor > 0 {
            Some((0, cursor))
        } else {
            None
        }
    }

    /// Iterate covered ranges in order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().map(|(&s, &e)| (s, e))
    }

    /// Number of disjoint ranges (diagnostics).
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }
}

/// Timer token encoding: `[kind: 8][generation: 16][flow: 40]`.
///
/// Transports key timers by flow and kind; the generation implements lazy
/// cancellation (bump it and stale timers no longer match).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: u8,
    pub generation: u16,
    pub flow: u64,
}

impl Token {
    /// Pack into the u64 the engine carries.
    pub fn encode(self) -> u64 {
        debug_assert!(self.flow < (1 << 40), "flow id exceeds 40 bits");
        ((self.kind as u64) << 56) | ((self.generation as u64) << 40) | self.flow
    }

    /// Unpack.
    pub fn decode(raw: u64) -> Self {
        Token {
            kind: (raw >> 56) as u8,
            generation: ((raw >> 40) & 0xFFFF) as u16,
            flow: raw & ((1 << 40) - 1),
        }
    }
}

/// Timer kind shared by every TCP-family transport: the retransmission
/// timeout armed by [`arm_rto`] and serviced by [`service_rto`].
pub const TIMER_RTO: u8 = 1;

/// The RTO timer token for `flow`. The generation is always 0: RTO timers
/// are never invalidated wholesale — stale fires are filtered by comparing
/// against the flow's live deadline in [`service_rto`].
pub fn rto_token(flow: u64) -> u64 {
    Token { kind: TIMER_RTO, generation: 0, flow }.encode()
}

/// simsan probe shared by [`arm_rto`] and [`service_rto`]: every live
/// TCP-family sender must hold a positive congestion window and only ever
/// advance its cumulative ACK. Queues ledger notes via [`Ctx::san_note`]
/// (one branch when the sanitizer is off); never schedules anything, so
/// sanitized runs stay byte-identical.
fn san_probe<P: Payload>(flow: &DctcpFlowTx, ctx: &mut Ctx<'_, P>) {
    if !ctx.sanitizing() {
        return;
    }
    if flow.cwnd_bytes() == 0 {
        ctx.san_note(SanNote::Violation {
            check: SanCheck::TransportConservation,
            flow: flow.id.0,
            expected: 1,
            actual: 0,
        });
    }
    ctx.san_note(SanNote::AckAdvance { flow: flow.id.0, cum_acked: flow.cum_acked() });
}

/// (Re-)arm the RTO timer at `flow`'s current deadline. No-op for finished
/// flows. Call after every pump that may have started or moved the
/// deadline; timers cannot be cancelled, so extra arms are harmless.
pub fn arm_rto<P: Payload>(flow: &DctcpFlowTx, ctx: &mut Ctx<'_, P>) {
    if !flow.is_done() {
        san_probe(flow, ctx);
        ctx.timer_at(flow.rto_deadline(), rto_token(flow.id.0));
    }
}

/// Service a fired RTO timer for `flow`: ignore fires for finished flows,
/// go back to sleep when the deadline has moved (ACK progress re-arms it),
/// and otherwise apply the timeout. Returns true when the timeout fired —
/// the caller must then pump the flow, which also re-arms the timer.
pub fn service_rto<P: Payload>(flow: &mut DctcpFlowTx, ctx: &mut Ctx<'_, P>) -> bool {
    if flow.is_done() {
        return false;
    }
    let now = ctx.now();
    san_probe(flow, ctx);
    if now < flow.rto_deadline() {
        ctx.timer_at(flow.rto_deadline(), rto_token(flow.id.0));
        return false;
    }
    flow.on_rto(now);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rto_helpers_arm_filter_and_fire() {
        use crate::tcp_base::TcpCfg;
        use netsim::host::Effects;
        use netsim::{FlowId, HostId, NoPayload, SimDuration, SimTime};

        let cfg = TcpCfg::new(SimDuration::from_micros(80));
        let min_rto = cfg.min_rto;
        let mut flow = DctcpFlowTx::new(FlowId(3), HostId(0), HostId(1), 1_000_000, cfg);
        // Sending arms the deadline.
        assert!(flow.next_segment(SimTime::ZERO).is_some());
        let deadline = flow.rto_deadline();
        assert_eq!(deadline, SimTime::ZERO + min_rto);

        // arm_rto arms exactly one timer at the live deadline.
        let mut fx = Effects::<NoPayload>::default();
        arm_rto(&flow, &mut Ctx::new(SimTime::ZERO, HostId(0), &mut fx));
        let (_, timers, _) = fx.into_parts();
        assert_eq!(timers, vec![(deadline, rto_token(3))]);

        // A fire before the deadline is stale: no timeout taken, the timer
        // goes back to sleep until the live deadline.
        let mut fx = Effects::<NoPayload>::default();
        assert!(!service_rto(&mut flow, &mut Ctx::new(SimTime(1), HostId(0), &mut fx)));
        assert_eq!(flow.rto_deadline(), deadline, "stale fire must not touch the flow");
        let (_, timers, _) = fx.into_parts();
        assert_eq!(timers, vec![(deadline, rto_token(3))]);

        // At the deadline the timeout fires and backs the deadline off;
        // the caller is told to pump (which re-arms).
        let mut fx = Effects::<NoPayload>::default();
        assert!(service_rto(&mut flow, &mut Ctx::new(deadline, HostId(0), &mut fx)));
        assert!(flow.rto_deadline() > deadline, "timeout must back the deadline off");
    }

    #[test]
    fn rto_token_layout_is_stable() {
        let t = Token::decode(rto_token((1 << 40) - 1));
        assert_eq!(t, Token { kind: TIMER_RTO, generation: 0, flow: (1 << 40) - 1 });
    }

    #[test]
    fn insert_and_coalesce() {
        let mut s = IntervalSet::new();
        assert_eq!(s.insert(0, 10), 10);
        assert_eq!(s.insert(20, 30), 10);
        assert_eq!(s.range_count(), 2);
        // Bridge the gap: coalesces to one range.
        assert_eq!(s.insert(10, 20), 10);
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.contiguous_prefix(), 30);
        assert_eq!(s.covered_bytes(), 30);
    }

    #[test]
    fn overlapping_insert_counts_only_new_bytes() {
        let mut s = IntervalSet::new();
        s.insert(0, 100);
        assert_eq!(s.insert(50, 150), 50);
        assert_eq!(s.insert(0, 150), 0);
        assert_eq!(s.covered_bytes(), 150);
    }

    #[test]
    fn adjacent_ranges_merge() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(20, 30);
        assert_eq!(s.range_count(), 1);
        assert!(s.contains(10) && s.contains(29) && !s.contains(30) && !s.contains(9));
    }

    #[test]
    fn first_gap_walks_holes() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.first_gap(0, 100), Some((0, 10)));
        assert_eq!(s.first_gap(10, 100), Some((20, 30)));
        assert_eq!(s.first_gap(35, 100), Some((40, 100)));
        assert_eq!(s.first_gap(15, 18), None);
        s.insert(0, 10);
        assert_eq!(s.first_gap(0, 100), Some((20, 30)));
    }

    #[test]
    fn first_gap_respects_limit() {
        let mut s = IntervalSet::new();
        s.insert(0, 10);
        assert_eq!(s.first_gap(0, 10), None);
        assert_eq!(s.first_gap(0, 15), Some((10, 15)));
    }

    #[test]
    fn last_gap_finds_highest_hole() {
        let mut s = IntervalSet::new();
        assert_eq!(s.last_gap(100), Some((0, 100)));
        s.insert(90, 100);
        assert_eq!(s.last_gap(100), Some((0, 90)));
        s.insert(50, 60);
        assert_eq!(s.last_gap(100), Some((60, 90)));
        s.insert(60, 90);
        assert_eq!(s.last_gap(100), Some((0, 50)));
        s.insert(0, 50);
        assert_eq!(s.last_gap(100), None);
    }

    #[test]
    fn last_gap_with_range_straddling_limit() {
        let mut s = IntervalSet::new();
        s.insert(40, 200);
        assert_eq!(s.last_gap(100), Some((0, 40)));
        assert_eq!(s.last_gap(40), Some((0, 40)));
        assert_eq!(s.last_gap(30), Some((0, 30)));
    }

    #[test]
    fn covers_needs_contiguity_from_zero() {
        let mut s = IntervalSet::new();
        s.insert(1, 100);
        assert!(!s.covers(100));
        s.insert(0, 1);
        assert!(s.covers(100));
    }

    #[test]
    fn token_roundtrip() {
        let t = Token { kind: 3, generation: 65535, flow: (1 << 40) - 1 };
        assert_eq!(Token::decode(t.encode()), t);
        let z = Token { kind: 0, generation: 0, flow: 0 };
        assert_eq!(Token::decode(z.encode()), z);
    }

    /// Covered bytes always equals the brute-force union size, and gaps
    /// returned never overlap covered ranges. Deterministic seeded sweep
    /// mirroring the proptest strategy below.
    #[test]
    fn interval_set_matches_brute_force_seeded() {
        for seed in 0..32u64 {
            let mut rng = netsim::Pcg32::seed_from_u64(seed);
            let mut s = IntervalSet::new();
            let mut brute = vec![false; 300];
            for _ in 0..rng.gen_index(40) {
                let start = rng.gen_range(200);
                let len = 1 + rng.gen_range(49);
                let end = start + len;
                s.insert(start, end);
                for slot in brute.iter_mut().take(end as usize).skip(start as usize) {
                    *slot = true;
                }
            }
            let expect = brute.iter().filter(|&&b| b).count() as u64;
            assert_eq!(s.covered_bytes(), expect, "seed {seed}");
            let prefix = brute.iter().take_while(|&&b| b).count() as u64;
            assert_eq!(s.contiguous_prefix(), prefix, "seed {seed}");
            // first_gap over the whole domain agrees with brute force.
            let gap = s.first_gap(0, 300);
            let brute_gap_start = brute.iter().position(|&b| !b).map(|i| i as u64);
            assert_eq!(gap.map(|g| g.0), brute_gap_start, "seed {seed}");
            // last_gap end agrees with brute force.
            let lgap = s.last_gap(300);
            let brute_lgap_end = brute.iter().rposition(|&b| !b).map(|i| i as u64 + 1);
            assert_eq!(lgap.map(|g| g.1), brute_lgap_end, "seed {seed}");
        }
    }

    /// contains() agrees with brute force at every point.
    #[test]
    fn contains_matches_brute_force_seeded() {
        for seed in 0..32u64 {
            let mut rng = netsim::Pcg32::seed_from_u64(seed);
            let mut s = IntervalSet::new();
            let mut brute = [false; 130];
            for _ in 0..rng.gen_index(20) {
                let start = rng.gen_range(100);
                let len = 1 + rng.gen_range(19);
                s.insert(start, start + len);
                for slot in brute.iter_mut().take((start + len) as usize).skip(start as usize) {
                    *slot = true;
                }
            }
            let probe = rng.gen_range(120);
            assert_eq!(s.contains(probe), brute[probe as usize], "seed {seed} probe {probe}");
        }
    }

    /// The original property-based pair. Requires the `proptest` feature
    /// *and* the `proptest` dev-dependency restored in Cargo.toml.
    #[cfg(feature = "proptest")]
    mod property_based {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Covered bytes always equals the brute-force union size,
            /// and gaps returned never overlap covered ranges.
            #[test]
            fn interval_set_matches_brute_force(ops in proptest::collection::vec((0u64..200, 1u64..50), 0..40)) {
                let mut s = IntervalSet::new();
                let mut brute = vec![false; 300];
                for (start, len) in ops {
                    let end = start + len;
                    s.insert(start, end);
                    for slot in brute.iter_mut().take(end as usize).skip(start as usize) {
                        *slot = true;
                    }
                }
                let expect = brute.iter().filter(|&&b| b).count() as u64;
                prop_assert_eq!(s.covered_bytes(), expect);
                let prefix = brute.iter().take_while(|&&b| b).count() as u64;
                prop_assert_eq!(s.contiguous_prefix(), prefix);
                let gap = s.first_gap(0, 300);
                let brute_gap_start = brute.iter().position(|&b| !b).map(|i| i as u64);
                prop_assert_eq!(gap.map(|g| g.0), brute_gap_start);
                let lgap = s.last_gap(300);
                let brute_lgap_end = brute.iter().rposition(|&b| !b).map(|i| i as u64 + 1);
                prop_assert_eq!(lgap.map(|g| g.1), brute_lgap_end);
            }

            /// contains() agrees with brute force at every point.
            #[test]
            fn contains_matches_brute_force(ops in proptest::collection::vec((0u64..100, 1u64..20), 0..20), probe in 0u64..120) {
                let mut s = IntervalSet::new();
                let mut brute = vec![false; 130];
                for (start, len) in ops {
                    s.insert(start, start + len);
                    for slot in brute.iter_mut().take((start + len) as usize).skip(start as usize) {
                        *slot = true;
                    }
                }
                prop_assert_eq!(s.contains(probe), brute[probe as usize]);
            }
        }
    }
}
