//! PPT over HPCC — the appendix-B integration sketch, implemented.
//!
//! The paper (appendix B) suggests PPT's design can serve as a building
//! block for INT-based transports: "one may open a PPT LCP loop to send
//! low-priority opportunistic packets whenever HPCC's estimated in-flight
//! bytes are smaller than BDP and use PPT's buffer-aware scheduling to
//! prioritize small flows over large ones". This module does exactly
//! that: the HCP loop is the HPCC window law over the shared reliability
//! engine; the LCP trigger is U < `u_open_threshold` (estimated inflight
//! below the link's capacity-delay product); everything else — EWD, loop
//! expiry, ECN protection, mirror tagging — is PPT's.

use std::collections::BTreeMap;

use netsim::{Ctx, Ecn, FlowDesc, FlowId, Packet, SimDuration, Transport};
use ppt_core::{FlowIdentifier, LcpAction, LcpLoop, LoopTrigger, MirrorTagger, PptConfig};

use crate::common::{arm_rto, service_rto, Token, TIMER_RTO};
use crate::ppt::{TIMER_LCP_EXPIRY, TIMER_LCP_PACE};
use crate::proto::{DataHdr, Proto};
use crate::rx::TcpRx;
use crate::tcp_base::{CcMode, DctcpFlowTx, HpccCc, TcpCfg};

/// Open the LCP loop when HPCC's inflight estimate falls below this
/// fraction of capacity (the appendix's "in-flight bytes smaller than
/// BDP" condition, with a little hysteresis).
pub const DEFAULT_U_OPEN_THRESHOLD: f64 = 0.90;

struct HpccPptFlow {
    hcp: DctcpFlowTx,
    identified_large: bool,
    lcp: Option<LcpLoop>,
    lcp_gen: u16,
    pace_remaining: u64,
    pace_interval: SimDuration,
}

/// The PPT-over-HPCC endpoint.
pub struct HpccPptTransport {
    tcp: TcpCfg,
    cfg: PptConfig,
    bdp_bytes: u64,
    u_open_threshold: f64,
    identifier: FlowIdentifier,
    tagger: MirrorTagger,
    tx: BTreeMap<FlowId, HpccPptFlow>,
    rx: BTreeMap<FlowId, TcpRx>,
}

impl HpccPptTransport {
    /// New endpoint; `bdp_bytes` sizes HPCC's line-rate initial window.
    pub fn new(tcp: TcpCfg, cfg: PptConfig, bdp_bytes: u64) -> Self {
        HpccPptTransport {
            identifier: FlowIdentifier { threshold_bytes: cfg.ident_threshold_bytes },
            tagger: MirrorTagger::new(cfg.demotion_thresholds.clone()),
            tcp,
            cfg,
            bdp_bytes,
            u_open_threshold: DEFAULT_U_OPEN_THRESHOLD,
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
        }
    }

    fn pump_hcp(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) {
        let now = ctx.now();
        let Some(f) = self.tx.get_mut(&id) else { return };
        let prio = self.tagger.hcp_priority(f.identified_large, f.hcp.bytes_sent);
        let (src, dst, size) = (f.hcp.src, f.hcp.dst, f.hcp.size);
        while let Some(seg) = f.hcp.next_segment(now) {
            if seg.retx {
                ctx.note_retransmit(id);
            }
            let hdr = DataHdr {
                offset: seg.offset,
                len: seg.len,
                msg_size: size,
                lcp: false,
                retx: seg.retx,
                sent_at: now,
                int: Some(Vec::new()),
            };
            let mut pkt = Packet::data(id, src, dst, seg.len, Proto::Data(hdr)).with_priority(prio);
            pkt.ecn = Ecn::not_capable(); // HPCC's HCP uses INT, not ECN
            ctx.send(pkt);
        }
        arm_rto(&f.hcp, ctx);
    }

    fn send_lcp_segment(&mut self, id: FlowId, ctx: &mut Ctx<'_, Proto>) -> bool {
        let mss = self.tcp.mss as u64;
        let send_buffer = self.cfg.send_buffer_bytes;
        let Some(f) = self.tx.get_mut(&id) else { return false };
        if f.hcp.is_done() {
            return false;
        }
        let buffer_end = f.hcp.size.min(f.hcp.cum_acked().saturating_add(send_buffer));
        let Some((gap_start, gap_end)) = f.hcp.claimed().last_gap(buffer_end) else {
            return false;
        };
        let start = gap_end.saturating_sub(mss).max(gap_start);
        let len = (gap_end - start) as u32;
        f.hcp.claimed_mut().insert(start, gap_end);
        f.hcp.add_sent_bytes(len as u64);
        let prio = self.tagger.lcp_priority(f.identified_large, f.hcp.bytes_sent);
        let hdr = DataHdr {
            offset: start,
            len,
            msg_size: f.hcp.size,
            lcp: true,
            retx: false,
            sent_at: ctx.now(),
            int: None,
        };
        let mut pkt =
            Packet::data(id, f.hcp.src, f.hcp.dst, len, Proto::Data(hdr)).with_priority(prio);
        // The LCP loop keeps PPT's ECN protection.
        pkt.ecn = Ecn::capable();
        ctx.send(pkt);
        true
    }

    fn open_lcp(&mut self, id: FlowId, init_bytes: u64, ctx: &mut Ctx<'_, Proto>) {
        let mss = self.tcp.mss as u64;
        let rtt = self.cfg.base_rtt;
        {
            let Some(f) = self.tx.get_mut(&id) else { return };
            if f.lcp.is_some() || init_bytes < mss || f.hcp.is_done() {
                return;
            }
            f.lcp = Some(LcpLoop::open(LoopTrigger::FlowStart, init_bytes, ctx.now()));
            f.pace_remaining = init_bytes;
            let interval_ns = (rtt.as_nanos() as u128 * mss as u128 / init_bytes as u128) as u64;
            f.pace_interval = SimDuration::from_nanos(interval_ns.max(1));
        }
        let gen = self.tx[&id].lcp_gen;
        if self.send_lcp_segment(id, ctx) {
            if let Some(f) = self.tx.get_mut(&id) {
                f.pace_remaining = f.pace_remaining.saturating_sub(mss);
            }
            let interval = self.tx[&id].pace_interval;
            ctx.timer_after(
                interval,
                Token { kind: TIMER_LCP_PACE, generation: gen, flow: id.0 }.encode(),
            );
        }
        ctx.timer_after(
            rtt,
            Token { kind: TIMER_LCP_EXPIRY, generation: gen, flow: id.0 }.encode(),
        );
    }

    fn close_lcp(f: &mut HpccPptFlow) {
        f.lcp = None;
        f.lcp_gen = f.lcp_gen.wrapping_add(1);
        f.pace_remaining = 0;
    }
}

impl Transport<Proto> for HpccPptTransport {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Proto>) {
        let first_write = flow.first_write_bytes.min(self.cfg.send_buffer_bytes);
        let identified_large = self.identifier.is_large_at_start(first_write);
        let mut tcp = self.tcp.clone();
        tcp.init_cwnd_bytes = tcp.init_cwnd_bytes.max(self.bdp_bytes);
        let cc = HpccCc::new(tcp.base_rtt, tcp.init_cwnd_bytes).with_high_band_only();
        let hcp = DctcpFlowTx::new(flow.id, flow.src, flow.dst, flow.size_bytes, tcp)
            .with_cc_mode(CcMode::Hpcc(cc));
        self.tx.insert(
            flow.id,
            HpccPptFlow {
                hcp,
                identified_large,
                lcp: None,
                lcp_gen: 0,
                pace_remaining: 0,
                pace_interval: SimDuration::ZERO,
            },
        );
        self.pump_hcp(flow.id, ctx);
        // HPCC already starts at line rate (IW = BDP), so there is no
        // case-1 startup gap; the LCP loop opens from the U-trigger below.
    }

    fn on_packet(&mut self, pkt: Packet<Proto>, ctx: &mut Ctx<'_, Proto>) {
        match &pkt.payload {
            Proto::Data(hdr) => {
                let rx = self
                    .rx
                    .entry(pkt.flow)
                    .or_insert_with(|| TcpRx::new(pkt.flow, pkt.src, hdr.msg_size, 2));
                let hdr = hdr.clone();
                if hdr.lcp {
                    rx.on_data(&pkt, &hdr, ctx);
                } else {
                    rx.on_data_with_int(&pkt, &hdr, ctx);
                }
            }
            Proto::Ack(ack) if ack.lcp => {
                let ack = ack.clone();
                let now = ctx.now();
                let send = {
                    let Some(f) = self.tx.get_mut(&pkt.flow) else { return };
                    f.hcp.on_lcp_ack(&ack, now);
                    if f.hcp.is_done() {
                        Self::close_lcp(f);
                        false
                    } else if let Some(lcp) = f.lcp.as_mut() {
                        lcp.on_low_priority_ack(ack.ece, now) == LcpAction::SendOne
                    } else {
                        false
                    }
                };
                if send {
                    self.send_lcp_segment(pkt.flow, ctx);
                }
            }
            Proto::Ack(ack) => {
                let ack = ack.clone();
                let now = ctx.now();
                let (done, open_with) = {
                    let Some(f) = self.tx.get_mut(&pkt.flow) else { return };
                    f.hcp.on_ack(&ack, now);
                    let done = f.hcp.is_done();
                    if done {
                        Self::close_lcp(f);
                    }
                    // Appendix-B trigger: HPCC's inflight estimate says the
                    // path has headroom.
                    let open = if !done && f.lcp.is_none() {
                        match f.hcp.cc_mode() {
                            CcMode::Hpcc(h)
                                if h.last_u > 0.0 && h.last_u < self.u_open_threshold =>
                            {
                                Some(self.bdp_bytes.saturating_sub(f.hcp.inflight_bytes()))
                            }
                            _ => None,
                        }
                    } else {
                        None
                    };
                    (done, open)
                };
                if !done {
                    self.pump_hcp(pkt.flow, ctx);
                    if let Some(init) = open_with {
                        self.open_lcp(pkt.flow, init, ctx);
                    }
                }
            }
            _ => unreachable!("HPCC-PPT endpoint received a non-TCP packet"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Proto>) {
        let token = Token::decode(token);
        let id = FlowId(token.flow);
        match token.kind {
            TIMER_RTO => {
                let Some(f) = self.tx.get_mut(&id) else { return };
                if service_rto(&mut f.hcp, ctx) {
                    self.pump_hcp(id, ctx);
                }
            }
            TIMER_LCP_PACE => {
                let mss = self.tcp.mss as u64;
                let proceed = {
                    let Some(f) = self.tx.get_mut(&id) else { return };
                    f.lcp.is_some() && f.lcp_gen == token.generation && f.pace_remaining > 0
                };
                if proceed && self.send_lcp_segment(id, ctx) {
                    let f = self.tx.get_mut(&id).expect("flow exists"); // simlint: allow(panic_hygiene)
                    f.pace_remaining = f.pace_remaining.saturating_sub(mss);
                    if f.pace_remaining > 0 {
                        let interval = f.pace_interval;
                        ctx.timer_after(
                            interval,
                            Token {
                                kind: TIMER_LCP_PACE,
                                generation: token.generation,
                                flow: id.0,
                            }
                            .encode(),
                        );
                    }
                }
            }
            TIMER_LCP_EXPIRY => {
                let rtt = self.cfg.base_rtt;
                let Some(f) = self.tx.get_mut(&id) else { return };
                if f.lcp_gen != token.generation {
                    return;
                }
                let Some(lcp) = f.lcp.as_ref() else { return };
                if lcp.is_expired(ctx.now(), rtt) || f.hcp.is_done() {
                    Self::close_lcp(f);
                } else {
                    ctx.timer_after(
                        rtt,
                        Token { kind: TIMER_LCP_EXPIRY, generation: token.generation, flow: id.0 }
                            .encode(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Install PPT-over-HPCC on every host.
pub fn install_hpcc_ppt(topo: &mut netsim::Topology<Proto>, tcp: &TcpCfg, cfg: &PptConfig) {
    let bdp = netsim::bdp_bytes(topo.edge_rate, topo.base_rtt);
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Box::new(HpccPptTransport::new(tcp.clone(), cfg.clone(), bdp)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{star, EcnRule, MarkScope, Rate, RunLimits, SimTime, SwitchConfig};

    /// Switch for PPT-over-HPCC: no ECN for the INT-driven HCP band, PPT's
    /// low threshold for the LCP band, push-out protection.
    fn hpcc_ppt_switch(buffer: u64, k_low: u64) -> SwitchConfig {
        let mut cfg = SwitchConfig::basic(buffer).with_push_out(true);
        for p in 4..8 {
            cfg.ecn[p] = Some(EcnRule { threshold_bytes: k_low, scope: MarkScope::Port });
        }
        cfg
    }

    #[test]
    fn flows_complete_and_lcp_band_is_used() {
        let rate = Rate::gbps(10);
        let mut topo = star::<Proto>(
            3,
            rate,
            netsim::SimDuration::from_micros(20),
            hpcc_ppt_switch(200_000, 40_000),
        );
        let cfg = PptConfig::new(rate, topo.base_rtt);
        let tcp = TcpCfg::new(topo.base_rtt);
        install_hpcc_ppt(&mut topo, &tcp, &cfg);
        topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 2 << 20, SimTime::ZERO, 2 << 20);
        topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 100_000, SimTime(300_000), 100_000);
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 2);
    }

    #[test]
    fn beats_plain_hpcc_under_mixed_load() {
        // A workload with idle gaps: the LCP loop should pick up slack.
        let rate = Rate::gbps(10);
        let size = 4u64 << 20;

        let mut a = star::<Proto>(
            2,
            rate,
            netsim::SimDuration::from_micros(20),
            hpcc_ppt_switch(200_000, 40_000),
        );
        let cfg = PptConfig::new(rate, a.base_rtt);
        let tcp = TcpCfg::new(a.base_rtt);
        install_hpcc_ppt(&mut a, &tcp, &cfg);
        let f = a.sim.add_flow(a.hosts[0], a.hosts[1], size, SimTime::ZERO, size);
        a.sim.run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        let ppt_fct = a.sim.completion(f).expect("hpcc-ppt done");

        let mut b = star::<Proto>(
            2,
            rate,
            netsim::SimDuration::from_micros(20),
            SwitchConfig::basic(200_000),
        );
        crate::hpcc::install_hpcc(&mut b, &tcp);
        let g = b.sim.add_flow(b.hosts[0], b.hosts[1], size, SimTime::ZERO, size);
        b.sim.run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        let hpcc_fct = b.sim.completion(g).expect("hpcc done");

        // HPCC already starts at line rate, so gains are modest — but the
        // variant must never be slower than ~5% of plain HPCC.
        assert!(
            ppt_fct.as_nanos() as f64 <= hpcc_fct.as_nanos() as f64 * 1.05,
            "hpcc-ppt {ppt_fct} vs hpcc {hpcc_fct}"
        );
    }
}
