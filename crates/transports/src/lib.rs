#![forbid(unsafe_code)]
//! # transports — protocol implementations on the netsim substrate
//!
//! Every transport the PPT paper evaluates, implemented from scratch:
//!
//! | module | scheme | role in the paper |
//! |---|---|---|
//! | [`dctcp`] | DCTCP | reactive baseline; PPT's HCP loop |
//! | [`ppt`] | **PPT** | the paper's contribution (dual-loop + scheduling) |
//! | [`rc3`] | RC3 | prior dual-loop reactive baseline |
//! | [`pias`] | PIAS | information-agnostic scheduling baseline |
//! | [`homa`] | Homa | proactive receiver-driven baseline |
//! | [`homa`] (Aeolus mode) | Aeolus | proactive pre-credit baseline (Homa + selective drop) |
//! | [`ndp`] | NDP | proactive trimming baseline |
//! | [`hpcc`] | HPCC | INT-based reactive baseline |
//! | [`swift`] | Swift-like delay CC and the PPT-over-Swift variant (Fig 14) |
//! | [`hypothetical`] | hypothetical DCTCP | the MW-oracle gap filler (§2.3) |
//!
//! All share one packet header type, [`proto::Proto`], so any scheme runs
//! on `Simulator<Proto>`.

pub mod common;
pub mod dctcp;
pub mod expresspass;
pub mod homa;
pub mod hpcc;
pub mod hpcc_ppt;
pub mod hypothetical;
pub mod ndp;
pub mod pias;
pub mod powertcp;
pub mod ppt;
pub mod proto;
pub mod rc3;
pub mod rx;
pub mod swift;
pub mod tcp_base;

pub use common::{IntervalSet, Token};
pub use dctcp::{install_dctcp, DctcpTransport, MwRecorder};
pub use expresspass::{install_expresspass, ExpressPassCfg, ExpressPassTransport};
pub use homa::{homa_switch_config, install_homa, HomaCfg, HomaTransport};
pub use hpcc::{install_hpcc, HpccTransport};
pub use hpcc_ppt::{install_hpcc_ppt, HpccPptTransport};
pub use hypothetical::{install_hypothetical, HypotheticalTransport};
pub use ndp::{install_ndp, NdpCfg, NdpTransport};
pub use pias::{install_pias, PiasCfg, PiasTransport};
pub use powertcp::{install_powertcp, PowerTcpTransport};
pub use ppt::{install_ppt, PptTransport};
pub use proto::{AckHdr, DataHdr, HomaHdr, IntHop, NdpHdr, Proto};
pub use rc3::{install_rc3, Rc3Cfg, Rc3Transport};
pub use rx::TcpRx;
pub use swift::{install_swift, install_swift_ppt, SwiftPptTransport, SwiftTransport};
pub use tcp_base::{
    AckOutcome, CcMode, CcState, DctcpFlowTx, HpccCc, PowerTcpCc, SegOut, SwiftCc, TcpCfg,
};
