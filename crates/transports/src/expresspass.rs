//! ExpressPass — credit-scheduled proactive transport (Table 1's
//! "Passive (1st RTT wasted)" row).
//!
//! Simplified to the properties the paper's comparison relies on:
//!
//! * the sender holds data until credits arrive — the first RTT carries
//!   only a credit request, so short flows pay a full extra RTT;
//! * the receiver paces credits at the downlink packet rate (here
//!   slightly de-rated by the credit-efficiency factor the real system
//!   converges to), round-robin across active flows;
//! * each credit releases exactly one data packet, so data queues stay
//!   near-empty by construction.
//!
//! The real system's switch-level credit throttling and feedback control
//! are folded into the receiver-side pacer: on a single-bottleneck path
//! (every topology here bottlenecks at the receiver downlink or a host
//! uplink) the two are equivalent in the steady state.

use std::collections::{BTreeMap, VecDeque};

use netsim::{Ctx, FlowDesc, FlowId, HostId, Packet, Rate, SimDuration, SimTime, Transport};

use crate::common::{IntervalSet, Token};
use crate::proto::{NdpHdr, Proto};

/// Credit pacer tick.
pub const TIMER_EP_CREDIT: u8 = 10;
/// Receiver stall watchdog.
pub const TIMER_EP_WATCHDOG: u8 = 11;
/// Sender-side request retry (covers a lost credit request).
pub const TIMER_EP_REQUEST: u8 = 12;

/// ExpressPass configuration.
#[derive(Clone, Debug)]
pub struct ExpressPassCfg {
    /// Downlink rate credits are paced against.
    pub edge_rate: Rate,
    /// Credit pacing de-rate (the real system's feedback loop converges
    /// close to full utilization; 0.95 is generous and stable).
    pub credit_rate_factor: f64,
    /// Watchdog for stalled incomplete flows.
    pub watchdog: SimDuration,
}

struct EpTx {
    id: FlowId,
    src: HostId,
    dst: HostId,
    size: u64,
    sent: u64,
}

struct EpRx {
    peer: HostId,
    size: u64,
    received: IntervalSet,
    completed: bool,
    /// Credits already issued (bytes authorized).
    credited: u64,
    last_activity: SimTime,
}

/// The ExpressPass endpoint.
///
/// Wire format reuse: credit requests, credits and data ride the
/// [`NdpHdr`] shapes (`Pull` = credit, `Nack` = credit request carrying
/// the message size in `len`'s place is *not* done — requests use
/// `Data { len: 0 }`), since the semantics map one-to-one and the
/// simulator never inspects these fields.
pub struct ExpressPassTransport {
    cfg: ExpressPassCfg,
    mss: u32,
    tx: BTreeMap<FlowId, EpTx>,
    rx: BTreeMap<FlowId, EpRx>,
    credit_queue: VecDeque<FlowId>,
    pacer_armed: bool,
}

impl ExpressPassTransport {
    /// New endpoint.
    pub fn new(cfg: ExpressPassCfg, mss: u32) -> Self {
        ExpressPassTransport {
            cfg,
            mss,
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
            credit_queue: VecDeque::new(),
            pacer_armed: false,
        }
    }

    fn credit_interval(&self) -> SimDuration {
        let base = self.cfg.edge_rate.serialization_time(netsim::MTU_BYTES as u64);
        SimDuration::from_nanos((base.as_nanos() as f64 / self.cfg.credit_rate_factor) as u64)
    }

    fn arm_pacer(&mut self, ctx: &mut Ctx<'_, Proto>) {
        if !self.pacer_armed && !self.credit_queue.is_empty() {
            self.pacer_armed = true;
            ctx.timer_after(
                self.credit_interval(),
                Token { kind: TIMER_EP_CREDIT, generation: 0, flow: 0 }.encode(),
            );
        }
    }

    fn pacer_tick(&mut self, ctx: &mut Ctx<'_, Proto>) {
        let host = ctx.host();
        let mss = self.mss as u64;
        self.pacer_armed = false;
        while let Some(flow) = self.credit_queue.pop_front() {
            let Some(m) = self.rx.get_mut(&flow) else { continue };
            if m.completed || m.credited >= m.size {
                continue;
            }
            m.credited = (m.credited + mss).min(m.size);
            let peer = m.peer;
            ctx.send(Packet::ctrl(flow, host, peer, Proto::Ndp(NdpHdr::Pull)));
            // Still hungry? go to the back of the round-robin.
            if m.credited < m.size {
                self.credit_queue.push_back(flow);
            }
            break;
        }
        self.arm_pacer(ctx);
    }
}

impl Transport<Proto> for ExpressPassTransport {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Proto>) {
        self.tx.insert(
            flow.id,
            EpTx { id: flow.id, src: flow.src, dst: flow.dst, size: flow.size_bytes, sent: 0 },
        );
        // Credit request only — the 1st RTT carries no data.
        let hdr = NdpHdr::Data { offset: 0, len: 0, msg_size: flow.size_bytes, retx: false };
        ctx.send(Packet::ctrl(flow.id, flow.src, flow.dst, Proto::Ndp(hdr)));
        // Retry the request if no credit ever arrives (lost request).
        ctx.timer_after(
            self.cfg.watchdog,
            Token { kind: TIMER_EP_REQUEST, generation: 0, flow: flow.id.0 }.encode(),
        );
    }

    fn on_packet(&mut self, pkt: Packet<Proto>, ctx: &mut Ctx<'_, Proto>) {
        let Proto::Ndp(hdr) = &pkt.payload else {
            unreachable!("ExpressPass endpoint received an alien packet")
        };
        match hdr {
            // Credit request (len == 0) or data.
            NdpHdr::Data { offset, len, msg_size, retx } => {
                let (offset, len, msg_size, retx) = (*offset, *len, *msg_size, *retx);
                let flow = pkt.flow;
                let peer = pkt.src;
                let now = ctx.now();
                let watchdog = self.cfg.watchdog;
                let first = !self.rx.contains_key(&flow);
                let m = self.rx.entry(flow).or_insert_with(|| EpRx {
                    peer,
                    size: msg_size,
                    received: IntervalSet::new(),
                    completed: false,
                    credited: 0,
                    last_activity: now,
                });
                m.last_activity = now;
                if len == 0 {
                    // Request: admit to the credit round-robin. A *retried*
                    // request means the sender is still at byte zero — any
                    // credits we issued were lost, so re-issue from what we
                    // actually hold. (Without this, a lost credit deadlocks:
                    // retries refresh `last_activity`, muzzling the stall
                    // watchdog, while `credited` claims the flow is served.)
                    if retx && !m.completed {
                        m.credited = m.received.covered_bytes();
                    }
                    if first || m.credited < m.size {
                        self.credit_queue.push_back(flow);
                        self.arm_pacer(ctx);
                    }
                    if first {
                        ctx.timer_after(
                            watchdog,
                            Token { kind: TIMER_EP_WATCHDOG, generation: 0, flow: flow.0 }.encode(),
                        );
                    }
                    return;
                }
                m.received.insert(offset, offset + len as u64);
                if !m.completed && m.received.covers(m.size) {
                    m.completed = true;
                    ctx.flow_completed(flow);
                }
            }
            // Recovery: resend a lost range (stall watchdog path).
            NdpHdr::Nack { offset, len } => {
                let (offset, len) = (*offset, *len);
                let mss = self.mss as u64;
                let Some(tx) = self.tx.get(&pkt.flow) else { return };
                let mut off = offset;
                let end = (offset + len as u64).min(tx.size);
                while off < end {
                    let take = ((end - off).min(mss)) as u32;
                    ctx.note_retransmit(tx.id);
                    let hdr =
                        NdpHdr::Data { offset: off, len: take, msg_size: tx.size, retx: true };
                    let p = Packet::data(tx.id, tx.src, tx.dst, take, Proto::Ndp(hdr))
                        .with_priority(1)
                        .without_ecn();
                    ctx.send(p);
                    off += take as u64;
                }
            }
            // Credit: release one data packet.
            NdpHdr::Pull => {
                let mss = self.mss as u64;
                let Some(tx) = self.tx.get_mut(&pkt.flow) else { return };
                if tx.sent < tx.size {
                    let len = ((tx.size - tx.sent).min(mss)) as u32;
                    let hdr = NdpHdr::Data { offset: tx.sent, len, msg_size: tx.size, retx: false };
                    let p = Packet::data(tx.id, tx.src, tx.dst, len, Proto::Ndp(hdr))
                        .with_priority(1)
                        .without_ecn();
                    tx.sent += len as u64;
                    ctx.send(p);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, Proto>) {
        let token = Token::decode(token);
        match token.kind {
            TIMER_EP_CREDIT => self.pacer_tick(ctx),
            TIMER_EP_REQUEST => {
                let flow = FlowId(token.flow);
                let Some(tx) = self.tx.get(&flow) else { return };
                if tx.sent == 0 && tx.size > 0 {
                    let hdr = NdpHdr::Data { offset: 0, len: 0, msg_size: tx.size, retx: true };
                    ctx.send(Packet::ctrl(tx.id, tx.src, tx.dst, Proto::Ndp(hdr)));
                    ctx.timer_after(
                        self.cfg.watchdog,
                        Token { kind: TIMER_EP_REQUEST, generation: 0, flow: token.flow }.encode(),
                    );
                }
            }
            TIMER_EP_WATCHDOG => {
                let flow = FlowId(token.flow);
                let watchdog = self.cfg.watchdog;
                let stalled = {
                    let Some(m) = self.rx.get_mut(&flow) else { return };
                    if m.completed {
                        return;
                    }
                    ctx.now().saturating_since(m.last_activity) >= watchdog
                };
                if stalled {
                    // Ask the sender to resend every hole below the credit
                    // line — its `sent` pointer only moves forward and the
                    // pacer cannot re-issue spent credits, so recovery must
                    // be an explicit NACK (this also covers lost credits:
                    // the sender treats a NACK as authorization to (re)send
                    // the range).
                    let host = ctx.host();
                    let (peer, gaps) = {
                        let m = self.rx.get(&flow).expect("checked above"); // simlint: allow(panic_hygiene)
                        let mut gaps = Vec::new();
                        let mut cursor = 0;
                        let upto = m.received.covered_bytes().max(m.credited).min(m.size);
                        while let Some((s, e)) = m.received.first_gap(cursor, upto) {
                            gaps.push((s, (e - s).min(u32::MAX as u64) as u32));
                            cursor = e;
                        }
                        (m.peer, gaps)
                    };
                    for (off, len) in gaps {
                        ctx.send(Packet::ctrl(
                            flow,
                            host,
                            peer,
                            Proto::Ndp(NdpHdr::Nack { offset: off, len }),
                        ));
                    }
                    self.credit_queue.push_back(flow);
                    self.arm_pacer(ctx);
                }
                ctx.timer_after(
                    watchdog,
                    Token { kind: TIMER_EP_WATCHDOG, generation: 0, flow: token.flow }.encode(),
                );
            }
            _ => {}
        }
    }
}

/// Install ExpressPass on every host.
pub fn install_expresspass(topo: &mut netsim::Topology<Proto>, watchdog: SimDuration) {
    let cfg = ExpressPassCfg { edge_rate: topo.edge_rate, credit_rate_factor: 0.95, watchdog };
    for &h in &topo.hosts.clone() {
        topo.sim
            .set_transport(h, Box::new(ExpressPassTransport::new(cfg.clone(), netsim::MSS_BYTES)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{star, RunLimits, SwitchConfig};

    fn setup(n: usize) -> netsim::Topology<Proto> {
        star::<Proto>(n, Rate::gbps(10), SimDuration::from_micros(20), SwitchConfig::basic(200_000))
    }

    #[test]
    fn first_rtt_is_wasted_by_design() {
        let mut topo = setup(2);
        install_expresspass(&mut topo, SimDuration::from_millis(1));
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 1_000, SimTime::ZERO, 1_000);
        topo.sim.run(RunLimits::default());
        let fct = topo.sim.completion(f).unwrap();
        // Request (1/2 RTT) + credit (1/2 RTT) + data (1/2 RTT) > 1 RTT.
        assert!(fct.as_nanos() > 80_000 + 40_000, "fct={fct} must include the credit round-trip");
    }

    #[test]
    fn credit_clocking_keeps_queues_empty_under_incast() {
        let mut topo = setup(9);
        install_expresspass(&mut topo, SimDuration::from_millis(1));
        for i in 0..8 {
            topo.sim.add_flow(topo.hosts[i], topo.hosts[8], 200_000, SimTime(i as u64 * 100), 1);
        }
        let report = topo
            .sim
            .run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        assert_eq!(report.flows_completed, 8);
        assert_eq!(topo.sim.total_counters().dropped, 0, "credit clocking must prevent drops");
    }

    #[test]
    fn large_flow_throughput_near_line_rate() {
        let mut topo = setup(2);
        install_expresspass(&mut topo, SimDuration::from_millis(1));
        let size = 4 << 20;
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], size, SimTime::ZERO, size);
        topo.sim.run(RunLimits { max_time: SimTime(60_000_000_000), max_events: 2_000_000_000 });
        let fct = topo.sim.completion(f).unwrap().as_nanos() as f64;
        let ideal = Rate::gbps(10).serialization_time(size).as_nanos() as f64;
        assert!(fct / ideal < 1.5, "{}x ideal", fct / ideal);
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use crate::proto::Proto;
    use netsim::{star, RunLimits, SwitchConfig};

    /// Lossy environment: a 30KB switch buffer forces request/credit/data
    /// losses; the two watchdogs must still complete every flow.
    #[test]
    fn expresspass_survives_heavy_loss() {
        let mut topo = star::<Proto>(
            6,
            Rate::gbps(10),
            SimDuration::from_micros(20),
            SwitchConfig::basic(30_000),
        );
        install_expresspass(&mut topo, SimDuration::from_millis(1));
        for i in 0..40u64 {
            let src = (i % 5) as usize;
            topo.sim.add_flow(
                topo.hosts[src],
                topo.hosts[5],
                10_000 + i * 37_000,
                netsim::SimTime(i * 20_000),
                1,
            );
        }
        let report = topo.sim.run(RunLimits {
            max_time: netsim::SimTime(60_000_000_000),
            max_events: 2_000_000_000,
        });
        assert_eq!(
            report.flows_completed,
            40,
            "ExpressPass stalled {} flows",
            40 - report.flows_completed
        );
    }
}
