//! Fig 14: PPT's design as a building block for a delay-based transport
//! (Swift-like): dual loop + scheduling on top of delay CC.

use ppt::harness::{Scheme, TopoKind};
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 14",
        "[Simulation] PPT over a delay-based transport (Swift-like)",
        "144-host leaf-spine 40/100G, Web Search, load 0.5",
    );
    let topo = TopoKind::Oversubscribed;
    let flows =
        bench::workload_all_to_all(topo, SizeDistribution::web_search(), 0.5, bench::n_flows(1200));
    bench::fct_header();
    let base = bench::run_and_print(topo, Scheme::Swift, &flows);
    let ppt = bench::run_and_print(topo, Scheme::SwiftPpt, &flows);
    println!(
        "\nreductions vs plain delay-based: overall {:+.1}%, small avg {:+.1}%, small p99 {:+.1}%, large {:+.1}%",
        (ppt.overall_avg_us / base.overall_avg_us - 1.0) * 100.0,
        (ppt.small_avg_us / base.small_avg_us - 1.0) * 100.0,
        (ppt.small_p99_us / base.small_p99_us - 1.0) * 100.0,
        (ppt.large_avg_us / base.large_avg_us - 1.0) * 100.0,
    );
    println!("paper: -16.7% overall, -56.5%/-72.1% small avg/tail, -11% large");
}
