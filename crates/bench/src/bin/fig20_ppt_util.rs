//! Fig 20: link utilization — PPT matches the hypothetical DCTCP and
//! beats plain DCTCP (which dips to ~25%).

use ppt::harness::{run_experiment_with, Experiment, Scheme, TopoKind};
use ppt::netsim::{NodeId, SimDuration, SimTime};
use ppt::stats::{mean_utilization, utilization_series};
use ppt::workloads::{incast, SizeDistribution, WorkloadSpec};

fn main() {
    bench::banner(
        "Fig 20",
        "Link utilization: DCTCP vs hypothetical vs PPT",
        "2->1 at 40G, Web Search, load 0.5 (ideal 50%)",
    );
    let topo = TopoKind::Star { n: 3, rate_gbps: 40, delay_us: 10 };
    let spec = WorkloadSpec::new(
        SizeDistribution::web_search(),
        0.5,
        topo.edge_rate(),
        bench::n_flows(600),
        bench::seed(),
    );
    let flows = incast(2, &spec);
    println!("{:<28} {:>10} {:>10} {:>10}", "scheme", "mean util", "busy mean", "busy p25");
    for scheme in [Scheme::Dctcp, Scheme::Hypothetical(1.0), Scheme::Ppt] {
        let name = scheme.name();
        let mut exp = Experiment::new(topo, scheme, flows.clone());
        exp.env.k_high = 120_000;
        exp.env.k_low = 100_000;
        exp.env.port_buffer = 1_000_000;
        let mut sampler = None;
        let outcome = run_experiment_with(&exp, |t| {
            let port = t.sim.switch_port_towards(t.leaves[0], NodeId::Host(t.hosts[2])).unwrap();
            let link = t.sim.switch_port_link(t.leaves[0], port);
            sampler =
                Some(t.sim.sample_link(link, SimDuration::from_micros(100), SimTime(60_000_000)));
        });
        let series = utilization_series(outcome.sim.samples(sampler.unwrap()), topo.edge_rate());
        // Busy-period statistics (see fig01 for why: Poisson idle gaps
        // are not the scheme's fault).
        let busy: Vec<f64> = series
            .iter()
            .filter(|p| p.at_ns >= 2_000_000 && p.utilization > 0.05)
            .map(|p| p.utilization)
            .collect();
        let mut sorted = busy.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p25 = sorted[sorted.len() / 4];
        let busy_mean = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
        println!(
            "{:<28} {:>10.3} {:>10.3} {:>10.3}",
            name,
            mean_utilization(&series),
            busy_mean,
            p25
        );
    }
    println!("\npaper: PPT ≈ hypothetical ≈ 0.5; DCTCP dips to 0.25 (1.8x lower)");
}
