//! Figs 8 & 9: testbed 15-to-15 all-to-all FCT statistics vs load, for
//! the Web Search (Fig 8) and Data Mining (Fig 9) workloads.

use ppt::harness::TopoKind;
use ppt::workloads::SizeDistribution;

fn main() {
    let topo = TopoKind::PaperTestbed;
    for (fig, dist, default_flows) in [
        ("Fig 8", SizeDistribution::web_search(), 800),
        ("Fig 9", SizeDistribution::data_mining(), 250),
    ] {
        bench::banner(
            fig,
            &format!("[Testbed] 15-to-15, {} workload", dist.name()),
            "15 hosts, 10G, 80us RTT, RTOmin 10ms, loads 0.3-0.7",
        );
        for &load in &[0.3, 0.5, 0.7] {
            println!("\n-- load {load} --");
            let flows =
                bench::workload_all_to_all(topo, dist.clone(), load, bench::n_flows(default_flows));
            bench::fct_header();
            for scheme in bench::testbed_schemes() {
                bench::run_and_print(topo, scheme, &flows);
            }
        }
        println!();
    }
}
