//! Fig 23: heavy N-to-1 incast sweep (N = 32..256). PPT tracks DCTCP
//! (little spare bandwidth to harvest) and beats Homa/Aeolus.
//! RC3 is excluded, as in the paper (it cannot sustain heavy incast).

use ppt::harness::{Experiment, Scheme, TopoKind};
use ppt::sweep::SweepSpec;
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 23",
        "[Incast] overall avg FCT vs incast ratio N",
        "144-host oversubscribed fabric, Web Search at 0.6, N senders -> 1",
    );
    let topo = TopoKind::Oversubscribed;
    println!("{:<12} {:>6} {:>14} {:>8}", "scheme", "N", "overall(us)", "done%");
    // The full N x scheme grid as one sweep, printed in grid order.
    let ns = [32usize, 64, 128];
    let schemes = [Scheme::Ndp, Scheme::Aeolus, Scheme::Homa, Scheme::Dctcp, Scheme::Ppt];
    let mut spec = SweepSpec::new().jobs(bench::jobs());
    for &n in &ns {
        let flows = bench::workload_incast(
            topo,
            SizeDistribution::web_search(),
            0.6,
            bench::n_flows(400),
            n,
        );
        for scheme in &schemes {
            spec = spec.point(scheme.name(), Experiment::new(topo, scheme.clone(), flows.clone()));
        }
    }
    for (i, r) in spec.run().iter().enumerate() {
        let n = ns[i / schemes.len()];
        println!(
            "{:<12} {:>6} {:>14.1} {:>8.1}",
            r.label,
            n,
            r.fct.overall_avg_us(),
            r.completion_ratio * 100.0
        );
        if (i + 1) % schemes.len() == 0 {
            println!();
        }
    }
    println!("note: N=256 exceeds the 144-host fabric; the paper's sweep tops out our host count at 128.");
}
