//! Fig 1: DCTCP's bottleneck link utilization fluctuates well below the
//! offered load.
//!
//! 2 senders -> 1 receiver at 40G, ECN K = 120KB, Web Search at 0.5 load;
//! utilization sampled every 100us in steady state.

use ppt::harness::{run_experiment_with, Experiment, Scheme, TopoKind};
use ppt::netsim::{NodeId, SimDuration, SimTime};
use ppt::stats::{mean_utilization, utilization_series};
use ppt::workloads::{incast, SizeDistribution, WorkloadSpec};

fn main() {
    bench::banner(
        "Fig 1",
        "Link utilization of DCTCP under Web Search at 0.5 load",
        "2->1 at 40G, K=120KB, 100us samples (ideal utilization: 50%)",
    );
    let topo = TopoKind::Star { n: 3, rate_gbps: 40, delay_us: 10 };
    let spec = WorkloadSpec::new(
        SizeDistribution::web_search(),
        0.5,
        topo.edge_rate(),
        bench::n_flows(600),
        bench::seed(),
    );
    let flows = incast(2, &spec);
    let mut exp = Experiment::new(topo, Scheme::Dctcp, flows);
    exp.env.k_high = 120_000;
    exp.env.port_buffer = 1_000_000;

    // One point with a custom sampler extraction, run via the sweep
    // layer's generic primitive (the simulator stays on the worker; only
    // the utilization series comes back).
    let mut results = ppt::sweep::run_points(1, bench::jobs(), |_| {
        let mut sampler = None;
        let outcome = run_experiment_with(&exp, |t| {
            let port = t.sim.switch_port_towards(t.leaves[0], NodeId::Host(t.hosts[2])).unwrap();
            let link = t.sim.switch_port_link(t.leaves[0], port);
            sampler =
                Some(t.sim.sample_link(link, SimDuration::from_micros(100), SimTime(60_000_000)));
        });
        utilization_series(outcome.sim.samples(sampler.unwrap()), topo.edge_rate())
    });
    let series = results.pop().unwrap();
    // Steady state: skip the first 10ms, print a 10ms window.
    // Busy-period statistics: with Poisson arrivals at load 0.5 the link
    // is legitimately idle between flows; the paper's point is that
    // *while flows are transmitting* DCTCP's window cuts drag the link
    // down toward half of what it could carry. We therefore report the
    // utilization distribution over busy samples.
    let busy: Vec<f64> = series
        .iter()
        .filter(|p| p.at_ns >= 2_000_000 && p.utilization > 0.05)
        .map(|p| p.utilization)
        .collect();
    println!("busy samples: {}", busy.len());
    let mut sorted = busy.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |q: f64| sorted[((q * sorted.len() as f64) as usize).min(sorted.len() - 1)];
    println!(
        "busy-period utilization p10/p25/p50/p90: {:.3}/{:.3}/{:.3}/{:.3}",
        pct(0.1),
        pct(0.25),
        pct(0.5),
        pct(0.9)
    );
    println!("busy-period mean: {:.3}", busy.iter().sum::<f64>() / busy.len() as f64);
    let mean = mean_utilization(&series);
    println!("overall mean utilization: {mean:.3} (offered load 0.5)");
    println!("\npaper: DCTCP fluctuates between ~0.25 and ~0.5 while busy");
}
