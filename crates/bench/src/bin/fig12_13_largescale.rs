//! Figs 12 & 13: large-scale simulation on the 1.4:1 oversubscribed
//! 40/100G fabric — the headline six-scheme comparison.

use ppt::harness::TopoKind;
use ppt::workloads::SizeDistribution;

fn main() {
    let topo = TopoKind::Oversubscribed;
    for (fig, dist, default_flows) in [
        ("Fig 12", SizeDistribution::web_search(), 1500),
        ("Fig 13", SizeDistribution::data_mining(), 400),
    ] {
        bench::banner(
            fig,
            &format!("[Simulation] large-scale, {} workload", dist.name()),
            "144 hosts, 9 leaves, 4 spines, 40/100G, all-to-all, load 0.5",
        );
        let flows =
            bench::workload_all_to_all(topo, dist.clone(), 0.5, bench::n_flows(default_flows));
        bench::fct_header();
        bench::sweep_and_print(topo, &bench::large_scale_schemes(), &flows);
        println!();
    }
}
