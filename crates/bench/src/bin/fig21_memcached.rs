//! Fig 21: the Facebook Memcached workload (Homa's W1) — every flow
//! ≤100KB, >70% under 1000B. PPT wins on both average and tail.

use ppt::harness::TopoKind;
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 21",
        "[Simulation] FCTs with the Memcached workload (all flows <100KB)",
        "144-host leaf-spine 40/100G, all-to-all, load 0.5",
    );
    let topo = TopoKind::Oversubscribed;
    let flows = bench::workload_all_to_all(
        topo,
        SizeDistribution::memcached_w1(),
        0.5,
        bench::n_flows(4000),
    );
    println!("{:<24} {:>12} {:>12} {:>8}", "scheme", "avg FCT(us)", "p99 FCT(us)", "done%");
    for scheme in bench::large_scale_schemes() {
        let name = scheme.name();
        let outcome = ppt::harness::run_experiment(&ppt::harness::Experiment::new(
            topo,
            scheme,
            flows.clone(),
        ));
        println!(
            "{:<24} {:>12.1} {:>12.1} {:>8.1}",
            name,
            outcome.fct.small_avg_us(),
            outcome.fct.small_p99_us(),
            outcome.completion_ratio * 100.0
        );
    }
    println!("\npaper: PPT reduces avg/tail FCT by at least 25%/55.6% vs all others");
}
