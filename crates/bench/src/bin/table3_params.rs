//! Table 3: the testbed parameter settings, as configured in this repo.

use ppt::harness::{SchemeEnv, TopoKind};

fn main() {
    bench::banner("Table 3", "Testbed parameters", "SchemeEnv::paper_testbed()");
    let env = SchemeEnv::paper_testbed();
    let topo = TopoKind::PaperTestbed;
    println!("{:<34} {}", "Switch buffer size (per port)", format!("{} KB", env.port_buffer / 1000));
    println!("{:<34} {}", "Hosts", topo.hosts());
    println!("{:<34} {}", "Link rate", "10 Gbps");
    println!("{:<34} {}", "RTT", "80 us");
    println!("{:<34} {:?}", "RTO_min", env.min_rto);
    println!("{:<34} {} KB", "RTTbytes for Homa", env.rtt_bytes / 1000);
    println!("{:<34} {}", "Overcommitment degree for Homa", 2);
    println!("{:<34} {} KB", "DCTCP/HCP ECN threshold", env.k_high / 1000);
    println!("{:<34} {} KB", "LCP ECN threshold", env.k_low / 1000);
    println!("{:<34} {} KB", "Identification threshold", 100);
}
