//! Table 3: the testbed parameter settings, as configured in this repo.

use ppt::harness::{SchemeEnv, TopoKind};

fn main() {
    bench::banner("Table 3", "Testbed parameters", "SchemeEnv::paper_testbed()");
    let env = SchemeEnv::paper_testbed();
    let topo = TopoKind::PaperTestbed;
    println!("{:<34} {} KB", "Switch buffer size (per port)", env.port_buffer / 1000);
    println!("{:<34} {}", "Hosts", topo.hosts());
    println!("{:<34} 10 Gbps", "Link rate");
    println!("{:<34} 80 us", "RTT");
    println!("{:<34} {:?}", "RTO_min", env.min_rto);
    println!("{:<34} {} KB", "RTTbytes for Homa", env.rtt_bytes / 1000);
    println!("{:<34} {}", "Overcommitment degree for Homa", 2);
    println!("{:<34} {} KB", "DCTCP/HCP ECN threshold", env.k_high / 1000);
    println!("{:<34} {} KB", "LCP ECN threshold", env.k_low / 1000);
    println!("{:<34} {} KB", "Identification threshold", 100);
}
