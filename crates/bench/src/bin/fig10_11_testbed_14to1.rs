//! Figs 10 & 11: testbed 14-to-1 incast FCT statistics at 0.5 load, for
//! the Web Search (Fig 10) and Data Mining (Fig 11) workloads.

use ppt::harness::TopoKind;
use ppt::workloads::SizeDistribution;

fn main() {
    let topo = TopoKind::PaperTestbed;
    for (fig, dist, default_flows) in [
        ("Fig 10", SizeDistribution::web_search(), 400),
        ("Fig 11", SizeDistribution::data_mining(), 150),
    ] {
        bench::banner(
            fig,
            &format!("[Testbed] 14-to-1 incast, {} workload", dist.name()),
            "15 hosts, 10G, 80us RTT, load 0.5 on the sink downlink",
        );
        let flows =
            bench::workload_incast(topo, dist.clone(), 0.5, bench::n_flows(default_flows), 14);
        bench::fct_header();
        for scheme in bench::testbed_schemes() {
            bench::run_and_print(topo, scheme, &flows);
        }
        println!();
    }
}
