//! Fig 19: kernel datapath processing overhead, PPT vs DCTCP.
//!
//! Substitution (see DESIGN.md §6): the paper measures kernel-space CPU%
//! on the testbed. Here we measure wall-clock nanoseconds spent inside
//! each transport's event handlers per simulated host, normalized per
//! handled event — the same claim ("PPT's extra logic costs <1% over
//! DCTCP") expressed in the simulator's terms.

use ppt::harness::{Experiment, Scheme, TopoKind};
use ppt::netsim::RunLimits;
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 19",
        "[Testbed] transport processing overhead, PPT vs DCTCP",
        "15-host testbed, Web Search; wall-clock ns per transport event (CPU substitute)",
    );
    let topo = TopoKind::PaperTestbed;
    println!(
        "{:<8} {:<8} {:>16} {:>16} {:>12}",
        "load", "scheme", "cpu-ns total", "events", "ns/event"
    );
    for &load in &[0.3, 0.5, 0.7] {
        let flows = bench::workload_all_to_all(
            topo,
            SizeDistribution::web_search(),
            load,
            bench::n_flows(400),
        );
        let mut per_scheme = Vec::new();
        for scheme in [Scheme::Dctcp, Scheme::Ppt] {
            let name = scheme.name();
            let exp = Experiment::new(topo, scheme, flows.clone());
            // Rebuild manually so we can flip measure_cpu on.
            let mut t = exp.topo.build(exp.scheme.switch_config(&exp.env));
            t.sim.measure_cpu = true;
            exp.scheme.install(&mut t, &exp.env).expect("single-pass scheme");
            ppt::workloads::install_flows(&mut t.sim, &t.hosts, &exp.flows);
            t.sim.run(RunLimits { max_time: exp.max_time, max_events: exp.max_events });
            let (ns, calls): (u64, u64) = t
                .hosts
                .iter()
                .map(|&h| t.sim.cpu_account(h))
                .fold((0, 0), |(a, b), (c, d)| (a + c, b + d));
            println!(
                "{:<8} {:<8} {:>16} {:>16} {:>12.1}",
                load,
                name,
                ns,
                calls,
                ns as f64 / calls as f64
            );
            per_scheme.push(ns as f64 / calls as f64);
        }
        println!(
            "         -> PPT / DCTCP per-event cost ratio: {:.3} (paper: <1% CPU gap)",
            per_scheme[1] / per_scheme[0]
        );
    }
}
