//! Fig 22: the 100/400G topology — PPT's gains persist at higher line
//! rates (with small-flow tails inflated by the larger BDP).

use ppt::harness::TopoKind;
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 22",
        "[100/400G] FCTs under Web Search at 0.5 load",
        "144 hosts, 9 leaves, 4 spines, 100G edge / 400G core",
    );
    let topo = TopoKind::HighSpeed;
    let flows =
        bench::workload_all_to_all(topo, SizeDistribution::web_search(), 0.5, bench::n_flows(1500));
    bench::fct_header();
    bench::sweep_and_print(topo, &bench::large_scale_schemes(), &flows);
}
