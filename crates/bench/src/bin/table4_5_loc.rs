//! Tables 4 & 5 (appendix C): the deployability argument in numbers —
//! Homa/Linux's stack size and the application changes it forces. These
//! are static measurements reported by the paper (of third-party code),
//! reproduced as data; contrast with PPT's ~400-line kernel patch and the
//! line counts of this reproduction.

fn main() {
    bench::banner(
        "Tables 4 & 5",
        "Deployability: lines-of-code accounting",
        "static data from the paper + this repo",
    );
    println!("Table 4: Homa/Linux stack modules (paper appendix C)");
    println!("{:<26} {:>8} {:>8}", "module", "LoC", "share");
    for (m, loc, pct) in [
        ("User API", 1900, "15%"),
        ("Transport control", 2800, "22%"),
        ("GRO/GSO", 400, "3.1%"),
        ("State management", 700, "5.5%"),
        ("Memory management", 300, "2.4%"),
        ("Timeout retransmission", 300, "2.4%"),
        ("Other", 6300, "49.6%"),
    ] {
        println!("{:<26} {:>8} {:>8}", m, loc, pct);
    }
    println!("\nTable 5: key-value store changes needed to adopt Homa/Linux");
    println!("{:<34} {:>8} {:>10}", "module", "LoC", "modified?");
    for (m, loc, y) in [
        ("Socket", 2080, "Y"),
        ("HTTP package header processing", 1516, "N"),
        ("RPC", 975, "Y"),
        ("RAFT consensus protocol", 1365, "N"),
        ("Coroutine synchronization", 145, "N"),
        ("IO", 393, "Y"),
        ("Other", 1694, "N"),
    ] {
        println!("{:<34} {:>8} {:>10}", m, loc, y);
    }
    println!("\nmodified modules total 3448 LoC = 42.2% of the application;");
    println!("PPT's kernel prototype is ~400 LoC with zero application changes.");
}
