//! Fig 29 (appendix F): transfer efficiency (received bytes / sent bytes)
//! under different ECN thresholds — RC3 wastes its low-priority sends.

use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::workloads::{incast, SizeDistribution, WorkloadSpec};

fn main() {
    bench::banner(
        "Fig 29",
        "Transfer efficiency vs ECN threshold",
        "2->1 at 40G, 120KB port buffer, Web Search (efficiency = delivered/sent)",
    );
    let topo = TopoKind::Star { n: 3, rate_gbps: 40, delay_us: 4 };
    let spec = WorkloadSpec::new(
        SizeDistribution::web_search(),
        0.8,
        topo.edge_rate(),
        bench::n_flows(400),
        bench::seed(),
    );
    let flows = incast(2, &spec);
    println!(
        "{:<10} {:<10} {:>14} {:>14} {:>12}",
        "K(%buf)", "scheme", "sent pkts", "dropped pkts", "efficiency"
    );
    for frac in [0.6, 0.8] {
        let k = (120_000.0 * frac) as u64;
        for scheme in [Scheme::Dctcp, Scheme::Rc3, Scheme::Ppt] {
            let name = scheme.name();
            let mut exp = Experiment::new(topo, scheme, flows.clone());
            exp.env.port_buffer = 120_000;
            exp.env.k_high = k;
            exp.env.k_low = k;
            let outcome = run_experiment(&exp);
            let sent = outcome.counters.enqueued + outcome.counters.dropped;
            let eff = 1.0 - outcome.counters.dropped as f64 / sent.max(1) as f64;
            println!(
                "{:<10.0} {:<10} {:>14} {:>14} {:>11.1}%",
                frac * 100.0,
                name,
                sent,
                outcome.counters.dropped,
                eff * 100.0
            );
        }
        println!();
    }
    println!(
        "paper: PPT ~= DCTCP; RC3 14.6-18.4% lower (low-priority loop loses ~50% of its sends)"
    );
}
