//! Table 1: qualitative comparison of prior transports and PPT.

use ppt::table1::{SchemeRow, TABLE1};

fn yn(b: bool) -> &'static str {
    if b {
        "Yes"
    } else {
        "No"
    }
}

fn main() {
    bench::banner(
        "Table 1",
        "Summary of prior transports and comparison to PPT",
        "static capability metadata",
    );
    println!(
        "{:<10} {:<12} {:<28} {:<24} {:<10} {:<8} {:<8}",
        "family",
        "scheme",
        "spare bandwidth pattern",
        "sched w/o flow size",
        "commodity",
        "TCP/IP",
        "no-app"
    );
    for SchemeRow {
        family,
        name,
        spare,
        scheduling,
        commodity_switches,
        tcpip_compatible,
        app_non_intrusive,
    } in TABLE1
    {
        println!(
            "{:<10} {:<12} {:<28} {:<24} {:<10} {:<8} {:<8}",
            family,
            name,
            spare.label(),
            scheduling.label(),
            yn(*commodity_switches),
            yn(*tcpip_compatible),
            yn(*app_non_intrusive)
        );
    }
}
