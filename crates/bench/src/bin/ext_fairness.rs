//! Extension experiment (footnote 3): PPT's W_max bookkeeping can treat
//! early and late flows differently — the paper acknowledges the
//! unfairness but argues it is minor. We quantify it: N equal-size flows
//! start staggered on one bottleneck; fairness = Jain's index over their
//! average throughputs (size / FCT).

use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::netsim::SimTime;
use ppt::stats::jain_index;
use ppt::workloads::FlowSpec;

fn main() {
    bench::banner(
        "Ext (footnote 3)",
        "Fairness across staggered equal-size flows",
        "8 senders -> 1 sink at 10G, 8 x 8MB flows, 1ms stagger",
    );
    let topo = TopoKind::Star { n: 9, rate_gbps: 10, delay_us: 20 };
    let size = 8u64 << 20;
    let flows: Vec<FlowSpec> = (0..8)
        .map(|i| FlowSpec {
            src: i,
            dst: 8,
            size_bytes: size,
            start: SimTime(i as u64 * 1_000_000),
            first_write_bytes: size,
        })
        .collect();
    println!("{:<12} {:>14} {:>14} {:>12}", "scheme", "avg FCT (ms)", "max/min FCT", "Jain index");
    for scheme in [Scheme::Dctcp, Scheme::Ppt, Scheme::Homa] {
        let name = scheme.name();
        let outcome = run_experiment(&Experiment::new(topo, scheme, flows.clone()));
        let fcts: Vec<f64> =
            outcome.fct.records().iter().map(|r| r.fct.as_nanos() as f64).collect();
        let throughputs: Vec<f64> = fcts.iter().map(|f| size as f64 / f).collect();
        let max = fcts.iter().cloned().fold(0.0, f64::max);
        let min = fcts.iter().cloned().fold(f64::MAX, f64::min);
        println!(
            "{:<12} {:>14.2} {:>14.2} {:>12.3}",
            name,
            fcts.iter().sum::<f64>() / fcts.len() as f64 / 1e6,
            max / min,
            jain_index(&throughputs)
        );
    }
    println!("\nexpectation: PPT's Jain index stays close to DCTCP's (no added unfairness");
    println!("beyond the W_max effect the paper's footnote 3 accepts).");
}
