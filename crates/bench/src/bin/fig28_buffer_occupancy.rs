//! Fig 28 (appendix F): switch buffer occupancy split between the high-
//! and low-priority groups under different ECN thresholds — PPT's LCP
//! keeps a small, stable low-priority footprint, RC3's does not.

use ppt::harness::{run_experiment_with, Experiment, Scheme, TopoKind};
use ppt::netsim::{NodeId, SimDuration, SimTime};
use ppt::stats::occupancy_split;
use ppt::workloads::{incast, SizeDistribution, WorkloadSpec};

fn main() {
    bench::banner(
        "Fig 28",
        "Buffer occupancy by priority group vs ECN threshold",
        "2->1 at 40G, 120KB port buffer, Web Search, same K for both groups",
    );
    let topo = TopoKind::Star { n: 3, rate_gbps: 40, delay_us: 4 };
    let spec = WorkloadSpec::new(
        SizeDistribution::web_search(),
        0.8,
        topo.edge_rate(),
        bench::n_flows(400),
        bench::seed(),
    );
    let flows = incast(2, &spec);
    println!(
        "{:<10} {:<10} {:>12} {:>12} {:>12} {:>10}",
        "K(%buf)", "scheme", "high avg(B)", "low avg(B)", "total avg(B)", "low share"
    );
    for frac in [0.6, 0.8] {
        let k = (120_000.0 * frac) as u64;
        for scheme in [Scheme::Dctcp, Scheme::Rc3, Scheme::Ppt] {
            let name = scheme.name();
            let mut exp = Experiment::new(topo, scheme, flows.clone());
            exp.env.port_buffer = 120_000;
            exp.env.k_high = k;
            exp.env.k_low = k;
            let mut sampler = None;
            let outcome = run_experiment_with(&exp, |t| {
                let port =
                    t.sim.switch_port_towards(t.leaves[0], NodeId::Host(t.hosts[2])).unwrap();
                sampler = Some(t.sim.sample_port(
                    t.leaves[0],
                    port,
                    SimDuration::from_micros(20),
                    SimTime(60_000_000),
                ));
            });
            let split = occupancy_split(outcome.sim.samples(sampler.unwrap()));
            let share = if split.total_avg_bytes > 0.0 {
                split.low_avg_bytes / split.total_avg_bytes
            } else {
                0.0
            };
            println!(
                "{:<10.0} {:<10} {:>12.0} {:>12.0} {:>12.0} {:>9.1}%",
                frac * 100.0,
                name,
                split.high_avg_bytes,
                split.low_avg_bytes,
                split.total_avg_bytes,
                share * 100.0
            );
        }
        println!();
    }
    println!("paper: PPT's low-priority queue holds 2.6-3.1% of occupancy; RC3's 17.4-30.2%");
}
