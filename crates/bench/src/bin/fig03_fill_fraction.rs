//! Fig 3: filling the window gap to different fractions of MW.
//! Under-filling wastes capacity; over-filling causes losses. 1x MW wins.

use ppt::harness::{Scheme, TopoKind};
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 3",
        "Overall avg FCT when filling the gap to f x MW",
        "144-host leaf-spine 40/100G, Data Mining, all-to-all, load 0.6",
    );
    let topo = TopoKind::Oversubscribed;
    let flows =
        bench::workload_all_to_all(topo, SizeDistribution::data_mining(), 0.6, bench::n_flows(250));
    bench::fct_header();
    // Two-pass Hypothetical points run through the shared sweep runner —
    // each worker performs its own oracle recording pass.
    let fracs = [0.5, 1.0, 1.5];
    let schemes: Vec<Scheme> = fracs.iter().map(|&f| Scheme::Hypothetical(f)).collect();
    let results = bench::sweep_and_print(topo, &schemes, &flows);
    let mut best = (f64::MAX, 0.0);
    for (r, &frac) in results.iter().zip(&fracs) {
        let s = r.fct.summary();
        if s.overall_avg_us < best.0 {
            best = (s.overall_avg_us, frac);
        }
    }
    println!("\nbest fill fraction: {:.2} x MW (paper: 1.0 x MW)", best.1);
}
