//! Fig 3: filling the window gap to different fractions of MW.
//! Under-filling wastes capacity; over-filling causes losses. 1x MW wins.

use ppt::harness::{Scheme, TopoKind};
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 3",
        "Overall avg FCT when filling the gap to f x MW",
        "144-host leaf-spine 40/100G, Data Mining, all-to-all, load 0.6",
    );
    let topo = TopoKind::Oversubscribed;
    let flows =
        bench::workload_all_to_all(topo, SizeDistribution::data_mining(), 0.6, bench::n_flows(250));
    bench::fct_header();
    let mut best = (f64::MAX, 0.0);
    for frac in [0.5, 1.0, 1.5] {
        let s = bench::run_and_print(topo, Scheme::Hypothetical(frac), &flows);
        if s.overall_avg_us < best.0 {
            best = (s.overall_avg_us, frac);
        }
    }
    println!("\nbest fill fraction: {:.2} x MW (paper: 1.0 x MW)", best.1);
}
