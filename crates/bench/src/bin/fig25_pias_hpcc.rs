//! Fig 25 (appendix D): PPT vs PIAS and HPCC.

use ppt::harness::{Scheme, TopoKind};
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 25",
        "[Simulation] PPT vs PIAS vs HPCC",
        "144-host oversubscribed fabric, Web Search, load 0.5",
    );
    let topo = TopoKind::Oversubscribed;
    let flows =
        bench::workload_all_to_all(topo, SizeDistribution::web_search(), 0.5, bench::n_flows(1200));
    bench::fct_header();
    for scheme in [Scheme::Pias, Scheme::Hpcc, Scheme::Ppt] {
        bench::run_and_print(topo, scheme, &flows);
    }
    println!("\npaper: PPT -24.6% overall vs PIAS, -4.7% overall vs HPCC");
}
