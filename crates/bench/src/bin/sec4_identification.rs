//! §4.1 validation: buffer-aware identification accuracy.
//!
//! The paper measures, on real applications, how many large flows are
//! identifiable from the *first* send() syscall: 86.7% of >1KB Memcached
//! flows and 84.3% of >10KB web flows. Our application write model is
//! calibrated to this (DEFAULT_FULL_WRITE_PROB); this binary validates
//! the calibration end to end through the workload generator.

use ppt::core::FlowIdentifier;
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

fn accuracy(dist: SizeDistribution, threshold: u64, flows: usize, seed: u64) -> (usize, usize) {
    let spec = WorkloadSpec::new(dist, 0.5, ppt::netsim::Rate::gbps(10), flows, seed);
    let list = all_to_all(16, &spec);
    let ident = FlowIdentifier { threshold_bytes: threshold };
    let large: Vec<_> = list.iter().filter(|f| f.size_bytes > threshold).collect();
    let caught = large.iter().filter(|f| ident.is_large_at_start(f.first_write_bytes)).count();
    (caught, large.len())
}

fn main() {
    bench::banner(
        "§4.1",
        "Buffer-aware identification accuracy at flow start",
        "first-syscall write model vs identification threshold",
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "workload", "threshold", "large flows", "identified", "accuracy"
    );
    for (dist, threshold, paper) in [
        (SizeDistribution::memcached_w1(), 1_000u64, "86.7%"),
        (SizeDistribution::web_search(), 10_000, "84.3%"),
        (SizeDistribution::data_mining(), 100_000, "-"),
    ] {
        let name = dist.name();
        let (caught, total) = accuracy(dist, threshold, bench::n_flows(20_000), bench::seed());
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>9.1}%  (paper: {})",
            name,
            threshold,
            total,
            caught,
            caught as f64 / total as f64 * 100.0,
            paper
        );
    }
    println!(
        "\nUnidentified large flows fall back to PIAS-style aging (Fig 18 isolates the benefit)."
    );
}
