//! Fig 2: the hypothetical (MW-oracle) DCTCP beats Homa and NDP on
//! overall average FCT — the motivating observation of §2.3.

use ppt::harness::Scheme;
use ppt::harness::TopoKind;
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 2",
        "Overall avg FCT: hypothetical DCTCP vs Homa vs NDP vs DCTCP",
        "144-host leaf-spine 40/100G, Web Search, all-to-all, load 0.5",
    );
    let topo = TopoKind::Oversubscribed;
    let flows =
        bench::workload_all_to_all(topo, SizeDistribution::web_search(), 0.5, bench::n_flows(1500));
    bench::fct_header();
    let mut rows = Vec::new();
    for scheme in [Scheme::Dctcp, Scheme::Ndp, Scheme::Homa, Scheme::Hypothetical(1.0)] {
        let name = scheme.name();
        let s = bench::run_and_print(topo, scheme, &flows);
        rows.push((name, s.overall_avg_us));
    }
    let homa = rows.iter().find(|r| r.0 == "Homa").unwrap().1;
    let ndp = rows.iter().find(|r| r.0 == "NDP").unwrap().1;
    let hypo = rows.last().unwrap().1;
    println!("\nhypothetical vs Homa: {:+.1}% (paper: -33%)", (hypo / homa - 1.0) * 100.0);
    println!("hypothetical vs NDP:  {:+.1}% (paper: -40%)", (hypo / ndp - 1.0) * 100.0);
}
