//! Fig 27 (appendix F): sensitivity to the TCP send buffer size. Small
//! buffers blunt the tail loop's reach on large flows; 2MB is enough.

use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 27",
        "[Simulation] PPT FCTs vs TCP send buffer capacity",
        "144-host oversubscribed fabric, Web Search, load 0.5",
    );
    let topo = TopoKind::Oversubscribed;
    let flows =
        bench::workload_all_to_all(topo, SizeDistribution::web_search(), 0.5, bench::n_flows(1200));
    bench::fct_header();
    for (label, bytes) in
        [("128KB", 128u64 << 10), ("2MB", 2 << 20), ("4MB", 4 << 20), ("2GB", 2 << 30)]
    {
        let mut exp = Experiment::new(topo, Scheme::Ppt, flows.clone());
        exp.env.send_buffer = bytes;
        let outcome = run_experiment(&exp);
        bench::fct_row(
            &format!("PPT sndbuf={label}"),
            &outcome.fct.summary(),
            outcome.completion_ratio,
        );
    }
    println!(
        "\npaper: 128KB hurts overall/large FCT; >=2MB suffices (avg WebSearch flow is 1.6MB)"
    );
}
