//! Fig 26 (appendix E): the non-oversubscribed topology — friendlier to
//! proactive transports; PPT still wins overall and on large flows.

use ppt::harness::TopoKind;
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 26",
        "[Non-oversubscribed] FCTs under Web Search at 0.5 load",
        "144 hosts, 10G edge / 40G core, 1:1 bisection",
    );
    let topo = TopoKind::NonOversubscribed;
    let flows =
        bench::workload_all_to_all(topo, SizeDistribution::web_search(), 0.5, bench::n_flows(1000));
    bench::fct_header();
    for scheme in bench::large_scale_schemes() {
        bench::run_and_print(topo, scheme, &flows);
    }
}
