//! Extension experiment (paper appendix B): PPT's dual-loop design as a
//! building block for the INT-based HPCC — "open an LCP loop whenever
//! HPCC's estimated in-flight bytes are smaller than BDP, and use PPT's
//! buffer-aware scheduling". Not a paper figure; an implementation of the
//! paper's suggested future work, with one addition the sketch missed:
//! the INT must be priority-aware (report the high band only), or HPCC
//! counts the opportunistic traffic as congestion and yields the window
//! the LCP loop then absorbs.

use ppt::harness::{Scheme, TopoKind};
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Ext (appendix B)",
        "PPT-over-HPCC vs plain HPCC vs PPT",
        "144-host oversubscribed fabric, Web Search, load 0.5",
    );
    let topo = TopoKind::Oversubscribed;
    let flows =
        bench::workload_all_to_all(topo, SizeDistribution::web_search(), 0.5, bench::n_flows(1200));
    bench::fct_header();
    for scheme in [Scheme::Hpcc, Scheme::HpccPpt, Scheme::Ppt] {
        bench::run_and_print(topo, scheme, &flows);
    }
    println!("\nexpected: PPT-over-HPCC adds scheduling gains for small flows on top of");
    println!("HPCC's graceful rate control; overall close to native PPT.");
}
