//! Engine perf smoke: time the hot path and the sweep runner, appending
//! one machine-readable JSON line per invocation to `BENCH_engine.json`
//! at the workspace root (override with `BENCH_ENGINE_OUT=<path>`, or
//! `BENCH_ENGINE_OUT=-` to print without writing).
//!
//! Tracked series: events/sec and ns/event of a fixed pinned-seed run,
//! the packet-pool hit rate, sanitizer and telemetry overhead ratios, a
//! per-event-kind wall-clock profile from the engine self-profiler, and
//! serial-vs-parallel sweep wall-clock. The baseline (calendar queue) /
//! heap-oracle / sanitized / telemetry passes are interleaved in rotating
//! order within each
//! measurement round (after a discarded warmup of each) so the overhead
//! ratios compare like against like — back-to-back blocks drift with
//! cache and frequency state and have produced impossible sub-1.0
//! ratios. On a busy box the cross-run ratios stay noisy even so; the
//! `sampler_dispatch_share` field (sample-kind ns over total dispatch
//! ns, from one profiled run) is the drift-immune sampler-cost number.
//!
//! Timings are informational (nothing gates on absolute numbers) but the
//! JSONL file is the perf trajectory across PRs — run via
//! `scripts/check.sh` or `cargo run --release -p bench --bin bench_engine`.

use std::time::Instant;

use ppt::harness::{run_experiment_with, Experiment, Scheme, TopoKind};
use ppt::netsim::{QueueKind, SanLevel, SimDuration, TelemetryConfig};
use ppt::sweep::SweepSpec;
use ppt::trace::JsonObject;
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

/// Sampling interval for the telemetry variant: the 10 µs cadence the
/// overhead budget in ISSUE/ROADMAP is stated against.
const TELEMETRY_INTERVAL_US: u64 = 10;

/// The phase label stamped on the emitted line. Read in exactly one
/// place so every field of a line carries the same phase — milestone
/// entries set `BENCH_ENGINE_PHASE`, everything else is "post-refactor".
fn phase_label() -> String {
    std::env::var("BENCH_ENGINE_PHASE").unwrap_or_else(|_| "post-refactor".into())
}

/// The transport driven through the scenario. `BENCH_ENGINE_SCHEME`
/// switches it (and is echoed as the `scheme` field) so milestone rows
/// for a new transport measure that transport's hot path; the default
/// stays DCTCP so the long-running trajectory keeps comparing like
/// against like.
fn scheme_under_test() -> (Scheme, String) {
    let id = std::env::var("BENCH_ENGINE_SCHEME").unwrap_or_else(|_| "dctcp".into());
    let scheme = match id.as_str() {
        "dctcp" => Scheme::Dctcp,
        "ppt" => Scheme::Ppt,
        "powertcp" => Scheme::PowerTcp,
        other => panic!("BENCH_ENGINE_SCHEME: unknown scheme '{other}' (dctcp | ppt | powertcp)"),
    };
    (scheme, id)
}

/// The fixed engine scenario: big enough to amortize setup, small enough
/// to finish in about a second even on a loaded CI core.
fn engine_scenario() -> Experiment {
    let topo = TopoKind::Star { n: 8, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 400, 42);
    let flows = all_to_all(topo.hosts(), &spec);
    Experiment::new(topo, scheme_under_test().0, flows)
}

/// The engine configurations measured against each other.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Variant {
    /// The plain hot path (calendar queue, the engine default).
    Baseline,
    /// The `BinaryHeap` oracle queue: same events, same dispatch order —
    /// the ratio against baseline is the calendar queue's measured win.
    HeapQueue,
    /// simsan at its default per-epoch cadence (audit every 4096 events);
    /// the ratio against baseline is tracked against the ~10% budget of
    /// DESIGN.md §13.
    Sanitized,
    /// The telemetry sampler at `TELEMETRY_INTERVAL_US` (no profiler —
    /// profiling itself costs two `Instant::now` per event and would
    /// pollute the sampler-overhead number); budget ≤3%, DESIGN.md §14.
    Telemetry,
}

impl Variant {
    const ALL: [Variant; 4] =
        [Variant::Baseline, Variant::HeapQueue, Variant::Sanitized, Variant::Telemetry];
}

struct EngineNumbers {
    events: u64,
    wall_ns: u64,
    pool_hits: u64,
    pool_misses: u64,
}

/// One timed run of the scenario under `variant`, with the variant's
/// sanity checks applied to the outcome.
fn run_variant(exp: &Experiment, variant: Variant) -> EngineNumbers {
    let t0 = Instant::now();
    let outcome = run_experiment_with(exp, |t| match variant {
        Variant::Baseline => {}
        Variant::HeapQueue => t.sim.set_queue_kind(QueueKind::Heap),
        Variant::Sanitized => t.sim.set_sanitizer(SanLevel::PerEpoch),
        Variant::Telemetry => t.sim.enable_telemetry(TelemetryConfig::new(
            SimDuration::from_micros(TELEMETRY_INTERVAL_US),
        )),
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    match variant {
        Variant::Baseline => {}
        Variant::HeapQueue => assert_eq!(
            outcome.sim.queue_kind(),
            QueueKind::Heap,
            "heap variant must run on the oracle queue"
        ),
        Variant::Sanitized => assert!(
            outcome.sim.san_violations().is_empty(),
            "bench scenario must be violation-free: {:?}",
            outcome.sim.san_violations()
        ),
        Variant::Telemetry => {
            let samples = outcome.sim.telemetry().map(|t| t.samples_taken()).unwrap_or(0);
            assert!(samples > 0, "telemetry variant must take samples");
        }
    }
    let pool = outcome.sim.pool_stats();
    EngineNumbers {
        events: outcome.report.events,
        wall_ns,
        pool_hits: pool.recycled,
        pool_misses: pool.fresh,
    }
}

/// Interleaved measurement: each variant's best wall-clock plus the
/// per-round overhead ratios of the sanitized and telemetry variants
/// against that same round's baseline.
struct Measurement {
    best: [EngineNumbers; 4],
    /// Median of per-round `heap / baseline` wall-clock ratios: how much
    /// slower the BinaryHeap oracle is than the calendar queue (>1 means
    /// the calendar queue wins).
    heap_queue_ratio: f64,
    /// Median of per-round `sanitized / baseline` wall-clock ratios.
    simsan_overhead: f64,
    /// Minimum of those ratios: the cleanest-round lower bound.
    simsan_overhead_floor: f64,
    /// Median of per-round `telemetry / baseline` wall-clock ratios.
    telemetry_overhead: f64,
    /// Minimum of those ratios: the cleanest-round lower bound.
    telemetry_overhead_floor: f64,
}

/// Median of a small sample (ties broken toward the lower middle).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    xs[xs.len() / 2]
}

/// Measure every variant interleaved: one discarded warmup of each, then
/// `runs` rounds of baseline → heap → sanitized → telemetry. Interleaving means
/// a slow patch of the machine hits all three variants roughly equally
/// instead of biasing whichever back-to-back block ran during it — the
/// bug that once produced an impossible 0.81× sanitizer "overhead" in
/// BENCH_engine.json. Overheads are medians of *within-round* ratios
/// (each round's variants share machine conditions, so the ratio cancels
/// drift that independent minima cannot); absolute ns/event numbers keep
/// the best-of-runs minimum, the least-noise point estimator.
fn measure_interleaved(runs: u32) -> Measurement {
    let exp = engine_scenario();
    for variant in Variant::ALL {
        run_variant(&exp, variant); // warmup, discarded
    }
    let mut best: [Option<EngineNumbers>; 4] = [None, None, None, None];
    let mut heap_ratios = Vec::new();
    let mut san_ratios = Vec::new();
    let mut telem_ratios = Vec::new();
    for round in 0..runs as usize {
        let mut round_wall = [0u64; 4];
        // Rotate the in-round order: under load that drifts monotonically
        // across a round, a fixed order would systematically tax whichever
        // variant always ran last.
        for i in 0..Variant::ALL.len() {
            let slot = (round + i) % Variant::ALL.len();
            let n = run_variant(&exp, Variant::ALL[slot]);
            round_wall[slot] = n.wall_ns;
            if best[slot].as_ref().map(|b| n.wall_ns < b.wall_ns).unwrap_or(true) {
                best[slot] = Some(n);
            }
        }
        let base = round_wall[0].max(1) as f64;
        heap_ratios.push(round_wall[1] as f64 / base);
        san_ratios.push(round_wall[2] as f64 / base);
        telem_ratios.push(round_wall[3] as f64 / base);
    }
    let floor = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    let m = Measurement {
        best: best.map(|slot| slot.expect("at least one measured run")),
        heap_queue_ratio: median(&mut heap_ratios),
        simsan_overhead_floor: floor(&san_ratios),
        telemetry_overhead_floor: floor(&telem_ratios),
        simsan_overhead: median(&mut san_ratios),
        telemetry_overhead: median(&mut telem_ratios),
    };
    // Differential sanity: both queues must dispatch the exact same
    // schedule (the byte-level check lives in tests/determinism.rs and
    // scripts/check.sh; event counts are the cheap in-bench guard).
    assert_eq!(
        m.best[0].events, m.best[1].events,
        "calendar and heap queues must dispatch identical event counts"
    );
    m
}

/// One profiled run: telemetry with the wall-clock self-profiler on,
/// returning the per-event-kind breakdown as a raw JSON array plus the
/// sampler's share of total dispatch time. The share is the cleanest
/// sampler-cost number available on a shared box: numerator and
/// denominator come from the *same* run, so machine drift between runs
/// cancels exactly (unlike the cross-run overhead ratios). Run outside
/// the timed loop — profiling is excluded from the overhead numbers just
/// as it is from the determinism goldens.
fn profile_breakdown() -> (String, f64, f64) {
    let exp = engine_scenario();
    let cfg = TelemetryConfig::new(SimDuration::from_micros(TELEMETRY_INTERVAL_US)).with_prof();
    let outcome = run_experiment_with(&exp, |t| t.sim.enable_telemetry(cfg));
    let mean_batch = outcome.sim.telemetry().and_then(|t| t.mean_batch_len()).unwrap_or(1.0);
    let rows = outcome
        .sim
        .telemetry()
        .and_then(|t| t.prof_breakdown())
        .expect("profiled run must expose a breakdown");
    let mut arr = String::from("[");
    let mut total_ns = 0u64;
    let mut sample_ns = 0u64;
    for (i, (kind, count, ns)) in rows.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(
            &JsonObject::new()
                .str("kind", kind.as_str())
                .u64("count", *count)
                .u64("total_ns", *ns)
                .finish(),
        );
        total_ns += ns;
        if kind.as_str() == "sample" {
            sample_ns = *ns;
        }
    }
    arr.push(']');
    (arr, sample_ns as f64 / total_ns.max(1) as f64, mean_batch)
}

/// An 8-point grid (2 schemes x 2 loads x 2 seeds) timed at a given
/// worker count. Same spec both times, so the serial/parallel wall-clock
/// ratio is the sweep layer's scaling on this machine.
fn measure_sweep(jobs: usize) -> u64 {
    let topo = TopoKind::Star { n: 6, rate_gbps: 10, delay_us: 20 };
    let t0 = Instant::now();
    let results = SweepSpec::new()
        .jobs(jobs)
        .grid(
            topo,
            &[Scheme::Ppt, Scheme::Dctcp],
            &SizeDistribution::web_search(),
            &[0.4, 0.6],
            150,
            &[42, 7],
        )
        .run();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(results.len(), 8, "sweep grid must produce 8 points");
    wall_ns
}

fn main() {
    let m = measure_interleaved(7);
    let [engine, heap, sanitized, telemetry] = &m.best;
    let ns_per_event = engine.wall_ns as f64 / engine.events.max(1) as f64;
    let events_per_sec = engine.events as f64 * 1e9 / engine.wall_ns.max(1) as f64;
    let pool_total = engine.pool_hits + engine.pool_misses;
    let pool_hit_rate =
        if pool_total == 0 { 0.0 } else { engine.pool_hits as f64 / pool_total as f64 };

    let ns_per_event_heap = heap.wall_ns as f64 / heap.events.max(1) as f64;
    let ns_per_event_sanitized = sanitized.wall_ns as f64 / sanitized.events.max(1) as f64;
    // The telemetry run's event count includes the sample dispatches
    // themselves; the wall-clock overhead ratios are end-to-end.
    let ns_per_event_telemetry = telemetry.wall_ns as f64 / telemetry.events.max(1) as f64;

    let (profile, sampler_share, mean_batch) = profile_breakdown();

    let sweep_serial_ns = measure_sweep(1);
    let sweep_parallel_ns = measure_sweep(4);
    let cores = std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1);

    let doc = JsonObject::new()
        .str("bench", "engine")
        .str("phase", &phase_label())
        .str("scheme", &scheme_under_test().1)
        .str("queue", "calendar")
        .u64("cores", cores)
        .u64("engine_events", engine.events)
        .u64("engine_wall_ns", engine.wall_ns)
        .f64("ns_per_event", ns_per_event)
        .f64("events_per_sec", events_per_sec)
        .f64("pool_hit_rate", pool_hit_rate)
        .f64("ns_per_event_heap", ns_per_event_heap)
        .f64("heap_queue_ratio", m.heap_queue_ratio)
        .f64("prof_mean_batch", mean_batch)
        .f64("ns_per_event_sanitized", ns_per_event_sanitized)
        .f64("simsan_overhead", m.simsan_overhead)
        .f64("simsan_overhead_floor", m.simsan_overhead_floor)
        .u64("telemetry_interval_us", TELEMETRY_INTERVAL_US)
        .u64("telemetry_events", telemetry.events)
        .f64("ns_per_event_telemetry", ns_per_event_telemetry)
        .f64("telemetry_overhead", m.telemetry_overhead)
        .f64("telemetry_overhead_floor", m.telemetry_overhead_floor)
        .f64("sampler_dispatch_share", sampler_share)
        .raw("profile", &profile)
        .u64("sweep_points", 8)
        .u64("sweep_serial_ns", sweep_serial_ns)
        .u64("sweep_jobs4_ns", sweep_parallel_ns)
        .f64("sweep_speedup", sweep_serial_ns as f64 / sweep_parallel_ns.max(1) as f64)
        .finish();
    println!("{doc}");

    // Append to the tracked perf trajectory unless asked not to.
    let out = std::env::var("BENCH_ENGINE_OUT").unwrap_or_default();
    if out == "-" {
        return;
    }
    let path = if out.is_empty() {
        // crates/bench -> crates -> workspace root
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .expect("bench lives at <root>/crates/bench")
            .join("BENCH_engine.json")
    } else {
        std::path::PathBuf::from(out)
    };
    use std::io::Write;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{doc}"));
    match appended {
        Ok(()) => eprintln!("appended to {}", path.display()),
        Err(e) => eprintln!("warning: could not append to {}: {e}", path.display()),
    }
}
