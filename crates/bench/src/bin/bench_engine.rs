//! Engine perf smoke: time the hot path and the sweep runner, appending
//! one machine-readable JSON line per invocation to `BENCH_engine.json`
//! at the workspace root (override with `BENCH_ENGINE_OUT=<path>`, or
//! `BENCH_ENGINE_OUT=-` to print without writing).
//!
//! Tracked series: events/sec and ns/event of a fixed pinned-seed run,
//! the packet-pool hit rate, and serial-vs-parallel sweep wall-clock
//! (`BENCH_ENGINE_PHASE` labels the line; default "post-refactor").
//! Timings are informational (nothing gates on absolute numbers) but the
//! JSONL file is the perf trajectory across PRs — run via
//! `scripts/check.sh` or `cargo run --release -p bench --bin bench_engine`.

use std::time::Instant;

use ppt::harness::{run_experiment, run_experiment_with, Experiment, Scheme, TopoKind};
use ppt::netsim::SanLevel;
use ppt::sweep::SweepSpec;
use ppt::trace::JsonObject;
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

/// The fixed engine scenario: big enough to amortize setup, small enough
/// to finish in about a second even on a loaded CI core.
fn engine_scenario() -> Experiment {
    let topo = TopoKind::Star { n: 8, rate_gbps: 10, delay_us: 20 };
    let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 400, 42);
    let flows = all_to_all(topo.hosts(), &spec);
    Experiment::new(topo, Scheme::Dctcp, flows)
}

struct EngineNumbers {
    events: u64,
    wall_ns: u64,
    pool_hits: u64,
    pool_misses: u64,
}

/// Run the scenario once warm, then `runs` measured times; keep the best
/// (minimum) wall-clock, which is the least-noise estimator on a shared box.
fn measure_engine(runs: u32) -> EngineNumbers {
    let exp = engine_scenario();
    let mut best: Option<EngineNumbers> = None;
    run_experiment(&exp); // warmup
    for _ in 0..runs {
        let t0 = Instant::now();
        let outcome = run_experiment(&exp);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let pool = outcome.sim.pool_stats();
        let n = EngineNumbers {
            events: outcome.report.events,
            wall_ns,
            pool_hits: pool.recycled,
            pool_misses: pool.fresh,
        };
        if best.as_ref().map(|b| n.wall_ns < b.wall_ns).unwrap_or(true) {
            best = Some(n);
        }
    }
    best.expect("at least one measured run")
}

/// The same pinned scenario with the simsan runtime invariant sanitizer
/// at its default per-epoch cadence (audit every 4096 events): best
/// wall-clock over `runs`. The ratio against the unsanitized number is
/// the sanitizer's overhead, tracked in BENCH_engine.json (target: at
/// most ~10%, see DESIGN.md §13).
fn measure_engine_sanitized(runs: u32) -> EngineNumbers {
    let exp = engine_scenario();
    let mut best: Option<EngineNumbers> = None;
    run_experiment_with(&exp, |t| t.sim.set_sanitizer(SanLevel::PerEpoch)); // warmup
    for _ in 0..runs {
        let t0 = Instant::now();
        let outcome = run_experiment_with(&exp, |t| t.sim.set_sanitizer(SanLevel::PerEpoch));
        let wall_ns = t0.elapsed().as_nanos() as u64;
        assert!(
            outcome.sim.san_violations().is_empty(),
            "bench scenario must be violation-free: {:?}",
            outcome.sim.san_violations()
        );
        let pool = outcome.sim.pool_stats();
        let n = EngineNumbers {
            events: outcome.report.events,
            wall_ns,
            pool_hits: pool.recycled,
            pool_misses: pool.fresh,
        };
        if best.as_ref().map(|b| n.wall_ns < b.wall_ns).unwrap_or(true) {
            best = Some(n);
        }
    }
    best.expect("at least one measured run")
}

/// An 8-point grid (2 schemes x 2 loads x 2 seeds) timed at a given
/// worker count. Same spec both times, so the serial/parallel wall-clock
/// ratio is the sweep layer's scaling on this machine.
fn measure_sweep(jobs: usize) -> u64 {
    let topo = TopoKind::Star { n: 6, rate_gbps: 10, delay_us: 20 };
    let t0 = Instant::now();
    let results = SweepSpec::new()
        .jobs(jobs)
        .grid(
            topo,
            &[Scheme::Ppt, Scheme::Dctcp],
            &SizeDistribution::web_search(),
            &[0.4, 0.6],
            150,
            &[42, 7],
        )
        .run();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(results.len(), 8, "sweep grid must produce 8 points");
    wall_ns
}

fn main() {
    let engine = measure_engine(3);
    let ns_per_event = engine.wall_ns as f64 / engine.events.max(1) as f64;
    let events_per_sec = engine.events as f64 * 1e9 / engine.wall_ns.max(1) as f64;
    let pool_total = engine.pool_hits + engine.pool_misses;
    let pool_hit_rate =
        if pool_total == 0 { 0.0 } else { engine.pool_hits as f64 / pool_total as f64 };

    let sanitized = measure_engine_sanitized(3);
    let ns_per_event_sanitized = sanitized.wall_ns as f64 / sanitized.events.max(1) as f64;
    let simsan_overhead = ns_per_event_sanitized / ns_per_event.max(f64::MIN_POSITIVE);

    let sweep_serial_ns = measure_sweep(1);
    let sweep_parallel_ns = measure_sweep(4);
    let cores = std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1);

    let doc = JsonObject::new()
        .str("bench", "engine")
        .str(
            "phase",
            &std::env::var("BENCH_ENGINE_PHASE").unwrap_or_else(|_| "post-refactor".into()),
        )
        .u64("cores", cores)
        .u64("engine_events", engine.events)
        .u64("engine_wall_ns", engine.wall_ns)
        .f64("ns_per_event", ns_per_event)
        .f64("events_per_sec", events_per_sec)
        .f64("pool_hit_rate", pool_hit_rate)
        .f64("ns_per_event_sanitized", ns_per_event_sanitized)
        .f64("simsan_overhead", simsan_overhead)
        .u64("sweep_points", 8)
        .u64("sweep_serial_ns", sweep_serial_ns)
        .u64("sweep_jobs4_ns", sweep_parallel_ns)
        .f64("sweep_speedup", sweep_serial_ns as f64 / sweep_parallel_ns.max(1) as f64)
        .finish();
    println!("{doc}");

    // Append to the tracked perf trajectory unless asked not to.
    let out = std::env::var("BENCH_ENGINE_OUT").unwrap_or_default();
    if out == "-" {
        return;
    }
    let path = if out.is_empty() {
        // crates/bench -> crates -> workspace root
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .expect("bench lives at <root>/crates/bench")
            .join("BENCH_engine.json")
    } else {
        std::path::PathBuf::from(out)
    };
    use std::io::Write;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{doc}"));
    match appended {
        Ok(()) => eprintln!("appended to {}", path.display()),
        Err(e) => eprintln!("warning: could not append to {}: {e}", path.display()),
    }
}
