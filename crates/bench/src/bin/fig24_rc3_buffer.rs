//! Fig 24 (appendix D): RC3 still loses to PPT even when its
//! low-priority queues are capped to a fraction of the switch buffer.

use ppt::harness::{Scheme, TopoKind};
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 24",
        "[Simulation] RC3 with capped low-priority buffer vs PPT",
        "144-host oversubscribed fabric, Web Search, load 0.5",
    );
    let topo = TopoKind::Oversubscribed;
    let flows =
        bench::workload_all_to_all(topo, SizeDistribution::web_search(), 0.5, bench::n_flows(1200));
    bench::fct_header();
    bench::run_and_print(topo, Scheme::Ppt, &flows);
    for frac in [0.2, 0.4, 0.6, 0.8] {
        bench::run_and_print(topo, Scheme::Rc3BufferCap(frac), &flows);
    }
    println!("\npaper: PPT beats RC3 at every cap (up to -71% overall, -73%/-75% small avg/tail)");
}
