//! Table 2: flow size distributions of the realistic workloads.

use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Table 2",
        "Flow size distributions of realistic workloads",
        "analytic CDF statistics",
    );
    println!(
        "{:<14} {:>20} {:>20} {:>16}",
        "workload", "short flows (0-100KB)", "large flows (>100KB)", "avg size"
    );
    for dist in [
        SizeDistribution::web_search(),
        SizeDistribution::data_mining(),
        SizeDistribution::memcached_w1(),
    ] {
        let short = dist.cdf(100_000);
        println!(
            "{:<14} {:>20.1}% {:>19.1}% {:>13.2}MB",
            dist.name(),
            short * 100.0,
            (1.0 - short) * 100.0,
            dist.mean_bytes() / 1e6
        );
    }
    println!("\npaper: WebSearch 62%/38%/1.6MB, DataMining 83%/17%/7.41MB");
}
