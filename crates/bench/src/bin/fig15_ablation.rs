//! Fig 15: ablation — Effect of ECN for the LCP loop (original PPT vs PPT w/o ECN).

use ppt::harness::{Scheme, TopoKind};
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Fig 15",
        "[Simulation] Effect of ECN for the LCP loop",
        "144-host leaf-spine 40/100G, Web Search, load 0.5",
    );
    let topo = TopoKind::Oversubscribed;
    let flows =
        bench::workload_all_to_all(topo, SizeDistribution::web_search(), 0.5, bench::n_flows(1200));
    bench::fct_header();
    let results = bench::sweep_and_print(topo, &[Scheme::Ppt, Scheme::PptNoLcpEcn], &flows);
    let (full, ablated) = (results[0].fct.summary(), results[1].fct.summary());
    println!(
        "\nablation slowdown: overall {:+.1}%, small avg {:+.1}%, small p99 {:+.1}%",
        (ablated.overall_avg_us / full.overall_avg_us - 1.0) * 100.0,
        (ablated.small_avg_us / full.small_avg_us - 1.0) * 100.0,
        (ablated.small_p99_us / full.small_p99_us - 1.0) * 100.0,
    );
}
