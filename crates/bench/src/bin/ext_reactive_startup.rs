//! Extension experiment (§2.1): the reactive-startup spectrum. DCTCP,
//! TCP-10 and Halfback only attack the *startup* half of DCTCP's
//! under-utilization; RC3 attacks both but aggressively; PPT attacks both
//! gracefully. ExpressPass shows the proactive pre-credit cost (1st RTT
//! wasted).

use ppt::harness::{Scheme, TopoKind};
use ppt::workloads::SizeDistribution;

fn main() {
    bench::banner(
        "Ext (§2.1)",
        "Reactive startup variants vs PPT",
        "15-host testbed, Web Search, load 0.5",
    );
    let topo = TopoKind::PaperTestbed;
    let flows =
        bench::workload_all_to_all(topo, SizeDistribution::web_search(), 0.5, bench::n_flows(500));
    bench::fct_header();
    for scheme in [
        Scheme::Tcp10,
        Scheme::Halfback,
        Scheme::Dctcp,
        Scheme::ExpressPass,
        Scheme::Rc3,
        Scheme::Ppt,
    ] {
        bench::run_and_print(topo, scheme, &flows);
    }
}
