#![forbid(unsafe_code)]
//! Shared support for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Every binary prints the same series/rows its figure plots. Scale knobs
//! are environment variables so CI can run cheap versions:
//!
//! * `PPT_FLOWS` — flows per experiment point (default varies per figure)
//! * `PPT_SEED`  — workload seed (default 42)
//! * `PPT_JOBS`  — sweep worker threads (default 1; output is identical
//!   for any value, only wall-clock changes)

use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::stats::FctSummary;
use ppt::sweep::{PointResult, SweepSpec};
use ppt::workloads::{all_to_all, incast, FlowSpec, SizeDistribution, WorkloadSpec};

/// Flows per experiment point (env-overridable).
pub fn n_flows(default: usize) -> usize {
    std::env::var("PPT_FLOWS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Workload seed (env-overridable).
pub fn seed() -> u64 {
    std::env::var("PPT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42)
}

/// Sweep worker threads (env-overridable).
pub fn jobs() -> usize {
    std::env::var("PPT_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

/// Print the standard experiment banner.
pub fn banner(id: &str, what: &str, setup: &str) {
    println!("================================================================");
    println!("{id}: {what}");
    println!("setup: {setup}");
    println!("================================================================");
}

/// Print the standard FCT table header.
pub fn fct_header() {
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "scheme", "overall(us)", "small avg", "small p99", "large avg", "done%"
    );
}

/// Print one FCT row.
pub fn fct_row(name: &str, s: &FctSummary, completion: f64) {
    println!(
        "{:<24} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>8.1}",
        name,
        s.overall_avg_us,
        s.small_avg_us,
        s.small_p99_us,
        s.large_avg_us,
        completion * 100.0
    );
}

/// Build an all-to-all workload for a topology.
pub fn workload_all_to_all(
    topo: TopoKind,
    dist: SizeDistribution,
    load: f64,
    flows: usize,
) -> Vec<FlowSpec> {
    let spec = WorkloadSpec::new(dist, load, topo.edge_rate(), flows, seed());
    all_to_all(topo.hosts(), &spec)
}

/// Build an N-to-1 incast workload (senders 0..n, sink n).
pub fn workload_incast(
    topo: TopoKind,
    dist: SizeDistribution,
    load: f64,
    flows: usize,
    senders: usize,
) -> Vec<FlowSpec> {
    let spec = WorkloadSpec::new(dist, load, topo.edge_rate(), flows, seed());
    incast(senders, &spec)
}

/// Run one scheme over a workload and print its FCT row.
pub fn run_and_print(topo: TopoKind, scheme: Scheme, flows: &[FlowSpec]) -> FctSummary {
    let name = scheme.name();
    let outcome = run_experiment(&Experiment::new(topo, scheme, flows.to_vec()));
    let s = outcome.fct.summary();
    fct_row(&name, &s, outcome.completion_ratio);
    s
}

/// Run a scheme set over one workload through the shared sweep runner
/// ([`ppt::sweep`], `PPT_JOBS` workers) and print the FCT rows — always
/// in scheme order, whatever the completion order was.
pub fn sweep_and_print(topo: TopoKind, schemes: &[Scheme], flows: &[FlowSpec]) -> Vec<PointResult> {
    let mut spec = SweepSpec::new().jobs(jobs());
    for scheme in schemes {
        spec = spec.point(scheme.name(), Experiment::new(topo, scheme.clone(), flows.to_vec()));
    }
    let results = spec.run();
    for r in &results {
        fct_row(&r.label, &r.fct.summary(), r.completion_ratio);
    }
    results
}

/// The standard six-scheme comparison of the large-scale figures.
pub fn large_scale_schemes() -> Vec<Scheme> {
    vec![Scheme::Ndp, Scheme::Aeolus, Scheme::Homa, Scheme::Rc3, Scheme::Dctcp, Scheme::Ppt]
}

/// The testbed comparison set (§6.1).
pub fn testbed_schemes() -> Vec<Scheme> {
    vec![Scheme::Homa, Scheme::Rc3, Scheme::Dctcp, Scheme::Ppt]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_have_defaults() {
        assert!(n_flows(123) >= 1);
        let _ = seed();
    }

    #[test]
    fn workload_builders_produce_flows() {
        let topo = TopoKind::Star { n: 4, rate_gbps: 10, delay_us: 20 };
        let w = workload_all_to_all(topo, SizeDistribution::web_search(), 0.5, 10);
        assert_eq!(w.len(), 10);
        let i = workload_incast(topo, SizeDistribution::web_search(), 0.5, 10, 3);
        assert!(i.iter().all(|f| f.dst == 3));
    }
}
