//! Criterion micro-benchmarks of the hot paths: the simulator engine,
//! switch admission, the PPT state machines, and small end-to-end runs
//! of DCTCP vs PPT (the per-packet cost the paper's Fig 19 worries
//! about).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use ppt::core::{AlphaEstimator, LcpAckClock, MinTracker, MirrorTagger};
use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::netsim::{
    switch::enqueue_policy, FlowId, HostId, Packet, PortCounters, SwitchConfig,
};
use ppt::transports::IntervalSet;
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

fn bench_interval_set(c: &mut Criterion) {
    c.bench_function("interval_set/insert_coalesce_1k", |b| {
        b.iter(|| {
            let mut s = IntervalSet::new();
            // Out-of-order MSS-grain inserts over a 1.5MB flow.
            for i in 0..1000u64 {
                let off = (i * 7919) % 1000 * 1460;
                s.insert(off, off + 1460);
            }
            black_box(s.covered_bytes())
        })
    });
    c.bench_function("interval_set/first_gap_scan", |b| {
        let mut s = IntervalSet::new();
        for i in (0..2000u64).step_by(2) {
            s.insert(i * 1460, (i + 1) * 1460);
        }
        b.iter(|| black_box(s.first_gap(black_box(0), 2000 * 1460)));
    });
}

fn bench_switch(c: &mut Criterion) {
    c.bench_function("switch/enqueue_policy_ecn", |b| {
        let cfg = SwitchConfig::ppt(120_000, 96_000, 86_000);
        b.iter_batched(
            || (ppt::netsim::queue::PrioQueues::new(), PortCounters::default()),
            |(mut q, mut ctr)| {
                for i in 0..64u64 {
                    let pkt = Packet::data(
                        FlowId(i),
                        HostId(0),
                        HostId(1),
                        1460,
                        ppt::transports::Proto::Data(ppt::transports::DataHdr {
                            offset: 0,
                            len: 1460,
                            msg_size: 1460,
                            lcp: i % 2 == 0,
                            retx: false,
                            sent_at: ppt::netsim::SimTime::ZERO,
                            int: None,
                        }),
                    )
                    .with_priority((i % 8) as u8);
                    black_box(enqueue_policy(&cfg, &mut q, &mut ctr, pkt));
                }
                (q, ctr)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_core_state_machines(c: &mut Criterion) {
    c.bench_function("core/alpha_round", |b| {
        let mut a = AlphaEstimator::default();
        b.iter(|| {
            a.on_ack(black_box(1460), black_box(0));
            black_box(a.end_of_round())
        })
    });
    c.bench_function("core/min_tracker_push", |b| {
        let mut m = MinTracker::new(16);
        let mut x = 0.5f64;
        b.iter(|| {
            x = (x * 1.01) % 1.0;
            black_box(m.push(x))
        })
    });
    c.bench_function("core/ewd_ack_clock", |b| {
        let mut clock = LcpAckClock::new();
        b.iter(|| black_box(clock.on_data(black_box(false))))
    });
    c.bench_function("core/mirror_tagger", |b| {
        let t = MirrorTagger::default();
        let mut sent = 0u64;
        b.iter(|| {
            sent = (sent + 50_000) % 5_000_000;
            black_box(t.hcp_priority(black_box(false), sent))
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for scheme in [Scheme::Dctcp, Scheme::Ppt] {
        let name = scheme.name();
        g.bench_function(format!("websearch_50flows/{name}"), |b| {
            let topo = TopoKind::Star { n: 4, rate_gbps: 10, delay_us: 20 };
            let spec = WorkloadSpec::new(
                SizeDistribution::web_search(),
                0.5,
                topo.edge_rate(),
                50,
                7,
            );
            let flows = all_to_all(topo.hosts(), &spec);
            b.iter(|| {
                let outcome =
                    run_experiment(&Experiment::new(topo, scheme.clone(), flows.clone()));
                black_box(outcome.fct.overall_avg_us())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_interval_set,
    bench_switch,
    bench_core_state_machines,
    bench_end_to_end
);
criterion_main!(benches);
