//! Micro-benchmarks of the hot paths: the simulator engine, switch
//! admission, the PPT state machines, and small end-to-end runs of
//! DCTCP vs PPT (the per-packet cost the paper's Fig 19 worries about).
//!
//! Zero-dependency harness (`harness = false`): measures wall time with
//! `std::time::Instant` and prints `name  ns/iter`. Timing output is
//! informational only — nothing here gates on absolute numbers, so the
//! harness stays robust on loaded CI machines. Run with
//! `cargo bench -p bench`.

use std::hint::black_box;
use std::time::Instant;

use ppt::core::{AlphaEstimator, LcpAckClock, MinTracker, MirrorTagger};
use ppt::harness::{run_experiment, Experiment, Scheme, TopoKind};
use ppt::netsim::{switch::enqueue_policy, FlowId, HostId, Packet, PortCounters, SwitchConfig};
use ppt::transports::IntervalSet;
use ppt::workloads::{all_to_all, SizeDistribution, WorkloadSpec};

/// Time `f` over `iters` iterations (after `warmup` unmeasured ones) and
/// report nanoseconds per iteration.
fn bench<T>(name: &str, warmup: u64, iters: u64, mut f: impl FnMut() -> T) {
    for _ in 0..warmup {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() / iters.max(1) as u128;
    println!("{name:<44} {per_iter:>12} ns/iter   ({iters} iters)");
}

fn bench_interval_set() {
    bench("interval_set/insert_coalesce_1k", 3, 200, || {
        let mut s = IntervalSet::new();
        // Out-of-order MSS-grain inserts over a 1.5MB flow.
        for i in 0..1000u64 {
            let off = (i * 7919) % 1000 * 1460;
            s.insert(off, off + 1460);
        }
        s.covered_bytes()
    });
    let mut s = IntervalSet::new();
    for i in (0..2000u64).step_by(2) {
        s.insert(i * 1460, (i + 1) * 1460);
    }
    bench("interval_set/first_gap_scan", 10, 10_000, || s.first_gap(black_box(0), 2000 * 1460));
}

fn bench_switch() {
    let cfg = SwitchConfig::ppt(120_000, 96_000, 86_000);
    bench("switch/enqueue_policy_ecn", 10, 2_000, || {
        let mut q = ppt::netsim::queue::PrioQueues::new();
        let mut ctr = PortCounters::default();
        for i in 0..64u64 {
            let pkt = Packet::data(
                FlowId(i),
                HostId(0),
                HostId(1),
                1460,
                ppt::transports::Proto::Data(ppt::transports::DataHdr {
                    offset: 0,
                    len: 1460,
                    msg_size: 1460,
                    lcp: i % 2 == 0,
                    retx: false,
                    sent_at: ppt::netsim::SimTime::ZERO,
                    int: None,
                }),
            )
            .with_priority((i % 8) as u8);
            black_box(enqueue_policy(&cfg, &mut q, &mut ctr, pkt));
        }
        (q, ctr)
    });
}

fn bench_core_state_machines() {
    let mut a = AlphaEstimator::default();
    bench("core/alpha_round", 100, 1_000_000, || {
        a.on_ack(black_box(1460), black_box(0));
        a.end_of_round()
    });
    let mut m = MinTracker::new(16);
    let mut x = 0.5f64;
    bench("core/min_tracker_push", 100, 1_000_000, || {
        x = (x * 1.01) % 1.0;
        m.push(x)
    });
    let mut clock = LcpAckClock::new();
    bench("core/ewd_ack_clock", 100, 1_000_000, || clock.on_data(black_box(false)));
    let t = MirrorTagger::default();
    let mut sent = 0u64;
    bench("core/mirror_tagger", 100, 1_000_000, || {
        sent = (sent + 50_000) % 5_000_000;
        t.hcp_priority(black_box(false), sent)
    });
}

fn bench_end_to_end() {
    for scheme in [Scheme::Dctcp, Scheme::Ppt] {
        let name = scheme.name();
        let topo = TopoKind::Star { n: 4, rate_gbps: 10, delay_us: 20 };
        let spec = WorkloadSpec::new(SizeDistribution::web_search(), 0.5, topo.edge_rate(), 50, 7);
        let flows = all_to_all(topo.hosts(), &spec);
        bench(&format!("end_to_end/websearch_50flows/{name}"), 1, 10, || {
            let outcome = run_experiment(&Experiment::new(topo, scheme.clone(), flows.clone()));
            outcome.fct.overall_avg_us()
        });
    }
}

/// Tracing overhead: the same run with no sink (the default engine
/// path), the harness's bounded flight recorder, and a full in-memory
/// capture. The no-sink path must stay within noise of pre-trace
/// numbers — the sink is an `Option` checked per emission point.
fn bench_tracing_overhead() {
    use ppt::netsim::{star, Rate, RunLimits, SimDuration, SimTime, SwitchConfig};
    use ppt::trace::{FlightRecorder, MemorySink, TraceSink};
    use ppt::transports::{install_dctcp, Proto, TcpCfg};

    let run = |sink: Option<Box<dyn TraceSink>>| {
        let mut topo = star::<Proto>(
            4,
            Rate::gbps(10),
            SimDuration::from_micros(20),
            SwitchConfig::dctcp(200_000, 30_000),
        );
        let cfg = TcpCfg::new(topo.base_rtt);
        install_dctcp(&mut topo, &cfg);
        for i in 0..12u64 {
            topo.sim.add_flow(
                topo.hosts[(i % 3) as usize],
                topo.hosts[3],
                300_000,
                SimTime(i * 20_000),
                1,
            );
        }
        if let Some(sink) = sink {
            topo.sim.set_trace_sink(sink);
        }
        topo.sim.run(RunLimits::default()).events
    };
    bench("trace/off", 2, 30, || run(None));
    bench("trace/flight_recorder_256", 2, 30, || run(Some(Box::new(FlightRecorder::new(256)))));
    bench("trace/memory_sink", 2, 30, || run(Some(Box::new(MemorySink::new()))));
}

fn main() {
    println!("microbench (zero-dep harness; informational timings)");
    bench_interval_set();
    bench_switch();
    bench_core_state_machines();
    bench_end_to_end();
    bench_tracing_overhead();
}
