//! Topology builders for the paper's experiment setups.

use crate::engine::Simulator;
use crate::ids::{HostId, NodeId, SwitchId};
use crate::packet::Payload;
use crate::switch::SwitchConfig;
use crate::time::SimDuration;
use crate::units::Rate;

/// A built topology: the simulator plus the ids needed to drive it.
pub struct Topology<P: Payload> {
    /// The wired simulator (routes already built).
    pub sim: Simulator<P>,
    /// All hosts, in construction order.
    pub hosts: Vec<HostId>,
    /// Leaf (ToR) switches, if any.
    pub leaves: Vec<SwitchId>,
    /// Spine switches, if any.
    pub spines: Vec<SwitchId>,
    /// One-way host-to-host base RTT components: 2 × (per-link delay × hops).
    pub base_rtt: SimDuration,
    /// Edge (host) link rate.
    pub edge_rate: Rate,
}

/// Parameters for a two-tier leaf-spine topology (§6.2).
#[derive(Clone, Copy, Debug)]
pub struct LeafSpineParams {
    pub n_leaves: usize,
    pub n_spines: usize,
    pub hosts_per_leaf: usize,
    pub edge_rate: Rate,
    pub core_rate: Rate,
    pub link_delay: SimDuration,
}

/// Build a star: `n` hosts on one switch. Used for the testbed experiments
/// (15-to-15, 14-to-1) and the 2-sender microbenchmarks (Figs 1, 28, 29).
pub fn star<P: Payload>(
    n_hosts: usize,
    link_rate: Rate,
    link_delay: SimDuration,
    cfg: SwitchConfig,
) -> Topology<P> {
    let mut sim = Simulator::new();
    let sw = sim.add_switch(cfg);
    let hosts: Vec<HostId> = (0..n_hosts)
        .map(|_| {
            let h = sim.add_host();
            sim.connect(NodeId::Host(h), NodeId::Switch(sw), link_rate, link_delay);
            h
        })
        .collect();
    sim.build_routes();
    Topology {
        sim,
        hosts,
        leaves: vec![sw],
        spines: Vec::new(),
        // host -> switch -> host: 2 links each way.
        base_rtt: link_delay * 4,
        edge_rate: link_rate,
    }
}

/// Build a two-tier leaf-spine fabric.
///
/// The paper's large-scale setup (§6.2): 9 leaves × 16 hosts = 144 servers,
/// 4 spines, 40 Gbps edge and 100 Gbps core links, which is 1.4:1
/// oversubscribed (16×40 / [4×100] ≈ 1.6... the paper calls it 1.4:1 with
/// its exact trunking; the ratio is configurable here).
pub fn leaf_spine<P: Payload>(p: &LeafSpineParams, cfg: SwitchConfig) -> Topology<P> {
    let mut sim = Simulator::new();
    let leaves: Vec<SwitchId> = (0..p.n_leaves).map(|_| sim.add_switch(cfg.clone())).collect();
    let spines: Vec<SwitchId> = (0..p.n_spines).map(|_| sim.add_switch(cfg.clone())).collect();
    let mut hosts = Vec::with_capacity(p.n_leaves * p.hosts_per_leaf);
    for &leaf in &leaves {
        for _ in 0..p.hosts_per_leaf {
            let h = sim.add_host();
            sim.connect(NodeId::Host(h), NodeId::Switch(leaf), p.edge_rate, p.link_delay);
            hosts.push(h);
        }
        for &spine in &spines {
            sim.connect(NodeId::Switch(leaf), NodeId::Switch(spine), p.core_rate, p.link_delay);
        }
    }
    sim.build_routes();
    Topology {
        sim,
        hosts,
        leaves,
        spines,
        // Worst case host->leaf->spine->leaf->host: 3 links each way.
        base_rtt: p.link_delay * 6,
        edge_rate: p.edge_rate,
    }
}

/// The paper's large-scale oversubscribed topology (§6.2): 144 servers,
/// 9 leaves, 4 spines, 40 G edge / 100 G core.
pub fn paper_oversubscribed<P: Payload>(cfg: SwitchConfig) -> Topology<P> {
    leaf_spine(
        &LeafSpineParams {
            n_leaves: 9,
            n_spines: 4,
            hosts_per_leaf: 16,
            edge_rate: Rate::gbps(40),
            core_rate: Rate::gbps(100),
            link_delay: SimDuration::from_micros(2),
        },
        cfg,
    )
}

/// The appendix-E non-oversubscribed topology: 9 leaves × 16 hosts at
/// 10 Gbps edge, 4 spines at 40 Gbps core (16×10 = 4×40, i.e. 1:1).
pub fn paper_nonoversubscribed<P: Payload>(cfg: SwitchConfig) -> Topology<P> {
    leaf_spine(
        &LeafSpineParams {
            n_leaves: 9,
            n_spines: 4,
            hosts_per_leaf: 16,
            edge_rate: Rate::gbps(10),
            core_rate: Rate::gbps(40),
            link_delay: SimDuration::from_micros(2),
        },
        cfg,
    )
}

/// The §6.3.2 100/400G topology.
pub fn paper_100_400g<P: Payload>(cfg: SwitchConfig) -> Topology<P> {
    leaf_spine(
        &LeafSpineParams {
            n_leaves: 9,
            n_spines: 4,
            hosts_per_leaf: 16,
            edge_rate: Rate::gbps(100),
            core_rate: Rate::gbps(400),
            link_delay: SimDuration::from_micros(2),
        },
        cfg,
    )
}

/// The paper's 15-host, 10 Gbps testbed (§6.1) with ~80 µs base RTT.
pub fn paper_testbed<P: Payload>(cfg: SwitchConfig) -> Topology<P> {
    star(15, Rate::gbps(10), SimDuration::from_micros(20), cfg)
}

/// Parameters for a three-tier k-ary fat-tree (k pods, (k/2)² core
/// switches, k²/4 hosts per pod at full bisection).
#[derive(Clone, Copy, Debug)]
pub struct FatTreeParams {
    /// Pod count k (must be even, ≥ 2).
    pub k: usize,
    pub edge_rate: Rate,
    pub aggregate_rate: Rate,
    pub core_rate: Rate,
    pub link_delay: SimDuration,
}

/// Build a k-ary fat-tree: k pods of k/2 edge + k/2 aggregation switches,
/// (k/2)² cores, k³/4 hosts. `leaves` holds the edge switches and
/// `spines` the aggregation plus core switches (aggregation first).
pub fn fat_tree<P: Payload>(p: &FatTreeParams, cfg: SwitchConfig) -> Topology<P> {
    assert!(p.k >= 2 && p.k.is_multiple_of(2), "fat-tree k must be even");
    let half = p.k / 2;
    let mut sim = Simulator::new();

    let mut edges = Vec::new();
    let mut aggs = Vec::new();
    for _pod in 0..p.k {
        for _ in 0..half {
            edges.push(sim.add_switch(cfg.clone()));
        }
        for _ in 0..half {
            aggs.push(sim.add_switch(cfg.clone()));
        }
    }
    let cores: Vec<SwitchId> = (0..half * half).map(|_| sim.add_switch(cfg.clone())).collect();

    let mut hosts = Vec::new();
    for pod in 0..p.k {
        for e in 0..half {
            let edge = edges[pod * half + e];
            // Hosts on this edge switch.
            for _ in 0..half {
                let h = sim.add_host();
                sim.connect(NodeId::Host(h), NodeId::Switch(edge), p.edge_rate, p.link_delay);
                hosts.push(h);
            }
            // Edge <-> every aggregation switch in the pod.
            for a in 0..half {
                let agg = aggs[pod * half + a];
                sim.connect(
                    NodeId::Switch(edge),
                    NodeId::Switch(agg),
                    p.aggregate_rate,
                    p.link_delay,
                );
            }
        }
        // Aggregation <-> cores: agg `a` of each pod connects to cores
        // [a*half, (a+1)*half).
        for a in 0..half {
            let agg = aggs[pod * half + a];
            for c in 0..half {
                let core = cores[a * half + c];
                sim.connect(NodeId::Switch(agg), NodeId::Switch(core), p.core_rate, p.link_delay);
            }
        }
    }
    sim.build_routes();
    let mut spines = aggs;
    spines.extend(cores);
    Topology {
        sim,
        hosts,
        leaves: edges,
        spines,
        // Worst case: host-edge-agg-core-agg-edge-host = 5 links each way.
        base_rtt: p.link_delay * 10,
        edge_rate: p.edge_rate,
    }
}

#[cfg(test)]
mod fat_tree_tests {
    use super::*;
    use crate::packet::NoPayload;

    #[test]
    fn k4_fat_tree_has_canonical_counts() {
        let p = FatTreeParams {
            k: 4,
            edge_rate: Rate::gbps(10),
            aggregate_rate: Rate::gbps(40),
            core_rate: Rate::gbps(40),
            link_delay: SimDuration::from_micros(1),
        };
        let topo = fat_tree::<NoPayload>(&p, SwitchConfig::basic(1 << 20));
        assert_eq!(topo.hosts.len(), 16); // k^3/4
        assert_eq!(topo.leaves.len(), 8); // k*(k/2) edges
        assert_eq!(topo.spines.len(), 8 + 4); // aggs + cores
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_k_is_rejected() {
        let p = FatTreeParams {
            k: 3,
            edge_rate: Rate::gbps(10),
            aggregate_rate: Rate::gbps(10),
            core_rate: Rate::gbps(10),
            link_delay: SimDuration::from_micros(1),
        };
        fat_tree::<NoPayload>(&p, SwitchConfig::basic(1 << 20));
    }
}
