//! Switch configuration: buffer admission, ECN marking and packet trimming.
//!
//! A switch egress port owns eight strict-priority queues sharing one byte
//! budget. On every enqueue the port decides, in order: admit / trim / drop,
//! then whether to set the CE codepoint. All policies here are pure
//! functions of configuration + instantaneous queue state so they can be
//! unit-tested without an engine.

use crate::packet::{Packet, Payload, NUM_PRIORITIES, TRIMMED_BYTES};
use crate::queue::PrioQueues;

/// What backlog an ECN rule compares against its threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarkScope {
    /// Backlog of the single queue the packet joins.
    Queue,
    /// Backlog summed over a half-open priority range `[lo, hi)`.
    Range(u8, u8),
    /// Backlog of the entire port (all eight queues).
    Port,
}

/// An ECN marking rule for one priority level.
///
/// Models the RED profile of commodity switches with min == max == K
/// (mark-on-enqueue at instantaneous backlog ≥ K), as DCTCP and PPT
/// configure it.
#[derive(Clone, Copy, Debug)]
pub struct EcnRule {
    /// Marking threshold K, bytes.
    pub threshold_bytes: u64,
    /// Which backlog K is compared against.
    pub scope: MarkScope,
}

/// A hard cap on the bytes a priority range may occupy at one port
/// (used to reproduce the "limit RC3's low-priority buffer" experiment).
#[derive(Clone, Copy, Debug)]
pub struct RangeCap {
    /// Half-open priority range `[lo, hi)` the cap applies to.
    pub lo: u8,
    /// Exclusive upper priority.
    pub hi: u8,
    /// Maximum bytes the range may hold.
    pub cap_bytes: u64,
}

/// PFC-style hop-by-hop backpressure thresholds (802.1Qbb flavoured).
///
/// When a priority's backlog at an egress port reaches `xoff_bytes`, the
/// switch sends a pause frame for that priority to every upstream neighbour;
/// when the backlog drains to `xon_bytes` or below it sends a resume.
/// `priority_mask` selects which priorities participate (bit `p` set =
/// priority `p` is lossless-flow-controlled).
#[derive(Clone, Copy, Debug)]
pub struct PfcConfig {
    /// Per-priority backlog at which the port asserts XOFF, bytes.
    pub xoff_bytes: u64,
    /// Per-priority backlog at or below which XOFF is released (XON).
    /// Must be below `xoff_bytes` for hysteresis.
    pub xon_bytes: u64,
    /// Bit `p` set = PFC governs priority `p`.
    pub priority_mask: u8,
}

impl PfcConfig {
    /// Thresholds derived from the port buffer: XOFF at a quarter of the
    /// buffer, XON at an eighth, all eight priorities governed.
    pub fn for_buffer(port_buffer_bytes: u64) -> Self {
        PfcConfig {
            xoff_bytes: (port_buffer_bytes / 4).max(1),
            xon_bytes: port_buffer_bytes / 8,
            priority_mask: 0xFF,
        }
    }
}

/// Per-switch (applied to every egress port) configuration.
#[derive(Clone, Debug)]
pub struct SwitchConfig {
    /// Shared byte budget per egress port.
    pub port_buffer_bytes: u64,
    /// ECN rule per priority level; `None` disables marking there.
    pub ecn: [Option<EcnRule>; NUM_PRIORITIES],
    /// NDP-style trimming: when the port backlog is at or above this value
    /// (or the packet would overflow the buffer), trimmable data packets
    /// are cut to headers and enqueued at priority 0 instead of dropped.
    pub trim_threshold_bytes: Option<u64>,
    /// Optional per-priority-range byte caps (checked before admission).
    pub range_caps: Vec<RangeCap>,
    /// Shared-buffer push-out: when a packet arrives at a full port, evict
    /// queued packets of strictly lower priority to make room (the
    /// behaviour of commodity shared-buffer switches with dynamic
    /// thresholds — high-priority traffic is never starved of buffer by
    /// low-priority backlog).
    pub push_out: bool,
    /// PFC backpressure thresholds; `None` disables hop-by-hop pausing.
    pub pfc: Option<PfcConfig>,
}

impl SwitchConfig {
    /// A deep-buffered switch with no ECN and no trimming — useful as a
    /// neutral fabric for unit tests.
    pub fn basic(port_buffer_bytes: u64) -> Self {
        SwitchConfig {
            port_buffer_bytes,
            ecn: [None; NUM_PRIORITIES],
            trim_threshold_bytes: None,
            range_caps: Vec::new(),
            push_out: false,
            pfc: None,
        }
    }

    /// DCTCP-style config: one ECN threshold applied to the whole port for
    /// every priority.
    pub fn dctcp(port_buffer_bytes: u64, k_bytes: u64) -> Self {
        let rule = EcnRule { threshold_bytes: k_bytes, scope: MarkScope::Port };
        SwitchConfig {
            port_buffer_bytes,
            ecn: [Some(rule); NUM_PRIORITIES],
            trim_threshold_bytes: None,
            range_caps: Vec::new(),
            push_out: false,
            pfc: None,
        }
    }

    /// PPT-style config (§3.2): the high-priority group P0–P3 marks at
    /// `k_high` against its own group backlog; the low-priority group P4–P7
    /// marks at the smaller `k_low` against the *whole port* backlog so the
    /// LCP loop senses congestion from normal traffic too. Push-out is on:
    /// opportunistic backlog must never cost normal packets their buffer.
    pub fn ppt(port_buffer_bytes: u64, k_high: u64, k_low: u64) -> Self {
        let mut ecn = [None; NUM_PRIORITIES];
        for rule in ecn.iter_mut().take(4) {
            *rule = Some(EcnRule { threshold_bytes: k_high, scope: MarkScope::Range(0, 4) });
        }
        for rule in ecn.iter_mut().skip(4) {
            *rule = Some(EcnRule { threshold_bytes: k_low, scope: MarkScope::Port });
        }
        SwitchConfig {
            port_buffer_bytes,
            ecn,
            trim_threshold_bytes: None,
            range_caps: Vec::new(),
            push_out: true,
            pfc: None,
        }
    }

    /// NDP-style config: trim trimmable packets beyond a shallow threshold.
    pub fn ndp(port_buffer_bytes: u64, trim_threshold_bytes: u64) -> Self {
        SwitchConfig {
            port_buffer_bytes,
            ecn: [None; NUM_PRIORITIES],
            trim_threshold_bytes: Some(trim_threshold_bytes),
            range_caps: Vec::new(),
            push_out: false,
            pfc: None,
        }
    }

    /// Enable or disable shared-buffer push-out, builder-style.
    pub fn with_push_out(mut self, push_out: bool) -> Self {
        self.push_out = push_out;
        self
    }

    /// Add a byte cap for priorities `[lo, hi)`, builder-style.
    pub fn with_range_cap(mut self, lo: u8, hi: u8, cap_bytes: u64) -> Self {
        self.range_caps.push(RangeCap { lo, hi, cap_bytes });
        self
    }

    /// Enable PFC backpressure with explicit thresholds, builder-style.
    pub fn with_pfc(mut self, pfc: PfcConfig) -> Self {
        debug_assert!(pfc.xon_bytes < pfc.xoff_bytes, "PFC needs XON < XOFF hysteresis");
        self.pfc = Some(pfc);
        self
    }
}

/// Outcome of an enqueue attempt at a switch egress port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Admitted as-is (possibly CE-marked).
    Queued { marked: bool },
    /// Payload removed; header admitted at priority 0.
    Trimmed,
    /// Packet discarded.
    Dropped,
}

/// Per-port counters, exposed for statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PortCounters {
    /// Packets admitted.
    pub enqueued: u64,
    /// Packets dropped (buffer overflow or range cap).
    pub dropped: u64,
    /// Packets trimmed to headers.
    pub trimmed: u64,
    /// Packets CE-marked on enqueue.
    pub marked: u64,
    /// Lower-priority packets evicted by push-out admission.
    pub evicted: u64,
    /// Payload bytes lost to drops.
    pub dropped_bytes: u64,
}

// simlint: hot-path
/// Apply the admission + marking policy for `pkt` against `queues`,
/// mutating the packet (CE bit, trimming) and pushing it when admitted.
///
/// Returns what happened so the caller can update counters / stop
/// tracking the packet.
pub fn enqueue_policy<P: Payload>(
    cfg: &SwitchConfig,
    queues: &mut PrioQueues<P>,
    counters: &mut PortCounters,
    mut pkt: Packet<P>,
) -> EnqueueOutcome {
    // Push-out: a full port sheds strictly-lower-priority backlog to admit
    // the arrival.
    if cfg.push_out {
        while queues.total_bytes() + pkt.wire_bytes as u64 > cfg.port_buffer_bytes {
            match queues.evict_lowest_below(pkt.priority) {
                Some(evicted) => {
                    counters.evicted += 1;
                    counters.dropped += 1;
                    counters.dropped_bytes += evicted.payload_bytes() as u64;
                }
                None => break,
            }
        }
    }
    let backlog = queues.total_bytes();
    let fits = backlog + pkt.wire_bytes as u64 <= cfg.port_buffer_bytes;

    // NDP-style trimming: engage at the trim threshold or on overflow.
    let over_trim = cfg.trim_threshold_bytes.map(|t| backlog >= t).unwrap_or(false);
    if pkt.trimmable && !pkt.trimmed && (over_trim || !fits) && cfg.trim_threshold_bytes.is_some() {
        pkt.trimmed = true;
        pkt.wire_bytes = TRIMMED_BYTES;
        pkt.priority = 0;
        // A trimmed header that still does not fit is dropped.
        if queues.total_bytes() + pkt.wire_bytes as u64 > cfg.port_buffer_bytes {
            counters.dropped += 1;
            return EnqueueOutcome::Dropped;
        }
        counters.trimmed += 1;
        counters.enqueued += 1;
        queues.push(pkt);
        return EnqueueOutcome::Trimmed;
    }

    if !fits {
        counters.dropped += 1;
        counters.dropped_bytes += pkt.payload_bytes() as u64;
        return EnqueueOutcome::Dropped;
    }

    // Range caps (e.g. capping RC3's low-priority buffer share).
    for cap in &cfg.range_caps {
        if pkt.priority >= cap.lo && pkt.priority < cap.hi {
            let range_backlog = queues.bytes_in_range(cap.lo..cap.hi);
            if range_backlog + pkt.wire_bytes as u64 > cap.cap_bytes {
                counters.dropped += 1;
                counters.dropped_bytes += pkt.payload_bytes() as u64;
                return EnqueueOutcome::Dropped;
            }
        }
    }

    // ECN marking against the configured scope's instantaneous backlog.
    let mut marked = false;
    if pkt.ecn.capable && !pkt.ecn.ce {
        if let Some(rule) = &cfg.ecn[pkt.priority as usize] {
            let scoped = match rule.scope {
                MarkScope::Queue => queues.bytes_at(pkt.priority),
                MarkScope::Range(lo, hi) => queues.bytes_in_range(lo..hi),
                MarkScope::Port => queues.total_bytes(),
            };
            if scoped >= rule.threshold_bytes {
                pkt.ecn.ce = true;
                marked = true;
                counters.marked += 1;
            }
        }
    }

    counters.enqueued += 1;
    queues.push(pkt);
    EnqueueOutcome::Queued { marked }
}
// simlint: hot-path-end

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, HostId};
    use crate::packet::{NoPayload, HEADER_BYTES};

    fn data(prio: u8, payload: u32) -> Packet<NoPayload> {
        Packet::data(FlowId(0), HostId(0), HostId(1), payload, NoPayload).with_priority(prio)
    }

    #[test]
    fn drop_tail_on_overflow() {
        let cfg = SwitchConfig::basic(3_000);
        let mut q = PrioQueues::new();
        let mut c = PortCounters::default();
        assert!(matches!(
            enqueue_policy(&cfg, &mut q, &mut c, data(0, 1400)),
            EnqueueOutcome::Queued { .. }
        ));
        assert!(matches!(
            enqueue_policy(&cfg, &mut q, &mut c, data(0, 1400)),
            EnqueueOutcome::Queued { .. }
        ));
        // Third full packet exceeds 3000B budget.
        assert_eq!(enqueue_policy(&cfg, &mut q, &mut c, data(0, 1400)), EnqueueOutcome::Dropped);
        assert_eq!(c.dropped, 1);
        assert_eq!(c.dropped_bytes, 1400);
        assert_eq!(c.enqueued, 2);
    }

    #[test]
    fn ecn_marks_at_threshold_port_scope() {
        let cfg = SwitchConfig::dctcp(1_000_000, 3_000);
        let mut q = PrioQueues::new();
        let mut c = PortCounters::default();
        // Fill just below K.
        for _ in 0..2 {
            enqueue_policy(&cfg, &mut q, &mut c, data(0, 1400));
        }
        assert_eq!(c.marked, 0);
        // Backlog is now 2880 >= ... below 3000, next enqueue sees 2880 < 3000: unmarked.
        enqueue_policy(&cfg, &mut q, &mut c, data(0, 1400));
        assert_eq!(c.marked, 0);
        // Now backlog 4320 >= 3000: marked.
        let out = enqueue_policy(&cfg, &mut q, &mut c, data(0, 1400));
        assert_eq!(out, EnqueueOutcome::Queued { marked: true });
        assert_eq!(c.marked, 1);
    }

    #[test]
    fn ppt_scopes_mark_independently() {
        // K_high = 5KB on P0-3 group; K_low = 1KB on whole port.
        let cfg = SwitchConfig::ppt(1_000_000, 5_000, 1_000);
        let mut q = PrioQueues::new();
        let mut c = PortCounters::default();
        // One HCP packet: port backlog 1440.
        enqueue_policy(&cfg, &mut q, &mut c, data(0, 1400));
        // LCP packet sees port backlog 1440 >= 1KB -> marked.
        let out = enqueue_policy(&cfg, &mut q, &mut c, data(4, 1400));
        assert_eq!(out, EnqueueOutcome::Queued { marked: true });
        // HCP packet sees group backlog 1440 < 5KB -> unmarked.
        let out = enqueue_policy(&cfg, &mut q, &mut c, data(1, 1400));
        assert_eq!(out, EnqueueOutcome::Queued { marked: false });
    }

    #[test]
    fn non_capable_packets_never_marked() {
        let cfg = SwitchConfig::dctcp(1_000_000, 0);
        let mut q = PrioQueues::new();
        let mut c = PortCounters::default();
        let pkt = data(0, 100).without_ecn();
        assert_eq!(
            enqueue_policy(&cfg, &mut q, &mut c, pkt),
            EnqueueOutcome::Queued { marked: false }
        );
    }

    #[test]
    fn trimming_replaces_drop() {
        let cfg = SwitchConfig::ndp(1_000_000, 2_000);
        let mut q = PrioQueues::new();
        let mut c = PortCounters::default();
        enqueue_policy(&cfg, &mut q, &mut c, data(3, 1400).with_trimmable(true));
        enqueue_policy(&cfg, &mut q, &mut c, data(3, 1400).with_trimmable(true));
        // Backlog 2880 >= trim threshold: next trimmable packet is trimmed.
        let out = enqueue_policy(&cfg, &mut q, &mut c, data(3, 1400).with_trimmable(true));
        assert_eq!(out, EnqueueOutcome::Trimmed);
        assert_eq!(c.trimmed, 1);
        // The trimmed header sits at priority 0 and is 64B.
        let head = q.pop().unwrap();
        assert!(head.trimmed);
        assert_eq!(head.priority, 0);
        assert_eq!(head.wire_bytes, TRIMMED_BYTES);
        assert_eq!(head.payload_bytes(), 0);
    }

    #[test]
    fn range_cap_limits_low_priority_share() {
        let cfg = SwitchConfig::basic(1_000_000).with_range_cap(4, 8, 2_000);
        let mut q = PrioQueues::new();
        let mut c = PortCounters::default();
        enqueue_policy(&cfg, &mut q, &mut c, data(5, 1400));
        // 1440B in range; another 1440 would exceed the 2000B cap.
        assert_eq!(enqueue_policy(&cfg, &mut q, &mut c, data(6, 1400)), EnqueueOutcome::Dropped);
        // High-priority traffic is unaffected.
        assert!(matches!(
            enqueue_policy(&cfg, &mut q, &mut c, data(0, 1400)),
            EnqueueOutcome::Queued { .. }
        ));
    }

    #[test]
    fn already_marked_packets_stay_marked_and_are_not_double_counted() {
        let cfg = SwitchConfig::dctcp(1_000_000, 0);
        let mut q = PrioQueues::new();
        let mut c = PortCounters::default();
        let mut pkt = data(0, 100);
        pkt.ecn.ce = true;
        enqueue_policy(&cfg, &mut q, &mut c, pkt);
        assert_eq!(c.marked, 0);
        assert!(q.pop().unwrap().ecn.ce);
    }

    #[test]
    fn header_overhead_counts_toward_buffer() {
        let cfg = SwitchConfig::basic((1400 + HEADER_BYTES) as u64);
        let mut q = PrioQueues::new();
        let mut c = PortCounters::default();
        assert!(matches!(
            enqueue_policy(&cfg, &mut q, &mut c, data(0, 1400)),
            EnqueueOutcome::Queued { .. }
        ));
        assert_eq!(enqueue_policy(&cfg, &mut q, &mut c, data(0, 1)), EnqueueOutcome::Dropped);
    }
}
