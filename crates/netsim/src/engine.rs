//! The discrete-event simulation engine.
//!
//! A [`Simulator`] owns every node, link and flow, plus a single
//! time-ordered event queue (see [`crate::sched`]: a calendar queue by
//! default, with the `BinaryHeap` oracle selectable for differential
//! checks). Determinism: events at equal times are dispatched in insertion
//! order (FIFO tie-break on a monotone sequence number), and nothing in
//! the engine consults wall-clock randomness.

use dcn_trace::{LogHistogram, Series, TraceEvent, TraceSink};

use crate::faults::{FaultOp, FaultSchedule};
use crate::host::{Ctx, Effects, FlowDesc, Transport};
use crate::ids::{FlowId, HostId, LinkId, NodeId, SwitchId};
use crate::link::Link;
use crate::packet::{Packet, PacketMeta, Payload};
use crate::queue::PrioQueues;
use crate::rng::Pcg32;
use crate::sanitizer::{host_port_key, switch_port_key, SanLevel, SanViolation, Sanitizer};
use crate::sched::{QEntry, Queue, QueueKind};
use crate::switch::{enqueue_policy, EnqueueOutcome, MarkScope, PortCounters, SwitchConfig};
use crate::telemetry::{
    CcSnapshot, Telemetry, TelemetryConfig, IDX_CC_CWND, IDX_CC_INFLIGHT, IDX_FLOWS_LIVE,
    IDX_POOL_HIT, IDX_POOL_LIVE,
};
use crate::time::{SimDuration, SimTime};
use crate::units::Rate;

/// Index of an in-flight packet parked in the [`PacketPool`] slab.
#[derive(Clone, Copy, Debug)]
struct PkRef(u32);

/// Packet-pool counters (see [`Simulator::pool_stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Inserts that grew the slab because the free list was empty.
    pub fresh: u64,
    /// Inserts served by recycling a previously freed slot.
    pub recycled: u64,
    /// Slots currently holding an in-flight packet.
    pub live: u64,
}

impl PoolStats {
    /// Fraction of inserts served without growing the slab.
    pub fn hit_rate(&self) -> f64 {
        let total = self.fresh + self.recycled;
        if total == 0 {
            0.0
        } else {
            self.recycled as f64 / total as f64
        }
    }
}

/// Free-list slab for in-flight packets. A packet enters when it starts
/// serialization toward a node and leaves when the delivery dispatches, so
/// slots cycle on wire-latency timescales and the steady state allocates
/// nothing: the slab high-water mark is the peak number of packets
/// simultaneously in flight, not the total sent.
///
/// Struct-of-arrays layout: the `Copy` metadata every forwarding decision
/// reads sits in one dense array (one cache line per event), while the
/// protocol payloads — variable-sized, only touched at delivery — live in
/// a parallel array whose `Option` doubles as the slot-liveness flag.
struct PacketPool<P> {
    meta: Vec<PacketMeta>,
    payload: Vec<Option<P>>,
    free: Vec<u32>,
    fresh: u64,
    recycled: u64,
}

impl<P> PacketPool<P> {
    fn new() -> Self {
        PacketPool {
            meta: Vec::new(),
            payload: Vec::new(),
            free: Vec::new(),
            fresh: 0,
            recycled: 0,
        }
    }

    // simlint: hot-path
    fn insert(&mut self, pkt: Packet<P>) -> PkRef {
        let (meta, payload) = pkt.into_parts();
        match self.free.pop() {
            Some(i) => {
                self.recycled += 1;
                self.meta[i as usize] = meta;
                self.payload[i as usize] = Some(payload);
                PkRef(i)
            }
            None => {
                self.fresh += 1;
                self.meta.push(meta);
                self.payload.push(Some(payload));
                PkRef((self.payload.len() - 1) as u32)
            }
        }
    }

    fn take(&mut self, r: PkRef) -> Packet<P> {
        match self.payload[r.0 as usize].take() {
            Some(payload) => {
                self.free.push(r.0);
                Packet::from_parts(self.meta[r.0 as usize], payload)
            }
            // A PkRef is minted once by insert() and consumed once by
            // dispatch; a double-take is an engine bug, not a user error.
            None => unreachable!("packet pool slot {} taken twice", r.0),
        }
    }
    // simlint: hot-path-end

    fn stats(&self) -> PoolStats {
        PoolStats {
            fresh: self.fresh,
            recycled: self.recycled,
            live: (self.payload.len() - self.free.len()) as u64,
        }
    }
}

/// Engine-internal events. Deliberately `Copy`-sized: the one non-`Copy`
/// payload (an in-flight packet) lives in the [`PacketPool`] slab and is
/// carried here by index, so queue entries are 24-byte values that move
/// through bucket sorts and heap sifts without touching whole packets.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// The application starts flow `flows[idx]` at its source host.
    FlowStart(u32),
    /// A packet finished serialization + propagation and arrives at `to`.
    Deliver { to: NodeId, pkt: PkRef },
    /// An egress transmitter finished serializing; it may start the next
    /// queued packet.
    TxDone { node: NodeId, port: u16 },
    /// A transport timer at `host` fires with `token`.
    Timer { host: HostId, token: u64 },
    /// Sampler `idx` takes a measurement and reschedules itself.
    Sample(u32),
    /// Timed fault operation `schedule.ops[idx]` applies.
    Fault(u32),
    /// A PFC pause (`xoff == true`) or resume frame from `origin` arrives
    /// at `to` for priority `prio`. Pause frames are zero-payload MAC
    /// control frames: they never enter egress queues or the packet pool,
    /// so they are carried entirely by this `Copy` event and reach the
    /// neighbour after pure propagation delay.
    Pfc { to: NodeId, origin: SwitchId, prio: u8, xoff: bool },
}

/// Profiler accumulator slot for an event, in [`dcn_trace::ProfKind::ALL`]
/// order (the engine keeps `Ev` private, so the mapping lives here).
fn prof_kind_index(ev: Ev) -> usize {
    match ev {
        Ev::FlowStart(_) => 0,
        Ev::Deliver { .. } => 1,
        Ev::TxDone { .. } => 2,
        Ev::Timer { .. } => 3,
        Ev::Sample(_) => 4,
        Ev::Fault(_) => 5,
        // Pause frames are accounted as deliveries: they are the wire
        // arrivals of (zero-payload) control frames.
        Ev::Pfc { .. } => 1,
    }
}

/// One egress transmitter: a priority-queue bank feeding one link.
struct PortState<P> {
    link: LinkId,
    queues: PrioQueues<P>,
    busy: bool,
    counters: PortCounters,
    /// PFC receive state: bit `p` set = priority `p` must not be served
    /// (a pause frame from the downstream neighbour is in effect). Always
    /// zero when no switch on the fabric runs PFC.
    paused_mask: u8,
    /// PFC transmit state (switch egress ports only): bit `p` set = this
    /// port has an unreleased XOFF outstanding for priority `p`.
    xoff_sent: u8,
}

impl<P> PortState<P> {
    fn new(link: LinkId) -> Self {
        PortState {
            link,
            queues: PrioQueues::new(),
            busy: false,
            counters: PortCounters::default(),
            paused_mask: 0,
            xoff_sent: 0,
        }
    }
}

struct HostSlot<P> {
    /// The single NIC egress port; `None` until the host is cabled.
    nic: Option<PortState<P>>,
    transport: Option<Box<dyn Transport<P>>>,
    /// Wall-clock nanoseconds spent inside this host's transport handlers
    /// and number of handler invocations (the Fig-19 CPU substitute).
    cpu_ns: u64,
    cpu_calls: u64,
}

struct SwitchSlot<P> {
    ports: Vec<PortState<P>>,
    cfg: SwitchConfig,
    /// Destination-based ECMP table in CSR form: the candidate egress
    /// ports for destination host `d` are
    /// `route_ports[route_offsets[d]..route_offsets[d + 1]]`. Two flat
    /// arrays keep the per-event lookup on adjacent cache lines instead
    /// of chasing a `Vec<Vec<u16>>` double indirection.
    route_offsets: Vec<u32>,
    route_ports: Vec<u16>,
    /// PFC: number of egress ports currently asserting XOFF, per priority.
    /// Pause frames broadcast on the 0→1 edge, resumes on the 1→0 edge, so
    /// overlapping congested ports nest like overlapping switch stalls.
    pfc_xoff_count: [u16; 8],
}

/// What a sampler observes.
#[derive(Clone, Copy, Debug)]
enum SampleTarget {
    /// Cumulative tx bytes of a link.
    Link(LinkId),
    /// Queue occupancy of a switch egress port.
    Port(SwitchId, u16),
    /// The continuous-telemetry tick: a whole-fabric snapshot into the
    /// [`Telemetry`] series table (see `Simulator::enable_telemetry`).
    Telemetry,
}

/// One time-series measurement.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Link sampler: cumulative tx bytes. Port sampler: total backlog bytes.
    pub value: u64,
    /// Port sampler only: backlog per priority level.
    pub per_priority: [u64; 8],
}

struct SamplerState {
    target: SampleTarget,
    interval: SimDuration,
    until: SimTime,
    samples: Vec<Sample>,
}

/// Handle to a registered sampler.
#[derive(Clone, Copy, Debug)]
pub struct SamplerId(u32);

/// Run limits: the simulation stops at whichever comes first.
#[derive(Clone, Copy, Debug)]
pub struct RunLimits {
    /// Hard stop time.
    pub max_time: SimTime,
    /// Hard event budget (guards against livelock bugs).
    pub max_events: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits { max_time: SimTime(u64::MAX), max_events: u64::MAX }
    }
}

/// Why [`Simulator::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained: no further progress is possible. (Flows may
    /// still be incomplete if the transport gave up on them.)
    AllFlowsDone,
    /// The `max_time` limit was reached; pending events were kept.
    MaxTime,
    /// The `max_events` budget was exhausted mid-run.
    MaxEvents,
    /// The sanitizer detected an invariant violation (see
    /// [`Simulator::set_sanitizer`] and [`Simulator::san_violations`]).
    SanViolation,
}

impl StopReason {
    /// Stable snake_case tag (used in JSON output and warnings).
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::AllFlowsDone => "all_flows_done",
            StopReason::MaxTime => "max_time",
            StopReason::MaxEvents => "max_events",
            StopReason::SanViolation => "san_violation",
        }
    }
}

/// Fault-layer recovery statistics for one run. All zeros when no
/// [`FaultSchedule`] was installed (retransmit noting still works).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Packets destroyed by the fault layer (random loss + down links).
    pub fault_drops: u64,
    /// Retransmissions noted by transports via `Ctx::note_retransmit`,
    /// summed over all flows.
    pub retransmits: u64,
    /// Longest single fault interval (link outage or switch stall),
    /// including intervals still open when the run stopped.
    pub max_stall: SimDuration,
    /// Payload bytes delivered to hosts while at least one fault was
    /// active (degraded-mode goodput).
    pub goodput_during_fault_bytes: u64,
}

/// Summary of a completed run.
#[derive(Clone, Copy, Debug)]
pub struct RunReport {
    /// Simulated time when the run stopped.
    pub end_time: SimTime,
    /// Events dispatched.
    pub events: u64,
    /// Flows that reported completion.
    pub flows_completed: usize,
    /// Total flows registered.
    pub flows_total: usize,
    /// Which limit (if any) stopped the run.
    pub stop: StopReason,
    /// Fault-layer recovery statistics.
    pub faults: FaultReport,
}

impl RunReport {
    /// A run is abnormal when a limit tripped or flows were left hanging —
    /// the condition that triggers the harness's flight-recorder dump.
    pub fn is_abnormal(&self) -> bool {
        self.stop != StopReason::AllFlowsDone || self.flows_completed < self.flows_total
    }
}

/// Live fault-injection state: the installed schedule plus the mutable
/// link/switch status and recovery counters it drives.
struct FaultState {
    schedule: FaultSchedule,
    /// Dedicated loss RNG, seeded from the schedule — never shared with
    /// workload generation, so adding loss does not shift workload draws.
    rng: Pcg32,
    /// Per-link down flag, indexed by `LinkId`.
    link_down: Vec<bool>,
    /// Per-switch stall depth (overlapping stalls nest), indexed by `SwitchId`.
    stalled: Vec<u32>,
    /// Start of the currently open outage per link, for `max_stall`.
    down_since: Vec<Option<SimTime>>,
    /// Start of the currently open stall per switch, for `max_stall`.
    stall_since: Vec<Option<SimTime>>,
    /// Number of currently active faults (down links + stalled switches).
    active: u32,
    /// Packets destroyed so far.
    drops: u64,
    /// Longest closed fault interval so far.
    max_stall: SimDuration,
    /// Payload bytes delivered to hosts while `active > 0`.
    goodput_fault_bytes: u64,
}

/// The simulator.
pub struct Simulator<P: Payload> {
    now: SimTime,
    /// The event queue (calendar by default; see [`crate::sched`]).
    queue: Queue<Ev>,
    /// Scratch buffer for same-tick batch draining in [`Self::run`],
    /// parked here so it is allocated once per simulator.
    batch: Vec<QEntry<Ev>>,
    /// In-flight packets, referenced from the event queue by [`PkRef`].
    pool: PacketPool<P>,
    seq: u64,
    links: Vec<Link>,
    hosts: Vec<HostSlot<P>>,
    switches: Vec<SwitchSlot<P>>,
    flows: Vec<FlowDesc>,
    completions: Vec<Option<SimTime>>,
    samplers: Vec<SamplerState>,
    effects: Effects<P>,
    events: u64,
    flows_completed: usize,
    /// Flows whose `FlowStart` has dispatched; with `flows_completed`
    /// this makes the telemetry live-flow count O(1) per sample tick.
    flows_started: usize,
    /// `None` = fault injection disabled: the hot path pays one branch.
    faults: Option<FaultState>,
    /// Per-flow retransmit counts (fed by `Ctx::note_retransmit`).
    retransmit_counts: Vec<u32>,
    retransmits_total: u64,
    /// `None` = tracing disabled: every emission site reduces to one branch.
    trace: Option<Box<dyn TraceSink>>,
    /// `None` = sanitizer disabled: every observation hook reduces to one
    /// branch (simsan, see [`crate::sanitizer`]).
    san: Option<Box<Sanitizer>>,
    /// `None` = continuous telemetry disabled (see [`crate::telemetry`]);
    /// boxed so the disabled hot path carries one pointer, not the whole
    /// series table.
    telemetry: Option<Box<Telemetry>>,
    /// Measure wall-clock time in transport handlers (Fig-19 substitute).
    pub measure_cpu: bool,
}

impl<P: Payload> Default for Simulator<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Payload> Simulator<P> {
    /// An empty network.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: Queue::new(QueueKind::Calendar),
            batch: Vec::new(),
            pool: PacketPool::new(),
            seq: 0,
            links: Vec::new(),
            hosts: Vec::new(),
            switches: Vec::new(),
            flows: Vec::new(),
            completions: Vec::new(),
            samplers: Vec::new(),
            effects: Effects::default(),
            events: 0,
            flows_completed: 0,
            flows_started: 0,
            faults: None,
            retransmit_counts: Vec::new(),
            retransmits_total: 0,
            trace: None,
            san: None,
            telemetry: None,
            measure_cpu: false,
        }
    }

    /// Switch the event-queue implementation (default: calendar). Pending
    /// entries migrate with their `(time, seq)` keys intact, so the
    /// dispatch order — and every golden digest — is unchanged; switching
    /// mid-run is therefore legal, if pointless. The heap kind exists as
    /// the differential oracle (`pptlab --queue heap`, `PPT_QUEUE`).
    pub fn set_queue_kind(&mut self, kind: QueueKind) {
        if self.queue.kind() == kind {
            return;
        }
        let mut dst = Queue::new(kind);
        while let Some(e) = self.queue.pop() {
            dst.push(e);
        }
        self.queue = dst;
    }

    /// The active event-queue implementation.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    // ---------------------------------------------------------------
    // Topology construction
    // ---------------------------------------------------------------

    /// Add a host (must be cabled with [`Self::connect`] before use).
    pub fn add_host(&mut self) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(HostSlot { nic: None, transport: None, cpu_ns: 0, cpu_calls: 0 });
        id
    }

    /// Add a switch with the given per-port configuration.
    pub fn add_switch(&mut self, cfg: SwitchConfig) -> SwitchId {
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(SwitchSlot {
            ports: Vec::new(),
            cfg,
            route_offsets: Vec::new(),
            route_ports: Vec::new(),
            pfc_xoff_count: [0; 8],
        });
        id
    }

    /// Cable `a` and `b` with a full-duplex link (two unidirectional links
    /// of the same rate and delay). Hosts may be cabled exactly once.
    pub fn connect(&mut self, a: NodeId, b: NodeId, rate: Rate, delay: SimDuration) {
        let ab = self.new_link(rate, delay, b);
        let ba = self.new_link(rate, delay, a);
        self.attach_port(a, ab);
        self.attach_port(b, ba);
    }

    fn new_link(&mut self, rate: Rate, delay: SimDuration, to: NodeId) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(rate, delay, to));
        id
    }

    fn attach_port(&mut self, node: NodeId, link: LinkId) {
        match node {
            NodeId::Host(h) => {
                let slot = &mut self.hosts[h.0 as usize];
                assert!(slot.nic.is_none(), "host {h:?} already cabled");
                slot.nic = Some(PortState::new(link));
            }
            NodeId::Switch(s) => {
                self.switches[s.0 as usize].ports.push(PortState::new(link));
            }
        }
    }

    /// Compute destination-based ECMP routes on every switch via BFS
    /// shortest paths. Call once after all `connect` calls.
    pub fn build_routes(&mut self) {
        let n_hosts = self.hosts.len();
        for sw in &mut self.switches {
            sw.route_offsets.clear();
            sw.route_ports.clear();
            sw.route_offsets.push(0);
        }
        // Distance (in hops) from every node to each destination host,
        // computed by BFS from the host over reverse links. Links are
        // symmetric here so forward BFS over neighbors is equivalent.
        // Destinations are visited in ascending order, so each switch's
        // CSR rows are appended in `dst` order.
        let mut candidates: Vec<u16> = Vec::new();
        for dst in 0..n_hosts {
            let dist = self.bfs_from(NodeId::Host(HostId(dst as u32)));
            for si in 0..self.switches.len() {
                let my = dist[self.node_index(NodeId::Switch(SwitchId(si as u32)))];
                candidates.clear();
                for (pi, port) in self.switches[si].ports.iter().enumerate() {
                    let peer = self.links[port.link.0 as usize].to;
                    if dist[self.node_index(peer)] + 1 == my {
                        candidates.push(pi as u16);
                    }
                }
                let sw = &mut self.switches[si];
                sw.route_ports.extend_from_slice(&candidates);
                sw.route_offsets.push(sw.route_ports.len() as u32);
            }
        }
    }

    fn node_index(&self, n: NodeId) -> usize {
        match n {
            NodeId::Host(h) => h.0 as usize,
            NodeId::Switch(s) => self.hosts.len() + s.0 as usize,
        }
    }

    /// BFS hop distance from `start` to every node (usize::MAX = unreachable).
    fn bfs_from(&self, start: NodeId) -> Vec<usize> {
        let n = self.hosts.len() + self.switches.len();
        let mut dist = vec![usize::MAX; n];
        let mut frontier = std::collections::VecDeque::new();
        dist[self.node_index(start)] = 0;
        frontier.push_back(start);
        while let Some(node) = frontier.pop_front() {
            let d = dist[self.node_index(node)];
            let neighbor_links: Vec<LinkId> = match node {
                NodeId::Host(h) => self.hosts[h.0 as usize].nic.iter().map(|p| p.link).collect(),
                NodeId::Switch(s) => {
                    self.switches[s.0 as usize].ports.iter().map(|p| p.link).collect()
                }
            };
            for l in neighbor_links {
                let peer = self.links[l.0 as usize].to;
                let pi = self.node_index(peer);
                if dist[pi] == usize::MAX {
                    dist[pi] = d + 1;
                    frontier.push_back(peer);
                }
            }
        }
        dist
    }

    /// Install the transport endpoint for a host.
    pub fn set_transport(&mut self, host: HostId, t: Box<dyn Transport<P>>) {
        self.hosts[host.0 as usize].transport = Some(t);
    }

    /// Access a host's transport (e.g. to read recorded state after a run).
    pub fn transport(&self, host: HostId) -> Option<&dyn Transport<P>> {
        self.hosts[host.0 as usize].transport.as_deref()
    }

    // ---------------------------------------------------------------
    // Flows
    // ---------------------------------------------------------------

    /// Register a flow; ids are assigned densely in registration order.
    pub fn add_flow(
        &mut self,
        src: HostId,
        dst: HostId,
        size_bytes: u64,
        start: SimTime,
        first_write_bytes: u64,
    ) -> FlowId {
        assert!(src != dst, "flow with src == dst");
        assert!(size_bytes > 0, "empty flow");
        let id = FlowId(self.flows.len() as u64);
        self.flows.push(FlowDesc { id, src, dst, size_bytes, start, first_write_bytes });
        self.completions.push(None);
        self.retransmit_counts.push(0);
        id
    }

    /// All registered flows.
    pub fn flows(&self) -> &[FlowDesc] {
        &self.flows
    }

    /// Completion time of a flow, if it finished.
    pub fn completion(&self, flow: FlowId) -> Option<SimTime> {
        self.completions[flow.0 as usize]
    }

    /// (flow, completion) pairs for all finished flows.
    pub fn completions(&self) -> impl Iterator<Item = (&FlowDesc, SimTime)> {
        self.flows.iter().zip(self.completions.iter()).filter_map(|(f, c)| c.map(|t| (f, t)))
    }

    // ---------------------------------------------------------------
    // Sampling
    // ---------------------------------------------------------------

    /// Sample a link's cumulative tx byte counter every `interval` until
    /// `until`. The first sample fires at `interval`.
    pub fn sample_link(
        &mut self,
        link: LinkId,
        interval: SimDuration,
        until: SimTime,
    ) -> SamplerId {
        self.add_sampler(SampleTarget::Link(link), interval, until)
    }

    /// Sample a switch egress port's backlog every `interval` until `until`.
    pub fn sample_port(
        &mut self,
        switch: SwitchId,
        port: u16,
        interval: SimDuration,
        until: SimTime,
    ) -> SamplerId {
        self.add_sampler(SampleTarget::Port(switch, port), interval, until)
    }

    fn add_sampler(
        &mut self,
        target: SampleTarget,
        interval: SimDuration,
        until: SimTime,
    ) -> SamplerId {
        let id = SamplerId(self.samplers.len() as u32);
        self.samplers.push(SamplerState { target, interval, until, samples: Vec::new() });
        self.schedule(self.now + interval, Ev::Sample(id.0));
        id
    }

    /// Recorded samples of a sampler.
    pub fn samples(&self, id: SamplerId) -> &[Sample] {
        &self.samplers[id.0 as usize].samples
    }

    /// Install the continuous-telemetry layer (DESIGN.md §14): a
    /// deterministic whole-fabric sampler ticking every `cfg.interval`,
    /// starting one interval from now. Sampling only *reads* simulation
    /// state, so enabling telemetry leaves the trace and FCT streams of
    /// the run byte-identical; the sampler stops rearming once every flow
    /// has completed so the event queue still drains.
    ///
    /// Call after the topology is built (the series table is laid out
    /// from the switch/port/link counts at install time).
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        assert!(self.telemetry.is_none(), "telemetry already enabled");
        assert!(cfg.interval > SimDuration::ZERO, "telemetry interval must be positive");
        let cap = cfg.series_capacity;
        let mut series = vec![
            Series::new("flows.live", cap),
            Series::new("pool.live", cap),
            Series::new("pool.hit_rate", cap),
            Series::new("cc.cwnd_bytes", cap),
            Series::new("cc.inflight_bytes", cap),
        ];
        debug_assert_eq!(
            series.len(),
            crate::telemetry::IDX_FIRST_DYNAMIC,
            "scalar series layout drifted from the IDX_* constants"
        );
        let port_base = series.len();
        for (si, sw) in self.switches.iter().enumerate() {
            for pi in 0..sw.ports.len() {
                series.push(Series::new(format!("sw{si}.port{pi}.queue_bytes"), cap));
                series.push(Series::new(format!("sw{si}.port{pi}.queue_pkts"), cap));
            }
        }
        let link_base = series.len();
        for li in 0..self.links.len() {
            series.push(Series::new(format!("link{li}.util"), cap));
        }
        let last_link_tx = self.links.iter().map(|l| l.tx_bytes).collect();
        self.telemetry = Some(Box::new(Telemetry {
            cfg,
            series,
            port_base,
            link_base,
            fct_ns: LogHistogram::new(),
            queue_delay_ns: LogHistogram::new(),
            queue_depth_bytes: LogHistogram::new(),
            last_link_tx,
            last_sample_at: self.now,
            samples_taken: 0,
            prof_counts: [0; 6],
            prof_ns: [0; 6],
            prof_batches: 0,
            prof_batch_events: 0,
        }));
        // `until` is unused for the telemetry target (rearming is gated on
        // flow completion instead), so pass the far-future sentinel.
        self.add_sampler(SampleTarget::Telemetry, cfg.interval, SimTime(u64::MAX));
    }

    /// The telemetry state, when enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// Detach and return the telemetry state (e.g. to move it into a
    /// post-run report without cloning the series table).
    pub fn take_telemetry(&mut self) -> Option<Box<Telemetry>> {
        self.telemetry.take()
    }

    /// The link id a host's NIC transmits on (for sampling utilization).
    pub fn host_uplink(&self, host: HostId) -> LinkId {
        self.hosts[host.0 as usize].nic.as_ref().expect("host not cabled").link // simlint: allow(panic_hygiene)
    }

    /// The link a given switch port transmits on.
    pub fn switch_port_link(&self, switch: SwitchId, port: u16) -> LinkId {
        self.switches[switch.0 as usize].ports[port as usize].link
    }

    /// The switch egress port index whose link points at `target`, if any.
    pub fn switch_port_towards(&self, switch: SwitchId, target: NodeId) -> Option<u16> {
        self.switches[switch.0 as usize]
            .ports
            .iter()
            .position(|p| self.links[p.link.0 as usize].to == target)
            .map(|i| i as u16)
    }

    /// Read a link's configuration and counters.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Per-port counters of a switch.
    pub fn port_counters(&self, switch: SwitchId, port: u16) -> &PortCounters {
        &self.switches[switch.0 as usize].ports[port as usize].counters
    }

    /// Aggregate counters over every switch port.
    pub fn total_counters(&self) -> PortCounters {
        let mut total = PortCounters::default();
        for sw in &self.switches {
            for p in &sw.ports {
                total.enqueued += p.counters.enqueued;
                total.dropped += p.counters.dropped;
                total.trimmed += p.counters.trimmed;
                total.marked += p.counters.marked;
                total.dropped_bytes += p.counters.dropped_bytes;
            }
        }
        total
    }

    /// Packet-pool counters: how often in-flight packet buffers were
    /// recycled vs freshly allocated, and how many are live right now.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Wall-clock nanoseconds spent in a host's transport handlers and the
    /// number of invocations (only meaningful when `measure_cpu` was set).
    pub fn cpu_account(&self, host: HostId) -> (u64, u64) {
        let h = &self.hosts[host.0 as usize];
        (h.cpu_ns, h.cpu_calls)
    }

    /// Number of hosts in the topology.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of switches in the topology.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of egress ports on a switch.
    pub fn port_count(&self, switch: SwitchId) -> usize {
        self.switches[switch.0 as usize].ports.len()
    }

    /// Number of unidirectional links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    // ---------------------------------------------------------------
    // Fault injection
    // ---------------------------------------------------------------

    /// Install a fault schedule. Must be called after the topology is
    /// fully built (per-link/per-switch state is sized here) and before
    /// the first [`Self::run`] call; replaces any previous schedule.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        assert!(self.events == 0, "fault schedule must be installed before the run starts");
        self.faults = Some(FaultState {
            rng: Pcg32::seed_from_u64(schedule.seed),
            link_down: vec![false; self.links.len()],
            stalled: vec![0; self.switches.len()],
            down_since: vec![None; self.links.len()],
            stall_since: vec![None; self.switches.len()],
            active: 0,
            drops: 0,
            max_stall: SimDuration::ZERO,
            goodput_fault_bytes: 0,
            schedule,
        });
    }

    /// Whether a fault schedule is installed.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Fault-layer statistics so far. `max_stall` includes fault intervals
    /// still open at the current simulated time.
    pub fn fault_report(&self) -> FaultReport {
        let mut r = FaultReport { retransmits: self.retransmits_total, ..FaultReport::default() };
        if let Some(fs) = &self.faults {
            r.fault_drops = fs.drops;
            r.max_stall = fs.max_stall;
            r.goodput_during_fault_bytes = fs.goodput_fault_bytes;
            for t0 in fs.down_since.iter().chain(&fs.stall_since).flatten() {
                r.max_stall = r.max_stall.max(self.now.saturating_since(*t0));
            }
        }
        r
    }

    /// Retransmissions noted for `flow` via `Ctx::note_retransmit`.
    pub fn flow_retransmits(&self, flow: FlowId) -> u32 {
        self.retransmit_counts.get(flow.0 as usize).copied().unwrap_or(0)
    }

    /// Apply timed fault op `idx` (dispatch target for `Ev::Fault`).
    fn apply_fault(&mut self, idx: u32) {
        let now = self.now;
        let op = match self.faults.as_ref().and_then(|fs| fs.schedule.ops.get(idx as usize)) {
            Some(timed) => timed.op,
            None => return,
        };
        match op {
            FaultOp::LinkDown(l) => {
                if let Some(fs) = self.faults.as_mut() {
                    let li = l.0 as usize;
                    if !fs.link_down[li] {
                        fs.link_down[li] = true;
                        fs.down_since[li] = Some(now);
                        fs.active += 1;
                    }
                }
                self.emit(TraceEvent::LinkDown { link: l.0 });
            }
            FaultOp::LinkUp(l) => {
                if let Some(fs) = self.faults.as_mut() {
                    let li = l.0 as usize;
                    if fs.link_down[li] {
                        fs.link_down[li] = false;
                        if let Some(t0) = fs.down_since[li].take() {
                            fs.max_stall = fs.max_stall.max(now.saturating_since(t0));
                        }
                        fs.active -= 1;
                    }
                }
                self.emit(TraceEvent::LinkUp { link: l.0 });
            }
            FaultOp::StallStart(s) => {
                if let Some(fs) = self.faults.as_mut() {
                    let si = s.0 as usize;
                    fs.stalled[si] += 1;
                    if fs.stalled[si] == 1 {
                        fs.stall_since[si] = Some(now);
                        fs.active += 1;
                    }
                }
            }
            FaultOp::StallEnd(s) => {
                let resumed = match self.faults.as_mut() {
                    Some(fs) => {
                        let si = s.0 as usize;
                        if fs.stalled[si] > 0 {
                            fs.stalled[si] -= 1;
                            if fs.stalled[si] == 0 {
                                if let Some(t0) = fs.stall_since[si].take() {
                                    fs.max_stall = fs.max_stall.max(now.saturating_since(t0));
                                }
                                fs.active -= 1;
                                true
                            } else {
                                false
                            }
                        } else {
                            false
                        }
                    }
                    None => false,
                };
                if resumed {
                    // Restart every backlogged idle port in a fixed (port
                    // index) order so the resume is deterministic.
                    for pi in 0..self.switches[s.0 as usize].ports.len() {
                        let port = &self.switches[s.0 as usize].ports[pi];
                        if !port.busy && !port.queues.is_empty() {
                            self.start_tx_switch(s, pi as u16);
                        }
                    }
                }
            }
        }
    }

    /// Whether the fault layer destroys the packet being serialized onto
    /// `link`. Draws from the fault RNG only when a non-zero probability
    /// applies, so loss-free schedules take zero draws.
    // simlint: hot-path
    fn fault_loses_packet(&mut self, link: LinkId, pkt: &Packet<P>) -> bool {
        let Some(fs) = self.faults.as_mut() else { return false };
        if fs.link_down.get(link.0 as usize).copied().unwrap_or(false) {
            fs.drops += 1;
            return true;
        }
        // Control packets (header-only: ACKs, NACKs, pulls, credits) use
        // the ACK-loss knob, gated on the priority band; data uses data_loss.
        let p = if pkt.payload_bytes() == 0 {
            if pkt.priority >= fs.schedule.ack_loss_min_prio {
                fs.schedule.ack_loss
            } else {
                0.0
            }
        } else {
            fs.schedule.data_loss
        };
        if p > 0.0 && fs.rng.next_f64() < p {
            fs.drops += 1;
            return true;
        }
        false
    }
    // simlint: hot-path-end

    // ---------------------------------------------------------------
    // Tracing
    // ---------------------------------------------------------------

    /// Install a trace sink; engine and transport events flow into it from
    /// now on. Replaces any previously installed sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Detach and return the trace sink (downcast via `TraceSink::as_any`
    /// to recover the concrete type).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Whether a trace sink is currently installed.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Forward an event to the sink, stamped with the current time.
    fn emit(&mut self, ev: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.emit(self.now.0, &ev);
        }
    }

    // ---------------------------------------------------------------
    // Sanitizer (simsan)
    // ---------------------------------------------------------------

    /// Install the runtime invariant sanitizer at the given cadence
    /// (see [`crate::sanitizer`] and DESIGN.md §13). The ledger is seeded
    /// from the engine's current state, so installing between `run()`
    /// calls is supported. Replaces any previously installed sanitizer.
    pub fn set_sanitizer(&mut self, level: SanLevel) {
        let mut san = Box::new(Sanitizer::new(level));
        for (i, slot) in self.pool.payload.iter().enumerate() {
            if slot.is_some() {
                san.seed_pool_slot(i);
            }
        }
        for (hi, slot) in self.hosts.iter().enumerate() {
            if let Some(nic) = &slot.nic {
                san.seed_port(
                    host_port_key(hi as u32),
                    nic.queues.total_bytes(),
                    nic.queues.len() as u64,
                    nic.busy,
                );
            }
        }
        for (si, sw) in self.switches.iter().enumerate() {
            for (pi, port) in sw.ports.iter().enumerate() {
                san.seed_port(
                    switch_port_key(si as u32, pi as u16),
                    port.queues.total_bytes(),
                    port.queues.len() as u64,
                    port.busy,
                );
            }
        }
        san.seed_faults(self.faults.as_ref().map_or(0, |fs| fs.drops));
        self.san = Some(san);
    }

    /// Whether the sanitizer is currently installed.
    pub fn sanitizer_enabled(&self) -> bool {
        self.san.is_some()
    }

    /// Every sanitizer violation recorded so far (empty when disabled).
    pub fn san_violations(&self) -> &[SanViolation] {
        self.san.as_deref().map_or(&[], |s| s.violations())
    }

    // ---------------------------------------------------------------
    // Event loop
    // ---------------------------------------------------------------

    // simlint: hot-path
    fn schedule(&mut self, at: SimTime, ev: Ev) {
        debug_assert!(at >= self.now, "scheduling into the past");
        if let Some(s) = self.san.as_mut() {
            s.observe_schedule(at, self.now, self.seq);
        }
        self.queue.push(QEntry { at, seq: self.seq, ev });
        self.seq += 1;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run until the event queue drains or a limit is hit.
    ///
    /// On the first call every registered flow's start event is scheduled;
    /// subsequent calls resume from where the previous one stopped.
    pub fn run(&mut self, limits: RunLimits) -> RunReport {
        if self.events == 0 {
            for i in 0..self.flows.len() {
                self.schedule(self.flows[i].start, Ev::FlowStart(i as u32));
            }
            // Timed fault ops enter the queue after every FlowStart, in
            // schedule order — a fixed sequence-number layout that makes
            // identical schedules reproduce identical tie-breaks.
            let n_ops = self.faults.as_ref().map_or(0, |fs| fs.schedule.ops.len());
            for i in 0..n_ops {
                let at = match self.faults.as_ref() {
                    Some(fs) => fs.schedule.ops[i].at,
                    None => break,
                };
                self.schedule(at, Ev::Fault(i as u32));
            }
        }

        let mut stop = StopReason::AllFlowsDone;
        // The self-profiler is opt-in (`TelemetryConfig::prof`): it reads
        // the wall clock around every dispatch, and its numbers are
        // machine noise — never part of any determinism golden.
        let prof = self.telemetry.as_deref().is_some_and(|t| t.prof_enabled());
        // Drain same-tick batches: one queue probe covers every event that
        // shares the earliest timestamp (TxDone/Deliver bursts at
        // synchronized serialization boundaries). The batch is popped in
        // `(time, seq)` order, and anything a dispatch schedules carries a
        // later seq than the whole batch, so dispatch order is identical
        // to popping one entry at a time. The scratch buffer lives on the
        // simulator; take it to keep `self` borrowable during dispatch.
        let mut batch = std::mem::take(&mut self.batch);
        'runloop: loop {
            match self.queue.peek_key() {
                None => break,
                // Not due yet: leave it queued for a future run() call.
                Some((at, _)) if at > limits.max_time => {
                    self.now = limits.max_time;
                    stop = StopReason::MaxTime;
                    break;
                }
                Some(_) => {}
            }
            // The pre-refactor loop dispatched at least one event per
            // run() call even with an exhausted budget; keep that shape.
            let budget = limits.max_events.saturating_sub(self.events).max(1);
            self.queue.pop_batch(&mut batch, usize::try_from(budget).unwrap_or(usize::MAX));
            for i in 0..batch.len() {
                let entry = batch[i];
                if let Some(s) = self.san.as_mut() {
                    s.observe_pop(entry.at, entry.seq, self.now);
                }
                self.now = entry.at;
                self.events += 1;
                if prof {
                    let kind = prof_kind_index(entry.ev);
                    let t0 = std::time::Instant::now(); // simlint: allow(determinism)
                    self.dispatch(entry.ev);
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.prof_counts[kind] += 1;
                        t.prof_ns[kind] += elapsed;
                    }
                } else {
                    self.dispatch(entry.ev);
                }
                let violated = self.san.is_some() && self.san_tick();
                if violated || self.events >= limits.max_events {
                    stop = if violated { StopReason::SanViolation } else { StopReason::MaxEvents };
                    // Undrained tail flows back with its keys intact.
                    for &e in &batch[i + 1..] {
                        self.queue.push(e);
                    }
                    break 'runloop;
                }
            }
            if prof {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.prof_batches += 1;
                    t.prof_batch_events += batch.len() as u64;
                }
            }
        }
        batch.clear();
        self.batch = batch;
        if self.san.is_some() && stop != StopReason::SanViolation {
            // Final audit; at a quiescent end (queue drained) no packet
            // may still be parked in the pool.
            self.san_audit(stop == StopReason::AllFlowsDone);
            if self.san_flush() {
                stop = StopReason::SanViolation;
            }
        }
        RunReport {
            end_time: self.now,
            events: self.events,
            flows_completed: self.flows_completed,
            flows_total: self.flows.len(),
            stop,
            faults: self.fault_report(),
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::FlowStart(idx) => {
                let flow = self.flows[idx as usize].clone();
                self.flows_started += 1;
                self.emit(TraceEvent::FlowStart {
                    flow: flow.id.0,
                    src: flow.src.0,
                    dst: flow.dst.0,
                    size: flow.size_bytes,
                });
                let host = flow.src;
                self.with_transport(host, |t, ctx| t.on_flow_start(&flow, ctx));
            }
            Ev::Deliver { to, pkt } => {
                if let Some(s) = self.san.as_mut() {
                    s.observe_free(self.now, pkt.0 as usize);
                }
                let pkt = self.pool.take(pkt);
                match to {
                    NodeId::Host(h) => {
                        if let Some(fs) = self.faults.as_mut() {
                            if fs.active > 0 {
                                fs.goodput_fault_bytes += pkt.payload_bytes() as u64;
                            }
                        }
                        self.with_transport(h, |t, ctx| t.on_packet(pkt, ctx));
                    }
                    NodeId::Switch(s) => self.switch_forward(s, pkt),
                }
            }
            Ev::TxDone { node, port } => self.tx_done(node, port),
            Ev::Timer { host, token } => {
                self.emit(TraceEvent::Timer { host: host.0, token });
                self.with_transport(host, |t, ctx| t.on_timer(token, ctx));
            }
            Ev::Sample(idx) => self.take_sample(idx),
            Ev::Fault(idx) => self.apply_fault(idx),
            Ev::Pfc { to, origin, prio, xoff } => self.apply_pfc(to, origin, prio, xoff),
        }
    }

    // ---------------------------------------------------------------
    // PFC backpressure (hop-by-hop pause/resume; see DESIGN.md §15)
    // ---------------------------------------------------------------

    /// Re-evaluate the PFC thresholds of one switch egress port after its
    /// backlog changed (any enqueue, dequeue or eviction). Crossing XOFF
    /// upward or XON downward flips the port's `xoff_sent` bit and moves
    /// the switch-wide assertion count; pause/resume frames broadcast only
    /// on that count's 0↔1 edges, to every upstream neighbour in fixed
    /// port-index order so the frame sequence is deterministic.
    fn pfc_update(&mut self, switch: SwitchId, pi: usize) {
        let si = switch.0 as usize;
        let Some(pfc) = self.switches[si].cfg.pfc else { return };
        for p in 0..crate::packet::NUM_PRIORITIES as u8 {
            let bit = 1u8 << p;
            if pfc.priority_mask & bit == 0 {
                continue;
            }
            let (backlog, xoff_sent) = {
                let port = &self.switches[si].ports[pi];
                (port.queues.bytes_at(p), port.xoff_sent & bit != 0)
            };
            if !xoff_sent && backlog >= pfc.xoff_bytes {
                self.switches[si].ports[pi].xoff_sent |= bit;
                self.switches[si].pfc_xoff_count[p as usize] += 1;
                self.emit(TraceEvent::PfcXoff {
                    sw: switch.0,
                    port: pi as u16,
                    prio: p,
                    qlen: backlog,
                    on: true,
                });
                if self.switches[si].pfc_xoff_count[p as usize] == 1 {
                    self.pfc_broadcast(switch, p, true);
                }
            } else if xoff_sent && backlog <= pfc.xon_bytes {
                self.switches[si].ports[pi].xoff_sent &= !bit;
                self.switches[si].pfc_xoff_count[p as usize] -= 1;
                self.emit(TraceEvent::PfcXoff {
                    sw: switch.0,
                    port: pi as u16,
                    prio: p,
                    qlen: backlog,
                    on: false,
                });
                if self.switches[si].pfc_xoff_count[p as usize] == 0 {
                    self.pfc_broadcast(switch, p, false);
                }
            }
        }
    }

    /// Send a pause (`xoff`) or resume frame for `prio` from `switch` to
    /// every neighbour. The frame rides the reverse direction of each
    /// attached full-duplex link with pure propagation delay: MAC control
    /// frames bypass egress queues and serialization entirely, which also
    /// means a pause still reaches neighbours whose forward path is
    /// congested.
    fn pfc_broadcast(&mut self, switch: SwitchId, prio: u8, xoff: bool) {
        let si = switch.0 as usize;
        for pi in 0..self.switches[si].ports.len() {
            let link = self.switches[si].ports[pi].link;
            let l = &self.links[link.0 as usize];
            let (to, delay) = (l.to, l.delay);
            self.schedule(self.now + delay, Ev::Pfc { to, origin: switch, prio, xoff });
        }
    }

    /// Apply a received pause/resume frame at the neighbour: set or clear
    /// the paused bit on the egress port facing `origin`, and on resume
    /// kick the transmitter if backlog was left waiting behind the pause.
    fn apply_pfc(&mut self, to: NodeId, origin: SwitchId, prio: u8, xoff: bool) {
        let bit = 1u8 << prio;
        match to {
            NodeId::Host(h) => {
                let changed = match self.hosts[h.0 as usize].nic.as_mut() {
                    Some(nic) => {
                        let was = nic.paused_mask & bit != 0;
                        if xoff {
                            nic.paused_mask |= bit;
                        } else {
                            nic.paused_mask &= !bit;
                        }
                        was != xoff
                    }
                    None => return,
                };
                if changed {
                    self.emit(TraceEvent::PfcPause { host: h.0, prio, on: xoff });
                }
                if !xoff {
                    let nic = self.hosts[h.0 as usize].nic.as_ref().expect("host not cabled"); // simlint: allow(panic_hygiene)
                    if !nic.busy && !nic.queues.is_empty() {
                        self.start_tx_host(h);
                    }
                }
            }
            NodeId::Switch(s) => {
                // The egress port whose link faces the congested switch is
                // the one that must stop serving the paused priority.
                let Some(pi) = self.switch_port_towards(s, NodeId::Switch(origin)) else {
                    return;
                };
                let port = &mut self.switches[s.0 as usize].ports[pi as usize];
                let was = port.paused_mask & bit != 0;
                if xoff {
                    port.paused_mask |= bit;
                } else {
                    port.paused_mask &= !bit;
                }
                if was != xoff {
                    self.emit(TraceEvent::PfcSwPause { sw: s.0, port: pi, prio, on: xoff });
                }
                if !xoff {
                    let port = &self.switches[s.0 as usize].ports[pi as usize];
                    if !port.busy && !port.queues.is_empty() {
                        self.start_tx_switch(s, pi);
                    }
                }
            }
        }
    }

    /// PFC receive state of a host NIC (bit `p` set = priority `p` paused).
    pub fn host_paused_mask(&self, host: HostId) -> u8 {
        self.hosts[host.0 as usize].nic.as_ref().map_or(0, |nic| nic.paused_mask)
    }

    /// PFC receive state of a switch egress port.
    pub fn switch_port_paused_mask(&self, switch: SwitchId, port: u16) -> u8 {
        self.switches[switch.0 as usize].ports[port as usize].paused_mask
    }

    /// Run a transport handler on `host` with a fresh effects sink, then
    /// apply the effects (transmit packets, arm timers, record completions).
    fn with_transport<F>(&mut self, host: HostId, f: F)
    where
        F: FnOnce(&mut dyn Transport<P>, &mut Ctx<'_, P>),
    {
        let mut effects = std::mem::take(&mut self.effects);
        effects.clear();
        let now = self.now;
        let sanitize = self.san.is_some();
        {
            let trace = self.trace.as_deref_mut();
            let slot = &mut self.hosts[host.0 as usize];
            let transport = slot
                .transport
                .as_deref_mut()
                .unwrap_or_else(|| panic!("no transport installed on {host:?}")); // simlint: allow(panic_hygiene)
            let mut ctx = Ctx::with_trace(now, host, &mut effects, trace).with_sanitizer(sanitize);
            if self.measure_cpu {
                let t0 = std::time::Instant::now(); // simlint: allow(determinism)
                f(transport, &mut ctx);
                slot.cpu_ns += t0.elapsed().as_nanos() as u64;
                slot.cpu_calls += 1;
            } else {
                f(transport, &mut ctx);
            }
        }
        // Apply effects in a fixed order — timers, completions, packets —
        // so queue sequence numbers (and therefore FIFO tie-breaks) are
        // assigned exactly as they always were. `effects` is a local moved
        // out of `self`, so packets drain straight into `host_enqueue`
        // without an intermediate collect; the buffers are handed back at
        // the end and reused across every transport invocation.
        // Retransmit notes first: they only bump counters (never touch the
        // queue), so draining them here cannot shift sequence numbers.
        for flow in effects.retransmits.drain(..) {
            self.retransmits_total += 1;
            if let Some(c) = self.retransmit_counts.get_mut(flow.0 as usize) {
                *c += 1;
            }
        }
        // Sanitizer notes likewise are ledger-only: the vec is empty unless
        // the sanitizer is installed (Ctx::san_note gates on it).
        for note in effects.san_notes.drain(..) {
            if let Some(s) = self.san.as_mut() {
                s.observe_note(now, note);
            }
        }
        for (at, token) in effects.timers.drain(..) {
            let at = at.max(now);
            self.schedule(at, Ev::Timer { host, token });
        }
        for flow in effects.completed.drain(..) {
            let slot = &mut self.completions[flow.0 as usize];
            if slot.is_none() {
                *slot = Some(now);
                self.flows_completed += 1;
                if let Some(t) = self.telemetry.as_deref_mut() {
                    let start = self.flows[flow.0 as usize].start;
                    t.fct_ns.record(now.saturating_since(start).as_nanos());
                }
                self.emit(TraceEvent::FlowComplete { flow: flow.0 });
            }
        }
        for pkt in effects.packets.drain(..) {
            self.host_enqueue(host, pkt);
        }
        self.effects = effects;
    }

    /// Enqueue a packet at a host NIC and kick the transmitter if idle.
    fn host_enqueue(&mut self, host: HostId, mut pkt: Packet<P>) {
        pkt.enq_at = self.now;
        if let Some(s) = self.san.as_mut() {
            s.observe_queue_push(host_port_key(host.0), pkt.wire_bytes as u64);
        }
        let slot = self.hosts[host.0 as usize].nic.as_mut().expect("host not cabled"); // simlint: allow(panic_hygiene)
        slot.queues.push(pkt);
        if !slot.busy {
            self.start_tx_host(host);
        }
    }

    /// Route + admission at a switch, kicking the egress transmitter.
    fn switch_forward(&mut self, switch: SwitchId, pkt: Packet<P>) {
        let si = switch.0 as usize;
        let sw = &self.switches[si];
        assert!(
            sw.route_offsets.len() > 1,
            "switch {switch:?} has no route table (did you call build_routes?)"
        );
        let d = pkt.dst.0 as usize;
        let (lo, hi) = (sw.route_offsets[d] as usize, sw.route_offsets[d + 1] as usize);
        let candidates = &sw.route_ports[lo..hi];
        assert!(
            !candidates.is_empty(),
            "switch {switch:?} has no route to {:?} (did you call build_routes?)",
            pkt.dst
        );
        let pi = candidates[(pkt.flow.path_hash() % candidates.len() as u64) as usize] as usize;
        // INT telemetry observes the egress port state before enqueue.
        let (qlen, qlen_high, tx_bytes, tx_high, rate) = {
            let port = &self.switches[si].ports[pi];
            let link = &self.links[port.link.0 as usize];
            (
                port.queues.total_bytes(),
                port.queues.bytes_in_range(0..4),
                link.tx_bytes,
                link.tx_high_bytes,
                link.rate,
            )
        };
        let mut pkt = pkt;
        pkt.enq_at = self.now;
        pkt.payload.on_switch_hop(crate::packet::HopTelemetry {
            qlen_bytes: qlen,
            qlen_high_bytes: qlen_high,
            tx_bytes,
            tx_high_bytes: tx_high,
            ts: self.now,
            link_rate: rate,
        });
        let (tflow, tprio, tbytes) = (pkt.flow.0, pkt.priority, pkt.payload_bytes() as u64);
        let (twire, tecn) = (pkt.wire_bytes as u64, pkt.ecn.capable && !pkt.ecn.ce);
        let sw = &mut self.switches[si];
        let port = &mut sw.ports[pi];
        let evicted_before = port.counters.evicted;
        let outcome = enqueue_policy(&sw.cfg, &mut port.queues, &mut port.counters, pkt);
        let backlog = port.queues.total_bytes();
        let busy = port.busy;
        if self.san.is_some() {
            let key = switch_port_key(switch.0, pi as u16);
            let evicted = port.counters.evicted != evicted_before;
            let qpkts = port.queues.len() as u64;
            // ECN consistency inputs for a marked admission: the rule (if
            // any) at this priority and the scoped backlog the mark
            // decision saw (marking happens pre-push, so subtract the
            // packet's own wire bytes from the post-push scoped backlog).
            let mark_inputs = match outcome {
                EnqueueOutcome::Queued { marked: true } => {
                    let rule = sw.cfg.ecn[tprio as usize];
                    let thr = if tecn { rule.map(|r| r.threshold_bytes) } else { None };
                    let scoped = match rule.map(|r| r.scope) {
                        Some(MarkScope::Queue) => port.queues.bytes_at(tprio),
                        Some(MarkScope::Range(lo, hi)) => port.queues.bytes_in_range(lo..hi),
                        _ => port.queues.total_bytes(),
                    };
                    Some((scoped.saturating_sub(twire), thr))
                }
                _ => None,
            };
            let wire = match outcome {
                EnqueueOutcome::Queued { .. } => Some(twire),
                EnqueueOutcome::Trimmed => Some(crate::packet::TRIMMED_BYTES as u64),
                EnqueueOutcome::Dropped => None,
            };
            if let Some(s) = self.san.as_mut() {
                if let Some(w) = wire {
                    s.observe_queue_push(key, w);
                }
                if evicted {
                    s.observe_queue_resync(key, backlog, qpkts);
                }
                if let Some((scoped, thr)) = mark_inputs {
                    s.observe_ecn_mark(self.now, key, scoped, thr);
                }
            }
        }
        if self.trace.is_some() {
            let (sw, port) = (switch.0, pi as u16);
            match outcome {
                EnqueueOutcome::Dropped => self.emit(TraceEvent::Drop {
                    sw,
                    port,
                    flow: tflow,
                    prio: tprio,
                    bytes: tbytes,
                }),
                EnqueueOutcome::Trimmed => {
                    self.emit(TraceEvent::Trim { sw, port, flow: tflow, prio: tprio })
                }
                EnqueueOutcome::Queued { marked } => {
                    self.emit(TraceEvent::Enqueue {
                        sw,
                        port,
                        flow: tflow,
                        prio: tprio,
                        qlen: backlog,
                    });
                    if marked {
                        self.emit(TraceEvent::EcnMark {
                            sw,
                            port,
                            flow: tflow,
                            prio: tprio,
                            qlen: backlog,
                        });
                    }
                }
            }
        }
        // PFC thresholds see the post-admission backlog (push-out evictions
        // may also have drained other priorities below XON, so this runs
        // on every outcome).
        self.pfc_update(switch, pi);
        match outcome {
            EnqueueOutcome::Dropped => {}
            EnqueueOutcome::Queued { .. } | EnqueueOutcome::Trimmed => {
                if !busy {
                    self.start_tx_switch(switch, pi as u16);
                }
            }
        }
    }

    /// Begin serializing the head-of-line packet at a host NIC.
    fn start_tx_host(&mut self, host: HostId) {
        let slot = self.hosts[host.0 as usize].nic.as_mut().expect("host not cabled"); // simlint: allow(panic_hygiene)
        let Some(pkt) = slot.queues.pop_unpaused(slot.paused_mask) else { return };
        slot.busy = true;
        let link_id = slot.link;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.queue_delay_ns.record(self.now.saturating_since(pkt.enq_at).as_nanos());
        }
        if let Some(s) = self.san.as_mut() {
            s.observe_queue_pop(self.now, host_port_key(host.0), pkt.wire_bytes as u64);
        }
        self.transmit(NodeId::Host(host), 0, link_id, pkt);
    }

    fn start_tx_switch(&mut self, switch: SwitchId, port: u16) {
        // A stalled switch admits (and drops) but never starts serializing;
        // backlogged ports are kicked again when the stall ends.
        if let Some(fs) = self.faults.as_ref() {
            if fs.stalled.get(switch.0 as usize).copied().unwrap_or(0) > 0 {
                return;
            }
        }
        let slot = &mut self.switches[switch.0 as usize].ports[port as usize];
        let Some(pkt) = slot.queues.pop_unpaused(slot.paused_mask) else { return };
        slot.busy = true;
        let link_id = slot.link;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.queue_delay_ns.record(self.now.saturating_since(pkt.enq_at).as_nanos());
        }
        if let Some(s) = self.san.as_mut() {
            s.observe_queue_pop(self.now, switch_port_key(switch.0, port), pkt.wire_bytes as u64);
        }
        self.emit(TraceEvent::Dequeue { sw: switch.0, port, flow: pkt.flow.0, prio: pkt.priority });
        // The dequeue may have drained this port's backlog through XON.
        self.pfc_update(switch, port as usize);
        self.transmit(NodeId::Switch(switch), port, link_id, pkt);
    }

    fn transmit(&mut self, node: NodeId, port: u16, link_id: LinkId, pkt: Packet<P>) {
        if let Some(s) = self.san.as_mut() {
            s.observe_tx_start(self.now, san_port_key(node, port));
        }
        let link = &mut self.links[link_id.0 as usize];
        link.tx_bytes += pkt.wire_bytes as u64;
        link.tx_packets += 1;
        if pkt.priority < 4 {
            link.tx_high_bytes += pkt.wire_bytes as u64;
        }
        let ser = link.rate.serialization_time(pkt.wire_bytes as u64);
        let arrive_at = self.now + ser + link.delay;
        let to = link.to;
        // The fault layer destroys packets *at serialization time*: the
        // sender still pays the full serialization delay (TxDone fires as
        // usual) but no Deliver is scheduled — the bits die on the wire.
        if self.faults.is_some() && self.fault_loses_packet(link_id, &pkt) {
            if let Some(s) = self.san.as_mut() {
                s.observe_fault_drop();
            }
            self.emit(TraceEvent::FaultDrop {
                link: link_id.0,
                flow: pkt.flow.0,
                prio: pkt.priority,
                bytes: pkt.wire_bytes as u64,
            });
            self.schedule(self.now + ser, Ev::TxDone { node, port });
            return;
        }
        let pkt = self.pool.insert(pkt);
        if let Some(s) = self.san.as_mut() {
            s.observe_alloc(self.now, pkt.0 as usize);
        }
        self.schedule(arrive_at, Ev::Deliver { to, pkt });
        self.schedule(self.now + ser, Ev::TxDone { node, port });
    }

    fn tx_done(&mut self, node: NodeId, port: u16) {
        if let Some(s) = self.san.as_mut() {
            s.observe_tx_done(self.now, san_port_key(node, port));
        }
        match node {
            NodeId::Host(h) => {
                let slot = self.hosts[h.0 as usize].nic.as_mut().expect("host not cabled"); // simlint: allow(panic_hygiene)
                slot.busy = false;
                if !slot.queues.is_empty() {
                    self.start_tx_host(h);
                }
            }
            NodeId::Switch(s) => {
                let slot = &mut self.switches[s.0 as usize].ports[port as usize];
                slot.busy = false;
                if !slot.queues.is_empty() {
                    self.start_tx_switch(s, port);
                }
            }
        }
    }
    // simlint: hot-path-end

    fn take_sample(&mut self, idx: u32) {
        let now = self.now;
        let (interval, until, target) = {
            let s = &self.samplers[idx as usize];
            (s.interval, s.until, s.target)
        };
        if let SampleTarget::Telemetry = target {
            self.telemetry_sample();
            // Rearm only while flows are outstanding — a deterministic
            // condition — so the queue drains and `AllFlowsDone` still
            // fires exactly as it would without telemetry.
            if self.flows_completed < self.flows.len() {
                self.schedule(now + interval, Ev::Sample(idx));
            }
            return;
        }
        let sample = match target {
            SampleTarget::Link(l) => {
                Sample { at: now, value: self.links[l.0 as usize].tx_bytes, per_priority: [0; 8] }
            }
            SampleTarget::Port(sw, p) => {
                let q = &self.switches[sw.0 as usize].ports[p as usize].queues;
                let mut per = [0u64; 8];
                for (i, slot) in per.iter_mut().enumerate() {
                    *slot = q.bytes_at(i as u8);
                }
                Sample { at: now, value: q.total_bytes(), per_priority: per }
            }
            SampleTarget::Telemetry => unreachable!("telemetry target handled above"),
        };
        self.samplers[idx as usize].samples.push(sample);
        if now + interval <= until {
            self.schedule(now + interval, Ev::Sample(idx));
        }
    }

    /// One telemetry tick: snapshot fabric state into the series table.
    /// Strictly read-only with respect to simulation state — the only
    /// mutations are to the telemetry ledgers themselves — which is what
    /// keeps telemetry-enabled runs byte-identical (DESIGN.md §14).
    fn telemetry_sample(&mut self) {
        // Detach the box so the borrow checker lets us walk `self` while
        // filling the series; reattached below.
        let Some(mut t) = self.telemetry.take() else { return };
        let now = self.now;
        let at = now.0;
        // Every completed flow started, so started - completed = live;
        // O(1) where a scan over `flows` would cost O(n) per tick.
        let live_flows = self.flows_started - self.flows_completed;
        t.series[IDX_FLOWS_LIVE].push(at, live_flows as f64);
        let pool = self.pool.stats();
        t.series[IDX_POOL_LIVE].push(at, pool.live as f64);
        t.series[IDX_POOL_HIT].push(at, pool.hit_rate());
        let mut cc = CcSnapshot::default();
        for host in &self.hosts {
            if let Some(transport) = host.transport.as_deref() {
                cc.add(&transport.cc_snapshot());
            }
        }
        t.series[IDX_CC_CWND].push(at, cc.cwnd_bytes as f64);
        t.series[IDX_CC_INFLIGHT].push(at, cc.inflight_bytes as f64);
        let mut idx = t.port_base;
        for sw in &self.switches {
            for port in &sw.ports {
                let backlog = port.queues.total_bytes();
                t.series[idx].push(at, backlog as f64);
                t.series[idx + 1].push(at, port.queues.len() as f64);
                t.queue_depth_bytes.record(backlog);
                idx += 2;
            }
        }
        // Utilization = bytes the link moved this window over the bytes it
        // could have moved; capped at 1.0 because a serialization that
        // straddles the window boundary books its bytes at start-of-tx.
        let window = now.saturating_since(t.last_sample_at);
        for (li, link) in self.links.iter().enumerate() {
            let tx = link.tx_bytes;
            let delta = tx - t.last_link_tx[li];
            t.last_link_tx[li] = tx;
            let capacity = link.rate.bytes_in(window);
            let util = if capacity == 0 { 0.0 } else { (delta as f64 / capacity as f64).min(1.0) };
            t.series[t.link_base + li].push(at, util);
        }
        t.last_sample_at = now;
        t.samples_taken += 1;
        self.telemetry = Some(t);
    }

    // ---------------------------------------------------------------
    // Sanitizer audits (cadence-driven; see crate::sanitizer)
    // ---------------------------------------------------------------

    /// Count one dispatched event against the sanitizer cadence; when an
    /// audit is due, run it and flush. Returns true when the run must stop
    /// with [`StopReason::SanViolation`].
    fn san_tick(&mut self) -> bool {
        let due = match self.san.as_mut() {
            Some(s) => s.tick(),
            None => return false,
        };
        if !due {
            return false;
        }
        self.san_audit(false);
        self.san_flush()
    }

    /// Cross-check the sanitizer ledger against the engine's real state.
    fn san_audit(&mut self, quiescent: bool) {
        let Some(mut san) = self.san.take() else { return };
        let now = self.now;
        san.audit_pool(now, self.pool.stats().live, quiescent);
        for (hi, slot) in self.hosts.iter().enumerate() {
            if let Some(nic) = &slot.nic {
                san.audit_port(
                    now,
                    host_port_key(hi as u32),
                    nic.queues.total_bytes(),
                    nic.queues.len() as u64,
                    nic.busy,
                    nic.queues.audit_counters(),
                );
            }
        }
        for (si, sw) in self.switches.iter().enumerate() {
            for (pi, port) in sw.ports.iter().enumerate() {
                san.audit_port(
                    now,
                    switch_port_key(si as u32, pi as u16),
                    port.queues.total_bytes(),
                    port.queues.len() as u64,
                    port.busy,
                    port.queues.audit_counters(),
                );
            }
        }
        san.audit_faults(now, self.faults.as_ref().map_or(0, |fs| fs.drops));
        self.san = Some(san);
    }

    /// Emit every not-yet-reported violation as a `SanViolation` trace
    /// event (stamped with its detection time); returns true when any
    /// violation has ever been recorded.
    fn san_flush(&mut self) -> bool {
        let Some(mut san) = self.san.take() else { return false };
        for v in san.unflushed() {
            if let Some(sink) = self.trace.as_mut() {
                let ev = TraceEvent::SanViolation {
                    check: v.check,
                    subject: v.subject,
                    expected: v.expected,
                    actual: v.actual,
                };
                sink.emit(v.at.0, &ev);
            }
        }
        let any = san.mark_flushed();
        self.san = Some(san);
        any
    }
}

/// Sanitizer ledger key for an egress port (host NICs always use port 0).
fn san_port_key(node: NodeId, port: u16) -> u64 {
    match node {
        NodeId::Host(h) => host_port_key(h.0),
        NodeId::Switch(s) => switch_port_key(s.0, port),
    }
}

/// Deliberate state-corruption hooks for the simsan selftest suite
/// (`tests/sanitizer.rs`): each seeds exactly one corruption class that
/// the sanitizer must flag. Compiled only for tests and the
/// `simsan-selftest` feature — release artifacts never contain them.
#[cfg(any(test, feature = "simsan-selftest"))]
impl<P: Payload> Simulator<P> {
    /// Leak one pooled packet buffer: a slot vanishes from the free list
    /// without its packet ever being delivered, so `pool_stats().live`
    /// inflates relative to the sanitizer's ledger. No-op until at least
    /// one packet has cycled through the pool.
    pub fn corrupt_pool_leak(&mut self) {
        self.pool.free.pop();
    }

    /// Replay a free of an already-freed pool slot into the sanitizer's
    /// ledger — the event stream a double-free bug would produce. No-op
    /// until at least one slot has been freed or the sanitizer is off.
    pub fn corrupt_pool_double_free(&mut self) {
        let now = self.now;
        let slot = self.pool.free.first().copied();
        if let (Some(slot), Some(s)) = (slot, self.san.as_mut()) {
            s.observe_free(now, slot as usize);
        }
    }

    /// Push two queue entries with the *same* `(time, seq)` key, breaking
    /// the strictly-increasing sequence numbers the FIFO tie-break relies
    /// on. The payload is an out-of-range fault op, which dispatches as a
    /// no-op. Do not combine with an installed fault schedule.
    pub fn corrupt_tie_break(&mut self) {
        let entry = QEntry { at: self.now, seq: self.seq, ev: Ev::Fault(u32::MAX) };
        self.queue.push(entry); // simlint: allow(event_order)
        self.queue.push(entry); // simlint: allow(event_order)
        self.seq += 1;
    }

    /// Skew a host NIC's internal byte counters away from its queue
    /// contents (the accounting-drift bug class).
    pub fn corrupt_queue_counter(&mut self, host: HostId, skew_bytes: u64) {
        if let Some(nic) = self.hosts[host.0 as usize].nic.as_mut() {
            nic.queues.corrupt_skew_bytes(skew_bytes);
        }
    }

    /// Schedule a TxDone for a host NIC with no serialization in flight
    /// (the phantom-completion bug class).
    pub fn corrupt_phantom_tx_done(&mut self, host: HostId) {
        self.schedule(self.now, Ev::TxDone { node: NodeId::Host(host), port: 0 });
    }

    /// Bump the fault layer's drop counter without any packet having been
    /// destroyed, leaving a drop the `FaultReport` cannot attribute.
    /// No-op unless a fault schedule is installed.
    pub fn corrupt_fault_attribution(&mut self) {
        if let Some(fs) = self.faults.as_mut() {
            fs.drops += 1;
        }
    }
}
