//! A small deterministic pseudo-random number generator (PCG-XSH-RR
//! 64/32, O'Neill 2014) for seeded workload generation and tests.
//!
//! The engine itself never draws randomness; this type exists so that
//! *inputs* to the engine (workloads, test cases) can be generated
//! reproducibly without any external crate. Same seed ⇒ same stream on
//! every platform, forever — the stream is part of the repo's
//! determinism contract (see DESIGN.md).

/// PCG32: 64-bit state, 32-bit output, period 2^64 per stream.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Seed with SplitMix64 expansion of `seed` (so small consecutive
    /// seeds give well-separated streams, like `rand`'s `seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = next();
        let inc = next() | 1; // stream selector must be odd
        let mut rng = Pcg32 { state: 0, inc };
        // Standard PCG initialization: advance once, add the seed state,
        // advance again so the first output already mixes both.
        rng.next_u32();
        rng.state = rng.state.wrapping_add(state);
        rng.next_u32();
        rng
    }

    /// Next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniform bits (two draws, high word first).
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform in [0, 1) with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, n). Panics if n == 0. Uses rejection
    /// sampling (Lemire's method) so the distribution is exact.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0) is meaningless");
        // Widening-multiply rejection: unbiased for every n.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize in [0, n) — convenience for indexing.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn stream_is_pinned_forever() {
        // The exact values are part of the determinism contract: changing
        // the generator invalidates every recorded experiment seed.
        let mut r = Pcg32::seed_from_u64(0);
        let first: Vec<u32> = (0..4).map(|_| r.next_u32()).collect();
        assert_eq!(first, vec![2_321_410_640, 2_338_699_057, 2_751_032_930, 3_277_089_664]);
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut r = Pcg32::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn gen_range_is_bounded_and_covers() {
        let mut r = Pcg32::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.gen_range(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn empty_range_rejected() {
        Pcg32::seed_from_u64(0).gen_range(0);
    }
}
