//! Link rates and bandwidth-delay arithmetic.

use crate::time::SimDuration;

/// A link transmission rate.
///
/// Stored as bits per second. Constructors are provided for the usual
/// datacenter units. Serialization-time math is exact in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Rate {
    bits_per_sec: u64,
}

impl Rate {
    /// Rate from raw bits per second.
    pub const fn from_bps(bits_per_sec: u64) -> Self {
        Rate { bits_per_sec }
    }

    /// Rate from gigabits per second (e.g. `Rate::gbps(40)`).
    pub const fn gbps(g: u64) -> Self {
        Rate { bits_per_sec: g * 1_000_000_000 }
    }

    /// Rate from megabits per second.
    pub const fn mbps(m: u64) -> Self {
        Rate { bits_per_sec: m * 1_000_000 }
    }

    /// Raw bits per second.
    pub const fn bits_per_sec(self) -> u64 {
        self.bits_per_sec
    }

    /// Bytes per second.
    pub const fn bytes_per_sec(self) -> u64 {
        self.bits_per_sec / 8
    }

    /// Time to serialize `bytes` onto the wire at this rate.
    ///
    /// Rounds up to the next nanosecond so that back-to-back transmissions
    /// never overlap.
    pub fn serialization_time(self, bytes: u64) -> SimDuration {
        debug_assert!(self.bits_per_sec > 0, "zero-rate link");
        let bits = bytes * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.bits_per_sec);
        SimDuration::from_nanos(ns)
    }

    /// Bytes that can be transmitted in `dur` at this rate (rounded down).
    pub fn bytes_in(self, dur: SimDuration) -> u64 {
        (self.bits_per_sec as u128 * dur.as_nanos() as u128 / (8 * 1_000_000_000)) as u64
    }
}

/// Bandwidth-delay product in bytes for a given bottleneck rate and
/// base round-trip time.
pub fn bdp_bytes(rate: Rate, base_rtt: SimDuration) -> u64 {
    rate.bytes_in(base_rtt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_exact() {
        // 1500B at 10Gbps = 12000 bits / 10^10 bps = 1.2us
        assert_eq!(Rate::gbps(10).serialization_time(1500).as_nanos(), 1200);
        // 1500B at 40Gbps = 300ns
        assert_eq!(Rate::gbps(40).serialization_time(1500).as_nanos(), 300);
        // rounding up: 1 byte at 3 bps -> ceil(8e9/3)
        assert_eq!(Rate::from_bps(3).serialization_time(1).as_nanos(), 2_666_666_667);
    }

    #[test]
    fn bdp_matches_hand_math() {
        // 40Gbps * 16us RTT = 80KB
        assert_eq!(bdp_bytes(Rate::gbps(40), SimDuration::from_micros(16)), 80_000);
        // 10Gbps * 80us = 100KB
        assert_eq!(bdp_bytes(Rate::gbps(10), SimDuration::from_micros(80)), 100_000);
    }

    #[test]
    fn bytes_in_inverts_serialization() {
        let r = Rate::gbps(25);
        let d = r.serialization_time(123_456);
        assert!(r.bytes_in(d) >= 123_456);
    }
}
