//! Strict-priority packet queues used at every egress port.

use std::collections::VecDeque;

use crate::packet::{Packet, NUM_PRIORITIES};

/// A bank of eight strict-priority FIFO queues with byte accounting.
///
/// Priority 0 is served first. The bank tracks the byte backlog of each
/// queue and of the whole bank; switches use those for ECN-marking and
/// shared-buffer admission decisions.
#[derive(Debug)]
pub struct PrioQueues<P> {
    queues: [VecDeque<Packet<P>>; NUM_PRIORITIES],
    bytes: [u64; NUM_PRIORITIES],
    total_bytes: u64,
}

impl<P> Default for PrioQueues<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PrioQueues<P> {
    /// An empty queue bank.
    pub fn new() -> Self {
        PrioQueues {
            queues: std::array::from_fn(|_| VecDeque::new()),
            bytes: [0; NUM_PRIORITIES],
            total_bytes: 0,
        }
    }

    // simlint: hot-path
    /// Append a packet to its priority queue.
    pub fn push(&mut self, pkt: Packet<P>) {
        let p = pkt.priority as usize;
        debug_assert!(p < NUM_PRIORITIES, "packet priority {p} out of range");
        self.bytes[p] += pkt.wire_bytes as u64;
        self.total_bytes += pkt.wire_bytes as u64;
        self.queues[p].push_back(pkt);
    }

    /// Remove and return the head of the highest-priority non-empty queue.
    pub fn pop(&mut self) -> Option<Packet<P>> {
        for p in 0..NUM_PRIORITIES {
            if let Some(pkt) = self.queues[p].pop_front() {
                self.bytes[p] -= pkt.wire_bytes as u64;
                self.total_bytes -= pkt.wire_bytes as u64;
                return Some(pkt);
            }
        }
        None
    }

    /// Remove and return the head of the highest-priority non-empty queue
    /// whose priority bit is clear in `paused_mask` (bit `p` set = priority
    /// `p` is PFC-paused). Byte accounting is identical to [`pop`].
    pub fn pop_unpaused(&mut self, paused_mask: u8) -> Option<Packet<P>> {
        for p in 0..NUM_PRIORITIES {
            if paused_mask & (1 << p) != 0 {
                continue;
            }
            if let Some(pkt) = self.queues[p].pop_front() {
                self.bytes[p] -= pkt.wire_bytes as u64;
                self.total_bytes -= pkt.wire_bytes as u64;
                return Some(pkt);
            }
        }
        None
    }

    /// Evict the most recently queued packet of the lowest-priority
    /// non-empty queue whose priority is strictly below `above`.
    /// Models shared-buffer push-out: arriving high-priority traffic
    /// reclaims space from low-priority backlog.
    pub fn evict_lowest_below(&mut self, above: u8) -> Option<Packet<P>> {
        for p in (above as usize + 1..NUM_PRIORITIES).rev() {
            if let Some(pkt) = self.queues[p].pop_back() {
                self.bytes[p] -= pkt.wire_bytes as u64;
                self.total_bytes -= pkt.wire_bytes as u64;
                return Some(pkt);
            }
        }
        None
    }
    // simlint: hot-path-end

    /// Byte backlog of one priority queue.
    pub fn bytes_at(&self, priority: u8) -> u64 {
        self.bytes[priority as usize]
    }

    /// Byte backlog across a half-open range of priorities.
    pub fn bytes_in_range(&self, range: std::ops::Range<u8>) -> u64 {
        range.map(|p| self.bytes[p as usize]).sum()
    }

    /// Total byte backlog across all priorities.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total queued packet count.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// True when no packet is queued.
    pub fn is_empty(&self) -> bool {
        self.total_bytes == 0 && self.len() == 0
    }

    /// Recompute the byte counters from the queue contents and compare
    /// them against the incrementally maintained ones. Returns
    /// `Some((recomputed_total, counter_total))` when any per-priority or
    /// total counter has drifted; `None` when accounting is consistent.
    /// Used by the simsan queue-accounting audit.
    pub fn audit_counters(&self) -> Option<(u64, u64)> {
        let mut sum = 0u64;
        let mut per_ok = true;
        for p in 0..NUM_PRIORITIES {
            let b: u64 = self.queues[p].iter().map(|pkt| pkt.wire_bytes as u64).sum();
            if b != self.bytes[p] {
                per_ok = false;
            }
            sum += b;
        }
        if sum != self.total_bytes || !per_ok {
            Some((sum, self.total_bytes))
        } else {
            None
        }
    }

    /// Deliberately skew the byte counters away from the queue contents
    /// (simsan selftest hook for the accounting-drift bug class).
    #[cfg(any(test, feature = "simsan-selftest"))]
    pub fn corrupt_skew_bytes(&mut self, skew: u64) {
        self.bytes[0] += skew;
        self.total_bytes += skew;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, HostId};
    use crate::packet::NoPayload;

    fn pkt(prio: u8, payload: u32) -> Packet<NoPayload> {
        Packet::data(FlowId(0), HostId(0), HostId(1), payload, NoPayload).with_priority(prio)
    }

    #[test]
    fn strict_priority_order() {
        let mut q = PrioQueues::new();
        q.push(pkt(5, 100));
        q.push(pkt(2, 200));
        q.push(pkt(2, 300));
        q.push(pkt(0, 400));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|p| p.payload_bytes())).collect();
        assert_eq!(order, vec![400, 200, 300, 100]);
        assert!(q.is_empty());
    }

    #[test]
    fn byte_accounting_tracks_push_pop() {
        let mut q = PrioQueues::new();
        q.push(pkt(1, 100));
        q.push(pkt(6, 50));
        assert_eq!(q.bytes_at(1), 140);
        assert_eq!(q.bytes_at(6), 90);
        assert_eq!(q.total_bytes(), 230);
        assert_eq!(q.bytes_in_range(0..4), 140);
        assert_eq!(q.bytes_in_range(4..8), 90);
        q.pop();
        assert_eq!(q.total_bytes(), 90);
        q.pop();
        assert_eq!(q.total_bytes(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_unpaused_skips_paused_priorities() {
        let mut q = PrioQueues::new();
        q.push(pkt(0, 100));
        q.push(pkt(3, 200));
        q.push(pkt(5, 300));
        // P0 paused: the P3 packet is served first.
        assert_eq!(q.pop_unpaused(0b0000_0001).unwrap().payload_bytes(), 200);
        // P0 and P5 paused: nothing eligible remains but the bank is not empty.
        assert!(q.pop_unpaused(0b0010_0001).is_none());
        assert!(!q.is_empty());
        // Unpausing resumes normal strict-priority service with intact bytes.
        assert_eq!(q.total_bytes(), 100 + 300 + 2 * 40);
        assert_eq!(q.pop_unpaused(0).unwrap().payload_bytes(), 100);
        assert_eq!(q.pop_unpaused(0).unwrap().payload_bytes(), 300);
        assert_eq!(q.total_bytes(), 0);
    }

    #[test]
    fn fifo_within_priority() {
        let mut q = PrioQueues::new();
        for i in 1..=5u32 {
            q.push(pkt(3, i));
        }
        for i in 1..=5u32 {
            assert_eq!(q.pop().unwrap().payload_bytes(), i);
        }
    }
}
