//! Host endpoints and the transport-protocol interface.

use dcn_trace::{TraceEvent, TraceSink};

use crate::ids::{FlowId, HostId};
use crate::packet::{Packet, Payload};
use crate::sanitizer::SanNote;
use crate::time::{SimDuration, SimTime};

/// A flow (application message) to be transferred from `src` to `dst`.
#[derive(Clone, Debug)]
pub struct FlowDesc {
    /// Unique id; flow ids are assigned densely from 0 by the simulator.
    pub id: FlowId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Total application bytes to deliver.
    pub size_bytes: u64,
    /// When the application hands the flow to the transport.
    pub start: SimTime,
    /// Bytes the application's *first* send() syscall copies into the TCP
    /// send buffer. PPT's buffer-aware identifier (§4.1) keys off this; a
    /// first write above the identification threshold flags the flow as
    /// large at time zero.
    pub first_write_bytes: u64,
}

impl FlowDesc {
    /// Convenience constructor where the application writes the whole flow
    /// in one syscall (the common case for RPC-style workloads).
    pub fn new(id: FlowId, src: HostId, dst: HostId, size_bytes: u64, start: SimTime) -> Self {
        FlowDesc { id, src, dst, size_bytes, start, first_write_bytes: size_bytes }
    }
}

/// Side effects a transport handler wants the engine to apply: packets to
/// transmit from this host's NIC, timers to arm, and flows to mark complete.
#[derive(Debug)]
pub struct Effects<P> {
    pub(crate) packets: Vec<Packet<P>>,
    pub(crate) timers: Vec<(SimTime, u64)>,
    pub(crate) completed: Vec<FlowId>,
    /// Flows that retransmitted data this dispatch (recovery accounting;
    /// drained into the engine's per-flow counters).
    pub(crate) retransmits: Vec<FlowId>,
    /// Sanitizer observations from inside the handler (always empty
    /// unless the simulator's sanitizer is installed; drained into the
    /// engine's simsan ledger, never into the event heap).
    pub(crate) san_notes: Vec<SanNote>,
}

impl<P> Default for Effects<P> {
    fn default() -> Self {
        Effects {
            packets: Vec::new(),
            timers: Vec::new(),
            completed: Vec::new(),
            retransmits: Vec::new(),
            san_notes: Vec::new(),
        }
    }
}

impl<P> Effects<P> {
    /// Decompose into (packets, timers, completed flows) — lets transport
    /// authors unit-test handlers without an engine.
    pub fn into_parts(self) -> (Vec<Packet<P>>, Vec<(SimTime, u64)>, Vec<FlowId>) {
        (self.packets, self.timers, self.completed)
    }

    /// Flows noted via [`Ctx::note_retransmit`] (unit-test accessor).
    pub fn retransmits(&self) -> &[FlowId] {
        &self.retransmits
    }

    /// Sanitizer notes queued via [`Ctx::san_note`] (unit-test accessor).
    pub fn san_notes(&self) -> &[SanNote] {
        &self.san_notes
    }

    pub(crate) fn clear(&mut self) {
        self.packets.clear();
        self.timers.clear();
        self.completed.clear();
        self.retransmits.clear();
        self.san_notes.clear();
    }
}

/// Execution context handed to every transport callback.
///
/// Borrow-wise this is a sink: the engine applies the queued effects after
/// the handler returns, so handlers never re-enter the engine.
pub struct Ctx<'a, P> {
    now: SimTime,
    host: HostId,
    effects: &'a mut Effects<P>,
    trace: Option<&'a mut dyn TraceSink>,
    sanitize: bool,
}

impl<'a, P: Payload> Ctx<'a, P> {
    /// Build a context around an effects sink. The engine does this for
    /// every dispatch; it is public so transport handlers can be driven
    /// directly in unit tests. Tracing is detached (`Ctx::emit` is a no-op).
    pub fn new(now: SimTime, host: HostId, effects: &'a mut Effects<P>) -> Self {
        Ctx { now, host, effects, trace: None, sanitize: false }
    }

    /// Like [`Ctx::new`] but wired to a trace sink, so transport handlers
    /// can publish protocol-level [`TraceEvent`]s. The engine uses this
    /// when a sink is installed on the simulator.
    pub fn with_trace(
        now: SimTime,
        host: HostId,
        effects: &'a mut Effects<P>,
        trace: Option<&'a mut dyn TraceSink>,
    ) -> Self {
        Ctx { now, host, effects, trace, sanitize: false }
    }

    /// Enable or disable the sanitizer note channel, builder-style. The
    /// engine sets this from `Simulator::sanitizer_enabled()`, so probes
    /// behind [`Ctx::sanitizing`] cost one branch when simsan is off.
    pub fn with_sanitizer(mut self, on: bool) -> Self {
        self.sanitize = on;
        self
    }

    /// Whether a trace sink is attached. Lets handlers skip bookkeeping
    /// (or allocation) whose only purpose is to feed the trace.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Whether the simulator's sanitizer is installed. Transport-side
    /// invariant probes gate on this so sanitized-off runs do no work.
    pub fn sanitizing(&self) -> bool {
        self.sanitize
    }

    /// Queue a sanitizer observation (dropped unless [`Ctx::sanitizing`]).
    /// Feeds the engine's simsan ledger only — never the event heap — so
    /// calling it cannot perturb event ordering.
    pub fn san_note(&mut self, note: SanNote) {
        if self.sanitize {
            self.effects.san_notes.push(note);
        }
    }

    /// Publish a protocol-level trace event stamped with the current
    /// simulated time. A single branch when tracing is disabled.
    pub fn emit(&mut self, ev: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.emit(self.now.0, &ev);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The host this transport instance runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Queue a packet for transmission on this host's NIC.
    pub fn send(&mut self, pkt: Packet<P>) {
        self.effects.packets.push(pkt);
    }

    /// Arm a timer that fires `on_timer(token)` at absolute time `at`.
    ///
    /// Timers cannot be cancelled; transports implement lazy cancellation
    /// by ignoring stale tokens.
    pub fn timer_at(&mut self, at: SimTime, token: u64) {
        self.effects.timers.push((at, token));
    }

    /// Arm a timer `after` from now.
    pub fn timer_after(&mut self, after: SimDuration, token: u64) {
        self.timer_at(self.now + after, token);
    }

    /// Report that this host (as receiver) now holds every byte of `flow`.
    /// The engine records the completion time; repeat calls are ignored.
    pub fn flow_completed(&mut self, flow: FlowId) {
        self.effects.completed.push(flow);
    }

    /// Note that `flow` retransmitted data (RTO fire, NACK resend, trim
    /// recovery, ...). Feeds the engine's per-flow retransmit counters and
    /// the [`crate::engine::FaultReport`] recovery totals; schedules
    /// nothing, so calling it never perturbs event ordering.
    pub fn note_retransmit(&mut self, flow: FlowId) {
        self.effects.retransmits.push(flow);
    }
}

/// A transport protocol endpoint.
///
/// One instance runs per host and handles both the sender and receiver
/// roles for every flow that starts at or targets that host.
pub trait Transport<P: Payload> {
    /// The application opened `flow` on this host (sender side).
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, P>);

    /// A packet addressed to this host arrived off the wire.
    fn on_packet(&mut self, pkt: Packet<P>, ctx: &mut Ctx<'_, P>);

    /// A timer armed via [`Ctx::timer_at`] fired.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, P>);

    /// Aggregate congestion-control state over this endpoint's active
    /// flows, read by the telemetry sampler (never on the hot path).
    /// Transports without a window concept keep the zero default.
    fn cc_snapshot(&self) -> crate::telemetry::CcSnapshot {
        crate::telemetry::CcSnapshot::default()
    }
}
