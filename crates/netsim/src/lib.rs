#![forbid(unsafe_code)]
//! # netsim — a deterministic packet-level datacenter network simulator
//!
//! This crate is the substrate for the PPT reproduction: a discrete-event,
//! packet-level simulator in the spirit of the simulators the paper
//! evaluates on (ns-3 / htsim / the Aeolus simulator), rebuilt from scratch
//! in safe Rust.
//!
//! Design choices (following the smoltcp school of networking Rust):
//! - **Synchronous, single-threaded, event-driven.** The workload is
//!   CPU-bound; an async runtime would add nondeterminism for no benefit.
//! - **Deterministic.** One totally-ordered event queue with FIFO
//!   tie-break (a calendar queue by default, with a `BinaryHeap` oracle
//!   for differential checks — see [`sched`]); no wall-clock or hash-map
//!   iteration order leaks into behaviour.
//! - **Arena + ids, not pointers.** Nodes and links live in `Vec`s and are
//!   addressed by small copyable ids.
//! - **Effects, not re-entrancy.** Transport handlers write packets/timers
//!   into a sink that the engine applies afterwards.
//!
//! ## Feature inventory
//!
//! - Calendar-queue event scheduler with O(1) near-horizon insert,
//!   same-tick batch draining, and a swappable `BinaryHeap` oracle
//!   (see [`sched`]).
//! - Hosts with 8-level strict-priority NIC egress queues.
//! - Switches with per-port shared buffers, 8 strict-priority queues,
//!   instantaneous-queue ECN marking with configurable scopes (per-queue /
//!   priority-group / whole-port), NDP-style payload trimming, and
//!   priority-range byte caps.
//! - Destination-based shortest-path routing with per-flow ECMP.
//! - Star and leaf-spine topology builders matching the paper's setups.
//! - Link-utilization and queue-occupancy samplers.
//! - Continuous telemetry: a deterministic whole-fabric interval sampler
//!   filling ring-buffered series and log-bucket histograms, plus an
//!   opt-in wall-clock dispatch profiler (see [`telemetry`]).
//! - Per-host transport CPU accounting (the kernel-overhead substitute).
//!
//! Protocols live in the `transports` crate; they implement
//! [`host::Transport`] and define their own [`packet::Payload`] header type.

pub mod engine;
pub mod faults;
pub mod host;
pub mod ids;
pub mod link;
pub mod packet;
pub mod queue;
pub mod rng;
pub mod sanitizer;
pub mod sched;
pub mod switch;
pub mod telemetry;
pub mod time;
pub mod topology;
pub mod units;

pub use dcn_trace as trace;
pub use dcn_trace::{TraceEvent, TraceSink};
pub use engine::{
    FaultReport, PoolStats, RunLimits, RunReport, Sample, SamplerId, Simulator, StopReason,
};
pub use faults::{FaultOp, FaultSchedule, TimedFault};
pub use host::{Ctx, FlowDesc, Transport};
pub use ids::{FlowId, HostId, LinkId, NodeId, SwitchId};
pub use packet::{
    Ecn, HopTelemetry, NoPayload, Packet, Payload, CTRL_BYTES, HEADER_BYTES, MSS_BYTES, MTU_BYTES,
    NUM_PRIORITIES, TRIMMED_BYTES,
};
pub use rng::Pcg32;
pub use sanitizer::{SanLevel, SanNote, SanViolation};
pub use sched::QueueKind;
pub use switch::{
    EcnRule, EnqueueOutcome, MarkScope, PfcConfig, PortCounters, RangeCap, SwitchConfig,
};
pub use telemetry::{CcSnapshot, Telemetry, TelemetryConfig};
pub use time::{SimDuration, SimTime};
pub use topology::{fat_tree, leaf_spine, star, FatTreeParams, LeafSpineParams, Topology};
pub use units::{bdp_bytes, Rate};

#[cfg(test)]
mod engine_tests {
    use super::*;
    use crate::host::Ctx;
    use crate::packet::segment;

    /// A toy go-back-nothing transport: the sender blasts every segment
    /// immediately; the receiver counts bytes and completes the flow.
    /// Exercises NIC serialization, switch forwarding and completion
    /// plumbing without any congestion control.
    struct Blast {
        // receiver state: flow -> bytes received & expected size
        rx: std::collections::HashMap<FlowId, (u64, u64)>,
    }

    #[derive(Clone, Debug)]
    struct BlastHdr {
        is_data: bool,
        size: u64,
    }
    impl Payload for BlastHdr {}

    impl Transport<BlastHdr> for Blast {
        fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, BlastHdr>) {
            for (_, len) in segment(flow.size_bytes) {
                ctx.send(Packet::data(
                    flow.id,
                    flow.src,
                    flow.dst,
                    len,
                    BlastHdr { is_data: true, size: flow.size_bytes },
                ));
            }
        }
        fn on_packet(&mut self, pkt: Packet<BlastHdr>, ctx: &mut Ctx<'_, BlastHdr>) {
            assert!(pkt.payload.is_data);
            let entry = self.rx.entry(pkt.flow).or_insert((0, pkt.payload.size));
            entry.0 += pkt.payload_bytes() as u64;
            if entry.0 >= entry.1 {
                ctx.flow_completed(pkt.flow);
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_, BlastHdr>) {}
    }

    fn blast() -> Box<dyn Transport<BlastHdr>> {
        Box::new(Blast { rx: std::collections::HashMap::new() })
    }

    #[test]
    fn single_packet_end_to_end_latency_is_exact() {
        // 2 hosts on one switch, 10Gbps, 20us per-link delay.
        let mut topo = topology::star::<BlastHdr>(
            2,
            Rate::gbps(10),
            SimDuration::from_micros(20),
            SwitchConfig::basic(1 << 20),
        );
        for &h in &topo.hosts {
            topo.sim.set_transport(h, blast());
        }
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 1000, SimTime::ZERO, 1000);
        let report = topo.sim.run(RunLimits::default());
        assert_eq!(report.flows_completed, 1);
        // 1000B payload + 40B header = 1040B wire = 832ns at 10G, twice
        // (host link + switch link), plus 2 × 20us propagation.
        let expect = 2 * 832 + 2 * 20_000;
        assert_eq!(topo.sim.completion(f).unwrap().as_nanos(), expect);
    }

    #[test]
    fn multi_segment_flow_completes_with_pipelining() {
        let mut topo = topology::star::<BlastHdr>(
            2,
            Rate::gbps(10),
            SimDuration::from_micros(1),
            SwitchConfig::basic(10 << 20),
        );
        for &h in &topo.hosts {
            topo.sim.set_transport(h, blast());
        }
        let size = 100 * MSS_BYTES as u64;
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], size, SimTime::ZERO, size);
        topo.sim.run(RunLimits::default());
        let fct = topo.sim.completion(f).unwrap();
        // Store-and-forward pipeline: ~100 packets × 1.2us serialization on
        // the bottleneck + one extra serialization + 2us propagation.
        let wire = 100 * Rate::gbps(10).serialization_time(MTU_BYTES as u64).as_nanos();
        assert!(fct.as_nanos() >= wire);
        assert!(fct.as_nanos() < wire + 10_000, "fct={fct}");
    }

    #[test]
    fn two_senders_share_bottleneck_fairly_in_time() {
        // Both flows arrive at t=0 towards the same receiver; total service
        // time is the sum of both transfers on the shared downlink.
        let mut topo = topology::star::<BlastHdr>(
            3,
            Rate::gbps(10),
            SimDuration::from_micros(1),
            SwitchConfig::basic(64 << 20),
        );
        for &h in &topo.hosts {
            topo.sim.set_transport(h, blast());
        }
        let size = 50 * MSS_BYTES as u64;
        let f1 = topo.sim.add_flow(topo.hosts[0], topo.hosts[2], size, SimTime::ZERO, size);
        let f2 = topo.sim.add_flow(topo.hosts[1], topo.hosts[2], size, SimTime::ZERO, size);
        let report = topo.sim.run(RunLimits::default());
        assert_eq!(report.flows_completed, 2);
        let last = topo.sim.completion(f1).unwrap().max(topo.sim.completion(f2).unwrap());
        let wire = 100 * Rate::gbps(10).serialization_time(MTU_BYTES as u64).as_nanos();
        assert!(last.as_nanos() >= wire, "bottleneck must serialize all 100 packets");
    }

    #[test]
    fn leaf_spine_routes_cross_rack_traffic() {
        let params = LeafSpineParams {
            n_leaves: 3,
            n_spines: 2,
            hosts_per_leaf: 2,
            edge_rate: Rate::gbps(10),
            core_rate: Rate::gbps(40),
            link_delay: SimDuration::from_micros(1),
        };
        let mut topo = leaf_spine::<BlastHdr>(&params, SwitchConfig::basic(1 << 20));
        for &h in &topo.hosts {
            topo.sim.set_transport(h, blast());
        }
        // Cross-rack flow: host 0 (leaf 0) -> host 5 (leaf 2).
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[5], 5000, SimTime::ZERO, 5000);
        // Same-rack flow: host 2 -> host 3 (both leaf 1).
        let g = topo.sim.add_flow(topo.hosts[2], topo.hosts[3], 5000, SimTime::ZERO, 5000);
        let report = topo.sim.run(RunLimits::default());
        assert_eq!(report.flows_completed, 2);
        // Cross-rack traverses 4 links (2 more hops) so takes longer.
        assert!(topo.sim.completion(f).unwrap() > topo.sim.completion(g).unwrap());
    }

    #[test]
    fn priority_queue_lets_high_priority_overtake() {
        // Fill the switch egress with low-priority packets from h0, then
        // inject one high-priority flow from h1; it must complete before
        // the low-priority backlog drains even though it started later.
        struct Prio {
            rx: std::collections::HashMap<FlowId, (u64, u64)>,
        }
        impl Transport<BlastHdr> for Prio {
            fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, BlastHdr>) {
                let prio = if flow.size_bytes > 10_000 { 7 } else { 0 };
                for (_, len) in segment(flow.size_bytes) {
                    ctx.send(
                        Packet::data(
                            flow.id,
                            flow.src,
                            flow.dst,
                            len,
                            BlastHdr { is_data: true, size: flow.size_bytes },
                        )
                        .with_priority(prio),
                    );
                }
            }
            fn on_packet(&mut self, pkt: Packet<BlastHdr>, ctx: &mut Ctx<'_, BlastHdr>) {
                let entry = self.rx.entry(pkt.flow).or_insert((0, pkt.payload.size));
                entry.0 += pkt.payload_bytes() as u64;
                if entry.0 >= entry.1 {
                    ctx.flow_completed(pkt.flow);
                }
            }
            fn on_timer(&mut self, _: u64, _: &mut Ctx<'_, BlastHdr>) {}
        }
        let mut topo = topology::star::<BlastHdr>(
            3,
            Rate::gbps(10),
            SimDuration::from_micros(1),
            SwitchConfig::basic(64 << 20),
        );
        for &h in &topo.hosts {
            topo.sim.set_transport(h, Box::new(Prio { rx: std::collections::HashMap::new() }));
        }
        let big = topo.sim.add_flow(
            topo.hosts[0],
            topo.hosts[2],
            50 * MSS_BYTES as u64,
            SimTime::ZERO,
            1,
        );
        // The small flow starts later, once the big flow's backlog is
        // already queued at the switch.
        let small = topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 1000, SimTime(10_000), 1);
        topo.sim.run(RunLimits::default());
        assert!(
            topo.sim.completion(small).unwrap() < topo.sim.completion(big).unwrap(),
            "high-priority flow must bypass the low-priority backlog"
        );
    }

    #[test]
    fn ecmp_spreads_flows_across_spines() {
        let params = LeafSpineParams {
            n_leaves: 2,
            n_spines: 4,
            hosts_per_leaf: 1,
            edge_rate: Rate::gbps(10),
            core_rate: Rate::gbps(10),
            link_delay: SimDuration::from_micros(1),
        };
        let mut topo = leaf_spine::<BlastHdr>(&params, SwitchConfig::basic(1 << 20));
        for &h in &topo.hosts {
            topo.sim.set_transport(h, blast());
        }
        for i in 0..64 {
            topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 1000, SimTime(i * 1_000_000), 1000);
        }
        topo.sim.run(RunLimits::default());
        // Each leaf->spine link must have carried some traffic.
        let leaf0 = topo.leaves[0];
        let mut used = 0;
        for &spine in &topo.spines {
            let port = topo.sim.switch_port_towards(leaf0, NodeId::Switch(spine)).unwrap();
            let link = topo.sim.switch_port_link(leaf0, port);
            if topo.sim.link(link).tx_packets > 0 {
                used += 1;
            }
        }
        assert_eq!(used, 4, "ECMP should use all spines for 64 flows");
    }

    #[test]
    fn sampler_records_time_series() {
        let mut topo = topology::star::<BlastHdr>(
            2,
            Rate::gbps(10),
            SimDuration::from_micros(1),
            SwitchConfig::basic(1 << 20),
        );
        for &h in &topo.hosts {
            topo.sim.set_transport(h, blast());
        }
        let size = 1000 * MSS_BYTES as u64;
        topo.sim.add_flow(topo.hosts[0], topo.hosts[1], size, SimTime::ZERO, size);
        let uplink = topo.sim.host_uplink(topo.hosts[0]);
        let s = topo.sim.sample_link(uplink, SimDuration::from_micros(100), SimTime(2_000_000));
        topo.sim.run(RunLimits::default());
        let samples = topo.sim.samples(s);
        assert!(samples.len() >= 10);
        // Cumulative counter must be nondecreasing and end at the full size.
        for w in samples.windows(2) {
            assert!(w[1].value >= w[0].value);
        }
        assert!(samples.last().unwrap().value >= size);
    }

    #[test]
    fn run_limits_stop_the_clock() {
        let mut topo = topology::star::<BlastHdr>(
            2,
            Rate::gbps(10),
            SimDuration::from_micros(1),
            SwitchConfig::basic(1 << 20),
        );
        for &h in &topo.hosts {
            topo.sim.set_transport(h, blast());
        }
        topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 100 * MSS_BYTES as u64, SimTime::ZERO, 1);
        let report = topo.sim.run(RunLimits { max_time: SimTime(10_000), max_events: u64::MAX });
        assert_eq!(report.flows_completed, 0);
        assert_eq!(report.end_time, SimTime(10_000));
        // Resuming finishes the flow.
        let report = topo.sim.run(RunLimits::default());
        assert_eq!(report.flows_completed, 1);
    }

    #[test]
    fn downed_link_destroys_packets_until_restored() {
        // Outage covers the whole (instantaneous) burst: nothing arrives,
        // every packet is charged to the fault layer.
        let mut topo = topology::star::<BlastHdr>(
            2,
            Rate::gbps(10),
            SimDuration::from_micros(1),
            SwitchConfig::basic(1 << 20),
        );
        for &h in &topo.hosts {
            topo.sim.set_transport(h, blast());
        }
        let uplink = topo.sim.host_uplink(topo.hosts[0]);
        // Starts strictly inside the outage window (a flow starting at the
        // same instant as LinkDown would serialize its first packet first).
        topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 10 * MSS_BYTES as u64, SimTime(1_000), 1);
        // A second flow starts after the link is back and must complete.
        let late = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 1000, SimTime(30_000_000), 1000);
        topo.sim.set_fault_schedule(FaultSchedule::new(1).link_outage(
            uplink,
            SimTime::ZERO,
            SimTime(20_000_000),
        ));
        let report = topo.sim.run(RunLimits::default());
        assert_eq!(report.faults.fault_drops, 10, "all 10 MSS packets die on the downed link");
        assert_eq!(report.flows_completed, 1);
        assert!(topo.sim.completion(late).is_some());
        assert_eq!(report.faults.max_stall, SimDuration::from_millis(20));
    }

    #[test]
    fn switch_stall_freezes_forwarding_and_resumes() {
        // One packet in flight; the switch stalls before the packet reaches
        // it and resumes later, delaying delivery by exactly the remaining
        // stall time.
        let mut topo = topology::star::<BlastHdr>(
            2,
            Rate::gbps(10),
            SimDuration::from_micros(20),
            SwitchConfig::basic(1 << 20),
        );
        for &h in &topo.hosts {
            topo.sim.set_transport(h, blast());
        }
        let f = topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 1000, SimTime::ZERO, 1000);
        let stall = SimDuration::from_millis(1);
        topo.sim.set_fault_schedule(FaultSchedule::new(1).stall_switch(
            topo.leaves[0],
            SimTime::ZERO,
            stall,
        ));
        let report = topo.sim.run(RunLimits::default());
        assert_eq!(report.flows_completed, 1);
        // No-fault latency is 2×832ns serialization + 2×20us propagation
        // (see single_packet_end_to_end_latency_is_exact); the switch holds
        // its copy until the stall ends at 1ms, then serializes + delivers.
        let expect = stall.as_nanos() + 832 + 20_000;
        assert_eq!(topo.sim.completion(f).unwrap().as_nanos(), expect);
        assert_eq!(report.faults.max_stall, stall);
    }

    #[test]
    fn total_data_loss_starves_the_receiver() {
        let mut topo = topology::star::<BlastHdr>(
            2,
            Rate::gbps(10),
            SimDuration::from_micros(1),
            SwitchConfig::basic(1 << 20),
        );
        for &h in &topo.hosts {
            topo.sim.set_transport(h, blast());
        }
        topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 10 * MSS_BYTES as u64, SimTime::ZERO, 1);
        topo.sim.set_fault_schedule(FaultSchedule::new(3).with_data_loss(1.0));
        let report = topo.sim.run(RunLimits::default());
        assert_eq!(report.flows_completed, 0);
        assert_eq!(report.faults.fault_drops, 10, "every packet dies at the host NIC");
    }

    #[test]
    fn random_loss_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut topo = topology::star::<BlastHdr>(
                3,
                Rate::gbps(10),
                SimDuration::from_micros(1),
                SwitchConfig::basic(1 << 20),
            );
            for &h in &topo.hosts {
                topo.sim.set_transport(h, blast());
            }
            for i in 0..2 {
                topo.sim.add_flow(
                    topo.hosts[i],
                    topo.hosts[2],
                    200 * MSS_BYTES as u64,
                    SimTime::ZERO,
                    1,
                );
            }
            topo.sim.set_fault_schedule(FaultSchedule::new(seed).with_data_loss(0.05));
            let report = topo.sim.run(RunLimits::default());
            (report.faults.fault_drops, report.events, topo.sim.link(LinkId(0)).tx_packets)
        };
        let a = run(7);
        assert!(a.0 > 0, "5% loss over 400+ packets should drop something");
        assert_eq!(a, run(7), "same fault seed must reproduce exactly");
        assert_ne!(run(7).0, run(8).0, "different fault seeds should differ");
    }

    #[test]
    fn ack_loss_respects_the_priority_floor() {
        // A transport that sends one control packet at P0 and one at P4;
        // with ack_loss=1.0 floored at P4, only the P4 control dies.
        struct CtrlPair;
        impl Transport<BlastHdr> for CtrlPair {
            fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, BlastHdr>) {
                let hdr = BlastHdr { is_data: false, size: 0 };
                ctx.send(Packet::ctrl(flow.id, flow.src, flow.dst, hdr.clone()).with_priority(0));
                ctx.send(Packet::ctrl(flow.id, flow.src, flow.dst, hdr).with_priority(4));
            }
            fn on_packet(&mut self, pkt: Packet<BlastHdr>, ctx: &mut Ctx<'_, BlastHdr>) {
                assert_eq!(pkt.priority, 0, "the P4 control packet must have been dropped");
                ctx.flow_completed(pkt.flow);
            }
            fn on_timer(&mut self, _: u64, _: &mut Ctx<'_, BlastHdr>) {}
        }
        let mut topo = topology::star::<BlastHdr>(
            2,
            Rate::gbps(10),
            SimDuration::from_micros(1),
            SwitchConfig::basic(1 << 20),
        );
        for &h in &topo.hosts {
            topo.sim.set_transport(h, Box::new(CtrlPair));
        }
        topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 1000, SimTime::ZERO, 1000);
        topo.sim
            .set_fault_schedule(FaultSchedule::new(5).with_ack_loss(1.0).with_ack_loss_min_prio(4));
        let report = topo.sim.run(RunLimits::default());
        assert_eq!(report.flows_completed, 1, "the P0 control packet must survive");
        // The P4 control is dropped independently at the NIC and would be
        // dropped again at the switch; it dies at the first hop.
        assert_eq!(report.faults.fault_drops, 1);
    }

    #[test]
    fn drops_are_counted_at_the_switch() {
        // Tiny 5KB port buffer and two simultaneous 100-packet bursts into
        // one receiver: the 2:1 bottleneck must shed packets.
        let mut topo = topology::star::<BlastHdr>(
            3,
            Rate::gbps(10),
            SimDuration::from_micros(1),
            SwitchConfig::basic(5_000),
        );
        for &h in &topo.hosts {
            topo.sim.set_transport(h, blast());
        }
        topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 100 * MSS_BYTES as u64, SimTime::ZERO, 1);
        topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 100 * MSS_BYTES as u64, SimTime::ZERO, 1);
        topo.sim.run(RunLimits::default());
        let c = topo.sim.total_counters();
        assert!(c.dropped > 50, "expected heavy drops, got {c:?}");
    }
}
