//! The engine's continuous-telemetry layer (DESIGN.md §14).
//!
//! A [`TelemetryConfig`] installed via `Simulator::enable_telemetry`
//! arms a deterministic interval sampler: an `Ev::Sample` event rearmed
//! every `interval` that *reads* engine state — per-port queue
//! bytes/packets, per-link utilization since the last tick, live flow
//! counts, packet-pool live/hit-rate, and the per-scheme aggregate
//! cwnd/in-flight reported by [`crate::host::Transport::cc_snapshot`] —
//! into ring-buffered [`Series`] and log-bucket [`LogHistogram`]s.
//!
//! Determinism contract: sampling never mutates simulation state and
//! never emits into the installed trace sink, so a telemetry-enabled run
//! reproduces an untelemetered run's trace and FCT streams byte for
//! byte. The one deliberate exception is the `prof` knob: a wall-clock
//! self-profiler around the dispatch loop whose numbers are machine
//! noise by construction and are therefore excluded from every golden.

use dcn_trace::{encode_line, LogHistogram, ProfKind, Series, TraceEvent};

use crate::time::{SimDuration, SimTime};

/// Configuration for `Simulator::enable_telemetry`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sampling interval; the first sample fires one interval after
    /// installation, and rearming stops once every flow has completed so
    /// the event heap can drain.
    pub interval: SimDuration,
    /// Ring capacity of every series (points retained per series).
    pub series_capacity: usize,
    /// Also run the wall-clock per-event-kind self-profiler. Off by
    /// default: profile numbers are nondeterministic by nature and must
    /// never reach byte-compared output.
    pub prof: bool,
}

impl TelemetryConfig {
    /// Default capacity (4096 points) and no profiler.
    pub fn new(interval: SimDuration) -> Self {
        TelemetryConfig { interval, series_capacity: 4096, prof: false }
    }

    /// Enable the wall-clock self-profiler, builder-style.
    pub fn with_prof(mut self) -> Self {
        self.prof = true;
        self
    }

    /// Override the per-series ring capacity, builder-style.
    pub fn with_series_capacity(mut self, cap: usize) -> Self {
        self.series_capacity = cap;
        self
    }
}

/// Aggregate congestion-control state reported by one transport endpoint
/// (summed over its active flows, then over hosts by the sampler).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CcSnapshot {
    /// Sum of congestion windows, bytes.
    pub cwnd_bytes: u64,
    /// Sum of unacknowledged in-flight bytes.
    pub inflight_bytes: u64,
    /// Flows contributing to the sums.
    pub flows: u64,
}

impl CcSnapshot {
    /// Accumulate another snapshot into this one.
    pub fn add(&mut self, other: &CcSnapshot) {
        self.cwnd_bytes += other.cwnd_bytes;
        self.inflight_bytes += other.inflight_bytes;
        self.flows += other.flows;
    }
}

/// Series index of the live-flow count.
pub(crate) const IDX_FLOWS_LIVE: usize = 0;
/// Series index of the packet-pool live-slot count.
pub(crate) const IDX_POOL_LIVE: usize = 1;
/// Series index of the packet-pool recycle hit rate.
pub(crate) const IDX_POOL_HIT: usize = 2;
/// Series index of the aggregate congestion window.
pub(crate) const IDX_CC_CWND: usize = 3;
/// Series index of the aggregate in-flight bytes.
pub(crate) const IDX_CC_INFLIGHT: usize = 4;
/// First per-port series index (two series per switch port follow, then
/// one utilization series per link).
pub(crate) const IDX_FIRST_DYNAMIC: usize = 5;

/// Telemetry state owned by the simulator while enabled: the series
/// table, the three histograms, the sampler's utilization baseline and
/// the (optional) profiler accumulators.
#[derive(Debug)]
pub struct Telemetry {
    pub(crate) cfg: TelemetryConfig,
    /// Fixed layout: the scalar series (`IDX_*`), then
    /// `sw{si}.port{pi}.queue_bytes`/`.queue_pkts` pairs in (switch,
    /// port) order from `port_base`, then `link{li}.util` from `link_base`.
    pub(crate) series: Vec<Series>,
    pub(crate) port_base: usize,
    pub(crate) link_base: usize,
    /// Flow completion times (recorded at completion, nanoseconds).
    pub(crate) fct_ns: LogHistogram,
    /// Per-packet time spent queued at a host NIC or switch egress port
    /// before serialization started, nanoseconds.
    pub(crate) queue_delay_ns: LogHistogram,
    /// Per-port backlog bytes observed at every sampler tick.
    pub(crate) queue_depth_bytes: LogHistogram,
    /// Cumulative link tx bytes at the previous tick (utilization deltas).
    pub(crate) last_link_tx: Vec<u64>,
    pub(crate) last_sample_at: SimTime,
    pub(crate) samples_taken: u64,
    /// Wall-clock profiler accumulators, indexed in [`ProfKind::ALL`]
    /// order. Only written when `cfg.prof` is set.
    pub(crate) prof_counts: [u64; 6],
    pub(crate) prof_ns: [u64; 6],
    /// Same-tick batches drained by the run loop and the events they
    /// carried (the drain-loop's amortization factor). Only written when
    /// `cfg.prof` is set.
    pub(crate) prof_batches: u64,
    pub(crate) prof_batch_events: u64,
}

impl Telemetry {
    /// The configured sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.cfg.interval
    }

    /// Whether the wall-clock self-profiler is on.
    pub fn prof_enabled(&self) -> bool {
        self.cfg.prof
    }

    /// Sampler ticks taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Every series, in the fixed layout order (stable across runs).
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Look up a series by name (e.g. `"flows.live"`, `"link3.util"`).
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// Flow-completion-time histogram, nanoseconds.
    pub fn fct_hist(&self) -> &LogHistogram {
        &self.fct_ns
    }

    /// Per-packet queueing-delay histogram, nanoseconds.
    pub fn queue_delay_hist(&self) -> &LogHistogram {
        &self.queue_delay_ns
    }

    /// Sampled per-port queue-depth histogram, bytes.
    pub fn queue_depth_hist(&self) -> &LogHistogram {
        &self.queue_depth_bytes
    }

    /// Wall-clock dispatch profile as `(kind, count, total_ns)` rows in
    /// [`ProfKind::ALL`] order; `None` unless the `prof` knob was set.
    pub fn prof_breakdown(&self) -> Option<[(ProfKind, u64, u64); 6]> {
        if !self.cfg.prof {
            return None;
        }
        let mut rows = [(ProfKind::FlowStart, 0u64, 0u64); 6];
        for (i, kind) in ProfKind::ALL.iter().enumerate() {
            rows[i] = (*kind, self.prof_counts[i], self.prof_ns[i]);
        }
        Some(rows)
    }

    /// Mean events per same-tick batch drained by the run loop; `None`
    /// unless the `prof` knob was set and at least one batch was drained.
    /// A value near 1.0 means the workload rarely synchronizes timestamps;
    /// larger values measure how much queue-probe cost batching amortizes.
    pub fn mean_batch_len(&self) -> Option<f64> {
        if !self.cfg.prof || self.prof_batches == 0 {
            return None;
        }
        Some(self.prof_batch_events as f64 / self.prof_batches as f64)
    }

    /// Encode the sampled series as [`TraceEvent::Sample`] JSONL lines
    /// (series id = layout index), appending to `out`. With
    /// `include_prof`, [`TraceEvent::Profile`] rows follow — wall-clock
    /// data, so callers must keep it out of byte-compared artifacts.
    pub fn dump_events(&self, out: &mut String, include_prof: bool) {
        for (i, s) in self.series.iter().enumerate() {
            for p in s.points() {
                encode_line(out, p.at, &TraceEvent::Sample { series: i as u32, value: p.value });
                out.push('\n');
            }
        }
        if include_prof {
            if let Some(rows) = self.prof_breakdown() {
                for (kind, count, total_ns) in rows {
                    encode_line(
                        out,
                        self.last_sample_at.0,
                        &TraceEvent::Profile { kind, count, total_ns },
                    );
                    out.push('\n');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_apply() {
        let cfg = TelemetryConfig::new(SimDuration::from_micros(10))
            .with_prof()
            .with_series_capacity(128);
        assert_eq!(cfg.interval, SimDuration::from_micros(10));
        assert!(cfg.prof, "with_prof must set the knob");
        assert_eq!(cfg.series_capacity, 128);
    }

    #[test]
    fn cc_snapshot_accumulates() {
        let mut a = CcSnapshot { cwnd_bytes: 10, inflight_bytes: 5, flows: 1 };
        a.add(&CcSnapshot { cwnd_bytes: 20, inflight_bytes: 15, flows: 2 });
        assert_eq!(a, CcSnapshot { cwnd_bytes: 30, inflight_bytes: 20, flows: 3 });
    }
}
