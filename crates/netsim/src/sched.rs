//! The event-queue core: one totally-ordered schedule keyed by `(time, seq)`.
//!
//! The engine dispatches every event through a single queue whose pop order
//! *is* the determinism contract: entries come out in ascending `(at, seq)`,
//! where `seq` is the globally monotone insertion number the engine assigns
//! in [`crate::Simulator`]'s `schedule`. This module provides the
//! [`EventQueue`] abstraction and two interchangeable implementations:
//!
//! * [`HeapQueue`] — the original `BinaryHeap`, kept as the *oracle*: its
//!   correctness is a one-liner (heap property + inverted [`Ord`] on
//!   [`QEntry`]), so every other implementation is differentially tested
//!   against it (see the tests at the bottom of this file).
//! * [`CalendarQueue`] — a calendar queue / timing wheel with O(1) insert
//!   for near-horizon events (serialization `TxDone`, RTO timers, telemetry
//!   samples — the bulk of real runs) and a `BinaryHeap` overflow tier for
//!   far-future events (flow starts spread over seconds). This is the
//!   engine default.
//!
//! Both implementations pop in *exactly* the same order for unique keys —
//! enforced by the pinned golden digests in `tests/determinism.rs` running
//! over the calendar path and by the randomized differential tests here —
//! so switching queues never moves a byte of any trace or FCT stream.
//!
//! # How the calendar queue preserves the FIFO tie-break
//!
//! The wheel is a ring of `2^BUCKET_BITS` buckets, each `2^shift` ns wide;
//! an event at absolute time `at` within the wheel's horizon lands in
//! bucket `(at >> shift) & mask`. Buckets are plain unsorted `Vec`s —
//! insertion is push-to-back — except the *live* bucket (the one currently
//! being drained), which is kept sorted descending by `(at, seq)` so the
//! next entry is always `pop()` from the back. When rotation reaches a
//! bucket it is sorted once; entries that arrive for the live bucket while
//! it drains are placed by binary search. Sorting by the full `(at, seq)`
//! key is what lets FIFO survive rotation: two same-tick entries may enter
//! a bucket in any physical order, but the sort (and the sorted insert)
//! always restores ascending-seq draining, byte-identical to the heap.
//! Events beyond the horizon wait in the overflow heap and are promoted
//! into the ring as rotation exposes their epoch — always into the
//! *farthest* bucket, never the sorted live one, so a promotion can never
//! reorder entries already eligible to pop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Default bucket width: `2^11` ns ≈ 2 µs, about one MTU serialization at
/// 10 Gbps — so `TxDone` lands in the live or adjacent bucket.
pub const DEFAULT_SHIFT: u32 = 11;
/// Default ring size: `2^10` = 1024 buckets, giving a ~2.1 ms horizon that
/// covers propagation delays, ECN-scale queueing and most RTO timers.
pub const DEFAULT_BUCKET_BITS: u32 = 10;

/// One scheduled entry. `(at, seq)` is the total dispatch order; `ev` is
/// the engine's (or a test's) payload and never participates in ordering.
#[derive(Clone, Copy, Debug)]
pub struct QEntry<T> {
    /// Absolute dispatch time.
    pub at: SimTime,
    /// Globally monotone insertion number (the FIFO tie-break).
    pub seq: u64,
    /// Payload, carried untouched.
    pub ev: T,
}

impl<T> PartialEq for QEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for QEntry<T> {}
impl<T> PartialOrd for QEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for QEntry<T> {
    // Inverted: the *earliest* (time, seq) is the greatest entry, so a
    // max-`BinaryHeap` pops it first and an ascending sort lays a bucket
    // out back-to-front for `Vec::pop` draining.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered event queue: entries pop in ascending `(at, seq)`.
///
/// `peek_key` takes `&mut self` because the calendar queue may rotate its
/// wheel to locate the minimum; implementations must never let a peek
/// change the subsequent pop order.
pub trait EventQueue<T: Copy> {
    /// Insert an entry. Keys are expected unique and (per the engine's
    /// contract) never earlier than the last popped time; the calendar
    /// queue tolerates earlier keys via an O(n) rewind.
    fn push(&mut self, entry: QEntry<T>);
    /// Remove and return the entry with the smallest `(at, seq)`.
    fn pop(&mut self) -> Option<QEntry<T>>;
    /// The smallest `(at, seq)` without removing its entry.
    fn peek_key(&mut self) -> Option<(SimTime, u64)>;
    /// Entries currently queued.
    fn len(&self) -> usize;
    /// Whether no entries are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Pop every entry sharing the earliest timestamp — a *same-tick
    /// batch* — into `buf` (cleared first) in ascending `seq` order,
    /// stopping after `max` entries. The batch is order-preserving by
    /// construction: `seq` is globally monotone, so anything scheduled
    /// while the batch dispatches sorts after every drained entry.
    fn pop_batch(&mut self, buf: &mut Vec<QEntry<T>>, max: usize) {
        buf.clear();
        if max == 0 {
            return;
        }
        let Some(first) = self.pop() else { return };
        let at = first.at;
        buf.push(first);
        while buf.len() < max {
            match self.peek_key() {
                Some((t, _)) if t == at => {
                    buf.push(self.pop().expect("peeked entry must pop")); // simlint: allow(panic_hygiene)
                }
                _ => break,
            }
        }
    }
}

/// The `BinaryHeap` implementation: O(log n) push/pop, O(1) peek. Kept as
/// the differential-testing oracle and selectable via
/// [`crate::Simulator::set_queue_kind`] / `pptlab --queue heap`.
pub struct HeapQueue<T> {
    heap: BinaryHeap<QEntry<T>>,
}

impl<T: Copy> HeapQueue<T> {
    /// An empty heap queue.
    pub fn new() -> Self {
        HeapQueue { heap: BinaryHeap::new() }
    }
}

impl<T: Copy> Default for HeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> EventQueue<T> for HeapQueue<T> {
    // simlint: hot-path
    fn push(&mut self, entry: QEntry<T>) {
        self.heap.push(entry);
    }

    fn pop(&mut self) -> Option<QEntry<T>> {
        self.heap.pop()
    }
    // simlint: hot-path-end

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| (e.at, e.seq))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// The calendar-queue implementation: O(1) insert for events within the
/// wheel's horizon, amortized-cheap pops, and a heap overflow tier for
/// far-future events. See the module docs for the layout and the argument
/// that the `(time, seq)` FIFO tie-break survives rotation.
pub struct CalendarQueue<T> {
    /// log2 of the bucket width in nanoseconds.
    shift: u32,
    /// `n_buckets - 1` (ring size is a power of two).
    mask: u64,
    /// The ring. Only the live bucket (`buckets[cur]`) is sorted
    /// (descending by `(at, seq)`, drained from the back).
    buckets: Vec<Vec<QEntry<T>>>,
    /// Index of the live bucket.
    cur: usize,
    /// Absolute start time of the live bucket (multiple of the width).
    wheel_time: u64,
    /// Entries across all ring buckets (excludes overflow).
    wheel_len: usize,
    /// Events at or beyond `wheel_time + span`, promoted as rotation
    /// exposes their epoch.
    overflow: BinaryHeap<QEntry<T>>,
    /// Total entries (ring + overflow).
    len: usize,
}

impl<T: Copy> CalendarQueue<T> {
    /// A calendar queue with the default geometry (2 µs × 1024 buckets).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_SHIFT, DEFAULT_BUCKET_BITS)
    }

    /// A calendar queue with `2^bucket_bits` buckets of `2^shift` ns.
    /// Small geometries are useful in tests to force rotation, overflow
    /// promotion and empty-wheel jumps on short schedules.
    pub fn with_geometry(shift: u32, bucket_bits: u32) -> Self {
        assert!(bucket_bits >= 1, "calendar queue needs at least two buckets");
        assert!(shift + bucket_bits < 63, "calendar span must fit in a u64");
        let n = 1usize << bucket_bits;
        CalendarQueue {
            shift,
            mask: (n - 1) as u64,
            buckets: (0..n).map(|_| Vec::new()).collect(),
            cur: 0,
            wheel_time: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    fn width(&self) -> u64 {
        1u64 << self.shift
    }

    fn span(&self) -> u64 {
        (self.mask + 1) << self.shift
    }

    /// First absolute time *not* representable in the ring.
    fn horizon(&self) -> u64 {
        self.wheel_time.saturating_add(self.span())
    }

    fn bucket_of(&self, at: u64) -> usize {
        ((at >> self.shift) & self.mask) as usize
    }

    /// Rotate (or jump) the wheel until the live bucket is non-empty,
    /// sorting it on entry. Returns false when the queue is empty. Never
    /// pops, so peeking through this cannot change the dispatch order.
    // simlint: hot-path
    fn seek(&mut self) -> bool {
        if !self.buckets[self.cur].is_empty() {
            return true;
        }
        if self.len == 0 {
            return false;
        }
        loop {
            if self.wheel_len == 0 {
                // Ring drained: jump straight to the overflow minimum's
                // bucket instead of rotating through empty epochs.
                let at = self.overflow.peek().expect("len > 0 with an empty ring").at.0; // simlint: allow(panic_hygiene)
                self.wheel_time = (at >> self.shift) << self.shift;
                self.cur = self.bucket_of(at);
                self.promote();
            } else {
                self.cur = (self.cur + 1) & (self.mask as usize);
                self.wheel_time += self.width();
                self.promote();
            }
            if !self.buckets[self.cur].is_empty() {
                // Entering the bucket: one sort re-establishes descending
                // (at, seq); the FIFO tie-break holds however entries were
                // physically appended or promoted.
                self.buckets[self.cur].sort_unstable();
                return true;
            }
        }
    }

    /// Move every overflow entry whose epoch is now inside the horizon
    /// into the ring. Called on each rotation step (where promotions land
    /// only in the newly exposed farthest bucket) and after a jump (where
    /// the live bucket is sorted afterwards by `seek`).
    fn promote(&mut self) {
        let horizon = self.horizon();
        while self.overflow.peek().is_some_and(|e| e.at.0 < horizon) {
            let e = self.overflow.pop().expect("peeked entry must pop"); // simlint: allow(panic_hygiene)
            let b = self.bucket_of(e.at.0);
            self.buckets[b].push(e);
            self.wheel_len += 1;
        }
    }
    // simlint: hot-path-end

    /// Re-anchor the wheel at `at`'s bucket after a push earlier than
    /// `wheel_time` (possible only when a peek rotated past a stop point,
    /// e.g. a `max_time` run limit, and the caller then scheduled from an
    /// earlier `now`). O(ring) but off every hot path.
    fn rewind(&mut self, at: u64) {
        let mut stash: Vec<QEntry<T>> = Vec::with_capacity(self.wheel_len);
        for b in &mut self.buckets {
            stash.append(b);
        }
        self.wheel_len = 0;
        self.wheel_time = (at >> self.shift) << self.shift;
        self.cur = self.bucket_of(at);
        let horizon = self.horizon();
        for e in stash {
            if e.at.0 >= horizon {
                self.overflow.push(e);
            } else {
                let b = self.bucket_of(e.at.0);
                self.buckets[b].push(e);
                self.wheel_len += 1;
            }
        }
        self.buckets[self.cur].sort_unstable();
    }
}

impl<T: Copy> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> EventQueue<T> for CalendarQueue<T> {
    // simlint: hot-path
    fn push(&mut self, entry: QEntry<T>) {
        let at = entry.at.0;
        if at < self.wheel_time {
            self.rewind(at);
        }
        if at >= self.horizon() {
            self.overflow.push(entry);
        } else {
            let b = self.bucket_of(at);
            if b == self.cur {
                // The live bucket stays sorted descending: binary-insert.
                let v = &mut self.buckets[b];
                let key = (entry.at, entry.seq);
                let pos = v.partition_point(|e| (e.at, e.seq) > key);
                v.insert(pos, entry);
            } else {
                self.buckets[b].push(entry);
            }
            self.wheel_len += 1;
        }
        self.len += 1;
    }

    fn pop(&mut self) -> Option<QEntry<T>> {
        if !self.seek() {
            return None;
        }
        let e = self.buckets[self.cur].pop().expect("seek guarantees a live entry"); // simlint: allow(panic_hygiene)
        self.wheel_len -= 1;
        self.len -= 1;
        Some(e)
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if !self.seek() {
            return None;
        }
        self.buckets[self.cur].last().map(|e| (e.at, e.seq))
    }

    fn pop_batch(&mut self, buf: &mut Vec<QEntry<T>>, max: usize) {
        buf.clear();
        if max == 0 || !self.seek() {
            return;
        }
        // Same-tick entries share a bucket (same time ⇒ same index and
        // epoch), so the whole batch is a suffix of the live bucket.
        let v = &mut self.buckets[self.cur];
        let at = v.last().expect("seek guarantees a live entry").at; // simlint: allow(panic_hygiene)
        while buf.len() < max {
            match v.last() {
                Some(e) if e.at == at => {
                    buf.push(*e);
                    v.pop();
                }
                _ => break,
            }
        }
        self.wheel_len -= buf.len();
        self.len -= buf.len();
    }
    // simlint: hot-path-end

    fn len(&self) -> usize {
        self.len
    }
}

/// Which [`EventQueue`] implementation a [`crate::Simulator`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueKind {
    /// The `BinaryHeap` oracle.
    Heap,
    /// The calendar queue / timing wheel (the default).
    Calendar,
}

impl QueueKind {
    /// Parse a kind id as used by `pptlab --queue` and `PPT_QUEUE`.
    pub fn parse(s: &str) -> Option<QueueKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "heap" | "binary-heap" | "binary_heap" => Some(QueueKind::Heap),
            "calendar" | "wheel" | "calendar-queue" => Some(QueueKind::Calendar),
            _ => None,
        }
    }

    /// Stable id (used in JSON output and CLI round-trips).
    pub fn as_str(&self) -> &'static str {
        match self {
            QueueKind::Heap => "heap",
            QueueKind::Calendar => "calendar",
        }
    }
}

/// Static dispatch over the two implementations — the engine stores this
/// so the per-event cost is one branch, not a vtable call.
pub enum Queue<T> {
    /// A [`HeapQueue`].
    Heap(HeapQueue<T>),
    /// A [`CalendarQueue`].
    Calendar(CalendarQueue<T>),
}

impl<T: Copy> Queue<T> {
    /// An empty queue of the given kind (default geometry for calendar).
    pub fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Heap => Queue::Heap(HeapQueue::new()),
            QueueKind::Calendar => Queue::Calendar(CalendarQueue::new()),
        }
    }

    /// The kind of the active implementation.
    pub fn kind(&self) -> QueueKind {
        match self {
            Queue::Heap(_) => QueueKind::Heap,
            Queue::Calendar(_) => QueueKind::Calendar,
        }
    }

    // simlint: hot-path
    /// See [`EventQueue::push`].
    #[inline]
    pub fn push(&mut self, entry: QEntry<T>) {
        match self {
            Queue::Heap(q) => q.push(entry),
            Queue::Calendar(q) => q.push(entry),
        }
    }

    /// See [`EventQueue::pop`].
    #[inline]
    pub fn pop(&mut self) -> Option<QEntry<T>> {
        match self {
            Queue::Heap(q) => q.pop(),
            Queue::Calendar(q) => q.pop(),
        }
    }

    /// See [`EventQueue::peek_key`].
    #[inline]
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match self {
            Queue::Heap(q) => q.peek_key(),
            Queue::Calendar(q) => q.peek_key(),
        }
    }

    /// See [`EventQueue::pop_batch`].
    #[inline]
    pub fn pop_batch(&mut self, buf: &mut Vec<QEntry<T>>, max: usize) {
        match self {
            Queue::Heap(q) => q.pop_batch(buf, max),
            Queue::Calendar(q) => q.pop_batch(buf, max),
        }
    }
    // simlint: hot-path-end

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        match self {
            Queue::Heap(q) => q.len(),
            Queue::Calendar(q) => q.len(),
        }
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Copy> EventQueue<T> for Queue<T> {
    fn push(&mut self, entry: QEntry<T>) {
        Queue::push(self, entry);
    }
    fn pop(&mut self) -> Option<QEntry<T>> {
        Queue::pop(self)
    }
    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        Queue::peek_key(self)
    }
    fn pop_batch(&mut self, buf: &mut Vec<QEntry<T>>, max: usize) {
        Queue::pop_batch(self, buf, max)
    }
    fn len(&self) -> usize {
        Queue::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    fn e(at: u64, seq: u64) -> QEntry<u32> {
        QEntry { at: SimTime(at), seq, ev: seq as u32 }
    }

    /// The geometries every differential test runs under: the engine
    /// default plus two tiny wheels that force rotation, overflow
    /// promotion and empty-wheel jumps even on nanosecond schedules.
    const GEOMETRIES: [(u32, u32); 3] = [(DEFAULT_SHIFT, DEFAULT_BUCKET_BITS), (4, 3), (1, 1)];

    /// Drive a randomized schedule through the heap oracle and a calendar
    /// queue in lockstep, checking every peek and pop agrees. Pushes obey
    /// the engine's contract: monotone `seq`, `at >=` last popped time.
    fn differential_run(shift: u32, bucket_bits: u32, seed: u64, ops: usize) {
        let mut oracle: HeapQueue<u32> = HeapQueue::new();
        let mut cal: CalendarQueue<u32> = CalendarQueue::with_geometry(shift, bucket_bits);
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut live = 0usize;
        for _ in 0..ops {
            let r = rng.next_u32() % 100;
            if r < 55 || live == 0 {
                // Push. Offset mixture: same-tick (the adversarial case —
                // see tests/determinism.rs tie-break goldens), near
                // (in-wheel), medium, and far (overflow on every geometry).
                let offset = match rng.next_u32() % 10 {
                    0..=2 => 0,
                    3..=6 => (rng.next_u32() % 4096) as u64,
                    7..=8 => (rng.next_u32() % (1 << 17)) as u64,
                    _ => (rng.next_u32() % (1 << 26)) as u64,
                };
                let entry = e(now + offset, seq);
                seq += 1;
                live += 1;
                oracle.push(entry);
                cal.push(entry);
            } else {
                assert_eq!(oracle.peek_key(), cal.peek_key(), "peek diverged (seed {seed})");
                let a = oracle.pop().expect("live > 0");
                let b = cal.pop().expect("oracle popped");
                assert_eq!((a.at, a.seq, a.ev), (b.at, b.seq, b.ev), "pop diverged (seed {seed})");
                now = a.at.0;
                live -= 1;
            }
            assert_eq!(oracle.len(), cal.len());
        }
        // Drain: the tails must agree entry for entry.
        while let Some(a) = oracle.pop() {
            let b = cal.pop().expect("calendar drained early");
            assert_eq!((a.at, a.seq, a.ev), (b.at, b.seq, b.ev), "drain diverged (seed {seed})");
        }
        assert!(cal.pop().is_none(), "calendar held extra entries");
    }

    /// Satellite: 10k randomized insert/pop/same-key sequences through
    /// both implementations must agree on every `(time, seq)` pop.
    #[test]
    fn randomized_schedules_pop_identically_across_implementations() {
        for (shift, bits) in GEOMETRIES {
            for seed in [1u64, 42, 7, 0xDEAD_BEEF] {
                differential_run(shift, bits, seed, 10_000);
            }
        }
    }

    /// The adversarial same-tick case: a burst of equal-time entries must
    /// drain in insertion (`seq`) order from both implementations, even
    /// when pops interleave with further same-tick pushes.
    #[test]
    fn same_tick_bursts_stay_fifo() {
        for (shift, bits) in GEOMETRIES {
            let mut oracle: HeapQueue<u32> = HeapQueue::new();
            let mut cal: CalendarQueue<u32> = CalendarQueue::with_geometry(shift, bits);
            let at = 1_000_000u64;
            for s in 0..64u64 {
                oracle.push(e(at, s));
                cal.push(e(at, s));
            }
            // Interleave: pop half, push a second same-tick wave.
            for expect in 0..32u64 {
                assert_eq!(cal.pop().expect("entry").seq, expect);
                oracle.pop();
            }
            for s in 64..96u64 {
                oracle.push(e(at, s));
                cal.push(e(at, s));
            }
            for expect in 32..96u64 {
                let a = oracle.pop().expect("oracle entry");
                let b = cal.pop().expect("calendar entry");
                assert_eq!((a.seq, b.seq), (expect, expect), "FIFO broke at {expect}");
            }
            assert!(cal.is_empty());
        }
    }

    /// Far-future events sit in the overflow tier and must still come out
    /// in global order as the wheel rotates or jumps into their epoch.
    #[test]
    fn overflow_promotion_preserves_global_order() {
        let mut cal: CalendarQueue<u32> = CalendarQueue::with_geometry(4, 3); // span 128 ns
        let mut keys: Vec<(u64, u64)> = Vec::new();
        // Alternate near and far pushes so promotions and jumps both fire.
        for s in 0..200u64 {
            let at = if s % 2 == 0 { s } else { 10_000 + 37 * s };
            cal.push(e(at, s));
            keys.push((at, s));
        }
        keys.sort_unstable();
        let mut got = Vec::new();
        while let Some(x) = cal.pop() {
            got.push((x.at.0, x.seq));
        }
        assert_eq!(got, keys);
    }

    /// A peek may rotate the wheel past a stop point; a later push from an
    /// earlier `now` (the resumed-run case) must rewind, not misfile.
    #[test]
    fn push_before_wheel_time_after_peek_rewinds() {
        let mut cal: CalendarQueue<u32> = CalendarQueue::with_geometry(4, 3);
        cal.push(e(1_000_000, 0));
        // Rotating peek: jumps the wheel into the far event's epoch.
        assert_eq!(cal.peek_key(), Some((SimTime(1_000_000), 0)));
        // The engine stops at max_time=100 and a sampler schedules at 150.
        cal.push(e(150, 1));
        cal.push(e(150, 2));
        assert_eq!(cal.peek_key(), Some((SimTime(150), 1)));
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop()).map(|x| x.seq).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    /// `pop_batch` must return exactly the maximal same-tick run (bounded
    /// by `max`), identically on both implementations, and concatenated
    /// batches must equal the plain pop order.
    #[test]
    fn batches_agree_and_concatenate_to_pop_order() {
        for (shift, bits) in GEOMETRIES {
            let mut oracle: HeapQueue<u32> = HeapQueue::new();
            let mut cal: CalendarQueue<u32> = CalendarQueue::with_geometry(shift, bits);
            let mut flat: HeapQueue<u32> = HeapQueue::new();
            let mut rng = Pcg32::seed_from_u64(9);
            for seq in 0..500u64 {
                // Coarse times make same-tick runs common.
                let entry = e(((rng.next_u32() % 64) as u64) << 6, seq);
                oracle.push(entry);
                cal.push(entry);
                flat.push(entry);
            }
            let (mut ob, mut cb) = (Vec::new(), Vec::new());
            let mut concat = Vec::new();
            loop {
                let max = 1 + (rng.next_u32() % 5) as usize;
                oracle.pop_batch(&mut ob, max);
                cal.pop_batch(&mut cb, max);
                let okeys: Vec<_> = ob.iter().map(|x| (x.at, x.seq)).collect();
                let ckeys: Vec<_> = cb.iter().map(|x| (x.at, x.seq)).collect();
                assert_eq!(okeys, ckeys, "batch diverged");
                if ob.is_empty() {
                    break;
                }
                assert!(ob.iter().all(|x| x.at == ob[0].at), "batch mixed timestamps");
                concat.extend(okeys);
            }
            let plain: Vec<_> = std::iter::from_fn(|| flat.pop()).map(|x| (x.at, x.seq)).collect();
            assert_eq!(concat, plain, "batches did not concatenate to pop order");
        }
    }

    /// The `Queue` wrapper dispatches to whichever kind it was built as
    /// and round-trips kind ids.
    #[test]
    fn queue_wrapper_and_kind_roundtrip() {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            assert_eq!(QueueKind::parse(kind.as_str()), Some(kind));
            let mut q: Queue<u32> = Queue::new(kind);
            assert_eq!(q.kind(), kind);
            assert!(q.is_empty());
            q.push(e(5, 0));
            q.push(e(5, 1));
            q.push(e(3, 2));
            assert_eq!(q.len(), 3);
            assert_eq!(q.peek_key(), Some((SimTime(3), 2)));
            let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|x| x.seq).collect();
            assert_eq!(order, vec![2, 0, 1]);
        }
        assert_eq!(QueueKind::parse("nope"), None);
    }
}
