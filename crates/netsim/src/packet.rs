//! Packets and protocol payloads.
//!
//! The simulator is generic over the protocol header carried by each packet:
//! transports define their own header type and implement [`Payload`] for it.
//! `netsim` itself only interprets the fields it needs for forwarding —
//! destination, priority, wire size, ECN bits and trimmability.

use crate::ids::{FlowId, HostId};
use crate::time::SimTime;
use crate::units::Rate;

/// Ethernet + IP + TCP-ish header overhead modelled on every packet, bytes.
pub const HEADER_BYTES: u32 = 40;
/// Maximum transmission unit (wire size), bytes.
pub const MTU_BYTES: u32 = 1500;
/// Maximum segment size: payload bytes per full packet.
pub const MSS_BYTES: u32 = MTU_BYTES - HEADER_BYTES;
/// Wire size of a payload-less control packet (ACK, grant, pull, ...).
pub const CTRL_BYTES: u32 = HEADER_BYTES;
/// Wire size of a trimmed (payload-removed) data packet.
pub const TRIMMED_BYTES: u32 = 64;

/// Number of strict priority levels at every port (P0 highest .. P7 lowest).
pub const NUM_PRIORITIES: usize = 8;

/// Per-hop telemetry handed to [`Payload::on_switch_hop`] when a packet is
/// enqueued at a switch egress port. This is the information an INT-capable
/// switch (as assumed by HPCC) exposes.
#[derive(Clone, Copy, Debug)]
pub struct HopTelemetry {
    /// Queue backlog (all priorities) at the egress port, bytes.
    pub qlen_bytes: u64,
    /// Backlog of the high-priority band (P0–P3) only.
    pub qlen_high_bytes: u64,
    /// Cumulative bytes transmitted on the egress link so far.
    pub tx_bytes: u64,
    /// Cumulative high-priority-band bytes transmitted.
    pub tx_high_bytes: u64,
    /// Timestamp of the observation.
    pub ts: SimTime,
    /// Egress link rate.
    pub link_rate: Rate,
}

/// Protocol header attached to every packet.
///
/// The single hook lets INT-style transports (HPCC) collect per-hop state;
/// everyone else uses the default no-op.
pub trait Payload: Clone + std::fmt::Debug {
    /// Called once per switch egress enqueue, in path order.
    fn on_switch_hop(&mut self, _hop: HopTelemetry) {}
}

/// Minimal payload for tests and simple traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct NoPayload;

impl Payload for NoPayload {}

/// ECN codepoint state carried by a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ecn {
    /// ECN-capable transport (ECT set). Non-capable packets are never marked.
    pub capable: bool,
    /// Congestion Experienced mark.
    pub ce: bool,
}

impl Ecn {
    /// An ECN-capable, unmarked packet.
    pub const fn capable() -> Self {
        Ecn { capable: true, ce: false }
    }

    /// A packet that opts out of ECN.
    pub const fn not_capable() -> Self {
        Ecn { capable: false, ce: false }
    }
}

/// A simulated packet.
#[derive(Clone, Debug)]
pub struct Packet<P> {
    /// Flow this packet belongs to (used for ECMP and endpoint demux).
    pub flow: FlowId,
    /// Originating host.
    pub src: HostId,
    /// Destination host; forwarding is destination-based.
    pub dst: HostId,
    /// Strict priority, 0 (highest) .. 7 (lowest).
    pub priority: u8,
    /// Bytes occupied on the wire (payload + header, or header only).
    pub wire_bytes: u32,
    /// ECN state.
    pub ecn: Ecn,
    /// Whether a switch may trim this packet to a header instead of
    /// dropping it (NDP-style). Control packets are never trimmed.
    pub trimmable: bool,
    /// Set when a switch has removed the payload; `wire_bytes` is then
    /// [`TRIMMED_BYTES`] and the receiver must request retransmission.
    pub trimmed: bool,
    /// When this packet last entered an egress queue (host NIC or switch
    /// port); the engine restamps it at every hop and reads it at dequeue
    /// to feed the telemetry queueing-delay histogram. One 8-byte store
    /// per enqueue, paid whether or not telemetry is on.
    pub(crate) enq_at: SimTime,
    /// Protocol header.
    pub payload: P,
}

/// The `Copy` half of a [`Packet`] — everything except the protocol
/// payload. The engine's packet pool stores metadata and payloads in
/// separate arrays (struct-of-arrays) so forwarding decisions, which only
/// read metadata, touch one densely packed cache line per event; payloads
/// are fetched only at delivery.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PacketMeta {
    pub(crate) flow: FlowId,
    pub(crate) src: HostId,
    pub(crate) dst: HostId,
    pub(crate) priority: u8,
    pub(crate) wire_bytes: u32,
    pub(crate) ecn: Ecn,
    pub(crate) trimmable: bool,
    pub(crate) trimmed: bool,
    pub(crate) enq_at: SimTime,
}

impl<P> Packet<P> {
    /// Split into the `Copy` metadata and the payload (for pooled storage).
    pub(crate) fn into_parts(self) -> (PacketMeta, P) {
        (
            PacketMeta {
                flow: self.flow,
                src: self.src,
                dst: self.dst,
                priority: self.priority,
                wire_bytes: self.wire_bytes,
                ecn: self.ecn,
                trimmable: self.trimmable,
                trimmed: self.trimmed,
                enq_at: self.enq_at,
            },
            self.payload,
        )
    }

    /// Reassemble from pooled parts (inverse of [`Packet::into_parts`]).
    pub(crate) fn from_parts(meta: PacketMeta, payload: P) -> Self {
        Packet {
            flow: meta.flow,
            src: meta.src,
            dst: meta.dst,
            priority: meta.priority,
            wire_bytes: meta.wire_bytes,
            ecn: meta.ecn,
            trimmable: meta.trimmable,
            trimmed: meta.trimmed,
            enq_at: meta.enq_at,
            payload,
        }
    }
}

impl<P: Payload> Packet<P> {
    /// Build a full-size data packet carrying `payload_bytes` of user data.
    pub fn data(flow: FlowId, src: HostId, dst: HostId, payload_bytes: u32, payload: P) -> Self {
        debug_assert!(
            payload_bytes > 0 && payload_bytes <= MSS_BYTES,
            "data packet payload {payload_bytes} outside 1..=MSS"
        );
        Packet {
            flow,
            src,
            dst,
            priority: 0,
            wire_bytes: payload_bytes + HEADER_BYTES,
            ecn: Ecn::capable(),
            trimmable: false,
            trimmed: false,
            enq_at: SimTime::ZERO,
            payload,
        }
    }

    /// Build a control packet (ACK/grant/pull): header-only, highest
    /// priority by default, never trimmed or dropped for trimming.
    pub fn ctrl(flow: FlowId, src: HostId, dst: HostId, payload: P) -> Self {
        Packet {
            flow,
            src,
            dst,
            priority: 0,
            wire_bytes: CTRL_BYTES,
            ecn: Ecn::not_capable(),
            trimmable: false,
            trimmed: false,
            enq_at: SimTime::ZERO,
            payload,
        }
    }

    /// Set the strict priority (0..=7), builder-style.
    pub fn with_priority(mut self, prio: u8) -> Self {
        debug_assert!((prio as usize) < NUM_PRIORITIES, "priority {prio} out of range");
        self.priority = prio;
        self
    }

    /// Mark as trimmable (NDP data packets), builder-style.
    pub fn with_trimmable(mut self, trimmable: bool) -> Self {
        self.trimmable = trimmable;
        self
    }

    /// Opt out of ECN marking, builder-style.
    pub fn without_ecn(mut self) -> Self {
        self.ecn = Ecn::not_capable();
        self
    }

    /// User payload bytes carried (0 for control or trimmed packets).
    pub fn payload_bytes(&self) -> u32 {
        if self.trimmed || self.wire_bytes <= HEADER_BYTES {
            0
        } else {
            self.wire_bytes - HEADER_BYTES
        }
    }
}

/// Split a message of `total` bytes into MSS-sized payload chunks; the last
/// chunk holds the remainder. Returns (offset, len) pairs covering `total`.
pub fn segment(total: u64) -> impl Iterator<Item = (u64, u32)> {
    let mss = MSS_BYTES as u64;
    let n = total.div_ceil(mss);
    (0..n).map(move |i| {
        let off = i * mss;
        let len = (total - off).min(mss) as u32;
        (off, len)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(bytes: u32) -> Packet<NoPayload> {
        Packet::data(FlowId(1), HostId(0), HostId(1), bytes, NoPayload)
    }

    #[test]
    fn data_packet_sizes() {
        let p = pkt(MSS_BYTES);
        assert_eq!(p.wire_bytes, MTU_BYTES);
        assert_eq!(p.payload_bytes(), MSS_BYTES);
        let c = Packet::ctrl(FlowId(1), HostId(0), HostId(1), NoPayload);
        assert_eq!(c.wire_bytes, CTRL_BYTES);
        assert_eq!(c.payload_bytes(), 0);
        assert!(!c.ecn.capable);
    }

    #[test]
    fn segmentation_covers_message_exactly() {
        let segs: Vec<_> = segment(3 * MSS_BYTES as u64 + 100).collect();
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0], (0, MSS_BYTES));
        assert_eq!(segs[3], (3 * MSS_BYTES as u64, 100));
        let total: u64 = segs.iter().map(|&(_, l)| l as u64).sum();
        assert_eq!(total, 3 * MSS_BYTES as u64 + 100);
    }

    #[test]
    fn segmentation_of_tiny_message() {
        let segs: Vec<_> = segment(1).collect();
        assert_eq!(segs, vec![(0, 1)]);
    }

    #[test]
    fn builder_methods_apply() {
        let p = pkt(100).with_priority(5).with_trimmable(true).without_ecn();
        assert_eq!(p.priority, 5);
        assert!(p.trimmable);
        assert!(!p.ecn.capable);
    }
}
