//! simsan — the runtime invariant sanitizer for the simulation core.
//!
//! An opt-in shadow-state auditor threaded through the engine hot path
//! behind a zero-cost-when-off flag ([`crate::Simulator::set_sanitizer`]).
//! The sanitizer maintains its own ledger of what the engine *should*
//! hold — pool occupancy, per-port queue accounting, link occupancy,
//! event-clock discipline, fault attribution — fed by observation hooks
//! at the same places the engine mutates its real state, and checks the
//! two against each other at a configurable cadence.
//!
//! Observer-effect contract: the sanitizer never schedules events, never
//! draws from any RNG, and emits nothing into the trace stream unless an
//! invariant is actually violated — so a clean sanitized run is
//! byte-identical to an unsanitized one (`tests/sanitizer.rs` proves it
//! across every scheme). All ledger state is plain owned data inside the
//! engine; nothing here is visible to transports or switches.
//!
//! Violations are recorded as [`SanViolation`]s, surfaced through the
//! trace layer as `TraceEvent::SanViolation`, and turn the run's
//! `StopReason` into `StopReason::SanViolation` (abnormal), which
//! triggers the harness flight-recorder dump. See DESIGN.md §13 for the
//! invariant catalogue.

use std::collections::BTreeMap;

use dcn_trace::SanCheck;

use crate::time::SimTime;

/// How often the sanitizer cross-checks its ledger against engine state.
///
/// Observation hooks (pool alloc/free, queue push/pop, tx start/done,
/// heap pop) run on every event regardless of level — the level only
/// controls when the *audit* (the O(ports + queue-depth) comparison
/// sweep) runs and when accumulated violations abort the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SanLevel {
    /// Audit after every dispatched event (most precise localization,
    /// highest overhead).
    PerEvent,
    /// Audit every [`EPOCH_EVENTS`] events and at end of run (the
    /// recommended default; bench-measured overhead is a few percent).
    PerEpoch,
    /// Audit only once, when the run stops.
    AtEnd,
}

impl SanLevel {
    /// Stable tag for logs and CLI plumbing.
    pub fn as_str(&self) -> &'static str {
        match self {
            SanLevel::PerEvent => "event",
            SanLevel::PerEpoch => "epoch",
            SanLevel::AtEnd => "end",
        }
    }

    /// Parse a `PPT_SANITIZE` / `--sanitize` value. `"1"` selects the
    /// recommended per-epoch cadence; `"0"` and `""` mean off (`None`).
    pub fn parse(s: &str) -> Option<SanLevel> {
        match s {
            "event" | "per-event" => Some(SanLevel::PerEvent),
            "1" | "epoch" | "per-epoch" => Some(SanLevel::PerEpoch),
            "end" | "at-end" => Some(SanLevel::AtEnd),
            _ => None,
        }
    }
}

/// Events between audits at [`SanLevel::PerEpoch`].
pub const EPOCH_EVENTS: u64 = 4096;

/// One detected invariant breach.
#[derive(Clone, Copy, Debug)]
pub struct SanViolation {
    /// Which invariant family was breached.
    pub check: SanCheck,
    /// Simulated time at detection.
    pub at: SimTime,
    /// The entity involved: a port ledger key, pool slot, flow id, heap
    /// sequence number or link id, depending on `check`.
    pub subject: u64,
    /// What the ledger says the value should be.
    pub expected: u64,
    /// What the engine actually holds.
    pub actual: u64,
}

/// A sanitizer observation reported from inside a transport handler via
/// `Ctx::san_note` (the transports cannot see the engine-side ledger, so
/// they push notes through the effects channel instead; the engine
/// drains them counter-only, never touching the event heap).
#[derive(Clone, Copy, Debug)]
pub enum SanNote {
    /// A transport invariant breached outright (cwnd == 0, RTO armed
    /// with nothing outstanding, ...).
    Violation {
        /// Invariant family (normally `TransportConservation`).
        check: SanCheck,
        /// Flow the breach was observed on.
        flow: u64,
        /// Expected value.
        expected: u64,
        /// Actual value.
        actual: u64,
    },
    /// Cumulative-ACK observation; the ledger enforces that a flow's
    /// cumulative ACK never moves backwards.
    AckAdvance {
        /// Flow observed.
        flow: u64,
        /// Cumulative contiguous bytes ACKed so far.
        cum_acked: u64,
    },
}

/// Ledger key for a host NIC egress port.
pub fn host_port_key(host: u32) -> u64 {
    host as u64
}

/// Ledger key for a switch egress port.
pub fn switch_port_key(switch: u32, port: u16) -> u64 {
    (1u64 << 32) | ((switch as u64) << 16) | port as u64
}

/// Shadow state for one egress port.
#[derive(Clone, Copy, Debug, Default)]
struct PortShadow {
    /// Bytes the ledger believes are queued. Exact for host NICs; for
    /// switch ports it is resynced from engine state after push-out
    /// evictions (the engine cannot observe evicted packets one by one).
    bytes: u64,
    /// Packets the ledger believes are queued.
    pkts: u64,
    /// Whether a serialization is in flight on this port.
    tx_busy: bool,
}

/// The simsan ledger. Owned by the engine (`Simulator::san`); every
/// field is plain owned state so the determinism contract (no shared
/// mutability, no entropy) holds for sanitized runs too.
#[derive(Debug)]
pub struct Sanitizer {
    level: SanLevel,
    // --- packet-pool conservation ---
    slot_live: Vec<bool>,
    live: u64,
    // --- event-clock discipline ---
    last_pop: Option<(SimTime, u64)>,
    max_seq: Option<u64>,
    // --- queue accounting + link occupancy ---
    ports: BTreeMap<u64, PortShadow>,
    // --- transport conservation ---
    last_cum_ack: BTreeMap<u64, u64>,
    // --- fault attribution ---
    fault_drops: u64,
    // --- audit/output state ---
    violations: Vec<SanViolation>,
    flushed: usize,
    events_since_audit: u64,
}

impl Sanitizer {
    /// A fresh ledger auditing at `level`.
    pub fn new(level: SanLevel) -> Self {
        Sanitizer {
            level,
            slot_live: Vec::new(),
            live: 0,
            last_pop: None,
            max_seq: None,
            ports: BTreeMap::new(),
            last_cum_ack: BTreeMap::new(),
            fault_drops: 0,
            violations: Vec::new(),
            flushed: 0,
            events_since_audit: 0,
        }
    }

    /// The configured cadence.
    pub fn level(&self) -> SanLevel {
        self.level
    }

    /// Every violation recorded so far, in detection order.
    pub fn violations(&self) -> &[SanViolation] {
        &self.violations
    }

    fn record(&mut self, check: SanCheck, at: SimTime, subject: u64, expected: u64, actual: u64) {
        self.violations.push(SanViolation { check, at, subject, expected, actual });
    }

    // ---------------------------------------------------------------
    // Seeding (mid-run install support)
    // ---------------------------------------------------------------

    /// Mark a pool slot as live at install time, so a sanitizer attached
    /// between `run()` calls starts from the engine's real state.
    pub(crate) fn seed_pool_slot(&mut self, slot: usize) {
        if self.slot_live.len() <= slot {
            self.slot_live.resize(slot + 1, false);
        }
        if !self.slot_live[slot] {
            self.slot_live[slot] = true;
            self.live += 1;
        }
    }

    /// Seed one port's shadow from the engine's current state.
    pub(crate) fn seed_port(&mut self, key: u64, bytes: u64, pkts: u64, busy: bool) {
        self.ports.insert(key, PortShadow { bytes, pkts, tx_busy: busy });
    }

    /// Seed the fault-drop ledger from the engine's current total.
    pub(crate) fn seed_faults(&mut self, drops: u64) {
        self.fault_drops = drops;
    }

    // ---------------------------------------------------------------
    // Observation hooks (called from the engine hot path when enabled)
    // ---------------------------------------------------------------

    /// A pool slot was handed out for an in-flight packet.
    pub(crate) fn observe_alloc(&mut self, when: SimTime, slot: usize) {
        if self.slot_live.len() <= slot {
            self.slot_live.resize(slot + 1, false);
        }
        if self.slot_live[slot] {
            // Allocated twice without an intervening free.
            self.record(SanCheck::PoolConservation, when, slot as u64, 0, 1);
        } else {
            self.slot_live[slot] = true;
            self.live += 1;
        }
    }

    /// A pool slot was consumed by a delivery.
    pub(crate) fn observe_free(&mut self, when: SimTime, slot: usize) {
        match self.slot_live.get_mut(slot) {
            Some(live) if *live => {
                *live = false;
                self.live -= 1;
            }
            // Freed twice, or freed without ever being allocated.
            _ => self.record(SanCheck::PoolConservation, when, slot as u64, 1, 0),
        }
    }

    /// The engine assigned heap sequence number `seq` to an event at
    /// `when` while the clock reads `now_at`.
    pub(crate) fn observe_schedule(&mut self, when: SimTime, now_at: SimTime, seq: u64) {
        if when < now_at {
            self.record(SanCheck::SchedulePast, now_at, seq, now_at.0, when.0);
        }
        if let Some(max) = self.max_seq {
            if seq <= max {
                // Sequence numbers must be strictly increasing: a rewind
                // breaks the FIFO tie-break for same-time events.
                self.record(SanCheck::TieBreak, now_at, seq, max + 1, seq);
            }
        }
        self.max_seq = Some(self.max_seq.map_or(seq, |m| m.max(seq)));
    }

    /// An event at `(when, seq)` was popped for dispatch while the clock
    /// still read `now_before`.
    pub(crate) fn observe_pop(&mut self, when: SimTime, seq: u64, now_before: SimTime) {
        if when < now_before {
            self.record(SanCheck::ClockMonotonic, now_before, seq, now_before.0, when.0);
        }
        if let Some((last_at, last_seq)) = self.last_pop {
            if when < last_at {
                self.record(SanCheck::ClockMonotonic, now_before, seq, last_at.0, when.0);
            } else if when == last_at && seq <= last_seq {
                self.record(SanCheck::TieBreak, now_before, seq, last_seq + 1, seq);
            }
        }
        self.last_pop = Some((when, seq));
    }

    /// A packet of `wire_bytes` entered the queue bank behind `key`.
    pub(crate) fn observe_queue_push(&mut self, key: u64, wire_bytes: u64) {
        let shadow = self.ports.entry(key).or_default();
        shadow.bytes += wire_bytes;
        shadow.pkts += 1;
    }

    /// A packet of `wire_bytes` left the queue bank behind `key`.
    pub(crate) fn observe_queue_pop(&mut self, when: SimTime, key: u64, wire_bytes: u64) {
        let shadow = self.ports.entry(key).or_default();
        let had_bytes = shadow.bytes;
        let underflow = shadow.pkts == 0 || shadow.bytes < wire_bytes;
        if underflow {
            // More left the queue than the ledger ever saw enter; reset the
            // shadow so one corruption doesn't cascade per-packet.
            shadow.bytes = 0;
            shadow.pkts = 0;
        } else {
            shadow.bytes -= wire_bytes;
            shadow.pkts -= 1;
        }
        if underflow {
            self.record(SanCheck::QueueAccounting, when, key, had_bytes, wire_bytes);
        }
    }

    /// Push-out eviction inside `enqueue_policy` removed packets the
    /// engine could not observe individually; resync this port's shadow
    /// from the post-admission engine state.
    pub(crate) fn observe_queue_resync(&mut self, key: u64, bytes: u64, pkts: u64) {
        let shadow = self.ports.entry(key).or_default();
        shadow.bytes = bytes;
        shadow.pkts = pkts;
    }

    /// A serialization started on the port behind `key`.
    pub(crate) fn observe_tx_start(&mut self, when: SimTime, key: u64) {
        let shadow = self.ports.entry(key).or_default();
        let was_busy = shadow.tx_busy;
        shadow.tx_busy = true;
        if was_busy {
            // Two serializations in flight on one port.
            self.record(SanCheck::LinkOccupancy, when, key, 0, 1);
        }
    }

    /// A TxDone dispatched for the port behind `key`.
    pub(crate) fn observe_tx_done(&mut self, when: SimTime, key: u64) {
        let shadow = self.ports.entry(key).or_default();
        let was_busy = shadow.tx_busy;
        shadow.tx_busy = false;
        if !was_busy {
            // TxDone without a matching prior transmit (phantom TxDone).
            self.record(SanCheck::LinkOccupancy, when, key, 1, 0);
        }
    }

    /// The fault layer destroyed a packet on the wire.
    pub(crate) fn observe_fault_drop(&mut self) {
        self.fault_drops += 1;
    }

    /// An ECN mark was applied; `scoped_after` is the post-enqueue
    /// backlog of the rule's scope. Under mark-on-enqueue, a marked
    /// packet implies the scoped backlog met the threshold.
    pub(crate) fn observe_ecn_mark(
        &mut self,
        when: SimTime,
        key: u64,
        scoped_after: u64,
        threshold: Option<u64>,
    ) {
        match threshold {
            // Marked at a priority with no ECN rule configured.
            None => self.record(SanCheck::EcnMark, when, key, 0, 1),
            Some(k) => {
                if scoped_after < k {
                    self.record(SanCheck::EcnMark, when, key, k, scoped_after);
                }
            }
        }
    }

    /// Drain one transport-side note into the ledger.
    pub(crate) fn observe_note(&mut self, when: SimTime, note: SanNote) {
        match note {
            SanNote::Violation { check, flow, expected, actual } => {
                self.record(check, when, flow, expected, actual);
            }
            SanNote::AckAdvance { flow, cum_acked } => {
                let last = self.last_cum_ack.entry(flow).or_insert(0);
                let prev = *last;
                *last = prev.max(cum_acked);
                if cum_acked < prev {
                    self.record(SanCheck::TransportConservation, when, flow, prev, cum_acked);
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Audits (cadence-driven comparison sweeps, driven by the engine)
    // ---------------------------------------------------------------

    /// Count one dispatched event; returns true when the cadence says an
    /// audit is due now.
    pub(crate) fn tick(&mut self) -> bool {
        match self.level {
            SanLevel::PerEvent => true,
            SanLevel::PerEpoch => {
                self.events_since_audit += 1;
                if self.events_since_audit >= EPOCH_EVENTS {
                    self.events_since_audit = 0;
                    true
                } else {
                    false
                }
            }
            SanLevel::AtEnd => false,
        }
    }

    /// Compare the pool ledger against `pool_live` (the engine's
    /// `pool_stats().live`). At a quiescent run end no packet may remain
    /// in flight.
    pub(crate) fn audit_pool(&mut self, when: SimTime, pool_live: u64, quiescent: bool) {
        if pool_live != self.live {
            self.record(SanCheck::PoolConservation, when, u64::MAX, self.live, pool_live);
        }
        if quiescent && pool_live > 0 {
            // Live packets with a drained heap: leaked in-flight slots.
            self.record(SanCheck::PoolConservation, when, u64::MAX, 0, pool_live);
        }
    }

    /// Compare one port's shadow against the engine's queue bank and
    /// busy flag. `recount` is `Some((recomputed, counter))` when the
    /// queue bank's internal byte counters disagree with its contents.
    pub(crate) fn audit_port(
        &mut self,
        when: SimTime,
        key: u64,
        bytes: u64,
        pkts: u64,
        busy: bool,
        recount: Option<(u64, u64)>,
    ) {
        if let Some((recomputed, counter)) = recount {
            self.record(SanCheck::QueueAccounting, when, key, recomputed, counter);
        }
        let shadow = *self.ports.entry(key).or_default();
        if shadow.bytes != bytes {
            self.record(SanCheck::QueueAccounting, when, key, shadow.bytes, bytes);
        }
        if shadow.pkts != pkts {
            self.record(SanCheck::QueueAccounting, when, key, shadow.pkts, pkts);
        }
        if shadow.tx_busy != busy {
            self.record(SanCheck::LinkOccupancy, when, key, shadow.tx_busy as u64, busy as u64);
        }
    }

    /// Compare the fault-drop ledger against the engine's attributed
    /// total (`FaultState::drops`, surfaced as `FaultReport.fault_drops`).
    pub(crate) fn audit_faults(&mut self, when: SimTime, attributed: u64) {
        if attributed != self.fault_drops {
            self.record(SanCheck::FaultAttribution, when, 0, self.fault_drops, attributed);
        }
    }

    /// Violations recorded since the last flush (the engine emits these
    /// as `TraceEvent::SanViolation` and marks them flushed).
    pub(crate) fn unflushed(&self) -> &[SanViolation] {
        &self.violations[self.flushed..]
    }

    /// Mark every recorded violation as flushed; returns true when any
    /// violation has ever been recorded (the run must stop abnormally).
    pub(crate) fn mark_flushed(&mut self) -> bool {
        self.flushed = self.violations.len();
        !self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime(1_000);

    #[test]
    fn pool_ledger_flags_double_free_and_leaks() {
        let mut s = Sanitizer::new(SanLevel::AtEnd);
        s.observe_alloc(T0, 0);
        s.observe_free(T0, 0);
        assert!(s.violations().is_empty());
        s.observe_free(T0, 0);
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].check, SanCheck::PoolConservation);

        // A pool that says one live packet vs an empty ledger is a leak.
        let mut s = Sanitizer::new(SanLevel::AtEnd);
        s.audit_pool(T0, 1, true);
        assert_eq!(s.violations().len(), 2, "mismatch + quiescence: {:?}", s.violations());
    }

    #[test]
    fn clock_and_tie_break_discipline() {
        let mut s = Sanitizer::new(SanLevel::AtEnd);
        s.observe_schedule(SimTime(10), SimTime(5), 0);
        s.observe_schedule(SimTime(10), SimTime(5), 1);
        assert!(s.violations().is_empty());
        // Sequence rewind: the FIFO tie-break is broken.
        s.observe_schedule(SimTime(10), SimTime(5), 1);
        assert_eq!(s.violations()[0].check, SanCheck::TieBreak);
        // Scheduling into the past.
        s.observe_schedule(SimTime(3), SimTime(5), 9);
        assert!(s.violations().iter().any(|v| v.check == SanCheck::SchedulePast));

        let mut s = Sanitizer::new(SanLevel::AtEnd);
        s.observe_pop(SimTime(5), 0, SimTime(5));
        s.observe_pop(SimTime(5), 2, SimTime(5));
        assert!(s.violations().is_empty());
        s.observe_pop(SimTime(4), 3, SimTime(5));
        assert_eq!(s.violations()[0].check, SanCheck::ClockMonotonic);
    }

    #[test]
    fn queue_shadow_catches_skew() {
        let mut s = Sanitizer::new(SanLevel::AtEnd);
        let key = host_port_key(3);
        s.observe_queue_push(key, 1500);
        s.observe_queue_push(key, 64);
        s.observe_queue_pop(T0, key, 1500);
        s.audit_port(T0, key, 64, 1, false, None);
        assert!(s.violations().is_empty());
        // Engine counter drifted by 100 bytes.
        s.audit_port(T0, key, 164, 1, false, None);
        assert_eq!(s.violations()[0].check, SanCheck::QueueAccounting);
    }

    #[test]
    fn link_occupancy_catches_phantom_txdone() {
        let mut s = Sanitizer::new(SanLevel::AtEnd);
        let key = switch_port_key(0, 2);
        s.observe_tx_start(T0, key);
        s.observe_tx_done(T0, key);
        assert!(s.violations().is_empty());
        s.observe_tx_done(T0, key);
        assert_eq!(s.violations()[0].check, SanCheck::LinkOccupancy);
    }

    #[test]
    fn ack_ledger_enforces_monotone_cum_ack() {
        let mut s = Sanitizer::new(SanLevel::AtEnd);
        s.observe_note(T0, SanNote::AckAdvance { flow: 7, cum_acked: 1000 });
        s.observe_note(T0, SanNote::AckAdvance { flow: 7, cum_acked: 4000 });
        assert!(s.violations().is_empty());
        s.observe_note(T0, SanNote::AckAdvance { flow: 7, cum_acked: 2000 });
        assert_eq!(s.violations()[0].check, SanCheck::TransportConservation);
    }

    #[test]
    fn epoch_cadence_fires_every_epoch() {
        let mut s = Sanitizer::new(SanLevel::PerEpoch);
        let due: u64 = (0..EPOCH_EVENTS * 2).map(|_| s.tick() as u64).sum();
        assert_eq!(due, 2);
        let mut s = Sanitizer::new(SanLevel::PerEvent);
        assert!(s.tick() && s.tick());
        let mut s = Sanitizer::new(SanLevel::AtEnd);
        assert!(!s.tick());
    }

    #[test]
    fn level_parsing() {
        assert_eq!(SanLevel::parse("1"), Some(SanLevel::PerEpoch));
        assert_eq!(SanLevel::parse("epoch"), Some(SanLevel::PerEpoch));
        assert_eq!(SanLevel::parse("event"), Some(SanLevel::PerEvent));
        assert_eq!(SanLevel::parse("end"), Some(SanLevel::AtEnd));
        assert_eq!(SanLevel::parse("0"), None);
        assert_eq!(SanLevel::parse(""), None);
    }
}
