//! Deterministic fault injection: timed link outages, switch stalls, and
//! random packet/ACK loss.
//!
//! A [`FaultSchedule`] is attached to a [`crate::Simulator`] before the
//! run via [`crate::Simulator::set_fault_schedule`]. Two fault classes are
//! supported:
//!
//! - **Timed operations** ([`FaultOp`]): link down/up and switch
//!   stall/resume at fixed simulated instants. They enter the ordinary
//!   event heap as `Ev::Fault` entries, so they interleave with traffic
//!   under the same `(time, seq)` total order as everything else.
//! - **Random loss**: independent per-packet drop probabilities, decided
//!   at serialization time from a dedicated [`Pcg32`] stream seeded by
//!   [`FaultSchedule::seed`]. Data packets (non-zero payload) use
//!   `data_loss`; control packets (header-only: ACKs, NACKs, pulls,
//!   credits) use `ack_loss`, optionally restricted to priorities `>=
//!   ack_loss_min_prio` — which isolates PPT's low-priority ACK band
//!   (LP ACKs ride P4+, HCP ACKs ride P0).
//!
//! Determinism: the fault RNG is owned by the simulator, advances only
//! when a non-zero probability applies to a serialized packet, and timed
//! ops are scheduled in schedule order before the first event dispatch.
//! Identical schedules + seeds therefore reproduce byte-identical traces
//! regardless of how many sweep workers run other simulations in parallel
//! (each `Simulator` is fully self-contained; see DESIGN.md §11).

use crate::ids::{LinkId, SwitchId};
use crate::time::{SimDuration, SimTime};

/// One timed fault operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Take a unidirectional link down: packets serialized onto it while
    /// down are lost (the sender still pays serialization time).
    LinkDown(LinkId),
    /// Bring a downed link back up.
    LinkUp(LinkId),
    /// Freeze a switch's egress scheduling: queues keep admitting (and
    /// tail-dropping) but no packet starts serialization on any port.
    StallStart(SwitchId),
    /// Resume a stalled switch; backlogged ports restart immediately.
    StallEnd(SwitchId),
}

/// A [`FaultOp`] pinned to an absolute simulated instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedFault {
    /// When the operation applies.
    pub at: SimTime,
    /// What happens.
    pub op: FaultOp,
}

/// A complete fault scenario for one run: timed operations plus random
/// loss probabilities. Built with the fluent helpers, then handed to
/// [`crate::Simulator::set_fault_schedule`].
///
/// ```
/// use netsim::{FaultSchedule, LinkId, SimDuration, SimTime, SwitchId};
/// let faults = FaultSchedule::new(7)
///     .link_outage(LinkId(0), SimTime(1_000_000), SimTime(3_000_000))
///     .stall_switch(SwitchId(0), SimTime(5_000_000), SimDuration::from_micros(500))
///     .with_data_loss(0.01);
/// assert_eq!(faults.ops.len(), 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    /// Timed operations, applied in push order (ties broken by push order).
    pub ops: Vec<TimedFault>,
    /// Probability that a serialized *data* packet (payload > 0) is lost.
    pub data_loss: f64,
    /// Probability that a serialized *control* packet (header-only: ACKs,
    /// NACKs, pulls, credits) is lost.
    pub ack_loss: f64,
    /// `ack_loss` only applies to control packets with priority `>= this`.
    /// 0 (the default) covers every control packet; 4 isolates PPT's
    /// low-priority ACK band.
    pub ack_loss_min_prio: u8,
    /// Seed for the dedicated fault RNG stream.
    pub seed: u64,
}

impl FaultSchedule {
    /// An empty schedule (no timed ops, no loss) with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultSchedule { ops: Vec::new(), data_loss: 0.0, ack_loss: 0.0, ack_loss_min_prio: 0, seed }
    }

    /// Append one timed operation.
    pub fn op(mut self, at: SimTime, op: FaultOp) -> Self {
        self.ops.push(TimedFault { at, op });
        self
    }

    /// Take `link` down at `from` and restore it at `until`.
    pub fn link_outage(self, link: LinkId, from: SimTime, until: SimTime) -> Self {
        debug_assert!(from < until, "outage must end after it starts");
        self.op(from, FaultOp::LinkDown(link)).op(until, FaultOp::LinkUp(link))
    }

    /// Stall `switch` at `at` for `duration`.
    pub fn stall_switch(self, switch: SwitchId, at: SimTime, duration: SimDuration) -> Self {
        self.op(at, FaultOp::StallStart(switch)).op(at + duration, FaultOp::StallEnd(switch))
    }

    /// Set the random data-packet loss probability.
    pub fn with_data_loss(mut self, p: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&p), "loss probability {p} outside [0, 1]");
        self.data_loss = p;
        self
    }

    /// Set the random control-packet (ACK) loss probability.
    pub fn with_ack_loss(mut self, p: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&p), "loss probability {p} outside [0, 1]");
        self.ack_loss = p;
        self
    }

    /// Restrict `ack_loss` to control packets with priority `>= min_prio`.
    pub fn with_ack_loss_min_prio(mut self, min_prio: u8) -> Self {
        self.ack_loss_min_prio = min_prio;
        self
    }

    /// True when the schedule can never affect a run.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty() && self.data_loss <= 0.0 && self.ack_loss <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_ops_in_order() {
        let s = FaultSchedule::new(1)
            .link_outage(LinkId(2), SimTime(100), SimTime(200))
            .stall_switch(SwitchId(0), SimTime(150), SimDuration::from_nanos(25));
        assert_eq!(
            s.ops,
            vec![
                TimedFault { at: SimTime(100), op: FaultOp::LinkDown(LinkId(2)) },
                TimedFault { at: SimTime(200), op: FaultOp::LinkUp(LinkId(2)) },
                TimedFault { at: SimTime(150), op: FaultOp::StallStart(SwitchId(0)) },
                TimedFault { at: SimTime(175), op: FaultOp::StallEnd(SwitchId(0)) },
            ]
        );
    }

    #[test]
    fn emptiness_tracks_every_knob() {
        assert!(FaultSchedule::new(9).is_empty());
        assert!(!FaultSchedule::new(9).with_data_loss(0.5).is_empty());
        assert!(!FaultSchedule::new(9).with_ack_loss(0.5).is_empty());
        assert!(!FaultSchedule::new(9).op(SimTime(1), FaultOp::LinkDown(LinkId(0))).is_empty());
    }
}
