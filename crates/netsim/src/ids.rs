//! Identifier newtypes for simulator entities.
//!
//! All entities live in arenas inside the [`crate::engine::Simulator`] and
//! are referred to by small copyable ids, which keeps the event-handler
//! borrow structure simple and the event queue compact.

use std::fmt;

/// Identifies a host (an end-system running a transport endpoint).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// Identifies a switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

/// Identifies any node (host or switch).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeId {
    Host(HostId),
    Switch(SwitchId),
}

/// Identifies a unidirectional link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Identifies a flow (a single application message/transfer).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Debug for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl FlowId {
    /// A stable hash of the flow id, used for ECMP path selection.
    ///
    /// SplitMix64 finalizer: cheap, deterministic across runs, and spreads
    /// consecutive flow ids across paths.
    pub fn path_hash(self) -> u64 {
        let mut z = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_hash_spreads_consecutive_ids() {
        // With 4 uplinks, 1000 consecutive flows should land on all paths
        // and no path should get more than ~2x its fair share.
        let mut counts = [0u32; 4];
        for i in 0..1000 {
            counts[(FlowId(i).path_hash() % 4) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 125 && c < 500, "unbalanced ECMP spread: {counts:?}");
        }
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", HostId(3)), "h3");
        assert_eq!(format!("{:?}", NodeId::Switch(SwitchId(1))), "Switch(sw1)");
        assert_eq!(format!("{:?}", FlowId(9)), "f9");
    }
}
