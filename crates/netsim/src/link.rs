//! Unidirectional links.

use crate::ids::NodeId;
use crate::time::SimDuration;
use crate::units::Rate;

/// A unidirectional point-to-point link.
///
/// Full-duplex cables are modelled as two `Link`s, one per direction. The
/// sending side serializes packets at `rate`; each packet then takes
/// `delay` to propagate before arriving at `to`.
#[derive(Debug)]
pub struct Link {
    /// Transmission rate.
    pub rate: Rate,
    /// Propagation delay.
    pub delay: SimDuration,
    /// Receiving node.
    pub to: NodeId,
    /// Cumulative bytes handed to the wire (includes headers). Updated when
    /// serialization of a packet begins; used for utilization sampling and
    /// INT telemetry.
    pub tx_bytes: u64,
    /// Cumulative packets handed to the wire.
    pub tx_packets: u64,
    /// Cumulative bytes of high-priority-band (P0–P3) packets handed to
    /// the wire — the counter a priority-aware INT switch exposes.
    pub tx_high_bytes: u64,
}

impl Link {
    /// A fresh link with zeroed counters.
    pub fn new(rate: Rate, delay: SimDuration, to: NodeId) -> Self {
        Link { rate, delay, to, tx_bytes: 0, tx_packets: 0, tx_high_bytes: 0 }
    }
}
