//! Simulated time.
//!
//! The simulator uses a nanosecond-resolution virtual clock. All scheduling
//! is expressed in [`SimTime`] (an absolute instant) and [`SimDuration`]
//! (a span). Both are thin wrappers over `u64` nanoseconds so arithmetic is
//! exact and the event queue ordering is total.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to fractional microseconds (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Convert to fractional milliseconds (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Elapsed duration since `earlier`. Saturates at zero rather than
    /// panicking so that defensive comparisons are cheap.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Build a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Build a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Build a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Nanoseconds in this span.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds in this span.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional microseconds in this span.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Scale the duration by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_micros(80);
        assert_eq!(t.as_nanos(), 80_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(80));
        assert_eq!(SimDuration::from_millis(10).as_nanos(), 10_000_000);
        assert_eq!(SimDuration::from_secs(1) / 4, SimDuration::from_millis(250));
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime(5);
        let late = SimTime(9);
        assert_eq!(late.saturating_since(early).as_nanos(), 4);
        assert_eq!(early.saturating_since(late).as_nanos(), 0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime(1_500)), "1.500us");
        assert_eq!(format!("{}", SimTime(2_500_000)), "2.500ms");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime(3), SimTime(1), SimTime(2)];
        v.sort();
        assert_eq!(v, vec![SimTime(1), SimTime(2), SimTime(3)]);
    }
}
