//! Engine invariants: conservation, determinism and ordering under
//! randomized topologies and workloads.
//!
//! Two tiers share the generators below:
//! * deterministic seeded sweeps (always on — they are the offline tier-1
//!   coverage, driven by the in-tree [`Pcg32`]);
//! * the original `proptest` suite behind the `proptest` feature, which
//!   needs the `proptest` dev-dependency restored (registry access).

use netsim::host::{Ctx, FlowDesc, Transport};
use netsim::packet::segment;
use netsim::{
    star, FlowId, LeafSpineParams, Packet, Payload, Pcg32, Rate, RunLimits, SimDuration, SimTime,
    SwitchConfig, Topology,
};

#[derive(Clone, Debug)]
struct Hdr {
    size: u64,
}
impl Payload for Hdr {}

/// Blast sender + byte-counting receiver (no congestion control): on a
/// big-buffer fabric nothing may be lost.
struct Blast {
    rx: std::collections::BTreeMap<FlowId, (u64, u64)>,
}

impl Transport<Hdr> for Blast {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Hdr>) {
        for (off, len) in segment(flow.size_bytes) {
            let _ = off;
            ctx.send(Packet::data(flow.id, flow.src, flow.dst, len, Hdr { size: flow.size_bytes }));
        }
    }
    fn on_packet(&mut self, pkt: Packet<Hdr>, ctx: &mut Ctx<'_, Hdr>) {
        let e = self.rx.entry(pkt.flow).or_insert((0, pkt.payload.size));
        e.0 += pkt.payload_bytes() as u64;
        if e.0 >= e.1 {
            ctx.flow_completed(pkt.flow);
        }
    }
    fn on_timer(&mut self, _: u64, _: &mut Ctx<'_, Hdr>) {}
}

fn build_star(n: usize) -> Topology<Hdr> {
    let mut topo =
        star::<Hdr>(n, Rate::gbps(10), SimDuration::from_micros(5), SwitchConfig::basic(1 << 30));
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Box::new(Blast { rx: std::collections::BTreeMap::new() }));
    }
    topo
}

/// Random (size, start_ns) pairs, mirroring the proptest strategy
/// `vec((1..2_000_000, 0..1_000_000), 1..20)`.
fn random_flows(rng: &mut Pcg32, max_n: usize, max_size: u64, max_start: u64) -> Vec<(u64, u64)> {
    let n = 1 + rng.gen_index(max_n);
    (0..n).map(|_| (1 + rng.gen_range(max_size - 1), rng.gen_range(max_start))).collect()
}

/// Every flow completes on an over-provisioned star, regardless of sizes
/// and arrival times, and FCT >= the physical lower bound.
#[test]
fn all_flows_complete_and_respect_physics_seeded() {
    for seed in 0..24u64 {
        let mut rng = Pcg32::seed_from_u64(seed);
        let flows = random_flows(&mut rng, 19, 2_000_000, 1_000_000);
        let n = 2 + rng.gen_index(4);
        let mut topo = build_star(n);
        let mut ids = Vec::new();
        for (i, &(size, start_ns)) in flows.iter().enumerate() {
            let src = i % n;
            let dst = (i + 1) % n;
            ids.push(topo.sim.add_flow(
                topo.hosts[src],
                topo.hosts[dst],
                size,
                SimTime(start_ns),
                size,
            ));
        }
        let report = topo.sim.run(RunLimits::default());
        assert_eq!(report.flows_completed, flows.len(), "seed {seed}");
        for (id, &(size, start_ns)) in ids.iter().zip(flows.iter()) {
            let done = topo.sim.completion(*id).expect("completed flow has a completion time");
            let fct = done.saturating_since(SimTime(start_ns));
            // Lower bound: last byte serialized once at 10G + 2 hops prop.
            let min = Rate::gbps(10).serialization_time(size).as_nanos() / 2 + 10_000;
            assert!(
                fct.as_nanos() >= min.min(20_000),
                "seed {seed}: fct {fct:?} too fast for size {size}"
            );
        }
    }
}

/// Bit-identical reruns: equal inputs give equal completion times and
/// equal event counts.
#[test]
fn engine_is_deterministic_seeded() {
    for seed in 0..8u64 {
        let mut rng = Pcg32::seed_from_u64(seed);
        let flows = random_flows(&mut rng, 11, 500_000, 200_000);
        let run = || {
            let mut topo = build_star(4);
            let ids: Vec<FlowId> = flows
                .iter()
                .enumerate()
                .map(|(i, &(size, t))| {
                    topo.sim.add_flow(
                        topo.hosts[i % 4],
                        topo.hosts[(i + 1) % 4],
                        size,
                        SimTime(t),
                        size,
                    )
                })
                .collect();
            let report = topo.sim.run(RunLimits::default());
            let times: Vec<_> = ids.iter().map(|&id| topo.sim.completion(id)).collect();
            (report.events, times)
        };
        assert_eq!(run(), run(), "seed {seed}");
    }
}

/// Byte conservation at the switch: enqueued = delivered + dropped
/// (every admitted packet eventually leaves on a link).
#[test]
fn switch_counters_conserve_packets_seeded() {
    for seed in 0..12u64 {
        let mut rng = Pcg32::seed_from_u64(seed);
        let n_flows = 1 + rng.gen_index(9);
        let sizes: Vec<u64> = (0..n_flows).map(|_| 1 + rng.gen_range(300_000 - 1)).collect();
        let mut topo = build_star(3);
        for (i, &size) in sizes.iter().enumerate() {
            topo.sim.add_flow(topo.hosts[i % 2], topo.hosts[2], size, SimTime::ZERO, size);
        }
        topo.sim.run(RunLimits::default());
        let c = topo.sim.total_counters();
        assert_eq!(c.dropped, 0, "seed {seed}: no drops on a 1GB buffer");
        // Every data packet sent by hosts crossed exactly one switch.
        let host_tx: u64 =
            (0..3).map(|i| topo.sim.link(topo.sim.host_uplink(topo.hosts[i])).tx_packets).sum();
        assert_eq!(c.enqueued, host_tx, "seed {seed}");
    }
}

/// ECMP balance on a leaf-spine fabric: every spine carries traffic for
/// enough flows, and per-flow paths are consistent (no reordering across
/// spines for a single flow).
#[test]
fn ecmp_is_flow_consistent() {
    let params = LeafSpineParams {
        n_leaves: 2,
        n_spines: 4,
        hosts_per_leaf: 2,
        edge_rate: Rate::gbps(10),
        core_rate: Rate::gbps(40),
        link_delay: SimDuration::from_micros(1),
    };
    let mut topo = netsim::leaf_spine::<Hdr>(&params, SwitchConfig::basic(1 << 30));
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Box::new(Blast { rx: std::collections::BTreeMap::new() }));
    }
    // One multi-packet cross-rack flow: all packets must take one path,
    // so exactly one leaf->spine link sees them.
    topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 100 * 1460, SimTime::ZERO, 1);
    topo.sim.run(RunLimits::default());
    let mut used_links = 0;
    for &spine in &topo.spines.clone() {
        let port = topo.sim.switch_port_towards(topo.leaves[0], netsim::NodeId::Switch(spine));
        if let Some(p) = port {
            if topo.sim.link(topo.sim.switch_port_link(topo.leaves[0], p)).tx_packets > 0 {
                used_links += 1;
            }
        }
    }
    assert_eq!(used_links, 1, "a single flow must stay on one ECMP path");
}

/// The original property-based suite. Requires the `proptest` feature
/// *and* the `proptest` dev-dependency restored in Cargo.toml.
#[cfg(feature = "proptest")]
mod property_based {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every flow completes on an over-provisioned star, regardless of
        /// sizes and arrival times, and FCT >= the physical lower bound.
        #[test]
        fn all_flows_complete_and_respect_physics(
            flows in proptest::collection::vec((1u64..2_000_000, 0u64..1_000_000), 1..20),
            n in 2usize..6,
        ) {
            let mut topo = build_star(n);
            let mut ids = Vec::new();
            for (i, &(size, start_ns)) in flows.iter().enumerate() {
                let src = i % n;
                let dst = (i + 1) % n;
                ids.push(topo.sim.add_flow(
                    topo.hosts[src],
                    topo.hosts[dst],
                    size,
                    SimTime(start_ns),
                    size,
                ));
            }
            let report = topo.sim.run(RunLimits::default());
            prop_assert_eq!(report.flows_completed, flows.len());
            for (id, &(size, start_ns)) in ids.iter().zip(flows.iter()) {
                let done = topo.sim.completion(*id).unwrap();
                let fct = done.saturating_since(SimTime(start_ns));
                let min = Rate::gbps(10).serialization_time(size).as_nanos() / 2 + 10_000;
                prop_assert!(fct.as_nanos() >= min.min(20_000), "fct {fct:?} too fast for size {size}");
            }
        }

        /// Bit-identical reruns: equal inputs give equal completion times
        /// and equal event counts.
        #[test]
        fn engine_is_deterministic(
            flows in proptest::collection::vec((1u64..500_000, 0u64..200_000), 1..12),
        ) {
            let run = || {
                let mut topo = build_star(4);
                let ids: Vec<FlowId> = flows
                    .iter()
                    .enumerate()
                    .map(|(i, &(size, t))| {
                        topo.sim.add_flow(topo.hosts[i % 4], topo.hosts[(i + 1) % 4], size, SimTime(t), size)
                    })
                    .collect();
                let report = topo.sim.run(RunLimits::default());
                let times: Vec<_> = ids.iter().map(|&id| topo.sim.completion(id)).collect();
                (report.events, times)
            };
            prop_assert_eq!(run(), run());
        }

        /// Byte conservation at the switch: enqueued = delivered + dropped
        /// (every admitted packet eventually leaves on a link).
        #[test]
        fn switch_counters_conserve_packets(
            flows in proptest::collection::vec(1u64..300_000, 1..10),
        ) {
            let mut topo = build_star(3);
            for (i, &size) in flows.iter().enumerate() {
                topo.sim.add_flow(topo.hosts[i % 2], topo.hosts[2], size, SimTime::ZERO, size);
            }
            topo.sim.run(RunLimits::default());
            let c = topo.sim.total_counters();
            prop_assert_eq!(c.dropped, 0, "no drops on a 1GB buffer");
            let host_tx: u64 = (0..3)
                .map(|i| topo.sim.link(topo.sim.host_uplink(topo.hosts[i])).tx_packets)
                .sum();
            prop_assert_eq!(c.enqueued, host_tx);
        }
    }
}
