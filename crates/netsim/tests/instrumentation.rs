//! Tests of the simulator's measurement machinery: samplers, counters,
//! CPU accounting and topology introspection.

use netsim::host::{Ctx, FlowDesc, Transport};
use netsim::packet::segment;
use netsim::{
    star, FlowId, NodeId, Packet, Payload, Rate, RunLimits, SimDuration, SimTime, SwitchConfig,
};

#[derive(Clone, Debug)]
struct Hdr {
    size: u64,
}
impl Payload for Hdr {}

struct Blast {
    rx: std::collections::HashMap<FlowId, (u64, u64)>,
    /// Busy-loop iterations per handler, to make CPU accounting visible.
    spin: u32,
}

impl Transport<Hdr> for Blast {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Hdr>) {
        for (_, len) in segment(flow.size_bytes) {
            ctx.send(Packet::data(flow.id, flow.src, flow.dst, len, Hdr { size: flow.size_bytes }));
        }
    }
    fn on_packet(&mut self, pkt: Packet<Hdr>, ctx: &mut Ctx<'_, Hdr>) {
        for _ in 0..self.spin {
            std::hint::black_box(0u64);
        }
        let e = self.rx.entry(pkt.flow).or_insert((0, pkt.payload.size));
        e.0 += pkt.payload_bytes() as u64;
        if e.0 >= e.1 {
            ctx.flow_completed(pkt.flow);
        }
    }
    fn on_timer(&mut self, _: u64, _: &mut Ctx<'_, Hdr>) {}
}

fn topo_with(spin: u32) -> netsim::Topology<Hdr> {
    let mut t =
        star::<Hdr>(3, Rate::gbps(10), SimDuration::from_micros(5), SwitchConfig::basic(1 << 24));
    for &h in &t.hosts.clone() {
        t.sim.set_transport(h, Box::new(Blast { rx: Default::default(), spin }));
    }
    t
}

#[test]
fn cpu_accounting_counts_handler_invocations() {
    let mut topo = topo_with(10);
    topo.sim.measure_cpu = true;
    topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 50 * 1460, SimTime::ZERO, 1);
    topo.sim.run(RunLimits::default());
    let (tx_ns, tx_calls) = topo.sim.cpu_account(topo.hosts[0]);
    let (rx_ns, rx_calls) = topo.sim.cpu_account(topo.hosts[1]);
    // Sender: 1 flow-start call. Receiver: 50 packet deliveries.
    assert_eq!(tx_calls, 1);
    assert_eq!(rx_calls, 50);
    assert!(tx_ns > 0 && rx_ns > 0);
}

#[test]
fn cpu_accounting_is_off_by_default() {
    let mut topo = topo_with(0);
    topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 1460, SimTime::ZERO, 1);
    topo.sim.run(RunLimits::default());
    assert_eq!(topo.sim.cpu_account(topo.hosts[1]), (0, 0));
}

#[test]
fn port_sampler_sees_backlog_with_priorities() {
    let mut topo = topo_with(0);
    // Two senders into one host: the shared egress port backs up.
    topo.sim.add_flow(topo.hosts[0], topo.hosts[2], 200 * 1460, SimTime::ZERO, 1);
    topo.sim.add_flow(topo.hosts[1], topo.hosts[2], 200 * 1460, SimTime::ZERO, 1);
    let port = topo
        .sim
        .switch_port_towards(topo.leaves[0], NodeId::Host(topo.hosts[2]))
        .expect("port toward receiver");
    let sampler = topo.sim.sample_port(
        topo.leaves[0],
        port,
        SimDuration::from_micros(10),
        SimTime(1_000_000),
    );
    topo.sim.run(RunLimits::default());
    let samples = topo.sim.samples(sampler);
    assert!(!samples.is_empty());
    let max_backlog = samples.iter().map(|s| s.value).max().unwrap();
    assert!(max_backlog > 100_000, "burst should queue >100KB, saw {max_backlog}");
    // Per-priority decomposition sums to the total.
    for s in samples {
        assert_eq!(s.per_priority.iter().sum::<u64>(), s.value);
    }
}

#[test]
fn sampler_stops_at_its_deadline() {
    let mut topo = topo_with(0);
    topo.sim.add_flow(topo.hosts[0], topo.hosts[1], 1000 * 1460, SimTime::ZERO, 1);
    let link = topo.sim.host_uplink(topo.hosts[0]);
    let sampler = topo.sim.sample_link(link, SimDuration::from_micros(10), SimTime(200_000));
    topo.sim.run(RunLimits::default());
    let samples = topo.sim.samples(sampler);
    assert!(samples.iter().all(|s| s.at.as_nanos() <= 200_000));
    // 10us interval over 200us => exactly 20 samples.
    assert_eq!(samples.len(), 20);
}

#[test]
fn link_counters_track_bytes_and_packets() {
    let mut topo = topo_with(0);
    let size = 10 * 1460u64;
    topo.sim.add_flow(topo.hosts[0], topo.hosts[1], size, SimTime::ZERO, 1);
    topo.sim.run(RunLimits::default());
    let link = topo.sim.link(topo.sim.host_uplink(topo.hosts[0]));
    assert_eq!(link.tx_packets, 10);
    assert_eq!(link.tx_bytes, size + 10 * 40); // payload + headers
                                               // All at priority 0 => the high-band counter matches.
    assert_eq!(link.tx_high_bytes, link.tx_bytes);
}

#[test]
#[should_panic(expected = "no route")]
fn forwarding_without_routes_panics_clearly() {
    let mut sim = netsim::Simulator::<Hdr>::new();
    let sw = sim.add_switch(SwitchConfig::basic(1 << 20));
    let a = sim.add_host();
    let b = sim.add_host();
    sim.connect(NodeId::Host(a), NodeId::Switch(sw), Rate::gbps(1), SimDuration::from_micros(1));
    sim.connect(NodeId::Host(b), NodeId::Switch(sw), Rate::gbps(1), SimDuration::from_micros(1));
    // build_routes() deliberately not called.
    sim.set_transport(a, Box::new(Blast { rx: Default::default(), spin: 0 }));
    sim.set_transport(b, Box::new(Blast { rx: Default::default(), spin: 0 }));
    sim.add_flow(a, b, 100, SimTime::ZERO, 100);
    sim.run(RunLimits::default());
}

#[test]
#[should_panic(expected = "already cabled")]
fn double_cabling_a_host_panics() {
    let mut sim = netsim::Simulator::<Hdr>::new();
    let sw = sim.add_switch(SwitchConfig::basic(1 << 20));
    let a = sim.add_host();
    sim.connect(NodeId::Host(a), NodeId::Switch(sw), Rate::gbps(1), SimDuration::from_micros(1));
    sim.connect(NodeId::Host(a), NodeId::Switch(sw), Rate::gbps(1), SimDuration::from_micros(1));
}
