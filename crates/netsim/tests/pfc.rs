//! PFC backpressure behaviour: pausing under incast, lossless operation
//! with adequate headroom, upstream propagation, and determinism.

use netsim::host::{Ctx, FlowDesc, Transport};
use netsim::packet::segment;
use netsim::{
    star, FlowId, LeafSpineParams, Packet, Payload, PfcConfig, Rate, RunLimits, SanLevel,
    SimDuration, SimTime, SwitchConfig, Topology,
};

#[derive(Clone, Debug)]
struct Hdr {
    size: u64,
}
impl Payload for Hdr {}

/// Blast sender + byte-counting receiver (no congestion control): the
/// worst case for a shallow buffer, and exactly what PFC must absorb.
struct Blast {
    rx: std::collections::BTreeMap<FlowId, (u64, u64)>,
}

impl Blast {
    fn boxed() -> Box<Self> {
        Box::new(Blast { rx: std::collections::BTreeMap::new() })
    }
}

impl Transport<Hdr> for Blast {
    fn on_flow_start(&mut self, flow: &FlowDesc, ctx: &mut Ctx<'_, Hdr>) {
        for (_off, len) in segment(flow.size_bytes) {
            ctx.send(Packet::data(flow.id, flow.src, flow.dst, len, Hdr { size: flow.size_bytes }));
        }
    }
    fn on_packet(&mut self, pkt: Packet<Hdr>, ctx: &mut Ctx<'_, Hdr>) {
        let e = self.rx.entry(pkt.flow).or_insert((0, pkt.payload.size));
        e.0 += pkt.payload_bytes() as u64;
        if e.0 >= e.1 {
            ctx.flow_completed(pkt.flow);
        }
    }
    fn on_timer(&mut self, _: u64, _: &mut Ctx<'_, Hdr>) {}
}

fn incast_star(cfg: SwitchConfig) -> Topology<Hdr> {
    let mut topo = star::<Hdr>(4, Rate::gbps(10), SimDuration::from_micros(5), cfg);
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Blast::boxed());
    }
    // 3:1 incast into host 3: 200KB blasted per sender against a buffer
    // that cannot hold even one sender's burst.
    for src in 0..3 {
        topo.sim.add_flow(topo.hosts[src], topo.hosts[3], 200_000, SimTime::ZERO, 1);
    }
    topo
}

const BUF: u64 = 100_000;

/// Sliced run that records which hosts were ever paused (run() resumes,
/// so probing between slices observes transient pause state).
fn run_probing_pauses(topo: &mut Topology<Hdr>) -> (netsim::RunReport, [bool; 4]) {
    let mut paused = [false; 4];
    let mut report;
    let mut t = 50_000;
    loop {
        report = topo.sim.run(RunLimits { max_time: SimTime(t), max_events: u64::MAX });
        for (i, slot) in paused.iter_mut().enumerate() {
            *slot |= topo.sim.host_paused_mask(topo.hosts[i]) != 0;
        }
        if report.stop != netsim::StopReason::MaxTime {
            return (report, paused);
        }
        t += 50_000;
        assert!(t < 1_000_000_000, "incast never drained");
    }
}

#[test]
fn pfc_pauses_senders_and_prevents_incast_drops() {
    // Without PFC the 3:1 blast overflows the 100KB buffer.
    let mut lossy = incast_star(SwitchConfig::basic(BUF));
    let report = lossy.sim.run(RunLimits::default());
    assert!(report.flows_completed < 3, "blast senders never retransmit, so drops must show");
    assert!(lossy.sim.total_counters().dropped > 0);

    // With PFC the switch pauses the sending NICs instead: headroom
    // (buffer - XOFF = 75KB) absorbs the in-flight bytes and nothing
    // is lost — the backlog waits at the hosts.
    let mut lossless = incast_star(SwitchConfig::basic(BUF).with_pfc(PfcConfig::for_buffer(BUF)));
    let (report, paused) = run_probing_pauses(&mut lossless);
    assert_eq!(report.flows_completed, 3, "PFC must make the incast lossless");
    assert_eq!(lossless.sim.total_counters().dropped, 0);
    assert!(paused.iter().any(|&p| p), "the incast must actually have triggered pauses");
    // Terminal state: every pause released once the fabric drained.
    for i in 0..4 {
        assert_eq!(lossless.sim.host_paused_mask(lossless.hosts[i]), 0);
    }
}

#[test]
fn pfc_propagates_upstream_across_switches() {
    let params = LeafSpineParams {
        n_leaves: 2,
        n_spines: 2,
        hosts_per_leaf: 2,
        edge_rate: Rate::gbps(10),
        core_rate: Rate::gbps(10),
        link_delay: SimDuration::from_micros(2),
    };
    let cfg = SwitchConfig::basic(BUF).with_pfc(PfcConfig::for_buffer(BUF));
    let mut topo = netsim::leaf_spine::<Hdr>(&params, cfg);
    for &h in &topo.hosts.clone() {
        topo.sim.set_transport(h, Blast::boxed());
    }
    // Cross-rack 3:1 incast into the last host: the destination leaf's
    // host port congests, pausing the spines, whose own backlog then
    // pauses the source leaf — hop-by-hop backpressure.
    let dst = topo.hosts[3];
    for src in 0..3 {
        topo.sim.add_flow(topo.hosts[src], dst, 300_000, SimTime::ZERO, 1);
    }
    let mut spine_paused = false;
    let mut t = 50_000;
    let report = loop {
        let report = topo.sim.run(RunLimits { max_time: SimTime(t), max_events: u64::MAX });
        for &spine in &topo.spines.clone() {
            for p in 0..topo.sim.port_count(spine) {
                spine_paused |= topo.sim.switch_port_paused_mask(spine, p as u16) != 0;
            }
        }
        if report.stop != netsim::StopReason::MaxTime {
            break report;
        }
        t += 50_000;
        assert!(t < 2_000_000_000, "incast never drained");
    };
    assert_eq!(report.flows_completed, 3);
    assert_eq!(topo.sim.total_counters().dropped, 0, "hop-by-hop PFC keeps the fabric lossless");
    assert!(spine_paused, "the congested leaf must have paused a spine egress port");
}

#[test]
fn pfc_runs_are_deterministic_and_sanitizer_clean() {
    let digest = |sanitize: bool| {
        let mut topo = incast_star(SwitchConfig::basic(BUF).with_pfc(PfcConfig::for_buffer(BUF)));
        if sanitize {
            topo.sim.set_sanitizer(SanLevel::PerEvent);
        }
        let report = topo.sim.run(RunLimits::default());
        assert_eq!(report.flows_completed, 3);
        assert!(topo.sim.san_violations().is_empty(), "{:?}", topo.sim.san_violations());
        let times: Vec<_> = topo.sim.flows().iter().map(|f| topo.sim.completion(f.id)).collect();
        (report.events, times)
    };
    // Bit-identical rerun, and the sanitizer (whose observation hooks
    // must see pause-gated pops consistently) changes nothing.
    assert_eq!(digest(false), digest(false));
    assert_eq!(digest(false).1, digest(true).1);
}
