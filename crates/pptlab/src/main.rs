#![forbid(unsafe_code)]
//! pptlab — run any scheme/topology/workload combination from the shell.
//!
//! ```text
//! pptlab compare --schemes ppt,dctcp,homa --topo testbed --workload websearch \
//!                --load 0.5 --flows 600 --seed 42
//! pptlab trace --schemes ppt --workload websearch --seed 42 --out runs/
//! pptlab schemes            # list every scheme id
//! pptlab topos              # list topology ids
//! ```

use std::process::ExitCode;

use ppt::harness::{
    collect_metrics, run_experiment, run_experiment_traced, Experiment, FaultCmd, FaultSpec,
    Scheme, TelemetrySpec, TelemetrySummary, TopoKind,
};
use ppt::netsim::{SimDuration, SimTime};
use ppt::stats::{analyze_lcp, analyze_recovery};
use ppt::sweep::{run_points, SweepSpec};
use ppt::trace::JsonObject;
use ppt::workloads::{all_to_all, incast, FlowSpec, SizeDistribution, WorkloadSpec};

mod args;

use args::Args;

const USAGE: &str = "\
pptlab — PPT reproduction laboratory

USAGE:
  pptlab compare [OPTIONS]     run schemes on one workload and print FCT rows
  pptlab sweep [OPTIONS]       run a scheme x load x seed grid and print one row per point
  pptlab trace [OPTIONS]       record a traced run: events.jsonl + metrics.json
  pptlab faults [OPTIONS]      traced fault-injection run; one JSONL recovery summary per scheme
  pptlab report [OPTIONS]      telemetered run: series summaries, histogram percentiles,
                               oscillation flags and (with --prof) a profile breakdown
  pptlab gen [OPTIONS] > t.csv generate a flow trace as CSV on stdout
  pptlab schemes               list scheme ids
  pptlab topos                 list topology ids
  pptlab workloads             list workload ids

OPTIONS (compare, sweep, trace):
  --schemes a,b,c   comma-separated scheme ids        [default: ppt,dctcp / ppt]
  --topo ID         testbed | oversub | nonoversub | highspeed | star:<n>:<gbps>:<delay_us>
                                                      [default: testbed]
  --workload ID     websearch | datamining | memcached [default: websearch]
  --load F          network load in (0,1]             [default: 0.5]
  --flows N         number of flows                   [default: 400 / 80]
  --seed N          workload seed                     [default: 42]
  --jobs N          worker threads; results are identical for any N [default: 1]
  --incast N        (compare, trace) N-to-1 incast with N senders instead of all-to-all
  --trace FILE      (compare, trace) replay a CSV flow trace instead of generating one
                    (columns: src,dst,size_bytes,start_ns,first_write_bytes)
  --loads a,b,c     (sweep) grid of loads             [default: 0.3,0.5,0.7]
  --seeds a,b,c     (sweep) grid of seeds             [default: 42]
  --json            (compare) one JSON document / (sweep) one JSON line per point
  --metrics         (compare) also collect + print per-scheme metrics
  --out DIR         (trace, faults, report) output directory; faults/report only
                    write files when --out is given. report writes
                    <id>.report.json + <id>.telemetry.jsonl per scheme
                                                      [default: . / off]
  --sanitize [LVL]  (compare, sweep, trace, faults) run simsan, the runtime
                    invariant sanitizer, on every simulation. LVL is the
                    audit cadence: event | epoch | end  [default: epoch]
                    (equivalent to setting PPT_SANITIZE=LVL)
  --switch MODE     (compare, sweep, trace, faults, report) switch mode:
                    default | pfc. pfc layers per-priority XOFF/XON
                    backpressure (lossless pausing) over every scheme's
                    switch config (equivalent to setting PPT_SWITCH=pfc)
  --buffers F       (compare, sweep, trace, faults, report) scale every
                    buffer-denominated knob (port buffer, ECN/trim
                    thresholds) by F, e.g. 0.1 for the tiny-buffer regime
  --queue KIND      (compare, sweep, trace, faults, report) event-queue
                    implementation: calendar (default) | heap (the
                    BinaryHeap oracle). Both dispatch in the same
                    (time, seq) order, so results are byte-identical —
                    the knob exists for differential verification
                    (equivalent to setting PPT_QUEUE=KIND)
  --telemetry [IVL] (compare, sweep, trace, faults, report) enable the
                    deterministic continuous-telemetry sampler at interval
                    IVL: <n>ns | <n>us | <n>ms | bare <n> = microseconds
                    [default: 10us]. Sampling only reads state, so traces
                    and FCTs stay byte-identical with or without it.
  --prof            (report) also run the wall-clock dispatch profiler and
                    include its (non-deterministic) breakdown in output
  --faults SPEC     (compare, trace, faults) deterministic fault schedule.
                    SPEC is comma-separated items:
                      loss=F        per-packet data-loss probability
                      ackloss=F     per-packet control-loss probability
                      lp            confine ackloss to priorities >= 4 (LP ACKs)
                      seed=N        fault RNG seed     [default: 1]
                      down:H:F:U    host H uplink down from F us until U us
                      stall:S:A:D   switch S stalled for D us starting at A us
                    e.g. --faults loss=0.01,seed=7,down:0:0:500
";

fn parse_scheme(id: &str) -> Option<Scheme> {
    Some(match id {
        "dctcp" => Scheme::Dctcp,
        "tcp10" => Scheme::Tcp10,
        "halfback" => Scheme::Halfback,
        "expresspass" => Scheme::ExpressPass,
        "ppt" => Scheme::Ppt,
        "ppt-noecn" => Scheme::PptNoLcpEcn,
        "ppt-noewd" => Scheme::PptNoEwd,
        "ppt-nosched" => Scheme::PptNoScheduling,
        "ppt-noident" => Scheme::PptNoIdentification,
        "rc3" => Scheme::Rc3,
        "pias" => Scheme::Pias,
        "homa" => Scheme::Homa,
        "aeolus" => Scheme::Aeolus,
        "ndp" => Scheme::Ndp,
        "hpcc" => Scheme::Hpcc,
        "powertcp" => Scheme::PowerTcp,
        "hpcc-ppt" => Scheme::HpccPpt,
        "swift" => Scheme::Swift,
        "swift-ppt" => Scheme::SwiftPpt,
        "hypothetical" => Scheme::Hypothetical(1.0),
        _ => {
            if let Some(frac) = id.strip_prefix("ppt-fill:") {
                return frac.parse().ok().map(Scheme::PptFill);
            }
            return None;
        }
    })
}

const SCHEME_IDS: &[&str] = &[
    "dctcp",
    "tcp10",
    "halfback",
    "expresspass",
    "ppt",
    "ppt-noecn",
    "ppt-noewd",
    "ppt-nosched",
    "ppt-noident",
    "ppt-fill:<f>",
    "rc3",
    "pias",
    "homa",
    "aeolus",
    "ndp",
    "hpcc",
    "powertcp",
    "hpcc-ppt",
    "swift",
    "swift-ppt",
    "hypothetical",
];

fn parse_topo(id: &str) -> Option<TopoKind> {
    Some(match id {
        "testbed" => TopoKind::PaperTestbed,
        "oversub" => TopoKind::Oversubscribed,
        "nonoversub" => TopoKind::NonOversubscribed,
        "highspeed" => TopoKind::HighSpeed,
        _ => {
            if let Some(rest) = id.strip_prefix("fattree:") {
                let parts: Vec<&str> = rest.split(':').collect();
                if parts.len() != 2 {
                    return None;
                }
                return Some(TopoKind::FatTree {
                    k: parts[0].parse().ok()?,
                    edge_gbps: parts[1].parse().ok()?,
                });
            }
            let rest = id.strip_prefix("star:")?;
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() != 3 {
                return None;
            }
            TopoKind::Star {
                n: parts[0].parse().ok()?,
                rate_gbps: parts[1].parse().ok()?,
                delay_us: parts[2].parse().ok()?,
            }
        }
    })
}

fn parse_workload(id: &str) -> Option<SizeDistribution> {
    Some(match id {
        "websearch" => SizeDistribution::web_search(),
        "datamining" => SizeDistribution::data_mining(),
        "memcached" => SizeDistribution::memcached_w1(),
        _ => return None,
    })
}

/// Everything `compare` and `trace` share: topology, workload, and the
/// concrete flow list (generated, incast, or replayed from CSV).
struct RunSetup {
    topo: TopoKind,
    dist: SizeDistribution,
    load: f64,
    flows: usize,
    seed: u64,
    flow_list: Vec<FlowSpec>,
}

fn parse_schemes(args: &Args, default: &str) -> Result<Vec<(String, Scheme)>, String> {
    args.get("schemes")
        .unwrap_or(default)
        .split(',')
        .map(|s| {
            let id = s.trim();
            parse_scheme(id)
                .map(|scheme| (id.replace(':', "-"), scheme))
                .ok_or_else(|| format!("unknown scheme '{id}' (try `pptlab schemes`)"))
        })
        .collect()
}

fn parse_setup(args: &Args, default_flows: usize) -> Result<RunSetup, String> {
    let topo = parse_topo(args.get("topo").unwrap_or("testbed"))
        .ok_or_else(|| "bad --topo (try `pptlab topos`)".to_string())?;
    let dist = parse_workload(args.get("workload").unwrap_or("websearch"))
        .ok_or_else(|| "bad --workload (try `pptlab workloads`)".to_string())?;
    let load: f64 = args.parse_or("load", 0.5)?;
    let flows: usize = args.parse_or("flows", default_flows)?;
    let seed: u64 = args.parse_or("seed", 42)?;

    let spec = WorkloadSpec::new(dist.clone(), load, topo.edge_rate(), flows, seed);
    let flow_list = if let Some(path) = args.get("trace") {
        let file = std::fs::File::open(path).map_err(|e| format!("--trace {path}: {e}"))?;
        let flows = ppt::workloads::read_csv(std::io::BufReader::new(file))?;
        if let Some(bad) = flows.iter().find(|f| f.src >= topo.hosts() || f.dst >= topo.hosts()) {
            return Err(format!(
                "trace references host {} but topo has {}",
                bad.src.max(bad.dst),
                topo.hosts()
            ));
        }
        flows
    } else {
        match args.get("incast") {
            Some(n) => {
                let n: usize = n.parse().map_err(|_| "--incast expects a count".to_string())?;
                if n + 1 > topo.hosts() {
                    return Err(format!(
                        "--incast {n} needs {} hosts, topo has {}",
                        n + 1,
                        topo.hosts()
                    ));
                }
                incast(n, &spec)
            }
            None => all_to_all(topo.hosts(), &spec),
        }
    };
    Ok(RunSetup { topo, dist, load, flows, seed, flow_list })
}

/// Parse a `--faults` spec (see USAGE) into a harness [`FaultSpec`].
fn parse_faults(spec: &str) -> Result<FaultSpec, String> {
    fn triple(item: &str, rest: &str) -> Result<(usize, u64, u64), String> {
        let parts: Vec<&str> = rest.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("--faults: '{item}' wants three ':'-separated numbers"));
        }
        let bad = |p: &str| format!("--faults: cannot parse '{p}' in '{item}'");
        Ok((
            parts[0].parse().map_err(|_| bad(parts[0]))?,
            parts[1].parse().map_err(|_| bad(parts[1]))?,
            parts[2].parse().map_err(|_| bad(parts[2]))?,
        ))
    }
    let mut f = FaultSpec::new(1);
    for item in spec.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if let Some(v) = item.strip_prefix("loss=") {
            f.data_loss = v.parse().map_err(|_| format!("--faults: bad loss '{v}'"))?;
        } else if let Some(v) = item.strip_prefix("ackloss=") {
            f.ack_loss = v.parse().map_err(|_| format!("--faults: bad ackloss '{v}'"))?;
        } else if item == "lp" {
            f.lp_acks_only = true;
        } else if let Some(v) = item.strip_prefix("seed=") {
            f.seed = v.parse().map_err(|_| format!("--faults: bad seed '{v}'"))?;
        } else if let Some(rest) = item.strip_prefix("down:") {
            let (host, from_us, until_us) = triple(item, rest)?;
            f.events.push(FaultCmd::HostUplinkDown {
                host,
                from: SimTime(from_us * 1_000),
                until: SimTime(until_us * 1_000),
            });
        } else if let Some(rest) = item.strip_prefix("stall:") {
            let (switch, at_us, dur_us) = triple(item, rest)?;
            f.events.push(FaultCmd::SwitchStall {
                switch,
                at: SimTime(at_us * 1_000),
                duration: SimDuration::from_micros(dur_us),
            });
        } else {
            return Err(format!("--faults: unknown item '{item}'"));
        }
    }
    Ok(f)
}

/// The optional `--faults` schedule shared by compare/trace/faults.
fn parse_faults_arg(args: &Args) -> Result<Option<FaultSpec>, String> {
    args.get("faults").map(parse_faults).transpose()
}

/// Attach `faults` (when present) to an experiment.
fn with_faults(exp: Experiment, faults: &Option<FaultSpec>) -> Experiment {
    match faults {
        Some(f) => exp.with_faults(f.clone()),
        None => exp,
    }
}

/// Parse a sampling interval: `<n>ns`, `<n>us`, `<n>ms`, or a bare
/// number meaning microseconds.
fn parse_interval(v: &str) -> Result<SimDuration, String> {
    let bad = || format!("bad interval '{v}' (want <n>ns | <n>us | <n>ms | <n>)");
    let (digits, mult) = if let Some(d) = v.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = v.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = v.strip_suffix("ms") {
        (d, 1_000_000)
    } else {
        (v, 1_000)
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    if n == 0 {
        return Err(bad());
    }
    Ok(SimDuration(n * mult))
}

/// The optional `--telemetry [IVL]` spec shared by every run command.
/// A bare `--telemetry` means the 10 µs default interval.
fn parse_telemetry_arg(args: &Args) -> Result<Option<TelemetrySpec>, String> {
    let Some(v) = args.get("telemetry") else { return Ok(None) };
    let v = if v == "true" { "10us" } else { v };
    let interval = parse_interval(v).map_err(|e| format!("--telemetry: {e}"))?;
    let mut spec = TelemetrySpec::new(interval);
    if args.flag("prof") {
        spec = spec.with_prof();
    }
    Ok(Some(spec))
}

/// Attach `telemetry` (when present) to an experiment.
fn with_telemetry(exp: Experiment, telemetry: &Option<TelemetrySpec>) -> Experiment {
    match telemetry {
        Some(t) => exp.with_telemetry(*t),
        None => exp,
    }
}

/// Turn `--sanitize [LVL]` into the `PPT_SANITIZE` environment variable the
/// harness reads before every experiment. A bare `--sanitize` means the
/// per-epoch cadence; the flag never changes simulation results (the
/// sanitizer only observes), so traces stay byte-identical either way.
fn apply_sanitize_flag(args: &Args) -> Result<(), String> {
    let Some(v) = args.get("sanitize") else { return Ok(()) };
    let level = if v == "true" { "epoch" } else { v };
    if ppt::netsim::SanLevel::parse(level).is_none() {
        return Err(format!("--sanitize: unknown level '{level}' (event | epoch | end)"));
    }
    std::env::set_var("PPT_SANITIZE", level);
    Ok(())
}

/// Turn `--switch MODE` into the `PPT_SWITCH` environment variable the
/// harness reads before building each topology. `pfc` layers per-priority
/// XOFF/XON backpressure over every scheme's switch config; `default`
/// leaves the scheme's own config untouched.
fn apply_switch_flag(args: &Args) -> Result<(), String> {
    match args.get("switch") {
        None | Some("default") => Ok(()),
        Some("pfc") => {
            std::env::set_var("PPT_SWITCH", "pfc");
            Ok(())
        }
        Some(v) => Err(format!("--switch: unknown mode '{v}' (default | pfc)")),
    }
}

/// Parse `--buffers F`: a positive scale factor applied to every
/// buffer-denominated threshold of each experiment's environment.
fn parse_buffers_arg(args: &Args) -> Result<Option<f64>, String> {
    let Some(v) = args.get("buffers") else { return Ok(None) };
    let f: f64 = v.parse().map_err(|_| format!("--buffers: cannot parse '{v}'"))?;
    if f.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(format!("--buffers: scale must be positive, got '{v}'"));
    }
    Ok(Some(f))
}

/// Apply `--buffers` (when present) to an experiment's environment.
fn with_buffers(mut exp: Experiment, buffers: &Option<f64>) -> Experiment {
    if let Some(f) = buffers {
        exp.env = exp.env.clone().scale_buffers(*f);
    }
    exp
}

/// Turn `--queue KIND` into the `PPT_QUEUE` environment variable the
/// harness reads before every experiment. Selects the engine's event-queue
/// implementation (calendar by default); both pop in the same `(time,
/// seq)` order, so the knob exists purely for differential checks and
/// never changes results.
fn apply_queue_flag(args: &Args) -> Result<(), String> {
    let Some(v) = args.get("queue") else { return Ok(()) };
    let Some(kind) = ppt::netsim::QueueKind::parse(v) else {
        return Err(format!("--queue: unknown kind '{v}' (heap | calendar)"));
    };
    std::env::set_var("PPT_QUEUE", kind.as_str());
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let schemes = parse_schemes(args, "ppt,dctcp")?;
    let setup = parse_setup(args, 400)?;
    let json_mode = args.flag("json");
    let with_metrics = args.flag("metrics");

    if !json_mode {
        println!(
            "topo={:?} workload={} load={} flows={} seed={}\n",
            setup.topo,
            setup.dist.name(),
            setup.load,
            setup.flows,
            setup.seed
        );
        println!(
            "{:<24} {:>12} {:>12} {:>12} {:>12} {:>8} {:>10}",
            "scheme", "overall(us)", "small avg", "small p99", "large avg", "done%", "drops"
        );
    }
    // One experiment per scheme, executed by the shared sweep runner:
    // results come back in scheme order no matter how many workers ran.
    let jobs: usize = args.parse_or("jobs", 1)?;
    let faults = parse_faults_arg(args)?;
    let telemetry = parse_telemetry_arg(args)?;
    let buffers = parse_buffers_arg(args)?;
    let results = run_points(schemes.len(), jobs, |i| {
        let scheme = schemes[i].1.clone();
        let exp = with_buffers(
            with_telemetry(
                with_faults(Experiment::new(setup.topo, scheme, setup.flow_list.clone()), &faults),
                &telemetry,
            ),
            &buffers,
        );
        let outcome = run_experiment(&exp);
        let metrics = with_metrics.then(|| collect_metrics(&outcome).to_json());
        (outcome.fct.summary(), outcome.completion_ratio, outcome.counters.dropped, metrics)
    });

    let mut rows = String::from("[");
    let mut metric_blocks: Vec<(String, String)> = Vec::new();
    for (i, ((_, scheme), (s, completion_ratio, drops, metrics))) in
        schemes.iter().zip(results).enumerate()
    {
        let name = scheme.name();
        if json_mode {
            let mut row = JsonObject::new()
                .str("scheme", &name)
                .f64("overall_avg_us", s.overall_avg_us)
                .f64("small_avg_us", s.small_avg_us)
                .f64("small_p99_us", s.small_p99_us)
                .f64("large_avg_us", s.large_avg_us)
                .f64("completion_ratio", completion_ratio)
                .u64("drops", drops);
            if let Some(m) = &metrics {
                row = row.raw("metrics", m.trim_end());
            }
            if i > 0 {
                rows.push(',');
            }
            rows.push_str(&row.finish());
        } else {
            println!(
                "{:<24} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>8.1} {:>10}",
                name,
                s.overall_avg_us,
                s.small_avg_us,
                s.small_p99_us,
                s.large_avg_us,
                completion_ratio * 100.0,
                drops
            );
            if let Some(m) = metrics {
                metric_blocks.push((name, m));
            }
        }
    }
    if json_mode {
        rows.push(']');
        let doc = JsonObject::new()
            .str("topo", &format!("{:?}", setup.topo))
            .str("workload", setup.dist.name())
            .f64("load", setup.load)
            .u64("flows", setup.flows as u64)
            .u64("seed", setup.seed)
            .raw("schemes", &rows)
            .finish();
        println!("{doc}");
    } else {
        for (name, json) in metric_blocks {
            println!("\n--- metrics: {name} ---");
            print!("{json}");
        }
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let schemes = parse_schemes(args, "ppt")?;
    let setup = parse_setup(args, 80)?;
    let out_dir = std::path::PathBuf::from(args.get("out").unwrap_or("."));
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("--out {}: {e}", out_dir.display()))?;

    // Traced runs go through the shared sweep runner; file writes and
    // report lines stay on this thread, in scheme order, so output is
    // byte-identical for any --jobs.
    let jobs: usize = args.parse_or("jobs", 1)?;
    let faults = parse_faults_arg(args)?;
    let telemetry = parse_telemetry_arg(args)?;
    let buffers = parse_buffers_arg(args)?;
    let results = run_points(schemes.len(), jobs, |i| {
        let exp = with_buffers(
            with_telemetry(
                with_faults(
                    Experiment::new(setup.topo, schemes[i].1.clone(), setup.flow_list.clone()),
                    &faults,
                ),
                &telemetry,
            ),
            &buffers,
        );
        let (outcome, trace) = run_experiment_traced(&exp);
        (trace, collect_metrics(&outcome).to_json())
    });

    let single = schemes.len() == 1;
    for ((id, scheme), (trace, metrics_json)) in schemes.iter().zip(results) {
        let (ev_path, m_path) = if single {
            (out_dir.join("events.jsonl"), out_dir.join("metrics.json"))
        } else {
            (out_dir.join(format!("{id}.events.jsonl")), out_dir.join(format!("{id}.metrics.json")))
        };
        std::fs::write(&ev_path, trace.to_jsonl())
            .map_err(|e| format!("{}: {e}", ev_path.display()))?;
        std::fs::write(&m_path, metrics_json).map_err(|e| format!("{}: {e}", m_path.display()))?;
        println!(
            "{}: {} events -> {}, metrics -> {}",
            scheme.name(),
            trace.events.len(),
            ev_path.display(),
            m_path.display()
        );
        let lcp = analyze_lcp(&trace.events, setup.topo.base_rtt());
        if !lcp.loops.is_empty() {
            print!("{}", lcp.render());
        }
    }
    Ok(())
}

fn cmd_faults(args: &Args) -> Result<(), String> {
    let schemes = parse_schemes(args, "ppt")?;
    let setup = parse_setup(args, 80)?;
    let faults = parse_faults(args.get("faults").unwrap_or("loss=0.01"))?;
    let out_dir = args.get("out").map(std::path::PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("--out {}: {e}", dir.display()))?;
    }

    let jobs: usize = args.parse_or("jobs", 1)?;
    let telemetry = parse_telemetry_arg(args)?;
    let buffers = parse_buffers_arg(args)?;
    let results = run_points(schemes.len(), jobs, |i| {
        let exp = with_buffers(
            with_telemetry(
                Experiment::new(setup.topo, schemes[i].1.clone(), setup.flow_list.clone())
                    .with_faults(faults.clone()),
                &telemetry,
            ),
            &buffers,
        );
        let (outcome, trace) = run_experiment_traced(&exp);
        (
            trace,
            outcome.report.faults,
            outcome.completion_ratio,
            outcome.report.flows_completed,
            outcome.report.flows_total,
        )
    });

    // One JSON line per scheme: the recovery summary the fault suite keys
    // off, stable for any --jobs.
    for ((id, scheme), (trace, engine, completion_ratio, done, total)) in
        schemes.iter().zip(results)
    {
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{id}.faults.events.jsonl"));
            std::fs::write(&path, trace.to_jsonl())
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        let rec = analyze_recovery(&trace.events, engine);
        let lcp = analyze_lcp(&trace.events, setup.topo.base_rtt());
        let doc = JsonObject::new()
            .str("scheme", &scheme.name())
            .u64("flows_completed", done as u64)
            .u64("flows_total", total as u64)
            .f64("completion_ratio", completion_ratio)
            .u64("fault_drops", engine.fault_drops)
            .u64("ctrl_drops", rec.ctrl_drops)
            .u64("outages", rec.outages.len() as u64)
            .u64("outage_ns", rec.total_outage_ns())
            .u64("retransmits", engine.retransmits)
            .f64("mean_recovery_us", rec.mean_recovery_us())
            .f64("max_recovery_us", rec.max_recovery_us())
            .f64("degraded_goodput_gbps", rec.degraded_goodput_gbps())
            .u64("max_stall_ns", engine.max_stall.as_nanos())
            .u64("lcp_no_lp_acks", lcp.closed_no_lp_acks as u64)
            .finish();
        println!("{doc}");
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let schemes = parse_schemes(args, "ppt,dctcp")?;
    let topo = parse_topo(args.get("topo").unwrap_or("testbed"))
        .ok_or_else(|| "bad --topo (try `pptlab topos`)".to_string())?;
    let dist = parse_workload(args.get("workload").unwrap_or("websearch"))
        .ok_or_else(|| "bad --workload (try `pptlab workloads`)".to_string())?;
    let loads = args.parse_list_or("loads", &[0.3, 0.5, 0.7])?;
    let seeds = args.parse_list_or("seeds", &[42u64])?;
    let flows: usize = args.parse_or("flows", 400)?;
    let jobs: usize = args.parse_or("jobs", 1)?;
    let json_mode = args.flag("json");

    let scheme_list: Vec<Scheme> = schemes.iter().map(|(_, s)| s.clone()).collect();
    let telemetry = parse_telemetry_arg(args)?;
    let buffers = parse_buffers_arg(args)?;
    let mut spec =
        SweepSpec::new().jobs(jobs).grid(topo, &scheme_list, &dist, &loads, flows, &seeds);
    if let Some(t) = telemetry {
        for p in &mut spec.points {
            p.exp.telemetry = Some(t);
        }
    }
    if let Some(f) = buffers {
        for p in &mut spec.points {
            p.exp.env = p.exp.env.clone().scale_buffers(f);
        }
    }
    if !json_mode {
        println!(
            "sweep: {} points ({} schemes x {} loads x {} seeds) on {topo:?}, \
             workload={} flows={flows} jobs={jobs}\n",
            spec.len(),
            scheme_list.len(),
            loads.len(),
            seeds.len(),
            dist.name(),
        );
        println!(
            "{:<34} {:>12} {:>12} {:>12} {:>12} {:>8} {:>10}",
            "point", "overall(us)", "small avg", "small p99", "large avg", "done%", "drops"
        );
    }
    for r in spec.run() {
        let s = r.fct.summary();
        if json_mode {
            let mut doc = JsonObject::new()
                .str("point", &r.label)
                .str("scheme", &r.scheme.name())
                .f64("overall_avg_us", s.overall_avg_us)
                .f64("small_avg_us", s.small_avg_us)
                .f64("small_p99_us", s.small_p99_us)
                .f64("large_avg_us", s.large_avg_us)
                .f64("completion_ratio", r.completion_ratio)
                .u64("drops", r.counters.dropped);
            if let Some(t) = &r.telemetry {
                doc = doc
                    .u64("telemetry_samples", t.samples)
                    .u64("oscillating_series", t.oscillating().count() as u64);
            }
            println!("{}", doc.finish());
        } else {
            println!(
                "{:<34} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>8.1} {:>10}",
                r.label,
                s.overall_avg_us,
                s.small_avg_us,
                s.small_p99_us,
                s.large_avg_us,
                r.completion_ratio * 100.0,
                r.counters.dropped
            );
        }
    }
    Ok(())
}

/// Render the `pptlab report` terminal block for one scheme.
fn render_report(name: &str, t: &TelemetrySummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "--- telemetry: {name} (interval {} us, {} samples) ---",
        t.interval.as_nanos() / 1_000,
        t.samples,
    );
    let _ = writeln!(
        out,
        "{:<26} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "histogram", "count", "p50", "p90", "p99", "max"
    );
    for (label, h) in [
        ("fct (ns)", &t.fct_ns),
        ("queue_delay (ns)", &t.queue_delay_ns),
        ("queue_depth (bytes)", &t.queue_depth_bytes),
    ] {
        let _ = writeln!(
            out,
            "{:<26} {:>10} {:>12} {:>12} {:>12} {:>12}",
            label,
            h.count(),
            h.percentile(50.0),
            h.percentile(90.0),
            h.percentile(99.0),
            h.max(),
        );
    }
    let oscillating: Vec<_> = t.oscillating().collect();
    let _ =
        writeln!(out, "oscillating series: {} of {} analyzed", oscillating.len(), t.series.len());
    for a in &oscillating {
        let _ = writeln!(
            out,
            "  {:<26} period={} ns strength={:.2} peak_to_peak={:.1}",
            a.name,
            a.period_ns.unwrap_or(0),
            a.period_strength,
            a.peak_to_peak,
        );
    }
    if let Some(rows) = &t.prof {
        let _ = writeln!(out, "profile (wall-clock; non-deterministic, never in goldens):");
        for (kind, count, total_ns) in rows {
            if *count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<12} count={:<12} total={} ns ({} ns/event)",
                kind.as_str(),
                count,
                total_ns,
                total_ns / count,
            );
        }
    }
    out
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let schemes = parse_schemes(args, "ppt")?;
    let setup = parse_setup(args, 80)?;
    let faults = parse_faults_arg(args)?;
    // report always samples: default to the 10 µs interval when the flag
    // was not given explicitly.
    let telemetry = Some(parse_telemetry_arg(args)?.unwrap_or_else(|| {
        let spec = TelemetrySpec::new(SimDuration::from_micros(10));
        if args.flag("prof") {
            spec.with_prof()
        } else {
            spec
        }
    }));
    let prof = args.flag("prof");
    let json_mode = args.flag("json");
    let out_dir = args.get("out").map(std::path::PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("--out {}: {e}", dir.display()))?;
    }

    let jobs: usize = args.parse_or("jobs", 1)?;
    let buffers = parse_buffers_arg(args)?;
    let results = run_points(schemes.len(), jobs, |i| {
        let exp = with_buffers(
            with_telemetry(
                with_faults(
                    Experiment::new(setup.topo, schemes[i].1.clone(), setup.flow_list.clone()),
                    &faults,
                ),
                &telemetry,
            ),
            &buffers,
        );
        let outcome = run_experiment(&exp);
        let summary = outcome.telemetry.clone().expect("report runs always enable telemetry");
        // The raw sampled points as TraceEvent::Sample JSONL (Profile rows
        // only under --prof: they are wall-clock noise).
        let mut dump = String::new();
        if let Some(t) = outcome.sim.telemetry() {
            t.dump_events(&mut dump, prof);
        }
        (summary, dump)
    });

    // All printing happens here, in scheme order, so output is
    // byte-identical for any --jobs (profile rows excepted, by design).
    for ((id, scheme), (summary, dump)) in schemes.iter().zip(results) {
        let name = scheme.name();
        let report_json = JsonObject::new()
            .str("scheme", &name)
            .raw("telemetry", &summary.to_json(prof))
            .finish();
        if let Some(dir) = &out_dir {
            let rp = dir.join(format!("{id}.report.json"));
            std::fs::write(&rp, &report_json).map_err(|e| format!("{}: {e}", rp.display()))?;
            let tp = dir.join(format!("{id}.telemetry.jsonl"));
            std::fs::write(&tp, &dump).map_err(|e| format!("{}: {e}", tp.display()))?;
        }
        if json_mode {
            println!("{report_json}");
        } else {
            print!("{}", render_report(&name, &summary));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "compare" | "sweep" | "trace" | "faults" | "report" => {
            let args = match Args::parse(&argv[1..]) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: {e}\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = apply_sanitize_flag(&args)
                .and_then(|()| apply_queue_flag(&args))
                .and_then(|()| apply_switch_flag(&args))
            {
                eprintln!("error: {e}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
            let run = match cmd.as_str() {
                "compare" => cmd_compare,
                "sweep" => cmd_sweep,
                "faults" => cmd_faults,
                "report" => cmd_report,
                _ => cmd_trace,
            };
            if let Err(e) = run(&args) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "gen" => {
            let args = match Args::parse(&argv[1..]) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: {e}\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let run = || -> Result<(), String> {
                let topo = parse_topo(args.get("topo").unwrap_or("testbed"))
                    .ok_or_else(|| "bad --topo".to_string())?;
                let dist = parse_workload(args.get("workload").unwrap_or("websearch"))
                    .ok_or_else(|| "bad --workload".to_string())?;
                let load: f64 = args.parse_or("load", 0.5)?;
                let flows: usize = args.parse_or("flows", 400)?;
                let seed: u64 = args.parse_or("seed", 42)?;
                let spec = WorkloadSpec::new(dist, load, topo.edge_rate(), flows, seed);
                let list = all_to_all(topo.hosts(), &spec);
                ppt::workloads::write_csv(std::io::stdout().lock(), &list)
                    .map_err(|e| e.to_string())
            };
            if let Err(e) = run() {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "schemes" => {
            for id in SCHEME_IDS {
                println!("{id}");
            }
            ExitCode::SUCCESS
        }
        "topos" => {
            println!("testbed            15 hosts, 10G, 80us RTT (paper §6.1)");
            println!("oversub            144 hosts, 40/100G, 1.4:1 (paper §6.2)");
            println!("nonoversub         144 hosts, 10/40G, 1:1 (appendix E)");
            println!("highspeed          144 hosts, 100/400G (§6.3.2)");
            println!("star:<n>:<gbps>:<delay_us>   custom single switch");
            println!("fattree:<k>:<edge_gbps>      k-ary fat-tree (k^3/4 hosts)");
            ExitCode::SUCCESS
        }
        "workloads" => {
            for (id, d) in [
                ("websearch", SizeDistribution::web_search()),
                ("datamining", SizeDistribution::data_mining()),
                ("memcached", SizeDistribution::memcached_w1()),
            ] {
                println!(
                    "{id:<12} mean {:>10.0} B, {:>5.1}% <=100KB",
                    d.mean_bytes(),
                    d.cdf(100_000) * 100.0
                );
            }
            ExitCode::SUCCESS
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command '{other}'\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
