//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::HashMap;
use std::str::FromStr;

/// Parsed `--key value` pairs.
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parse a `--key value --key2 value2 …` list. A `--key` followed by
    /// another option (or by nothing) is a boolean flag and stores
    /// `"true"`. Bare tokens are rejected.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut it = argv.iter().peekable();
        while let Some(tok) = it.next() {
            let key =
                tok.strip_prefix("--").ok_or_else(|| format!("expected --option, got '{tok}'"))?;
            let val = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().cloned().unwrap_or_default(),
                _ => "true".to_string(),
            };
            values.insert(key.to_string(), val);
        }
        Ok(Args { values })
    }

    /// Raw value of `--key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// True when `--key` was given as a bare flag (or as `--key true`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true"))
    }

    /// Parse `--key` as `T`, defaulting when absent.
    pub fn parse_or<T: FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Parse `--key` as a comma-separated list of `T`, defaulting when
    /// absent.
    pub fn parse_list_or<T: FromStr + Clone>(
        &self,
        key: &str,
        default: &[T],
    ) -> Result<Vec<T>, String> {
        match self.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|p| {
                    let p = p.trim();
                    p.parse().map_err(|_| format!("--{key}: cannot parse '{p}'"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&sv(&["--load", "0.7", "--flows", "100"])).unwrap();
        assert_eq!(a.get("load"), Some("0.7"));
        assert_eq!(a.parse_or::<usize>("flows", 0).unwrap(), 100);
        assert_eq!(a.parse_or::<u64>("seed", 42).unwrap(), 42);
    }

    #[test]
    fn rejects_bare_tokens() {
        assert!(Args::parse(&sv(&["load"])).is_err());
    }

    #[test]
    fn valueless_keys_are_boolean_flags() {
        let a = Args::parse(&sv(&["--json", "--seed", "7", "--metrics"])).unwrap();
        assert!(a.flag("json"));
        assert!(a.flag("metrics"));
        assert!(!a.flag("seed"));
        assert!(!a.flag("absent"));
        assert_eq!(a.parse_or::<u64>("seed", 0).unwrap(), 7);
    }

    #[test]
    fn bad_parse_is_an_error_not_a_default() {
        let a = Args::parse(&sv(&["--flows", "abc"])).unwrap();
        assert!(a.parse_or::<usize>("flows", 1).is_err());
    }

    #[test]
    fn comma_lists_parse_or_default() {
        let a = Args::parse(&sv(&["--loads", "0.3, 0.5,0.7"])).unwrap();
        assert_eq!(a.parse_list_or::<f64>("loads", &[0.5]).unwrap(), vec![0.3, 0.5, 0.7]);
        assert_eq!(a.parse_list_or::<u64>("seeds", &[42]).unwrap(), vec![42]);
        assert!(a.parse_list_or::<u64>("loads", &[1]).is_err());
    }
}
