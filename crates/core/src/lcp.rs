//! The LCP (low-priority control loop) state machine: intermittent loop
//! initialization (§3.1) and exponential window decreasing (§3.2).
//!
//! This module is pure protocol logic — no simulator types — so the same
//! code drives the simulation transport and can be tested exhaustively.

use netsim::{SimDuration, SimTime};

/// Why an LCP loop was opened (affects the initial window rule).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopTrigger {
    /// Case 1: flow start — spare bandwidth in the first RTTs.
    FlowStart,
    /// Case 2: queue-buildup phase — α hit its window minimum.
    AlphaMinimum,
}

/// Initial LCP window for case 1 (flow start): the BDP minus the DCTCP
/// initial window — the pipe capacity the slow-starting HCP loop is not
/// yet using. Saturates at zero.
pub fn initial_window_case1(bdp_bytes: u64, hcp_initial_window_bytes: u64) -> u64 {
    bdp_bytes.saturating_sub(hcp_initial_window_bytes)
}

/// Initial LCP window for case 2 (queue buildup), Eq. 2 of the paper:
///
/// ```
/// use ppt_core::initial_window_case2;
/// assert_eq!(initial_window_case2(0.1, 100_000), 40_000); // (0.5-0.1)*MW
/// assert_eq!(initial_window_case2(0.6, 100_000), 0);      // no spare capacity
/// ```
///
/// ```text
/// I = (1/2 − α_min) · W_max
/// ```
///
/// Rationale: a small α_min means the network likely has spare capacity;
/// DCTCP cuts its window by at most half, so I never exceeds W_max / 2.
/// Returns 0 when α_min ≥ 1/2 (no spare capacity to exploit).
pub fn initial_window_case2(alpha_min: f64, w_max_bytes: u64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&alpha_min), "alpha_min {alpha_min} outside [0, 1]");
    let frac = 0.5 - alpha_min;
    if frac <= 0.0 {
        0
    } else {
        (frac * w_max_bytes as f64).floor() as u64
    }
}

/// What the sender should do in response to a low-priority ACK.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LcpAction {
    /// Transmit one new opportunistic packet (EWD: one per non-ECE ACK,
    /// where the receiver sends one ACK per two data packets ⇒ the rate
    /// halves every RTT).
    SendOne,
    /// ECE-marked ACK: congestion — send nothing, preserve HCP traffic.
    Ignore,
}

/// One LCP loop instance.
///
/// ```
/// use ppt_core::{LcpAction, LcpLoop, LoopTrigger};
/// use netsim::{SimDuration, SimTime};
/// let mut l = LcpLoop::open(LoopTrigger::FlowStart, 80_000, SimTime::ZERO);
/// // EWD: every clean low-priority ACK clocks exactly one new packet...
/// assert_eq!(l.on_low_priority_ack(false, SimTime(1000)), LcpAction::SendOne);
/// // ...and ECE-marked ones are ignored to protect normal traffic.
/// assert_eq!(l.on_low_priority_ack(true, SimTime(2000)), LcpAction::Ignore);
/// // Two silent RTTs close the loop.
/// assert!(l.is_expired(SimTime(2000) + SimDuration::from_micros(160), SimDuration::from_micros(80)));
/// ```
///
/// Lifecycle: [`LcpLoop::open`] → paced initial burst of `initial_window`
/// bytes → per-ACK clocking via [`LcpLoop::on_low_priority_ack`] →
/// terminated by [`LcpLoop::is_expired`] after 2 RTTs of ACK silence
/// (§3.2, "Remarks").
#[derive(Clone, Debug)]
pub struct LcpLoop {
    trigger: LoopTrigger,
    initial_window_bytes: u64,
    opened_at: SimTime,
    last_ack_at: SimTime,
    acks_received: u64,
    ece_acks: u64,
}

/// ACK-silence horizon after which a loop is declared dead, in RTTs.
pub const LOOP_EXPIRY_RTTS: u64 = 2;

impl LcpLoop {
    /// Open a loop with the given initial window. A zero window is legal
    /// (the loop exists but transmits nothing and quickly expires).
    pub fn open(trigger: LoopTrigger, initial_window_bytes: u64, now: SimTime) -> Self {
        LcpLoop {
            trigger,
            initial_window_bytes,
            opened_at: now,
            last_ack_at: now,
            acks_received: 0,
            ece_acks: 0,
        }
    }

    /// Why this loop was opened.
    pub fn trigger(&self) -> LoopTrigger {
        self.trigger
    }

    /// The initial window to pace out over one RTT (rate I/RTT).
    pub fn initial_window_bytes(&self) -> u64 {
        self.initial_window_bytes
    }

    /// When the loop was opened.
    pub fn opened_at(&self) -> SimTime {
        self.opened_at
    }

    /// Handle a low-priority ACK; implements the EWD sender rule.
    pub fn on_low_priority_ack(&mut self, ece: bool, now: SimTime) -> LcpAction {
        self.last_ack_at = now;
        self.acks_received += 1;
        if ece {
            self.ece_acks += 1;
            LcpAction::Ignore
        } else {
            LcpAction::SendOne
        }
    }

    /// True once no low-priority ACK has arrived for [`LOOP_EXPIRY_RTTS`]
    /// RTTs: the loop should be closed and spare-bandwidth discovery
    /// restarted.
    pub fn is_expired(&self, now: SimTime, rtt: SimDuration) -> bool {
        now.saturating_since(self.last_ack_at) >= rtt.saturating_mul(LOOP_EXPIRY_RTTS)
    }

    /// Total and ECE-marked ACK counts (diagnostics).
    pub fn ack_counts(&self) -> (u64, u64) {
        (self.acks_received, self.ece_acks)
    }
}

/// Number of opportunistic data packets the receiver coalesces into one
/// low-priority ACK. Two-for-one is what makes the sender's per-ACK
/// clocking halve the LCP rate each RTT (§3.2).
pub const LCP_PACKETS_PER_ACK: u32 = 2;

/// Receiver-side EWD: count arriving opportunistic packets and decide when
/// to emit a low-priority ACK (one per [`LCP_PACKETS_PER_ACK`] arrivals).
/// The ACK echoes whether any coalesced packet carried a CE mark.
#[derive(Clone, Debug, Default)]
pub struct LcpAckClock {
    pending: u32,
    pending_ce: bool,
}

impl LcpAckClock {
    /// New clock with no pending packets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an arriving opportunistic data packet. Returns
    /// `Some(ece)` when an ACK should be emitted now.
    pub fn on_data(&mut self, ce_marked: bool) -> Option<bool> {
        self.pending += 1;
        self.pending_ce |= ce_marked;
        if self.pending >= LCP_PACKETS_PER_ACK {
            let ece = self.pending_ce;
            self.pending = 0;
            self.pending_ce = false;
            Some(ece)
        } else {
            None
        }
    }

    /// Packets received since the last emitted ACK.
    pub fn pending(&self) -> u32 {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_window_is_bdp_minus_iw() {
        assert_eq!(initial_window_case1(100_000, 14_600), 85_400);
        assert_eq!(initial_window_case1(10_000, 14_600), 0, "saturates");
    }

    #[test]
    fn case2_window_follows_equation_2() {
        // α_min = 0 → I = W_max/2.
        assert_eq!(initial_window_case2(0.0, 100_000), 50_000);
        // α_min = 0.3 → I = 0.2·W_max.
        assert_eq!(initial_window_case2(0.3, 100_000), 20_000);
        // α_min ≥ 0.5 → no loop.
        assert_eq!(initial_window_case2(0.5, 100_000), 0);
        assert_eq!(initial_window_case2(0.9, 100_000), 0);
    }

    #[test]
    fn ewd_sender_rule() {
        let mut l = LcpLoop::open(LoopTrigger::FlowStart, 50_000, SimTime::ZERO);
        assert_eq!(l.on_low_priority_ack(false, SimTime(100)), LcpAction::SendOne);
        assert_eq!(l.on_low_priority_ack(true, SimTime(200)), LcpAction::Ignore);
        assert_eq!(l.ack_counts(), (2, 1));
    }

    #[test]
    fn loop_expires_after_two_silent_rtts() {
        let rtt = SimDuration::from_micros(80);
        let mut l = LcpLoop::open(LoopTrigger::AlphaMinimum, 10_000, SimTime::ZERO);
        assert!(!l.is_expired(SimTime(100_000), rtt)); // 100us < 160us
        assert!(l.is_expired(SimTime(160_000), rtt)); // exactly 2 RTTs
                                                      // An ACK resets the expiry clock.
        l.on_low_priority_ack(false, SimTime(150_000));
        assert!(!l.is_expired(SimTime(200_000), rtt));
        assert!(l.is_expired(SimTime(310_000), rtt));
    }

    #[test]
    fn ack_clock_coalesces_two_to_one() {
        let mut c = LcpAckClock::new();
        assert_eq!(c.on_data(false), None);
        assert_eq!(c.on_data(false), Some(false));
        assert_eq!(c.pending(), 0);
        // CE on either packet of the pair sets ECE on the ACK.
        assert_eq!(c.on_data(true), None);
        assert_eq!(c.on_data(false), Some(true));
        assert_eq!(c.on_data(false), None);
        assert_eq!(c.on_data(true), Some(true));
    }

    #[test]
    fn halving_dynamics_emerge_from_the_rules() {
        // Send W packets; receiver ACKs W/2 of them; each ACK clocks one
        // new packet — so the next round sends W/2. Simulate 4 rounds.
        let mut window = 64u32;
        let mut clock = LcpAckClock::new();
        for _ in 0..4 {
            let mut acks = 0;
            for _ in 0..window {
                if clock.on_data(false).is_some() {
                    acks += 1;
                }
            }
            window = acks;
        }
        assert_eq!(window, 4, "64 → 32 → 16 → 8 → 4");
    }
}
