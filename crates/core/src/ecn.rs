//! ECN marking threshold rule (Eq. 3).

use netsim::{Rate, SimDuration};

/// λ for the high-priority (HCP) queues — the DCTCP-theory value (§3.2,
/// citing the DCTCP analysis paper).
pub const LAMBDA_HIGH: f64 = 0.17;

/// λ for the low-priority (LCP) queues — deliberately smaller so
/// opportunistic packets sense congestion early and never crowd out
/// normal traffic (§3.2).
pub const LAMBDA_LOW: f64 = 0.1;

/// Eq. 3: the marking threshold `K = λ · C · RTT` in bytes, for link speed
/// `C` and base round-trip time `RTT`.
///
/// ```
/// use ppt_core::marking_threshold_bytes;
/// use netsim::{Rate, SimDuration};
/// // 40G x 16us BDP = 80KB; λ = 0.1 → K = 8KB.
/// assert_eq!(marking_threshold_bytes(0.1, Rate::gbps(40), SimDuration::from_micros(16)), 8_000);
/// ```
pub fn marking_threshold_bytes(lambda: f64, link_rate: Rate, base_rtt: SimDuration) -> u64 {
    assert!(lambda > 0.0, "lambda must be positive");
    let bdp = link_rate.bytes_per_sec() as f64 * base_rtt.as_secs_f64();
    (lambda * bdp).round() as u64
}

/// The pair of thresholds PPT configures: (K_high for P0–P3, K_low for
/// P4–P7).
pub fn ppt_thresholds(link_rate: Rate, base_rtt: SimDuration) -> (u64, u64) {
    (
        marking_threshold_bytes(LAMBDA_HIGH, link_rate, base_rtt),
        marking_threshold_bytes(LAMBDA_LOW, link_rate, base_rtt),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_scales_with_c_and_rtt() {
        // 40Gbps × 16us = 80KB BDP; λ=0.1 → 8KB.
        let k = marking_threshold_bytes(0.1, Rate::gbps(40), SimDuration::from_micros(16));
        assert_eq!(k, 8_000);
        // Doubling the RTT doubles K.
        let k2 = marking_threshold_bytes(0.1, Rate::gbps(40), SimDuration::from_micros(32));
        assert_eq!(k2, 16_000);
    }

    #[test]
    fn low_threshold_below_high() {
        let (hi, lo) = ppt_thresholds(Rate::gbps(10), SimDuration::from_micros(80));
        assert!(lo < hi);
        // 10G×80us = 100KB BDP: hi = 17KB, lo = 10KB.
        assert_eq!(hi, 17_000);
        assert_eq!(lo, 10_000);
    }
}
