//! Buffer-aware flow scheduling (§4): large-flow identification and
//! mirror-symmetric packet tagging.

/// Buffer-aware large-flow identification (§4.1).
///
/// A flow is flagged *large at start* when its first send() syscall copies
/// more than `threshold_bytes` into the TCP send buffer. Flows that dodge
/// this check (incremental writers) are caught during transmission by
/// PIAS-style aging in the tagger below.
#[derive(Clone, Copy, Debug)]
pub struct FlowIdentifier {
    /// First-syscall size above which a flow is immediately large.
    pub threshold_bytes: u64,
}

/// The paper's default identification threshold (Table 3).
pub const DEFAULT_IDENT_THRESHOLD_BYTES: u64 = 100_000;

impl Default for FlowIdentifier {
    fn default() -> Self {
        FlowIdentifier { threshold_bytes: DEFAULT_IDENT_THRESHOLD_BYTES }
    }
}

impl FlowIdentifier {
    /// Identify from the first syscall's size.
    pub fn is_large_at_start(&self, first_write_bytes: u64) -> bool {
        first_write_bytes > self.threshold_bytes
    }
}

/// Mirror-symmetric packet tagging (§4.2).
///
/// ```
/// use ppt_core::MirrorTagger;
/// let t = MirrorTagger::default();
/// // Identified-large flows are pinned to the band floors P3/P7:
/// assert_eq!(t.hcp_priority(true, 0), 3);
/// assert_eq!(t.lcp_priority(true, 0), 7);
/// // Unidentified flows start at the top and age downward in lock-step:
/// assert_eq!(t.hcp_priority(false, 0), 0);
/// assert_eq!(t.lcp_priority(false, 0), 4);
/// ```
///
/// Eight priorities are split into a high half (P0–P3) for HCP packets and
/// a low half (P4–P7) for LCP packets. Within each half:
/// * flows identified large at start use the half's lowest priority
///   (P3 / P7) from the first byte;
/// * unidentified flows start at the half's highest priority (P0 / P4) and
///   demote one level each time their bytes-sent crosses an aging
///   threshold — the PIAS fallback that eventually catches unidentified
///   large flows.
#[derive(Clone, Debug)]
pub struct MirrorTagger {
    /// Aging thresholds (bytes sent) for demotion P0→P1→P2→P3. Must be
    /// strictly increasing; length ≤ 3.
    pub demotion_thresholds: Vec<u64>,
}

/// Default aging thresholds. Chosen geometrically so the bulk of small
/// flows (≤100 KB) finish in the top two levels while anything beyond
/// 1 MB lands in the lowest level with the identified-large flows.
pub const DEFAULT_DEMOTION_THRESHOLDS: [u64; 3] = [100_000, 400_000, 1_000_000];

impl Default for MirrorTagger {
    fn default() -> Self {
        MirrorTagger { demotion_thresholds: DEFAULT_DEMOTION_THRESHOLDS.to_vec() }
    }
}

impl MirrorTagger {
    /// Build with custom thresholds (must be strictly increasing, ≤ 3).
    pub fn new(demotion_thresholds: Vec<u64>) -> Self {
        assert!(demotion_thresholds.len() <= 3, "only 3 demotions fit in 4 levels");
        for w in demotion_thresholds.windows(2) {
            assert!(w[0] < w[1], "thresholds must be strictly increasing");
        }
        MirrorTagger { demotion_thresholds }
    }

    /// HCP priority (0..=3) for a flow's next packet.
    pub fn hcp_priority(&self, identified_large: bool, bytes_sent: u64) -> u8 {
        if identified_large {
            return 3;
        }
        let level = self.demotion_thresholds.iter().take_while(|&&t| bytes_sent >= t).count() as u8;
        level.min(3)
    }

    /// LCP priority: the mirror of the HCP priority in the low half
    /// (P_i ↦ P_{i+4}).
    pub fn lcp_priority(&self, identified_large: bool, bytes_sent: u64) -> u8 {
        self.hcp_priority(identified_large, bytes_sent) + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_uses_strict_threshold() {
        let id = FlowIdentifier { threshold_bytes: 1_000 };
        assert!(!id.is_large_at_start(1_000));
        assert!(id.is_large_at_start(1_001));
        assert!(!id.is_large_at_start(0));
    }

    #[test]
    fn identified_large_pinned_to_lowest() {
        let t = MirrorTagger::default();
        assert_eq!(t.hcp_priority(true, 0), 3);
        assert_eq!(t.hcp_priority(true, 10_000_000), 3);
        assert_eq!(t.lcp_priority(true, 0), 7);
    }

    #[test]
    fn unidentified_demote_with_bytes_sent() {
        let t = MirrorTagger::new(vec![100, 200, 300]);
        assert_eq!(t.hcp_priority(false, 0), 0);
        assert_eq!(t.hcp_priority(false, 99), 0);
        assert_eq!(t.hcp_priority(false, 100), 1);
        assert_eq!(t.hcp_priority(false, 250), 2);
        assert_eq!(t.hcp_priority(false, 300), 3);
        assert_eq!(t.hcp_priority(false, u64::MAX), 3);
    }

    #[test]
    fn mirror_symmetry_holds_everywhere() {
        let t = MirrorTagger::default();
        for &large in &[false, true] {
            for sent in [0u64, 50_000, 150_000, 500_000, 2_000_000] {
                let h = t.hcp_priority(large, sent);
                let l = t.lcp_priority(large, sent);
                assert_eq!(l, h + 4, "mirror violated at large={large} sent={sent}");
                assert!(h <= 3 && (4..=7).contains(&l));
            }
        }
    }

    #[test]
    fn hcp_always_beats_lcp() {
        // Any HCP priority must be numerically smaller (= strictly higher
        // priority) than any LCP priority: HCP is never harmed by LCP.
        let t = MirrorTagger::default();
        let worst_hcp = t.hcp_priority(true, u64::MAX);
        let best_lcp = t.lcp_priority(false, 0);
        assert!(worst_hcp < best_lcp);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_thresholds_rejected() {
        MirrorTagger::new(vec![100, 100]);
    }
}
