//! PPT configuration: every §3/§4 knob in one place, with the paper's
//! defaults.

use netsim::{bdp_bytes, Rate, SimDuration};

use crate::alpha::{DEFAULT_G, DEFAULT_MIN_WINDOW};
use crate::ecn::{LAMBDA_HIGH, LAMBDA_LOW};
use crate::scheduling::{DEFAULT_DEMOTION_THRESHOLDS, DEFAULT_IDENT_THRESHOLD_BYTES};

/// Full PPT parameterization.
#[derive(Clone, Debug)]
pub struct PptConfig {
    /// Bottleneck (edge) link rate — defines the BDP.
    pub link_rate: Rate,
    /// Base (unloaded) round-trip time.
    pub base_rtt: SimDuration,
    /// DCTCP EWMA gain g.
    pub g: f64,
    /// Window (in RTTs) over which α-minimum triggers are detected.
    pub alpha_min_window: usize,
    /// λ for the HCP queues' ECN threshold (Eq. 3).
    pub lambda_high: f64,
    /// λ for the LCP queues' ECN threshold (Eq. 3).
    pub lambda_low: f64,
    /// Buffer-aware identification threshold (first-syscall bytes).
    pub ident_threshold_bytes: u64,
    /// Aging thresholds for the mirror tagger.
    pub demotion_thresholds: Vec<u64>,
    /// TCP send buffer capacity per flow. First-syscall sizes are clamped
    /// to this; the paper shows 128 KB suffices on the testbed and 2 MB in
    /// the large-scale sims (appendix F).
    pub send_buffer_bytes: u64,
    /// Ablation: disable ECN-based protection of HCP by LCP (Fig 15).
    pub lcp_ecn_enabled: bool,
    /// Ablation: disable EWD — LCP sends at line rate while open (Fig 16).
    pub ewd_enabled: bool,
    /// Ablation: disable flow scheduling — tag everything P0/P4 (Fig 17).
    pub scheduling_enabled: bool,
    /// Ablation: disable buffer-aware identification (Fig 18).
    pub identification_enabled: bool,
    /// Fraction of MW to fill to (1.0 per §2.3; swept in Fig 3).
    pub fill_fraction: f64,
}

impl PptConfig {
    /// Paper defaults for a given link rate and base RTT.
    pub fn new(link_rate: Rate, base_rtt: SimDuration) -> Self {
        PptConfig {
            link_rate,
            base_rtt,
            g: DEFAULT_G,
            alpha_min_window: DEFAULT_MIN_WINDOW,
            lambda_high: LAMBDA_HIGH,
            lambda_low: LAMBDA_LOW,
            ident_threshold_bytes: DEFAULT_IDENT_THRESHOLD_BYTES,
            demotion_thresholds: DEFAULT_DEMOTION_THRESHOLDS.to_vec(),
            send_buffer_bytes: 2 << 20,
            lcp_ecn_enabled: true,
            ewd_enabled: true,
            scheduling_enabled: true,
            identification_enabled: true,
            fill_fraction: 1.0,
        }
    }

    /// Bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> u64 {
        bdp_bytes(self.link_rate, self.base_rtt)
    }

    /// (K_high, K_low) ECN thresholds per Eq. 3.
    pub fn ecn_thresholds(&self) -> (u64, u64) {
        (
            crate::ecn::marking_threshold_bytes(self.lambda_high, self.link_rate, self.base_rtt),
            crate::ecn::marking_threshold_bytes(self.lambda_low, self.link_rate, self.base_rtt),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PptConfig::new(Rate::gbps(40), SimDuration::from_micros(16));
        assert_eq!(c.g, 1.0 / 16.0);
        assert_eq!(c.lambda_high, 0.17);
        assert_eq!(c.lambda_low, 0.1);
        assert_eq!(c.fill_fraction, 1.0);
        assert!(c.lcp_ecn_enabled && c.ewd_enabled && c.scheduling_enabled);
        assert_eq!(c.bdp_bytes(), 80_000);
        let (hi, lo) = c.ecn_thresholds();
        assert!(lo < hi);
    }
}
