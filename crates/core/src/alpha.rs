//! The DCTCP congestion-level estimator α and its minimum tracker.
//!
//! DCTCP maintains, per flow, an EWMA of the fraction of ECN-marked
//! packets (Eq. 1 in the paper):
//!
//! ```text
//! α ← (1 − g)·α + g·F
//! ```
//!
//! PPT's intermittent loop initialization (§3.1, case 2) watches α and
//! opens an LCP loop whenever α reaches its minimum over the past RTTs —
//! a small α means the queue has drained below the marking threshold and
//! spare capacity is likely.

use std::collections::VecDeque;

/// Default EWMA gain g = 1/16 (the DCTCP paper's recommendation).
pub const DEFAULT_G: f64 = 1.0 / 16.0;

/// Default number of past per-RTT α observations the minimum is taken over.
pub const DEFAULT_MIN_WINDOW: usize = 16;

/// Per-flow α estimator.
///
/// ```
/// use ppt_core::AlphaEstimator;
/// let mut a = AlphaEstimator::default();
/// // One RTT where 30% of acked bytes carried CE echoes:
/// a.on_ack(100, 30);
/// let alpha = a.end_of_round();
/// assert!(alpha < 1.0 && alpha > 0.9); // EWMA moves slowly from 1.0
/// ```
#[derive(Clone, Debug)]
pub struct AlphaEstimator {
    g: f64,
    alpha: f64,
    acked: u64,
    marked: u64,
}

impl Default for AlphaEstimator {
    fn default() -> Self {
        Self::new(DEFAULT_G)
    }
}

impl AlphaEstimator {
    /// New estimator with gain `g` (0 < g ≤ 1). α starts at 1.0 so a brand
    /// new flow backs off conservatively on its very first mark, matching
    /// the Linux dctcp module's `dctcp_alpha_on_init`.
    pub fn new(g: f64) -> Self {
        assert!(g > 0.0 && g <= 1.0, "g must be in (0, 1]");
        AlphaEstimator { g, alpha: 1.0, acked: 0, marked: 0 }
    }

    /// Record acked bytes (or packets — units only need to be consistent),
    /// with `marked` of them carrying an echoed CE mark.
    pub fn on_ack(&mut self, acked: u64, marked: u64) {
        debug_assert!(marked <= acked, "marked bytes {marked} exceed acked {acked}");
        self.acked += acked;
        self.marked += marked;
    }

    /// Close out one RTT: fold the observed mark fraction F into α and
    /// reset the per-RTT counters. Returns the new α.
    pub fn end_of_round(&mut self) -> f64 {
        let f = if self.acked == 0 { 0.0 } else { self.marked as f64 / self.acked as f64 };
        self.alpha = (1.0 - self.g) * self.alpha + self.g * f;
        self.acked = 0;
        self.marked = 0;
        self.alpha
    }

    /// Current α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The window multiplier DCTCP applies on congestion: w ← w·(1 − α/2).
    pub fn cut_factor(&self) -> f64 {
        1.0 - self.alpha / 2.0
    }
}

/// Sliding-window minimum detector over per-RTT α values.
///
/// ```
/// use ppt_core::MinTracker;
/// let mut m = MinTracker::new(8);
/// assert!(m.push(0.4));   // first observation
/// assert!(!m.push(0.4));  // tie: steady state must not re-trigger
/// assert!(m.push(0.1));   // strict new minimum: open an LCP loop
/// ```
///
/// [`MinTracker::push`] returns `true` when the new value is the minimum of
/// the last `window` observations — PPT's trigger for opening an LCP loop
/// in the queue-buildup phase.
#[derive(Clone, Debug)]
pub struct MinTracker {
    window: usize,
    values: VecDeque<f64>,
}

impl MinTracker {
    /// Track minima over the last `window` observations (≥ 1).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "MinTracker window must be at least 1");
        MinTracker { window, values: VecDeque::with_capacity(window + 1) }
    }

    /// Add an observation; report whether it is a *strict* new minimum of
    /// the window (the first observation counts).
    ///
    /// Strictness matters: in DCTCP's steady state α settles to a nearly
    /// constant value, and a tie-counting tracker would fire every RTT —
    /// turning PPT's *intermittent* loop initialization into a continuous
    /// burst generator that overflows switch buffers. A strict minimum
    /// fires only when congestion genuinely eased below everything seen
    /// in the recent past.
    pub fn push(&mut self, v: f64) -> bool {
        self.values.push_back(v);
        if self.values.len() > self.window {
            self.values.pop_front();
        }
        // Strictly below every *other* observation still in the window.
        let n = self.values.len();
        self.values.iter().take(n - 1).all(|&x| x > v)
    }

    /// Current minimum over the window (NaN when empty).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::min)
    }

    /// Observations currently held.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no observation has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_decays_toward_zero_without_marks() {
        let mut a = AlphaEstimator::default();
        assert_eq!(a.alpha(), 1.0);
        for _ in 0..100 {
            a.on_ack(10, 0);
            a.end_of_round();
        }
        assert!(a.alpha() < 0.01, "alpha={}", a.alpha());
    }

    #[test]
    fn alpha_converges_to_mark_fraction() {
        let mut a = AlphaEstimator::default();
        for _ in 0..500 {
            a.on_ack(100, 30);
            a.end_of_round();
        }
        assert!((a.alpha() - 0.3).abs() < 1e-6, "alpha={}", a.alpha());
    }

    #[test]
    fn single_round_update_matches_equation() {
        let mut a = AlphaEstimator::new(1.0 / 16.0);
        a.on_ack(10, 10);
        // α = (1-g)*1 + g*1 = 1
        assert!((a.end_of_round() - 1.0).abs() < 1e-12);
        a.on_ack(10, 0);
        // α = (15/16)*1
        assert!((a.end_of_round() - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn idle_round_counts_as_unmarked() {
        let mut a = AlphaEstimator::default();
        let before = a.alpha();
        let after = a.end_of_round();
        assert!(after < before);
    }

    #[test]
    fn cut_factor_bounds() {
        let mut a = AlphaEstimator::default();
        assert_eq!(a.cut_factor(), 0.5); // α=1 → halve, TCP-style
        for _ in 0..200 {
            a.on_ack(10, 0);
            a.end_of_round();
        }
        assert!(a.cut_factor() > 0.99); // α→0 → barely cut
    }

    #[test]
    fn min_tracker_detects_window_minimum() {
        let mut m = MinTracker::new(3);
        assert!(m.push(0.5)); // first value is trivially the min
        assert!(!m.push(0.7));
        assert!(m.push(0.4));
        assert!(!m.push(0.6));
        // Window now [0.4, 0.6]; 0.4 still inside, so 0.5 is not a min.
        assert!(!m.push(0.5));
        // Window [0.6, 0.5]: 0.45 is the new strict min.
        assert!(m.push(0.45));
    }

    #[test]
    fn min_tracker_forgets_old_minima() {
        let mut m = MinTracker::new(2);
        m.push(0.1);
        m.push(0.9);
        // 0.1 has slid out; window is [0.9]; 0.5 beats it strictly.
        assert!(m.push(0.5));
    }

    #[test]
    fn ties_do_not_trigger() {
        // A steady-state constant α must not fire every round — that
        // would make "intermittent" loop initialization continuous.
        let mut m = MinTracker::new(4);
        assert!(m.push(0.3));
        for _ in 0..20 {
            assert!(!m.push(0.3), "tie fired a loop");
        }
    }
}
