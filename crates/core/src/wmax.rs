//! Per-flow maximum-window (MW) tracking.
//!
//! PPT fills the gap between DCTCP's current window and the maximum window
//! the flow has experienced (§2.3, Fig 3: filling to exactly 1×MW is the
//! sweet spot). Only windows observed *after* slow start count — a flow
//! still ramping up has not yet discovered its fair share, and footnote 3
//! of the paper restricts W_max to congestion-avoidance-phase windows.

/// Tracks the maximum congestion-avoidance window a flow has reached.
#[derive(Clone, Copy, Debug, Default)]
pub struct WmaxTracker {
    w_max_bytes: u64,
    in_congestion_avoidance: bool,
}

impl WmaxTracker {
    /// Fresh tracker (flow still in slow start, no W_max yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Note that the flow left slow start (first congestion event or
    /// ssthresh crossing). Windows observed from now on update W_max.
    pub fn enter_congestion_avoidance(&mut self) {
        self.in_congestion_avoidance = true;
    }

    /// True once the flow is past slow start.
    pub fn past_slow_start(&self) -> bool {
        self.in_congestion_avoidance
    }

    /// Observe the current congestion window.
    pub fn observe(&mut self, cwnd_bytes: u64) {
        if self.in_congestion_avoidance {
            self.w_max_bytes = self.w_max_bytes.max(cwnd_bytes);
        }
    }

    /// The recorded maximum window; `None` until the flow has spent time
    /// in congestion avoidance.
    pub fn w_max_bytes(&self) -> Option<u64> {
        if self.in_congestion_avoidance && self.w_max_bytes > 0 {
            Some(self.w_max_bytes)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_windows_ignored() {
        let mut t = WmaxTracker::new();
        t.observe(1_000_000); // huge slow-start overshoot must not count
        assert_eq!(t.w_max_bytes(), None);
        t.enter_congestion_avoidance();
        t.observe(80_000);
        assert_eq!(t.w_max_bytes(), Some(80_000));
    }

    #[test]
    fn tracks_running_maximum() {
        let mut t = WmaxTracker::new();
        t.enter_congestion_avoidance();
        t.observe(50_000);
        t.observe(70_000);
        t.observe(60_000); // window cut: max must stick
        assert_eq!(t.w_max_bytes(), Some(70_000));
    }

    #[test]
    fn zero_window_is_not_a_maximum() {
        let mut t = WmaxTracker::new();
        t.enter_congestion_avoidance();
        t.observe(0);
        assert_eq!(t.w_max_bytes(), None);
    }
}
