#![forbid(unsafe_code)]
//! # ppt-core — the PPT paper's algorithms as a pure library
//!
//! This crate implements the primary contribution of *PPT: A Pragmatic
//! Transport for Datacenters* (SIGCOMM '24) as simulator-independent
//! state machines and pure functions:
//!
//! * [`alpha`] — the DCTCP congestion estimator α (Eq. 1) and the
//!   sliding-window minimum detector that triggers LCP loops;
//! * [`lcp`] — intermittent loop initialization (§3.1, Eq. 2) and the
//!   exponential-window-decreasing ACK clock (§3.2);
//! * [`ecn`] — the marking-threshold rule K = λ·C·RTT (Eq. 3) with the
//!   paper's λ values for the high- and low-priority queue groups;
//! * [`scheduling`] — buffer-aware large-flow identification (§4.1) and
//!   mirror-symmetric packet tagging (§4.2);
//! * [`wmax`] — maximum-window tracking restricted to the
//!   congestion-avoidance phase (§2.3, footnote 3);
//! * [`config`] — every knob with the paper's defaults, including the
//!   ablation switches evaluated in §6.3.
//!
//! The `transports` crate wires these pieces into a full sender/receiver
//! on the `netsim` simulator; everything here is also directly usable by
//! anyone embedding the algorithms elsewhere (e.g. a userspace stack).

pub mod alpha;
pub mod config;
pub mod ecn;
pub mod lcp;
pub mod scheduling;
pub mod wmax;

pub use alpha::{AlphaEstimator, MinTracker, DEFAULT_G, DEFAULT_MIN_WINDOW};
pub use config::PptConfig;
pub use ecn::{marking_threshold_bytes, ppt_thresholds, LAMBDA_HIGH, LAMBDA_LOW};
pub use lcp::{
    initial_window_case1, initial_window_case2, LcpAckClock, LcpAction, LcpLoop, LoopTrigger,
    LCP_PACKETS_PER_ACK, LOOP_EXPIRY_RTTS,
};
pub use scheduling::{
    FlowIdentifier, MirrorTagger, DEFAULT_DEMOTION_THRESHOLDS, DEFAULT_IDENT_THRESHOLD_BYTES,
};
pub use wmax::WmaxTracker;
